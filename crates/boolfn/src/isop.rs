//! Irredundant sum-of-products extraction (Minato–Morreale).
//!
//! Converts truth tables into compact [`CubeList`] covers. The early
//! evaluation algorithm uses these covers as the paper's `f_ON`/`f_OFF` cube
//! lists (Table 2); the technology mapper uses them to report literal counts.

use crate::cube::{Cube, CubeList, Polarity};
use crate::truth::TruthTable;

/// Computes an irredundant sum-of-products cover `g` with
/// `lower ⊆ g ⊆ upper`, using the Minato–Morreale ISOP recursion.
///
/// `lower` is the ON-set that must be covered; `upper` is the ON-set plus
/// don't-cares that may be covered. For a completely specified function pass
/// the same table twice.
///
/// The returned cover is *irredundant*: removing any cube uncovers some
/// minterm of `lower`.
///
/// # Panics
///
/// Panics if the tables have different variable counts or `lower ⊄ upper`.
///
/// # Example
///
/// ```
/// use pl_boolfn::{isop, TruthTable};
///
/// let maj3 = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
/// let cover = isop(&maj3, &maj3);
/// assert_eq!(cover.to_truth_table(), maj3);
/// assert_eq!(cover.len(), 3); // ab + ac + bc
/// ```
#[must_use]
pub fn isop(lower: &TruthTable, upper: &TruthTable) -> CubeList {
    assert_eq!(lower.num_vars(), upper.num_vars(), "isop arity mismatch");
    assert!((*lower & !*upper).is_zero(), "isop requires lower ⊆ upper");
    let (cover, realized) = isop_rec(*lower, *upper, lower.num_vars());
    debug_assert!((*lower & !realized).is_zero(), "isop lost ON minterms");
    debug_assert!((realized & !*upper).is_zero(), "isop covered OFF minterms");
    cover
}

/// Recursive Minato–Morreale step. Returns the cover and the function it
/// realizes (needed by the caller to compute the residual lower bound).
fn isop_rec(lower: TruthTable, upper: TruthTable, width: usize) -> (CubeList, TruthTable) {
    let nv = lower.num_vars();
    if lower.is_zero() {
        return (CubeList::new(width), TruthTable::zero(nv));
    }
    if upper.is_ones() {
        let mut list = CubeList::new(width);
        list.push(Cube::universal(width));
        return (list, TruthTable::ones(nv));
    }
    // Split on the highest variable either bound depends on.
    let var = (0..nv)
        .rev()
        .find(|&v| lower.depends_on(v) || upper.depends_on(v))
        .expect("non-constant bounds must have support");

    let l0 = lower.cofactor0(var);
    let l1 = lower.cofactor1(var);
    let u0 = upper.cofactor0(var);
    let u1 = upper.cofactor1(var);

    // Minterms that can only be covered with literal x' (resp. x).
    let (c0, g0) = isop_rec(l0 & !u1, u0, width);
    let (c1, g1) = isop_rec(l1 & !u0, u1, width);
    // Residual minterms, coverable without a literal on `var`.
    let l_rest = (l0 & !g0) | (l1 & !g1);
    let (cd, gd) = isop_rec(l_rest, u0 & u1, width);

    let mut cover = CubeList::new(width);
    for c in &c0 {
        cover.push(c.with_literal(var, Polarity::Negative));
    }
    for c in &c1 {
        cover.push(c.with_literal(var, Polarity::Positive));
    }
    cover.extend(cd);

    let x = TruthTable::var(nv, var);
    let realized = (!x & g0) | (x & g1) | gd;
    (cover, realized)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact(t: &TruthTable) -> CubeList {
        isop(t, t)
    }

    #[test]
    fn constants() {
        let zero = TruthTable::zero(3);
        let one = TruthTable::ones(3);
        assert!(exact(&zero).is_empty());
        let c1 = exact(&one);
        assert_eq!(c1.len(), 1);
        assert_eq!(c1.iter().next().unwrap().num_literals(), 0);
    }

    #[test]
    fn majority_gives_three_cubes() {
        let maj3 = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
        let cover = exact(&maj3);
        assert_eq!(cover.to_truth_table(), maj3);
        assert_eq!(cover.len(), 3);
        assert!(cover.iter().all(|c| c.num_literals() == 2));
    }

    #[test]
    fn xor_needs_all_minterms() {
        let xor3 = TruthTable::from_fn(3, |m| m.count_ones() % 2 == 1);
        let cover = exact(&xor3);
        assert_eq!(cover.to_truth_table(), xor3);
        assert_eq!(cover.len(), 4);
        assert!(cover.iter().all(|c| c.num_literals() == 3));
    }

    #[test]
    fn carry_out_matches_paper_shape() {
        // carry = c(a+b)+ab has the classic 2-literal cover {11-, 1-1, -11}
        let carry = TruthTable::from_fn(3, |m| {
            let (a, b, c) = (m & 1 != 0, m & 2 != 0, m & 4 != 0);
            (c && (a || b)) || (a && b)
        });
        let cover = exact(&carry);
        assert_eq!(cover.to_truth_table(), carry);
        assert_eq!(cover.len(), 3);
        assert!(cover.iter().all(|c| c.num_literals() == 2));
    }

    #[test]
    fn exhaustive_3var_functions_are_exact() {
        for bits in 0u64..256 {
            let t = TruthTable::from_bits(3, bits);
            let cover = exact(&t);
            assert_eq!(cover.to_truth_table(), t, "bits={bits:#x}");
        }
    }

    #[test]
    fn exhaustive_3var_irredundant() {
        // Removing any cube must uncover part of the ON-set.
        for bits in (0u64..256).step_by(7) {
            let t = TruthTable::from_bits(3, bits);
            let cover = exact(&t);
            for skip in 0..cover.len() {
                let mut partial = TruthTable::zero(3);
                for (i, c) in cover.iter().enumerate() {
                    if i != skip {
                        partial = partial | c.to_truth_table();
                    }
                }
                assert_ne!(partial, t, "cube {skip} redundant for bits={bits:#x}");
            }
        }
    }

    #[test]
    fn dont_cares_shrink_cover() {
        // ON = {111}, DC = everything else: a single universal cube suffices.
        let on = TruthTable::from_bits(3, 0b1000_0000);
        let upper = TruthTable::ones(3);
        let cover = isop(&on, &upper);
        assert_eq!(cover.len(), 1);
        assert_eq!(cover.iter().next().unwrap().num_literals(), 0);
    }

    #[test]
    fn dont_cares_respected() {
        // ON = x0&x1, OFF = x0&!x1, rest DC (over 2 vars):
        // upper = ON | DC = !x0 | x1
        let on = TruthTable::var(2, 0) & TruthTable::var(2, 1);
        let upper = !TruthTable::var(2, 0) | TruthTable::var(2, 1);
        let cover = isop(&on, &upper);
        let g = cover.to_truth_table();
        assert!((on & !g).is_zero(), "must cover ON");
        assert!((g & !upper).is_zero(), "must avoid OFF");
    }

    #[test]
    #[should_panic(expected = "lower ⊆ upper")]
    fn rejects_inconsistent_bounds() {
        let _ = isop(&TruthTable::ones(2), &TruthTable::zero(2));
    }

    #[test]
    fn four_var_random_sample_exact() {
        // Deterministic pseudo-random sample of 4-var functions.
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        for _ in 0..200 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let t = TruthTable::from_bits(4, x & 0xFFFF);
            assert_eq!(exact(&t).to_truth_table(), t);
        }
    }
}
