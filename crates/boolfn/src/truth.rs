//! Complete truth tables of up to [`MAX_VARS`] variables.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

use crate::error::BoolFnError;

/// Maximum number of variables a [`TruthTable`] can hold.
///
/// Six variables fit in a single `u64` word; the phased-logic flow itself
/// only needs four (LUT4 cells), but the technology mapper evaluates cones of
/// up to six inputs while searching for mappings.
pub const MAX_VARS: usize = 6;

/// A set of variable indices packed into a bit mask (bit `i` ⇔ variable `i`).
///
/// Used for support sets and for selecting trigger-function subsets.
pub type VarSet = u8;

/// Bit patterns of the elementary variables `x0..x5` over 64 minterms.
const VAR_PATTERN: [u64; MAX_VARS] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// A complete single-output Boolean function of `n ≤ 6` variables.
///
/// Minterm `m` (an `n`-bit integer whose bit `i` is the value of variable
/// `i`) is in the ON-set iff bit `m` of the backing mask is set. Two tables
/// compare equal only if they have the same variable count *and* the same
/// ON-set.
///
/// # Example
///
/// ```
/// use pl_boolfn::TruthTable;
///
/// let xor2 = TruthTable::from_fn(2, |m| (m.count_ones() & 1) == 1);
/// assert_eq!(xor2.count_ones(), 2);
/// assert!(xor2.eval(0b01));
/// assert!(!xor2.eval(0b11));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TruthTable {
    bits: u64,
    num_vars: u8,
}

impl TruthTable {
    /// Creates a table from a raw minterm mask.
    ///
    /// Bits above `2^num_vars` are silently truncated.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > MAX_VARS`.
    #[must_use]
    pub fn from_bits(num_vars: usize, bits: u64) -> Self {
        assert!(
            num_vars <= MAX_VARS,
            "truth table limited to {MAX_VARS} variables, got {num_vars}"
        );
        let mask = Self::full_mask(num_vars);
        Self {
            bits: bits & mask,
            num_vars: num_vars as u8,
        }
    }

    /// Fallible variant of [`TruthTable::from_bits`].
    ///
    /// # Errors
    ///
    /// Returns [`BoolFnError::TooManyVars`] when `num_vars > MAX_VARS`.
    pub fn try_from_bits(num_vars: usize, bits: u64) -> Result<Self, BoolFnError> {
        if num_vars > MAX_VARS {
            return Err(BoolFnError::TooManyVars {
                requested: num_vars,
                max: MAX_VARS,
            });
        }
        Ok(Self::from_bits(num_vars, bits))
    }

    /// Builds a table by evaluating `f` on every minterm.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > MAX_VARS`.
    #[must_use]
    pub fn from_fn(num_vars: usize, mut f: impl FnMut(u32) -> bool) -> Self {
        assert!(num_vars <= MAX_VARS);
        let mut bits = 0u64;
        for m in 0..(1u32 << num_vars) {
            if f(m) {
                bits |= 1 << m;
            }
        }
        Self::from_bits(num_vars, bits)
    }

    /// The constant-0 function of `num_vars` variables.
    #[must_use]
    pub fn zero(num_vars: usize) -> Self {
        Self::from_bits(num_vars, 0)
    }

    /// The constant-1 function of `num_vars` variables.
    #[must_use]
    pub fn ones(num_vars: usize) -> Self {
        Self::from_bits(num_vars, u64::MAX)
    }

    /// The projection function `x_var` of `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    #[must_use]
    pub fn var(num_vars: usize, var: usize) -> Self {
        assert!(
            var < num_vars,
            "variable {var} out of range for {num_vars}-var table"
        );
        Self::from_bits(num_vars, VAR_PATTERN[var])
    }

    /// Number of table variables (not necessarily all in the support).
    #[must_use]
    pub fn num_vars(&self) -> usize {
        usize::from(self.num_vars)
    }

    /// Number of minterms, `2^num_vars`.
    #[must_use]
    pub fn num_minterms(&self) -> u32 {
        1 << self.num_vars
    }

    /// The raw minterm mask.
    #[must_use]
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Evaluates the function on minterm `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m >= 2^num_vars`.
    #[must_use]
    pub fn eval(&self, m: u32) -> bool {
        assert!(m < self.num_minterms(), "minterm {m} out of range");
        (self.bits >> m) & 1 == 1
    }

    /// Number of ON-set minterms.
    #[must_use]
    pub fn count_ones(&self) -> u32 {
        self.bits.count_ones()
    }

    /// Number of OFF-set minterms.
    #[must_use]
    pub fn count_zeros(&self) -> u32 {
        self.num_minterms() - self.count_ones()
    }

    /// Whether the function is constant 0.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.bits == 0
    }

    /// Whether the function is constant 1.
    #[must_use]
    pub fn is_ones(&self) -> bool {
        self.bits == Self::full_mask(self.num_vars())
    }

    /// Whether the function is constant (0 or 1).
    #[must_use]
    pub fn is_constant(&self) -> bool {
        self.is_zero() || self.is_ones()
    }

    /// The complement of the function.
    #[must_use]
    pub fn complement(&self) -> Self {
        Self::from_bits(self.num_vars(), !self.bits)
    }

    /// Negative cofactor: the function with `var` fixed to 0.
    ///
    /// The result keeps the same variable count; the cofactored variable
    /// simply leaves the support.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    #[must_use]
    pub fn cofactor0(&self, var: usize) -> Self {
        assert!(var < self.num_vars());
        let lo = self.bits & !VAR_PATTERN[var];
        Self::from_bits(self.num_vars(), lo | (lo << (1 << var)))
    }

    /// Positive cofactor: the function with `var` fixed to 1.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    #[must_use]
    pub fn cofactor1(&self, var: usize) -> Self {
        assert!(var < self.num_vars());
        let hi = self.bits & VAR_PATTERN[var];
        Self::from_bits(self.num_vars(), hi | (hi >> (1 << var)))
    }

    /// Whether the function actually depends on `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    #[must_use]
    pub fn depends_on(&self, var: usize) -> bool {
        self.cofactor0(var) != self.cofactor1(var)
    }

    /// The true support as a [`VarSet`] bit mask.
    #[must_use]
    pub fn support(&self) -> VarSet {
        let mut s = 0u8;
        for v in 0..self.num_vars() {
            if self.depends_on(v) {
                s |= 1 << v;
            }
        }
        s
    }

    /// Number of variables in the true support.
    #[must_use]
    pub fn support_size(&self) -> u32 {
        self.support().count_ones()
    }

    /// Restricts the function by fixing every variable in `vars` to the
    /// corresponding bit of `assignment` (bit *k* of `assignment` is the
    /// value of the *k*-th lowest set variable of `vars`).
    ///
    /// # Panics
    ///
    /// Panics if `vars` references a variable `>= num_vars`.
    #[must_use]
    pub fn restrict(&self, vars: VarSet, assignment: u32) -> Self {
        let mut t = *self;
        let mut k = 0;
        for v in 0..MAX_VARS {
            if vars & (1 << v) != 0 {
                assert!(v < self.num_vars(), "restrict variable {v} out of range");
                t = if (assignment >> k) & 1 == 1 {
                    t.cofactor1(v)
                } else {
                    t.cofactor0(v)
                };
                k += 1;
            }
        }
        t
    }

    /// If fixing the variables of `vars` to `assignment` forces the
    /// function's output, returns that forced value.
    ///
    /// This is the primitive behind trigger-function extraction (paper §3):
    /// when the answer is `Some(v)`, the remaining inputs are don't-cares and
    /// an early-evaluation master may fire with output `v`.
    ///
    /// # Panics
    ///
    /// Panics if `vars` references a variable `>= num_vars`.
    #[must_use]
    pub fn forced_value(&self, vars: VarSet, assignment: u32) -> Option<bool> {
        let r = self.restrict(vars, assignment);
        if r.is_zero() {
            Some(false)
        } else if r.is_ones() {
            Some(true)
        } else {
            None
        }
    }

    /// Existentially quantifies `var` out of the function.
    #[must_use]
    pub fn exists(&self, var: usize) -> Self {
        Self::from_bits(
            self.num_vars(),
            self.cofactor0(var).bits | self.cofactor1(var).bits,
        )
    }

    /// Extends the table to `new_num_vars` variables (the added variables
    /// are outside the support).
    ///
    /// # Panics
    ///
    /// Panics if `new_num_vars` is smaller than the current variable count
    /// or larger than [`MAX_VARS`].
    #[must_use]
    pub fn extend_to(&self, new_num_vars: usize) -> Self {
        assert!(new_num_vars >= self.num_vars() && new_num_vars <= MAX_VARS);
        let mut bits = self.bits;
        for v in self.num_vars()..new_num_vars {
            bits |= bits << (1u32 << v);
        }
        Self::from_bits(new_num_vars, bits)
    }

    /// Projects the function onto the variables of `vars`, compacting them
    /// into a table over `|vars|` variables (preserving relative order).
    ///
    /// The function must not depend on any variable outside `vars`.
    ///
    /// # Panics
    ///
    /// Panics if the function depends on a variable outside `vars`.
    #[must_use]
    pub fn project(&self, vars: VarSet) -> Self {
        let kept: Vec<usize> = (0..self.num_vars())
            .filter(|v| vars & (1 << v) != 0)
            .collect();
        for v in 0..self.num_vars() {
            if vars & (1 << v) == 0 {
                assert!(
                    !self.depends_on(v),
                    "cannot project out variable {v}: function depends on it"
                );
            }
        }
        TruthTable::from_fn(kept.len(), |m| {
            let mut full = 0u32;
            for (k, &v) in kept.iter().enumerate() {
                if (m >> k) & 1 == 1 {
                    full |= 1 << v;
                }
            }
            self.eval(full)
        })
    }

    /// Composes variables: builds the function of `num_vars` variables that
    /// results from substituting `inputs[i]` for variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_vars()` or the input tables do
    /// not all have `num_vars` variables.
    #[must_use]
    pub fn compose(&self, num_vars: usize, inputs: &[TruthTable]) -> Self {
        assert_eq!(inputs.len(), self.num_vars(), "compose arity mismatch");
        for t in inputs {
            assert_eq!(
                t.num_vars(),
                num_vars,
                "compose input variable-count mismatch"
            );
        }
        TruthTable::from_fn(num_vars, |m| {
            let mut idx = 0u32;
            for (i, t) in inputs.iter().enumerate() {
                if t.eval(m) {
                    idx |= 1 << i;
                }
            }
            self.eval(idx)
        })
    }

    /// Permutes variables: variable `i` of the result reads variable
    /// `perm[i]` of `self`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..num_vars`.
    #[must_use]
    pub fn permute(&self, perm: &[usize]) -> Self {
        assert_eq!(perm.len(), self.num_vars(), "permutation arity mismatch");
        let mut seen = [false; MAX_VARS];
        for &p in perm {
            assert!(p < self.num_vars() && !seen[p], "invalid permutation");
            seen[p] = true;
        }
        TruthTable::from_fn(self.num_vars(), |m| {
            let mut src = 0u32;
            for (i, &p) in perm.iter().enumerate() {
                if (m >> i) & 1 == 1 {
                    src |= 1 << p;
                }
            }
            self.eval(src)
        })
    }

    /// Iterator over the ON-set minterms in ascending order.
    pub fn on_minterms(&self) -> impl Iterator<Item = u32> + '_ {
        let n = self.num_minterms();
        (0..n).filter(move |&m| self.eval(m))
    }

    /// Iterator over the OFF-set minterms in ascending order.
    pub fn off_minterms(&self) -> impl Iterator<Item = u32> + '_ {
        let n = self.num_minterms();
        (0..n).filter(move |&m| !self.eval(m))
    }

    fn full_mask(num_vars: usize) -> u64 {
        if num_vars == MAX_VARS {
            u64::MAX
        } else {
            (1u64 << (1 << num_vars)) - 1
        }
    }
}

impl BitAnd for TruthTable {
    type Output = TruthTable;
    fn bitand(self, rhs: Self) -> Self {
        assert_eq!(self.num_vars, rhs.num_vars, "truth-table arity mismatch");
        Self::from_bits(self.num_vars(), self.bits & rhs.bits)
    }
}

impl BitOr for TruthTable {
    type Output = TruthTable;
    fn bitor(self, rhs: Self) -> Self {
        assert_eq!(self.num_vars, rhs.num_vars, "truth-table arity mismatch");
        Self::from_bits(self.num_vars(), self.bits | rhs.bits)
    }
}

impl BitXor for TruthTable {
    type Output = TruthTable;
    fn bitxor(self, rhs: Self) -> Self {
        assert_eq!(self.num_vars, rhs.num_vars, "truth-table arity mismatch");
        Self::from_bits(self.num_vars(), self.bits ^ rhs.bits)
    }
}

impl Not for TruthTable {
    type Output = TruthTable;
    fn not(self) -> Self {
        self.complement()
    }
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable({}v, ", self.num_vars)?;
        for m in (0..self.num_minterms()).rev() {
            write!(f, "{}", u8::from(self.eval(m)))?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let digits = (self.num_minterms() as usize).div_ceil(4);
        write!(f, "{:0width$x}", self.bits, width = digits)
    }
}

impl fmt::LowerHex for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.bits, f)
    }
}

impl fmt::Binary for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.bits, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_patterns_match_eval() {
        for n in 1..=MAX_VARS {
            for v in 0..n {
                let t = TruthTable::var(n, v);
                for m in 0..(1u32 << n) {
                    assert_eq!(t.eval(m), (m >> v) & 1 == 1, "n={n} v={v} m={m}");
                }
            }
        }
    }

    #[test]
    fn constants() {
        for n in 0..=MAX_VARS {
            assert!(TruthTable::zero(n).is_zero());
            assert!(TruthTable::ones(n).is_ones());
            assert!(TruthTable::zero(n).is_constant());
            assert_eq!(TruthTable::ones(n).count_ones(), 1 << n);
        }
    }

    #[test]
    fn from_bits_truncates_high_bits() {
        let t = TruthTable::from_bits(2, 0xFFFF_FFFF);
        assert!(t.is_ones());
        assert_eq!(t.bits(), 0xF);
    }

    #[test]
    fn try_from_bits_rejects_oversize() {
        assert!(TruthTable::try_from_bits(7, 0).is_err());
        assert!(TruthTable::try_from_bits(6, 0).is_ok());
    }

    #[test]
    fn cofactors_agree_with_restriction() {
        // xor3 and majority3 exercise both symmetric and asymmetric cases.
        let xor3 = TruthTable::from_fn(3, |m| m.count_ones() % 2 == 1);
        let maj3 = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
        for t in [xor3, maj3] {
            for v in 0..3 {
                let c0 = t.cofactor0(v);
                let c1 = t.cofactor1(v);
                for m in 0..8u32 {
                    let m0 = m & !(1 << v);
                    let m1 = m | (1 << v);
                    assert_eq!(c0.eval(m), t.eval(m0));
                    assert_eq!(c1.eval(m), t.eval(m1));
                }
            }
        }
    }

    #[test]
    fn support_detects_vacuous_vars() {
        // f = x0 & x2 over 4 vars: support = {0, 2}
        let f = TruthTable::var(4, 0) & TruthTable::var(4, 2);
        assert_eq!(f.support(), 0b0101);
        assert_eq!(f.support_size(), 2);
        assert!(f.depends_on(0));
        assert!(!f.depends_on(1));
    }

    #[test]
    fn forced_value_full_adder_carry() {
        // Paper Table 1: carry = c(a+b)+ab; on {a,b}: 00 -> forced 0, 11 -> forced 1.
        let carry = TruthTable::from_fn(3, |m| {
            let (a, b, c) = (m & 1 != 0, m & 2 != 0, m & 4 != 0);
            (c && (a || b)) || (a && b)
        });
        assert_eq!(carry.forced_value(0b011, 0b00), Some(false));
        assert_eq!(carry.forced_value(0b011, 0b11), Some(true));
        assert_eq!(carry.forced_value(0b011, 0b01), None);
        assert_eq!(carry.forced_value(0b011, 0b10), None);
    }

    #[test]
    fn restrict_multiple_vars() {
        let maj3 = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
        // fix a=1 (var0), b=1 (var1): result constant 1
        assert!(maj3.restrict(0b011, 0b11).is_ones());
        // fix a=0, b=0: constant 0
        assert!(maj3.restrict(0b011, 0b00).is_zero());
        // fix a=1, b=0: equals c
        assert_eq!(maj3.restrict(0b011, 0b01), TruthTable::var(3, 2));
    }

    #[test]
    fn extend_and_project_roundtrip() {
        let xor2 = TruthTable::from_fn(2, |m| m.count_ones() % 2 == 1);
        let ext = xor2.extend_to(4);
        assert_eq!(ext.support(), 0b0011);
        assert_eq!(ext.project(0b0011), xor2);
    }

    #[test]
    fn project_compacts_sparse_vars() {
        // f over 4 vars depending on {1, 3}
        let f = TruthTable::var(4, 1) ^ TruthTable::var(4, 3);
        let p = f.project(0b1010);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p, TruthTable::from_fn(2, |m| m.count_ones() % 2 == 1));
    }

    #[test]
    #[should_panic(expected = "cannot project out")]
    fn project_panics_on_lost_support() {
        let f = TruthTable::var(3, 0);
        let _ = f.project(0b110);
    }

    #[test]
    fn compose_builds_cones() {
        // g(x,y) = x & y, substitute x = a|b, y = a^b over 2 vars
        let and2 = TruthTable::from_bits(2, 0b1000);
        let or2 = TruthTable::from_bits(2, 0b1110);
        let xor2 = TruthTable::from_bits(2, 0b0110);
        let cone = and2.compose(2, &[or2, xor2]);
        // (a|b) & (a^b) == a^b for 2 vars
        assert_eq!(cone, xor2);
    }

    #[test]
    fn permute_swaps_vars() {
        // f = x0 & !x1; swapping gives x1 & !x0
        let f = TruthTable::var(2, 0) & !TruthTable::var(2, 1);
        let g = f.permute(&[1, 0]);
        assert_eq!(g, TruthTable::var(2, 1) & !TruthTable::var(2, 0));
    }

    #[test]
    fn exists_quantification() {
        let f = TruthTable::var(2, 0) & TruthTable::var(2, 1);
        // ∃x0. x0&x1 == x1
        assert_eq!(f.exists(0), TruthTable::var(2, 1));
    }

    #[test]
    fn minterm_iterators_partition() {
        let maj3 = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
        let on: Vec<_> = maj3.on_minterms().collect();
        let off: Vec<_> = maj3.off_minterms().collect();
        assert_eq!(on, vec![3, 5, 6, 7]);
        assert_eq!(off, vec![0, 1, 2, 4]);
        assert_eq!(on.len() + off.len(), 8);
    }

    #[test]
    fn display_formats() {
        let t = TruthTable::from_bits(4, 0x8888);
        assert_eq!(t.to_string(), "8888");
        assert_eq!(format!("{t:?}"), "TruthTable(4v, 1000100010001000)");
    }

    #[test]
    fn operators_check_arity() {
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(3, 1);
        assert_eq!((a & b).count_ones(), 2);
        assert_eq!((a | b).count_ones(), 6);
        assert_eq!((a ^ b).count_ones(), 4);
        assert_eq!((!a).count_ones(), 4);
    }
}
