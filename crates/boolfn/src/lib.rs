//! Boolean function kernel for the phased-logic early-evaluation flow.
//!
//! This crate provides the function-manipulation substrate used by the
//! reproduction of *"Generalized Early Evaluation in Self-Timed Circuits"*
//! (Thornton, Fazel, Reese, Traver — DATE 2002):
//!
//! * [`TruthTable`] — complete single-output Boolean functions of up to
//!   [`MAX_VARS`] variables, stored as a bit mask. The paper's LUT4 cells are
//!   the 4-variable case.
//! * [`Cube`] / [`CubeList`] — positional-cube-notation product terms and
//!   sum-of-products covers, the representation the paper's Table 2 uses to
//!   derive candidate trigger functions.
//! * [`isop`] — irredundant sum-of-products extraction (Minato–Morreale),
//!   used to obtain compact cube lists from truth tables.
//! * [`support_subsets`] — enumeration of the candidate trigger support sets
//!   (all proper subsets of ≤ 3 of a LUT4's inputs — the "14 possible support
//!   sets" of the paper, §3).
//!
//! # Example
//!
//! Derive the paper's Table 1 trigger situation for a full-adder carry-out:
//!
//! ```
//! use pl_boolfn::TruthTable;
//!
//! // carry-out = c(a + b) + ab with variable order (a=var0, b=var1, c=var2)
//! let carry = TruthTable::from_fn(3, |m| {
//!     let (a, b, c) = (m & 1 != 0, m & 2 != 0, m & 4 != 0);
//!     (c && (a || b)) || (a && b)
//! });
//! // On the subset {a, b} the function is forced exactly when a == b:
//! let forced: Vec<_> = (0..4)
//!     .filter(|&ab| carry.forced_value(0b011, ab).is_some())
//!     .collect();
//! assert_eq!(forced, vec![0b00, 0b11]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cube;
mod error;
mod isop;
mod support;
mod truth;

pub use cube::{Cube, CubeList, Polarity, MAX_CUBE_VARS};
pub use error::BoolFnError;
pub use isop::isop;
pub use support::{support_subsets, SupportSubsets};
pub use truth::{TruthTable, VarSet, MAX_VARS};
