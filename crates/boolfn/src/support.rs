//! Enumeration of candidate trigger support subsets.
//!
//! The paper (§3) searches "over all 14 possible support sets of 3 or fewer
//! variables" of a LUT4 master function. [`support_subsets`] generalizes
//! this: it yields every non-empty subset of the given variable set with at
//! most `max_size` members, in order of increasing size (then ascending mask).

use crate::truth::VarSet;

/// Iterator over non-empty subsets of a variable set, smallest first.
///
/// Produced by [`support_subsets`].
#[derive(Debug, Clone)]
pub struct SupportSubsets {
    vars: Vec<u8>,
    max_size: u32,
    /// Current selector over `vars` (bit i selects vars[i]).
    selector: u32,
    limit: u32,
}

impl Iterator for SupportSubsets {
    type Item = VarSet;

    fn next(&mut self) -> Option<VarSet> {
        loop {
            self.selector += 1;
            if self.selector >= self.limit {
                return None;
            }
            let k = self.selector.count_ones();
            if k == 0 || k > self.max_size {
                continue;
            }
            let mut set: VarSet = 0;
            for (i, &v) in self.vars.iter().enumerate() {
                if self.selector & (1 << i) != 0 {
                    set |= 1 << v;
                }
            }
            return Some(set);
        }
    }
}

/// Enumerates the non-empty subsets of `vars` with at most `max_size`
/// variables (ascending popcount-agnostic mask order).
///
/// For a full LUT4 (`vars = 0b1111`, `max_size = 3`) this yields exactly the
/// paper's 14 candidate support sets: 4 singletons + 6 pairs + 4 triples.
///
/// # Example
///
/// ```
/// use pl_boolfn::support_subsets;
///
/// let all: Vec<_> = support_subsets(0b1111, 3).collect();
/// assert_eq!(all.len(), 14);
/// assert!(all.contains(&0b0011)); // the {a, b} subset of Table 1
/// assert!(!all.contains(&0b1111)); // the full set is not a proper subset
/// ```
#[must_use]
pub fn support_subsets(vars: VarSet, max_size: u32) -> SupportSubsets {
    let vs: Vec<u8> = (0..8).filter(|&v| vars & (1 << v) != 0).collect();
    let limit = 1u32 << vs.len();
    SupportSubsets {
        vars: vs,
        max_size,
        selector: 0,
        limit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lut4_has_fourteen_subsets() {
        let subs: Vec<_> = support_subsets(0b1111, 3).collect();
        assert_eq!(subs.len(), 14);
        // 4 singletons, 6 pairs, 4 triples
        assert_eq!(subs.iter().filter(|s| s.count_ones() == 1).count(), 4);
        assert_eq!(subs.iter().filter(|s| s.count_ones() == 2).count(), 6);
        assert_eq!(subs.iter().filter(|s| s.count_ones() == 3).count(), 4);
        // no duplicates
        let mut dedup = subs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), subs.len());
    }

    #[test]
    fn subsets_are_within_parent() {
        for s in support_subsets(0b1011, 2) {
            assert_eq!(s & !0b1011, 0, "subset escapes parent set");
            assert!(s.count_ones() <= 2);
            assert_ne!(s, 0);
        }
    }

    #[test]
    fn three_var_support_gives_six() {
        // paper's example: 3-input master -> subsets of {a},{b},{c},{a,b},{a,c},{b,c}
        let subs: Vec<_> = support_subsets(0b0111, 2).collect();
        assert_eq!(subs.len(), 6);
    }

    #[test]
    fn empty_parent_yields_nothing() {
        assert_eq!(support_subsets(0, 3).count(), 0);
    }

    #[test]
    fn max_size_zero_yields_nothing() {
        assert_eq!(support_subsets(0b1111, 0).count(), 0);
    }

    #[test]
    fn singleton_parent() {
        let subs: Vec<_> = support_subsets(0b0100, 3).collect();
        assert_eq!(subs, vec![0b0100]);
    }
}
