//! Positional-cube-notation product terms and sum-of-products covers.
//!
//! The paper derives candidate trigger functions "by processing the cube list
//! representation of the `f_ON` and `f_OFF` functions for the master
//! function" (§3, Table 2). [`Cube`] and [`CubeList`] implement that
//! representation; `pl-core` uses them for the cube-based trigger derivation
//! that is cross-checked against the exact truth-table method.

use std::fmt;

use crate::error::BoolFnError;
use crate::truth::{TruthTable, VarSet, MAX_VARS};

/// Maximum cube width in variables.
pub const MAX_CUBE_VARS: usize = 16;

/// Polarity of one variable inside a [`Cube`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// The variable appears as a positive literal (`x`).
    Positive,
    /// The variable appears as a negative literal (`x'`).
    Negative,
    /// The variable does not appear (`-`).
    DontCare,
}

/// A product term over `width` variables in positional cube notation.
///
/// Internally two bit masks record which variables must be 1 (`pos`) and
/// which must be 0 (`neg`). A variable in neither mask is a don't-care.
///
/// # Example
///
/// ```
/// use pl_boolfn::{Cube, Polarity};
///
/// // the cube a'b' over 3 variables, written "00-" in the paper
/// let c = Cube::universal(3)
///     .with_literal(0, Polarity::Negative)
///     .with_literal(1, Polarity::Negative);
/// assert!(c.covers(0b000));
/// assert!(c.covers(0b100)); // c is don't-care
/// assert!(!c.covers(0b001));
/// assert_eq!(c.covered_count(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cube {
    pos: u16,
    neg: u16,
    width: u8,
}

impl Cube {
    /// The universal cube (all don't-cares) of `width` variables.
    ///
    /// # Panics
    ///
    /// Panics if `width > MAX_CUBE_VARS`.
    #[must_use]
    pub fn universal(width: usize) -> Self {
        assert!(
            width <= MAX_CUBE_VARS,
            "cube width limited to {MAX_CUBE_VARS}"
        );
        Self {
            pos: 0,
            neg: 0,
            width: width as u8,
        }
    }

    /// The cube matching the single minterm `m`.
    ///
    /// # Panics
    ///
    /// Panics if `width > MAX_CUBE_VARS` or `m >= 2^width`.
    #[must_use]
    pub fn minterm(width: usize, m: u32) -> Self {
        assert!(width <= MAX_CUBE_VARS);
        assert!(m < (1u32 << width), "minterm out of range");
        let full = ((1u32 << width) - 1) as u16;
        Self {
            pos: m as u16,
            neg: full & !(m as u16),
            width: width as u8,
        }
    }

    /// Builds a cube from a paper-style string such as `"1-0"`.
    ///
    /// The **leftmost** character is variable 0, matching how the paper
    /// writes `abc` cubes like `00-`.
    ///
    /// # Errors
    ///
    /// Returns an error if the string is longer than [`MAX_CUBE_VARS`] or
    /// contains characters other than `0`, `1`, `-`.
    pub fn parse(s: &str) -> Result<Self, BoolFnError> {
        if s.len() > MAX_CUBE_VARS {
            return Err(BoolFnError::LiteralOutOfRange {
                var: s.len(),
                width: MAX_CUBE_VARS,
            });
        }
        let mut c = Cube::universal(s.len());
        for (i, ch) in s.chars().enumerate() {
            c = match ch {
                '1' => c.with_literal(i, Polarity::Positive),
                '0' => c.with_literal(i, Polarity::Negative),
                '-' => c,
                _ => {
                    return Err(BoolFnError::LiteralOutOfRange {
                        var: i,
                        width: s.len(),
                    })
                }
            };
        }
        Ok(c)
    }

    /// Cube width in variables.
    #[must_use]
    pub fn width(&self) -> usize {
        usize::from(self.width)
    }

    /// Returns a copy with the literal of `var` set to `polarity`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= width`.
    #[must_use]
    pub fn with_literal(mut self, var: usize, polarity: Polarity) -> Self {
        assert!(var < self.width(), "literal {var} out of range");
        let bit = 1u16 << var;
        self.pos &= !bit;
        self.neg &= !bit;
        match polarity {
            Polarity::Positive => self.pos |= bit,
            Polarity::Negative => self.neg |= bit,
            Polarity::DontCare => {}
        }
        self
    }

    /// The polarity of `var` in this cube.
    ///
    /// # Panics
    ///
    /// Panics if `var >= width`.
    #[must_use]
    pub fn literal(&self, var: usize) -> Polarity {
        assert!(var < self.width());
        let bit = 1u16 << var;
        if self.pos & bit != 0 {
            Polarity::Positive
        } else if self.neg & bit != 0 {
            Polarity::Negative
        } else {
            Polarity::DontCare
        }
    }

    /// Number of literals (non-don't-care positions).
    #[must_use]
    pub fn num_literals(&self) -> u32 {
        (self.pos | self.neg).count_ones()
    }

    /// The set of variables bound by this cube, as a bit mask.
    #[must_use]
    pub fn bound_vars(&self) -> u16 {
        self.pos | self.neg
    }

    /// Whether every bound variable of the cube lies in `vars`.
    ///
    /// This is the test the paper's Table 2 applies: a master cube whose
    /// support is contained in the candidate trigger subset contributes to
    /// the trigger function.
    #[must_use]
    pub fn support_within(&self, vars: VarSet) -> bool {
        self.bound_vars() & !u16::from(vars) == 0
    }

    /// Whether the cube covers minterm `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m >= 2^width`.
    #[must_use]
    pub fn covers(&self, m: u32) -> bool {
        assert!(m < (1u32 << self.width()), "minterm out of range");
        let m = m as u16;
        (m & self.pos) == self.pos && (m & self.neg) == 0
    }

    /// Number of minterms the cube covers: `2^(width − literals)`.
    #[must_use]
    pub fn covered_count(&self) -> u64 {
        1u64 << (self.width() as u32 - self.num_literals())
    }

    /// Whether `self` covers every minterm of `other`.
    #[must_use]
    pub fn contains(&self, other: &Cube) -> bool {
        self.width == other.width
            && (self.pos & other.pos) == self.pos
            && (self.neg & other.neg) == self.neg
    }

    /// Intersection of two cubes, or `None` if they conflict.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    #[must_use]
    pub fn intersect(&self, other: &Cube) -> Option<Cube> {
        assert_eq!(self.width, other.width, "cube width mismatch");
        let pos = self.pos | other.pos;
        let neg = self.neg | other.neg;
        if pos & neg != 0 {
            None
        } else {
            Some(Cube {
                pos,
                neg,
                width: self.width,
            })
        }
    }

    /// Converts the cube into a truth table over `width` variables.
    ///
    /// # Panics
    ///
    /// Panics if `width > MAX_VARS` (truth tables are narrower than cubes).
    #[must_use]
    pub fn to_truth_table(&self) -> TruthTable {
        assert!(self.width() <= MAX_VARS, "cube too wide for a truth table");
        TruthTable::from_fn(self.width(), |m| self.covers(m))
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cube({self})")
    }
}

impl fmt::Display for Cube {
    /// Formats in the paper's style: variable 0 leftmost, `0`/`1`/`-`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for v in 0..self.width() {
            let ch = match self.literal(v) {
                Polarity::Positive => '1',
                Polarity::Negative => '0',
                Polarity::DontCare => '-',
            };
            write!(f, "{ch}")?;
        }
        Ok(())
    }
}

/// A sum-of-products cover: a list of same-width [`Cube`]s.
///
/// # Example
///
/// ```
/// use pl_boolfn::CubeList;
///
/// // the paper's trigger ON-set f_trig = {00-, 11-}  (= a'b' + ab)
/// let trig = CubeList::parse(&["00-", "11-"]).unwrap();
/// assert_eq!(trig.count_covered(), 4);
/// assert!(trig.covers(0b000));
/// assert!(!trig.covers(0b001)); // a=1,b=0,c=0 (var0 leftmost)
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct CubeList {
    cubes: Vec<Cube>,
    width: u8,
}

impl CubeList {
    /// Creates an empty cover of `width` variables.
    ///
    /// # Panics
    ///
    /// Panics if `width > MAX_CUBE_VARS`.
    #[must_use]
    pub fn new(width: usize) -> Self {
        assert!(width <= MAX_CUBE_VARS);
        Self {
            cubes: Vec::new(),
            width: width as u8,
        }
    }

    /// Parses a list of paper-style cube strings (all the same width).
    ///
    /// # Errors
    ///
    /// Returns an error for malformed cubes; panics if widths are mixed.
    pub fn parse(strings: &[&str]) -> Result<Self, BoolFnError> {
        let mut cubes = Vec::with_capacity(strings.len());
        for s in strings {
            cubes.push(Cube::parse(s)?);
        }
        let width = cubes.first().map_or(0, Cube::width);
        let mut list = CubeList::new(width);
        for c in cubes {
            list.push(c);
        }
        Ok(list)
    }

    /// Builds the minterm-per-cube cover of a truth table's ON-set.
    #[must_use]
    pub fn from_on_set(t: &TruthTable) -> Self {
        let mut list = CubeList::new(t.num_vars());
        for m in t.on_minterms() {
            list.push(Cube::minterm(t.num_vars(), m));
        }
        list
    }

    /// Cover width in variables.
    #[must_use]
    pub fn width(&self) -> usize {
        usize::from(self.width)
    }

    /// Number of cubes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// Whether the cover has no cubes (the constant-0 function).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Appends a cube.
    ///
    /// # Panics
    ///
    /// Panics if the cube width differs from the cover width.
    pub fn push(&mut self, cube: Cube) {
        assert_eq!(cube.width(), self.width(), "cube width mismatch");
        self.cubes.push(cube);
    }

    /// Iterates over the cubes.
    pub fn iter(&self) -> std::slice::Iter<'_, Cube> {
        self.cubes.iter()
    }

    /// Whether any cube covers minterm `m`.
    #[must_use]
    pub fn covers(&self, m: u32) -> bool {
        self.cubes.iter().any(|c| c.covers(m))
    }

    /// Exact number of minterms covered by the union of all cubes.
    ///
    /// Overlapping cubes are counted once (inclusion–exclusion via bitmap for
    /// covers that fit a truth table, otherwise by minterm enumeration).
    #[must_use]
    pub fn count_covered(&self) -> u64 {
        if self.width() <= MAX_VARS {
            u64::from(self.to_truth_table().count_ones())
        } else {
            (0..(1u32 << self.width()))
                .filter(|&m| self.covers(m))
                .count() as u64
        }
    }

    /// Converts the cover to a truth table.
    ///
    /// # Panics
    ///
    /// Panics if the width exceeds [`MAX_VARS`].
    #[must_use]
    pub fn to_truth_table(&self) -> TruthTable {
        assert!(self.width() <= MAX_VARS, "cover too wide for a truth table");
        let mut t = TruthTable::zero(self.width());
        for c in &self.cubes {
            t = t | c.to_truth_table();
        }
        t
    }

    /// Removes cubes contained in another cube of the cover (single-cube
    /// containment / absorption).
    pub fn absorb(&mut self) {
        let mut kept: Vec<Cube> = Vec::with_capacity(self.cubes.len());
        // Wider cubes (fewer literals) first so they absorb narrower ones.
        let mut sorted = self.cubes.clone();
        sorted.sort_by_key(Cube::num_literals);
        for c in sorted {
            if !kept.iter().any(|k| k.contains(&c)) {
                kept.push(c);
            }
        }
        self.cubes = kept;
    }

    /// The sub-cover of cubes whose bound variables all lie in `vars`.
    ///
    /// This is the filtering step of the paper's Table 2.
    #[must_use]
    pub fn restricted_to_support(&self, vars: VarSet) -> CubeList {
        let mut list = CubeList::new(self.width());
        for c in &self.cubes {
            if c.support_within(vars) {
                list.push(*c);
            }
        }
        list
    }
}

impl fmt::Debug for CubeList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CubeList[")?;
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for CubeList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return write!(f, "∅");
        }
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl IntoIterator for CubeList {
    type Item = Cube;
    type IntoIter = std::vec::IntoIter<Cube>;
    fn into_iter(self) -> Self::IntoIter {
        self.cubes.into_iter()
    }
}

impl<'a> IntoIterator for &'a CubeList {
    type Item = &'a Cube;
    type IntoIter = std::slice::Iter<'a, Cube>;
    fn into_iter(self) -> Self::IntoIter {
        self.cubes.iter()
    }
}

impl Extend<Cube> for CubeList {
    fn extend<T: IntoIterator<Item = Cube>>(&mut self, iter: T) {
        for c in iter {
            self.push(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["00-", "11-", "1-1", "-11", "010", "100", "---"] {
            assert_eq!(Cube::parse(s).unwrap().to_string(), s);
        }
        assert!(Cube::parse("0x1").is_err());
    }

    #[test]
    fn minterm_cube_covers_exactly_one() {
        for m in 0..8 {
            let c = Cube::minterm(3, m);
            assert_eq!(c.covered_count(), 1);
            for x in 0..8 {
                assert_eq!(c.covers(x), x == m);
            }
        }
    }

    #[test]
    fn universal_covers_everything() {
        let c = Cube::universal(4);
        assert_eq!(c.covered_count(), 16);
        assert_eq!(c.num_literals(), 0);
        assert!((0..16).all(|m| c.covers(m)));
    }

    #[test]
    fn intersect_detects_conflicts() {
        let a = Cube::parse("1--").unwrap();
        let b = Cube::parse("0--").unwrap();
        assert_eq!(a.intersect(&b), None);
        let c = Cube::parse("-1-").unwrap();
        assert_eq!(a.intersect(&c).unwrap().to_string(), "11-");
    }

    #[test]
    fn containment() {
        let wide = Cube::parse("1--").unwrap();
        let narrow = Cube::parse("101").unwrap();
        assert!(wide.contains(&narrow));
        assert!(!narrow.contains(&wide));
        assert!(wide.contains(&wide));
    }

    #[test]
    fn support_within_matches_paper_table2() {
        // Cubes from paper Table 2 (master = carry-out), subset {a,b}:
        let on = CubeList::parse(&["11-", "1-1", "-11"]).unwrap();
        let off = CubeList::parse(&["00-", "010", "100"]).unwrap();
        let s_ab: VarSet = 0b011;
        let on_in: Vec<String> = on
            .restricted_to_support(s_ab)
            .iter()
            .map(Cube::to_string)
            .collect();
        let off_in: Vec<String> = off
            .restricted_to_support(s_ab)
            .iter()
            .map(Cube::to_string)
            .collect();
        assert_eq!(on_in, vec!["11-"]);
        assert_eq!(off_in, vec!["00-"]);
        // Each contributes 2 covered minterms -> total coverage 4 of 8 = 50%.
        let total = on.restricted_to_support(s_ab).count_covered()
            + off.restricted_to_support(s_ab).count_covered();
        assert_eq!(total, 4);
    }

    #[test]
    fn count_covered_handles_overlap() {
        let mut list = CubeList::new(3);
        list.push(Cube::parse("1--").unwrap());
        list.push(Cube::parse("-1-").unwrap());
        // |x0| + |x1| - |x0&x1| = 4 + 4 - 2
        assert_eq!(list.count_covered(), 6);
    }

    #[test]
    fn absorb_removes_contained_cubes() {
        let mut list = CubeList::parse(&["1--", "101", "-1-", "011"]).unwrap();
        list.absorb();
        let s: Vec<String> = list.iter().map(Cube::to_string).collect();
        assert_eq!(s, vec!["1--", "-1-"]);
    }

    #[test]
    fn cube_list_truth_table_matches_covers() {
        let list = CubeList::parse(&["11-", "1-1", "-11"]).unwrap();
        let t = list.to_truth_table();
        for m in 0..8 {
            assert_eq!(t.eval(m), list.covers(m));
        }
        // carry-out of a full adder: 4 ON minterms
        assert_eq!(t.count_ones(), 4);
    }

    #[test]
    fn from_on_set_roundtrip() {
        let maj3 = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
        let list = CubeList::from_on_set(&maj3);
        assert_eq!(list.len(), 4);
        assert_eq!(list.to_truth_table(), maj3);
    }

    #[test]
    fn display_of_cover() {
        let list = CubeList::parse(&["00-", "11-"]).unwrap();
        assert_eq!(list.to_string(), "00- + 11-");
        assert_eq!(CubeList::new(3).to_string(), "∅");
    }

    #[test]
    fn extend_collects_cubes() {
        let mut list = CubeList::new(3);
        list.extend([Cube::parse("1--").unwrap(), Cube::parse("0--").unwrap()]);
        assert_eq!(list.len(), 2);
        assert_eq!(list.count_covered(), 8);
    }
}
