//! Error type for fallible constructors.

use std::error::Error;
use std::fmt;

/// Errors produced by fallible `pl-boolfn` constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BoolFnError {
    /// A truth table of more than [`crate::MAX_VARS`] variables was requested.
    TooManyVars {
        /// The requested variable count.
        requested: usize,
        /// The supported maximum.
        max: usize,
    },
    /// A cube literal index was out of range for the cube width.
    LiteralOutOfRange {
        /// The offending variable index.
        var: usize,
        /// The cube width.
        width: usize,
    },
}

impl fmt::Display for BoolFnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoolFnError::TooManyVars { requested, max } => {
                write!(
                    f,
                    "requested {requested} variables but at most {max} are supported"
                )
            }
            BoolFnError::LiteralOutOfRange { var, width } => {
                write!(f, "literal index {var} out of range for cube width {width}")
            }
        }
    }
}

impl Error for BoolFnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let e = BoolFnError::TooManyVars {
            requested: 9,
            max: 6,
        };
        let s = e.to_string();
        assert!(s.starts_with("requested"));
        let e = BoolFnError::LiteralOutOfRange { var: 20, width: 16 };
        assert!(e.to_string().contains("out of range"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<BoolFnError>();
    }
}
