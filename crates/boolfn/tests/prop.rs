//! Property-based tests for the Boolean function kernel.

use pl_boolfn::{isop, support_subsets, Cube, CubeList, TruthTable};
use proptest::prelude::*;

fn arb_table(num_vars: usize) -> impl Strategy<Value = TruthTable> {
    any::<u64>().prop_map(move |bits| TruthTable::from_bits(num_vars, bits))
}

proptest! {
    /// Shannon expansion: f = x'·f0 + x·f1 for every variable.
    #[test]
    fn shannon_expansion(t in arb_table(4), var in 0usize..4) {
        let x = TruthTable::var(4, var);
        let rebuilt = (!x & t.cofactor0(var)) | (x & t.cofactor1(var));
        prop_assert_eq!(rebuilt, t);
    }

    /// Cofactoring eliminates the variable from the support.
    #[test]
    fn cofactor_removes_support(t in arb_table(4), var in 0usize..4) {
        prop_assert!(!t.cofactor0(var).depends_on(var));
        prop_assert!(!t.cofactor1(var).depends_on(var));
    }

    /// De Morgan duality on tables.
    #[test]
    fn de_morgan(a in arb_table(4), b in arb_table(4)) {
        prop_assert_eq!(!(a & b), !a | !b);
        prop_assert_eq!(!(a | b), !a & !b);
    }

    /// ISOP of a completely specified function realizes it exactly.
    #[test]
    fn isop_exact(t in arb_table(4)) {
        let cover = isop(&t, &t);
        prop_assert_eq!(cover.to_truth_table(), t);
    }

    /// ISOP with don't-cares stays within bounds.
    #[test]
    fn isop_respects_bounds(on in arb_table(4), dc in arb_table(4)) {
        let lower = on & !dc;
        let upper = lower | dc;
        let g = isop(&lower, &upper).to_truth_table();
        prop_assert!((lower & !g).is_zero(), "ON-set must be covered");
        prop_assert!((g & !upper).is_zero(), "OFF-set must be avoided");
    }

    /// ISOP cube count never exceeds the number of ON minterms.
    #[test]
    fn isop_no_worse_than_minterm_cover(t in arb_table(4)) {
        let cover = isop(&t, &t);
        prop_assert!(cover.len() as u32 <= t.count_ones());
    }

    /// forced_value is sound: restricting really yields that constant.
    #[test]
    fn forced_value_sound(t in arb_table(4), vars in 1u8..15, asg in 0u32..16) {
        let k = vars.count_ones();
        let asg = asg & ((1 << k) - 1);
        if let Some(v) = t.forced_value(vars, asg) {
            let r = t.restrict(vars, asg);
            prop_assert_eq!(r, if v { TruthTable::ones(4) } else { TruthTable::zero(4) });
        }
    }

    /// Cube round-trip through string form.
    #[test]
    fn cube_parse_display_roundtrip(pos in any::<u16>(), neg in any::<u16>()) {
        let width = 4usize;
        let mask = (1u16 << width) - 1;
        let (pos, neg) = (pos & mask, neg & mask & !pos);
        let mut c = Cube::universal(width);
        for v in 0..width {
            if pos & (1 << v) != 0 {
                c = c.with_literal(v, pl_boolfn::Polarity::Positive);
            } else if neg & (1 << v) != 0 {
                c = c.with_literal(v, pl_boolfn::Polarity::Negative);
            }
        }
        let s = c.to_string();
        prop_assert_eq!(Cube::parse(&s).unwrap(), c);
    }

    /// count_covered equals brute-force minterm enumeration.
    #[test]
    fn cube_list_count_matches_enumeration(t in arb_table(4)) {
        let list = CubeList::from_on_set(&t);
        prop_assert_eq!(list.count_covered(), u64::from(t.count_ones()));
    }

    /// absorb() preserves the realized function.
    #[test]
    fn absorb_preserves_function(t in arb_table(4)) {
        let mut list = isop(&t, &t);
        // duplicate some cubes to give absorb something to do
        let dup: Vec<_> = list.iter().copied().collect();
        list.extend(dup);
        let before = list.to_truth_table();
        list.absorb();
        prop_assert_eq!(list.to_truth_table(), before);
    }

    /// Every enumerated subset is proper, non-empty, within bounds.
    #[test]
    fn support_subsets_invariants(vars in 1u8..=15, k in 1u32..=3) {
        let subs: Vec<_> = support_subsets(vars, k).collect();
        for s in &subs {
            prop_assert_ne!(*s, 0);
            prop_assert_eq!(s & !vars, 0);
            prop_assert!(s.count_ones() <= k);
        }
        // count = sum over i=1..=min(k, n) of C(n, i)
        let n = vars.count_ones();
        let expected: u32 = (1..=k.min(n)).map(|i| binomial(n, i)).sum();
        prop_assert_eq!(subs.len() as u32, expected);
    }

    /// restrict() then extend keeps the function consistent on the slice.
    #[test]
    fn restrict_consistency(t in arb_table(4), asg in 0u32..4) {
        // Fix vars {0,1} and compare against brute-force evaluation.
        let r = t.restrict(0b0011, asg);
        for m in 0..16u32 {
            let forced = (m & !0b11) | (asg & 0b11);
            prop_assert_eq!(r.eval(forced), t.eval(forced));
        }
    }
}

fn binomial(n: u32, k: u32) -> u32 {
    if k > n {
        return 0;
    }
    let mut r = 1u32;
    for i in 0..k {
        r = r * (n - i) / (i + 1);
    }
    r
}
