//! Arithmetic, comparison and selection operators.
//!
//! Adders are ripple-carry — exactly the structure whose carry chains give
//! early evaluation its classic win (paper §3: "for addition circuits this
//! case is particularly advantageous since carry-in signals are the latest
//! in arriving").

use crate::builder::Module;
use crate::types::{Bit, Word};

impl Module {
    /// Full ripple-carry addition: returns `(sum, carry_out)`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn add_carry(&mut self, a: &Word, b: &Word, carry_in: Bit) -> (Word, Bit) {
        assert_eq!(a.width(), b.width(), "add width mismatch");
        let mut carry = carry_in;
        let mut bits = Vec::with_capacity(a.width());
        for (&x, &y) in a.bits.iter().zip(&b.bits) {
            let xy = self.xor2(x, y);
            bits.push(self.xor2(xy, carry));
            // carry-out = xy ? carry : x   (majority via mux saves a gate)
            carry = self.mux(xy, x, carry);
        }
        (Word { bits }, carry)
    }

    /// Modular addition (`width` bits, carry discarded).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn add(&mut self, a: &Word, b: &Word) -> Word {
        let zero = self.const_bit(false);
        self.add_carry(a, b, zero).0
    }

    /// Modular subtraction `a - b` (two's complement).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn sub(&mut self, a: &Word, b: &Word) -> Word {
        self.sub_borrow(a, b).0
    }

    /// Subtraction returning `(difference, no_borrow)`.
    ///
    /// `no_borrow` is the adder carry-out of `a + !b + 1`; it is high iff
    /// `a >= b` (unsigned).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn sub_borrow(&mut self, a: &Word, b: &Word) -> (Word, Bit) {
        let nb = self.not_w(b);
        let one = self.const_bit(true);
        self.add_carry(a, &nb, one)
    }

    /// Increment by one.
    pub fn inc(&mut self, a: &Word) -> Word {
        let one_w = self.const_word(a.width(), u64::from(a.width() > 0));
        self.add(a, &one_w)
    }

    /// Decrement by one.
    pub fn dec(&mut self, a: &Word) -> Word {
        let one_w = self.const_word(a.width(), u64::from(a.width() > 0));
        self.sub(a, &one_w)
    }

    /// Equality of equal-width words.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn eq_w(&mut self, a: &Word, b: &Word) -> Bit {
        assert_eq!(a.width(), b.width(), "eq_w width mismatch");
        let pairs: Vec<Bit> = a
            .bits
            .iter()
            .zip(&b.bits)
            .map(|(&x, &y)| self.xnor2(x, y))
            .collect();
        self.and_all(&pairs)
    }

    /// Inequality of equal-width words.
    pub fn ne_w(&mut self, a: &Word, b: &Word) -> Bit {
        let e = self.eq_w(a, b);
        self.not(e)
    }

    /// Equality against a constant.
    ///
    /// # Panics
    ///
    /// Panics if `k` does not fit in the word width.
    pub fn eq_const(&mut self, a: &Word, k: u64) -> Bit {
        assert!(
            a.width() >= 64 || k < (1u64 << a.width()),
            "constant {k} does not fit in {} bits",
            a.width()
        );
        let lits: Vec<Bit> = a
            .bits
            .iter()
            .enumerate()
            .map(|(i, &b)| if (k >> i) & 1 == 1 { b } else { self.not(b) })
            .collect();
        self.and_all(&lits)
    }

    /// Unsigned `a < b`.
    pub fn lt_u(&mut self, a: &Word, b: &Word) -> Bit {
        let (_, no_borrow) = self.sub_borrow(a, b);
        self.not(no_borrow)
    }

    /// Unsigned `a >= b`.
    pub fn ge_u(&mut self, a: &Word, b: &Word) -> Bit {
        self.sub_borrow(a, b).1
    }

    /// Unsigned `a > b`.
    pub fn gt_u(&mut self, a: &Word, b: &Word) -> Bit {
        self.lt_u(b, a)
    }

    /// Unsigned `a <= b`.
    pub fn le_u(&mut self, a: &Word, b: &Word) -> Bit {
        self.ge_u(b, a)
    }

    /// Unsigned minimum.
    pub fn min_u(&mut self, a: &Word, b: &Word) -> Word {
        let a_lt = self.lt_u(a, b);
        self.mux_w(a_lt, b, a)
    }

    /// Unsigned maximum.
    pub fn max_u(&mut self, a: &Word, b: &Word) -> Word {
        let a_lt = self.lt_u(a, b);
        self.mux_w(a_lt, a, b)
    }

    /// Priority selector: returns `default`, overridden by the *first* arm
    /// whose condition is high.
    ///
    /// # Panics
    ///
    /// Panics if any arm width differs from the default's width.
    pub fn select(&mut self, default: &Word, arms: &[(Bit, Word)]) -> Word {
        let mut out = default.clone();
        for (cond, value) in arms.iter().rev() {
            assert_eq!(value.width(), default.width(), "select arm width mismatch");
            out = self.mux_w(*cond, &out, value);
        }
        out
    }

    /// Read-only memory: returns `contents[addr]`, or 0 beyond the end.
    ///
    /// Built as a balanced multiplexer tree over constant words — the
    /// structure a synthesis tool infers for a VHDL constant array (used by
    /// the memory/cipher/processor ITC99 benchmarks).
    ///
    /// # Panics
    ///
    /// Panics if any entry does not fit in `width` bits.
    pub fn rom(&mut self, addr: &Word, width: usize, contents: &[u64]) -> Word {
        assert!(addr.width() <= 16, "rom address too wide");
        // Pad to the full address space so out-of-range reads return 0.
        let leaves: Vec<Word> = (0..(1usize << addr.width()))
            .map(|i| self.const_word(width, contents.get(i).copied().unwrap_or(0)))
            .collect();
        self.mux_tree(addr, 0, &leaves, width)
    }

    fn mux_tree(&mut self, addr: &Word, level: usize, leaves: &[Word], width: usize) -> Word {
        if leaves.is_empty() {
            return self.const_word(width, 0);
        }
        if leaves.len() == 1 || level >= addr.width() {
            return leaves[0].clone();
        }
        // Split on the *low* address bit: even indices vs odd indices.
        let evens: Vec<Word> = leaves.iter().step_by(2).cloned().collect();
        let odds: Vec<Word> = leaves.iter().skip(1).step_by(2).cloned().collect();
        let lo = self.mux_tree(addr, level + 1, &evens, width);
        let hi = self.mux_tree(addr, level + 1, &odds, width);
        self.mux_w(addr.bit(level), &lo, &hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_netlist::eval::Evaluator;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const W: usize = 8;

    /// Builds a module computing `f(a, b)` and returns a closure evaluating
    /// it on concrete u64 values.
    fn harness(f: impl Fn(&mut Module, &Word, &Word) -> Word) -> impl FnMut(u64, u64) -> u64 {
        let mut m = Module::new("h");
        let a = m.input_word("a", W);
        let b = m.input_word("b", W);
        let y = f(&mut m, &a, &b);
        m.output_word("y", &y);
        let n = m.elaborate_raw().unwrap();
        move |av, bv| {
            let mut sim = Evaluator::new(&n).unwrap();
            let ins: Vec<bool> = (0..W)
                .map(|i| (av >> i) & 1 == 1)
                .chain((0..W).map(|i| (bv >> i) & 1 == 1))
                .collect();
            let out = sim.step(&ins).unwrap();
            out.iter()
                .enumerate()
                .map(|(i, &b)| u64::from(b) << i)
                .sum()
        }
    }

    fn bit_harness(f: impl Fn(&mut Module, &Word, &Word) -> Bit) -> impl FnMut(u64, u64) -> bool {
        let mut g = harness(move |m, a, b| {
            let bit = f(m, a, b);
            Word::from_bit(bit)
        });
        move |a, b| g(a, b) == 1
    }

    #[test]
    fn add_matches_u64() {
        let mut f = harness(|m, a, b| m.add(a, b));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..64 {
            let (a, b) = (rng.gen_range(0..256), rng.gen_range(0..256));
            assert_eq!(f(a, b), (a + b) & 0xFF, "a={a} b={b}");
        }
    }

    #[test]
    fn sub_matches_u64() {
        let mut f = harness(|m, a, b| m.sub(a, b));
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..64 {
            let (a, b) = (rng.gen_range(0..256), rng.gen_range(0..256));
            assert_eq!(f(a, b), a.wrapping_sub(b) & 0xFF);
        }
    }

    #[test]
    fn inc_dec() {
        let mut fi = harness(|m, a, _| m.inc(a));
        let mut fd = harness(|m, a, _| m.dec(a));
        assert_eq!(fi(255, 0), 0);
        assert_eq!(fi(41, 0), 42);
        assert_eq!(fd(0, 0), 255);
        assert_eq!(fd(42, 0), 41);
    }

    #[test]
    fn comparisons_match_u64() {
        let mut lt = bit_harness(|m, a, b| m.lt_u(a, b));
        let mut ge = bit_harness(|m, a, b| m.ge_u(a, b));
        let mut gt = bit_harness(|m, a, b| m.gt_u(a, b));
        let mut le = bit_harness(|m, a, b| m.le_u(a, b));
        let mut eq = bit_harness(|m, a, b| m.eq_w(a, b));
        let mut ne = bit_harness(|m, a, b| m.ne_w(a, b));
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..64 {
            let (a, b) = (rng.gen_range(0..256), rng.gen_range(0..256));
            assert_eq!(lt(a, b), a < b, "lt a={a} b={b}");
            assert_eq!(ge(a, b), a >= b);
            assert_eq!(gt(a, b), a > b);
            assert_eq!(le(a, b), a <= b);
            assert_eq!(eq(a, b), a == b);
            assert_eq!(ne(a, b), a != b);
        }
        assert!(eq(77, 77));
        assert!(!lt(77, 77));
        assert!(ge(77, 77));
    }

    #[test]
    fn min_max() {
        let mut mn = harness(|m, a, b| m.min_u(a, b));
        let mut mx = harness(|m, a, b| m.max_u(a, b));
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..32 {
            let (a, b) = (rng.gen_range(0..256), rng.gen_range(0..256));
            assert_eq!(mn(a, b), a.min(b));
            assert_eq!(mx(a, b), a.max(b));
        }
    }

    #[test]
    fn eq_const_works() {
        let mut f = bit_harness(|m, a, _| m.eq_const(a, 0xA5));
        assert!(f(0xA5, 0));
        assert!(!f(0xA4, 0));
        assert!(!f(0x25, 0));
    }

    #[test]
    fn select_priority() {
        let mut m = Module::new("sel");
        let c0 = m.input_bit("c0");
        let c1 = m.input_bit("c1");
        let d = m.const_word(4, 0);
        let v0 = m.const_word(4, 5);
        let v1 = m.const_word(4, 9);
        let y = m.select(&d, &[(c0, v0), (c1, v1)]);
        m.output_word("y", &y);
        let n = m.elaborate_raw().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        let val = |out: Vec<bool>| -> u64 {
            out.iter()
                .enumerate()
                .map(|(i, &b)| u64::from(b) << i)
                .sum()
        };
        assert_eq!(val(sim.step(&[false, false]).unwrap()), 0);
        assert_eq!(val(sim.step(&[false, true]).unwrap()), 9);
        assert_eq!(val(sim.step(&[true, false]).unwrap()), 5);
        // first arm wins when both fire
        assert_eq!(val(sim.step(&[true, true]).unwrap()), 5);
    }

    #[test]
    fn rom_lookup() {
        let contents = [3u64, 1, 4, 1, 5, 9, 2, 6];
        let mut m = Module::new("rom");
        let addr = m.input_word("addr", 3);
        let data = m.rom(&addr, 4, &contents);
        m.output_word("d", &data);
        let n = m.elaborate_raw().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        for (i, &want) in contents.iter().enumerate() {
            let ins: Vec<bool> = (0..3).map(|k| (i >> k) & 1 == 1).collect();
            let out = sim.step(&ins).unwrap();
            let got: u64 = out
                .iter()
                .enumerate()
                .map(|(k, &b)| u64::from(b) << k)
                .sum();
            assert_eq!(got, want, "addr={i}");
        }
    }

    #[test]
    fn rom_out_of_range_reads_zero() {
        let mut m = Module::new("rom0");
        let addr = m.input_word("addr", 2);
        let data = m.rom(&addr, 4, &[7, 8]); // entries 2,3 undefined -> 0
        m.output_word("d", &data);
        let n = m.elaborate_raw().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        let read = |sim: &mut Evaluator, a: usize| -> u64 {
            let ins: Vec<bool> = (0..2).map(|k| (a >> k) & 1 == 1).collect();
            let out = sim.step(&ins).unwrap();
            out.iter()
                .enumerate()
                .map(|(k, &b)| u64::from(b) << k)
                .sum()
        };
        assert_eq!(read(&mut sim, 0), 7);
        assert_eq!(read(&mut sim, 1), 8);
        assert_eq!(read(&mut sim, 2), 0);
        assert_eq!(read(&mut sim, 3), 0);
    }

    #[test]
    fn carry_out_is_exposed() {
        let mut m = Module::new("cout");
        let a = m.input_word("a", 4);
        let b = m.input_word("b", 4);
        let cin = m.const_bit(false);
        let (_, cout) = m.add_carry(&a, &b, cin);
        m.output_bit("cout", cout);
        let n = m.elaborate_raw().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        let mk = |a: u32, b: u32| -> Vec<bool> {
            (0..4)
                .map(|i| (a >> i) & 1 == 1)
                .chain((0..4).map(|i| (b >> i) & 1 == 1))
                .collect()
        };
        assert_eq!(sim.step(&mk(8, 8)).unwrap(), vec![true]);
        assert_eq!(sim.step(&mk(7, 8)).unwrap(), vec![false]);
    }
}
