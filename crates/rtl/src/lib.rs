//! Word-level RTL builder that elaborates to gate-level netlists.
//!
//! The DATE 2002 early-evaluation paper synthesizes ITC99 RTL VHDL with a
//! commercial tool before mapping to phased logic. This crate plays that
//! front-end role: circuits are described with a small builder DSL
//! ([`Module`]) over single-bit [`Bit`]s and little-endian [`Word`]s, and
//! elaborate into [`pl_netlist::Netlist`] gates (INV/AND/OR/XOR/MUX built
//! from 1–3-input LUTs) ready for LUT4 technology mapping.
//!
//! Design style notes:
//!
//! * combinational operators create gates eagerly; width mismatches panic
//!   with a message naming the operation (a generator bug, not a runtime
//!   condition);
//! * registers ([`Reg`]) are declared first and connected later with
//!   [`Module::next`] / [`Module::next_when`], permitting state feedback;
//! * [`Module::elaborate`] validates and returns the cleaned netlist.
//!
//! # Example
//!
//! ```
//! use pl_rtl::Module;
//!
//! // 4-bit accumulator with synchronous enable
//! let mut m = Module::new("acc");
//! let en = m.input_bit("en");
//! let x = m.input_word("x", 4);
//! let acc = m.reg_word("acc", 4, 0);
//! let sum = m.add(&acc.q(), &x);
//! m.next_when(&acc, en, &sum);
//! m.output_word("acc", &acc.q());
//! let netlist = m.elaborate().unwrap();
//! assert!(netlist.dffs().len() == 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arith;
mod builder;
mod error;
mod seq;
mod types;

pub use builder::Module;
pub use error::RtlError;
pub use types::{Bit, Reg, Word};
