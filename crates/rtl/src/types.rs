//! Value types of the RTL DSL: [`Bit`], [`Word`] and [`Reg`].

use pl_netlist::NodeId;

/// A single-bit signal inside a [`crate::Module`].
///
/// `Bit`s are cheap copyable handles onto netlist nodes; they are only
/// meaningful within the module that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Bit(pub(crate) NodeId);

impl Bit {
    /// The underlying netlist node.
    #[must_use]
    pub fn node(self) -> NodeId {
        self.0
    }
}

/// A little-endian multi-bit signal (bit 0 is the least significant).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Word {
    pub(crate) bits: Vec<Bit>,
}

impl Word {
    /// Builds a word from individual bits (LSB first).
    #[must_use]
    pub fn from_bits(bits: Vec<Bit>) -> Self {
        Self { bits }
    }

    /// Width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// Whether the word has zero width.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The `i`-th bit (LSB = 0).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    #[must_use]
    pub fn bit(&self, i: usize) -> Bit {
        self.bits[i]
    }

    /// The most significant bit.
    ///
    /// # Panics
    ///
    /// Panics on an empty word.
    #[must_use]
    pub fn msb(&self) -> Bit {
        *self.bits.last().expect("msb of empty word")
    }

    /// The least significant bit.
    ///
    /// # Panics
    ///
    /// Panics on an empty word.
    #[must_use]
    pub fn lsb(&self) -> Bit {
        *self.bits.first().expect("lsb of empty word")
    }

    /// All bits, LSB first.
    #[must_use]
    pub fn bits(&self) -> &[Bit] {
        &self.bits
    }

    /// The sub-word `[lo, hi)` (LSB-based, half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    #[must_use]
    pub fn slice(&self, lo: usize, hi: usize) -> Word {
        assert!(
            lo <= hi && hi <= self.width(),
            "slice [{lo},{hi}) out of bounds"
        );
        Word {
            bits: self.bits[lo..hi].to_vec(),
        }
    }

    /// Concatenates `self` (low part) with `high`.
    #[must_use]
    pub fn concat(&self, high: &Word) -> Word {
        let mut bits = self.bits.clone();
        bits.extend_from_slice(&high.bits);
        Word { bits }
    }

    /// A single-bit word from a bit.
    #[must_use]
    pub fn from_bit(bit: Bit) -> Word {
        Word { bits: vec![bit] }
    }
}

impl From<Bit> for Word {
    fn from(b: Bit) -> Word {
        Word::from_bit(b)
    }
}

/// A bank of flip-flops declared with [`crate::Module::reg_word`].
///
/// The register's current value is read with [`Reg::q`]; its next value is
/// connected exactly once with [`crate::Module::next`] or
/// [`crate::Module::next_when`].
#[derive(Debug, Clone)]
pub struct Reg {
    pub(crate) name: String,
    pub(crate) dffs: Vec<NodeId>,
    pub(crate) q: Word,
    pub(crate) init: u64,
}

impl Reg {
    /// The register's output word (flip-flop Q pins).
    #[must_use]
    pub fn q(&self) -> Word {
        self.q.clone()
    }

    /// Register width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.dffs.len()
    }

    /// Declared name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Power-on value.
    #[must_use]
    pub fn init(&self) -> u64 {
        self.init
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(ids: &[usize]) -> Word {
        Word::from_bits(ids.iter().map(|&i| Bit(NodeId::from_index(i))).collect())
    }

    #[test]
    fn slice_and_concat() {
        let a = w(&[0, 1, 2, 3]);
        let lo = a.slice(0, 2);
        let hi = a.slice(2, 4);
        assert_eq!(lo.width(), 2);
        assert_eq!(lo.concat(&hi), a);
    }

    #[test]
    fn msb_lsb() {
        let a = w(&[5, 6, 7]);
        assert_eq!(a.lsb(), Bit(NodeId::from_index(5)));
        assert_eq!(a.msb(), Bit(NodeId::from_index(7)));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_slice_panics() {
        let a = w(&[0, 1]);
        let _ = a.slice(1, 3);
    }

    #[test]
    fn word_from_bit() {
        let b = Bit(NodeId::from_index(9));
        let word: Word = b.into();
        assert_eq!(word.width(), 1);
        assert_eq!(word.bit(0), b);
    }
}
