//! Error type for RTL elaboration.

use std::error::Error;
use std::fmt;

use pl_netlist::NetlistError;

/// Errors produced by [`crate::Module::elaborate`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RtlError {
    /// A register was declared but its next-state input never connected.
    UnconnectedReg {
        /// The register name given at declaration.
        name: String,
    },
    /// The underlying netlist failed validation or rewriting.
    Netlist(NetlistError),
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::UnconnectedReg { name } => {
                write!(f, "register '{name}' was declared but never connected")
            }
            RtlError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl Error for RtlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RtlError::Netlist(e) => Some(e),
            RtlError::UnconnectedReg { .. } => None,
        }
    }
}

#[doc(hidden)]
impl From<NetlistError> for RtlError {
    fn from(e: NetlistError) -> Self {
        RtlError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_register() {
        let e = RtlError::UnconnectedReg {
            name: "state".into(),
        };
        assert!(e.to_string().contains("state"));
    }

    #[test]
    fn source_chains() {
        let e = RtlError::Netlist(NetlistError::UnknownNode(pl_netlist::NodeId::from_index(1)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
