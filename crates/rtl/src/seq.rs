//! Sequential elements: register declaration and connection.

use crate::builder::Module;
use crate::types::{Bit, Reg, Word};

impl Module {
    /// Declares a single-bit register with the given power-on value.
    ///
    /// The register must later be connected exactly once with
    /// [`Module::next`] (or one of its variants).
    pub fn reg_bit(&mut self, name: impl Into<String>, init: bool) -> Reg {
        self.reg_word(name, 1, u64::from(init))
    }

    /// Declares a `width`-bit register bank with the given power-on value.
    ///
    /// # Panics
    ///
    /// Panics if `init` does not fit in `width` bits.
    pub fn reg_word(&mut self, name: impl Into<String>, width: usize, init: u64) -> Reg {
        let name = name.into();
        assert!(
            width >= 64 || init < (1u64 << width),
            "register '{name}': init {init} does not fit in {width} bits"
        );
        let dffs: Vec<_> = (0..width)
            .map(|i| self.netlist.add_dff((init >> i) & 1 == 1))
            .collect();
        for (i, &d) in dffs.iter().enumerate() {
            self.netlist
                .set_name(d, format!("{name}[{i}]"))
                .expect("fresh dff id is valid");
        }
        let q = Word {
            bits: dffs.iter().map(|&d| Bit(d)).collect(),
        };
        self.unconnected_regs.push(name.clone());
        Reg {
            name,
            dffs,
            q,
            init,
        }
    }

    /// Connects the next-state input of `reg` to `value` unconditionally.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or if the register was already connected.
    pub fn next(&mut self, reg: &Reg, value: &Word) {
        assert_eq!(
            value.width(),
            reg.width(),
            "register '{}': next-value width mismatch",
            reg.name
        );
        self.mark_connected(reg);
        for (&dff, &src) in reg.dffs.iter().zip(&value.bits) {
            self.netlist
                .set_dff_input(dff, src.0)
                .expect("register pins exist in this module");
        }
    }

    /// Connects `reg` to load `value` when `enable` is high, else hold.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or double connection.
    pub fn next_when(&mut self, reg: &Reg, enable: Bit, value: &Word) {
        let held = self.mux_w(enable, &reg.q(), value);
        self.next(reg, &held);
    }

    /// Connects `reg` with a synchronous reset: on `reset` the register
    /// reloads its power-on value, otherwise it takes `value`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or double connection.
    pub fn next_with_reset(&mut self, reg: &Reg, reset: Bit, value: &Word) {
        let init = self.const_word(reg.width(), reg.init);
        let d = self.mux_w(reset, value, &init);
        self.next(reg, &d);
    }

    /// Combines [`Module::next_when`] and [`Module::next_with_reset`]:
    /// reset has priority, then enable, else hold.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or double connection.
    pub fn next_when_with_reset(&mut self, reg: &Reg, reset: Bit, enable: Bit, value: &Word) {
        let loaded = self.mux_w(enable, &reg.q(), value);
        let init = self.const_word(reg.width(), reg.init);
        let d = self.mux_w(reset, &loaded, &init);
        self.next(reg, &d);
    }

    fn mark_connected(&mut self, reg: &Reg) {
        match self.unconnected_regs.iter().position(|n| n == &reg.name) {
            Some(i) => {
                self.unconnected_regs.swap_remove(i);
            }
            None => panic!("register '{}' connected twice", reg.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RtlError;
    use pl_netlist::eval::Evaluator;

    fn word_val(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .map(|(i, &b)| u64::from(b) << i)
            .sum()
    }

    #[test]
    fn unconditional_register_delays_by_one() {
        let mut m = Module::new("dly");
        let x = m.input_word("x", 2);
        let r = m.reg_word("r", 2, 0b10);
        m.next(&r, &x);
        m.output_word("q", &r.q());
        let n = m.elaborate_raw().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        assert_eq!(word_val(&sim.step(&[true, true]).unwrap()), 0b10); // init
        assert_eq!(word_val(&sim.step(&[false, false]).unwrap()), 0b11);
        assert_eq!(word_val(&sim.step(&[false, false]).unwrap()), 0b00);
    }

    #[test]
    fn enable_holds_value() {
        let mut m = Module::new("en");
        let en = m.input_bit("en");
        let x = m.input_word("x", 2);
        let r = m.reg_word("r", 2, 0);
        m.next_when(&r, en, &x);
        m.output_word("q", &r.q());
        let n = m.elaborate_raw().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        // cycle 1: en=1 load 3; cycle 2: en=0 hold; cycle 3 observe
        sim.step(&[true, true, true]).unwrap();
        let o = sim.step(&[false, false, false]).unwrap();
        assert_eq!(word_val(&o), 3);
        let o = sim.step(&[false, false, false]).unwrap();
        assert_eq!(word_val(&o), 3);
    }

    #[test]
    fn sync_reset_reloads_init() {
        let mut m = Module::new("rst");
        let rst = m.input_bit("rst");
        let r = m.reg_word("cnt", 3, 5);
        let one = m.const_word(3, 1);
        let inc = m.add(&r.q(), &one);
        m.next_with_reset(&r, rst, &inc);
        m.output_word("q", &r.q());
        let n = m.elaborate_raw().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        assert_eq!(word_val(&sim.step(&[false]).unwrap()), 5);
        assert_eq!(word_val(&sim.step(&[true]).unwrap()), 6); // reset takes effect next cycle
        assert_eq!(word_val(&sim.step(&[false]).unwrap()), 5);
        assert_eq!(word_val(&sim.step(&[false]).unwrap()), 6);
    }

    #[test]
    fn unconnected_register_is_reported() {
        let mut m = Module::new("bad");
        let _ = m.reg_word("ghost", 2, 0);
        match m.elaborate() {
            Err(RtlError::UnconnectedReg { name }) => assert_eq!(name, "ghost"),
            other => panic!("expected UnconnectedReg, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "connected twice")]
    fn double_connection_panics() {
        let mut m = Module::new("bad");
        let r = m.reg_word("r", 1, 0);
        let q = r.q();
        m.next(&r, &q);
        m.next(&r, &q);
    }
}
