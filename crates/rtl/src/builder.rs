//! The [`Module`] builder: ports, constants and combinational logic.

use std::collections::HashMap;

use pl_boolfn::TruthTable;
use pl_netlist::{Netlist, NodeId};

use crate::error::RtlError;
use crate::types::{Bit, Word};

/// Builder for one synchronous design.
///
/// See the [crate-level documentation](crate) for an example. All
/// combinational helpers create gates eagerly inside an internal
/// [`Netlist`]; [`Module::elaborate`] performs validation and cleanup.
///
/// # Panics
///
/// Word-level operations panic on operand width mismatches — these indicate
/// bugs in the circuit generator, not runtime conditions.
#[derive(Debug, Clone)]
pub struct Module {
    pub(crate) netlist: Netlist,
    pub(crate) const_cache: HashMap<bool, NodeId>,
    pub(crate) unconnected_regs: Vec<String>,
}

impl Module {
    /// Creates an empty module with the given design name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            netlist: Netlist::new(name),
            const_cache: HashMap::new(),
            unconnected_regs: Vec::new(),
        }
    }

    /// The design name.
    #[must_use]
    pub fn name(&self) -> &str {
        self.netlist.name()
    }

    /// Read-only view of the netlist built so far.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Validates the design and returns a cleaned-up netlist
    /// (constant propagation, structural hashing, dead-node elimination).
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnconnectedReg`] if a register was declared but
    /// never driven, or wraps netlist validation failures.
    pub fn elaborate(&self) -> Result<Netlist, RtlError> {
        if let Some(name) = self.unconnected_regs.first() {
            return Err(RtlError::UnconnectedReg { name: name.clone() });
        }
        self.netlist.validate()?;
        let cleaned = pl_netlist::opt::cleanup(&self.netlist)?;
        Ok(cleaned)
    }

    /// Validates and returns the raw (uncleaned) netlist, keeping every
    /// intermediate gate — useful for debugging generators.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Module::elaborate`].
    pub fn elaborate_raw(&self) -> Result<Netlist, RtlError> {
        if let Some(name) = self.unconnected_regs.first() {
            return Err(RtlError::UnconnectedReg { name: name.clone() });
        }
        self.netlist.validate()?;
        Ok(self.netlist.clone())
    }

    // ---- ports --------------------------------------------------------

    /// Declares a single-bit primary input.
    pub fn input_bit(&mut self, name: impl Into<String>) -> Bit {
        Bit(self.netlist.add_input(name))
    }

    /// Declares a `width`-bit primary input; bit `i` is named `name[i]`.
    pub fn input_word(&mut self, name: impl AsRef<str>, width: usize) -> Word {
        let name = name.as_ref();
        let bits = (0..width)
            .map(|i| self.input_bit(format!("{name}[{i}]")))
            .collect();
        Word { bits }
    }

    /// Declares a single-bit primary output.
    pub fn output_bit(&mut self, name: impl Into<String>, bit: Bit) {
        self.netlist.set_output(name, bit.0);
    }

    /// Declares a `width`-bit primary output; bit `i` is named `name[i]`.
    pub fn output_word(&mut self, name: impl AsRef<str>, word: &Word) {
        let name = name.as_ref();
        for (i, b) in word.bits.iter().enumerate() {
            self.netlist.set_output(format!("{name}[{i}]"), b.0);
        }
    }

    // ---- constants ----------------------------------------------------

    /// A constant bit (deduplicated per module).
    pub fn const_bit(&mut self, value: bool) -> Bit {
        if let Some(&id) = self.const_cache.get(&value) {
            return Bit(id);
        }
        let id = self.netlist.add_const(value);
        self.const_cache.insert(value, id);
        Bit(id)
    }

    /// A constant word holding the low `width` bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in `width` bits.
    pub fn const_word(&mut self, width: usize, value: u64) -> Word {
        assert!(
            width >= 64 || value < (1u64 << width),
            "constant {value} does not fit in {width} bits"
        );
        let bits = (0..width)
            .map(|i| self.const_bit((value >> i) & 1 == 1))
            .collect();
        Word { bits }
    }

    // ---- single-bit logic ----------------------------------------------

    /// Logical NOT.
    pub fn not(&mut self, a: Bit) -> Bit {
        self.lut1(0b01, a)
    }

    /// 2-input AND.
    pub fn and2(&mut self, a: Bit, b: Bit) -> Bit {
        self.lut2(0b1000, a, b)
    }

    /// 2-input OR.
    pub fn or2(&mut self, a: Bit, b: Bit) -> Bit {
        self.lut2(0b1110, a, b)
    }

    /// 2-input XOR.
    pub fn xor2(&mut self, a: Bit, b: Bit) -> Bit {
        self.lut2(0b0110, a, b)
    }

    /// 2-input NAND.
    pub fn nand2(&mut self, a: Bit, b: Bit) -> Bit {
        self.lut2(0b0111, a, b)
    }

    /// 2-input NOR.
    pub fn nor2(&mut self, a: Bit, b: Bit) -> Bit {
        self.lut2(0b0001, a, b)
    }

    /// 2-input XNOR (equivalence).
    pub fn xnor2(&mut self, a: Bit, b: Bit) -> Bit {
        self.lut2(0b1001, a, b)
    }

    /// `a AND NOT b`.
    pub fn andn(&mut self, a: Bit, b: Bit) -> Bit {
        self.lut2(0b0010, a, b)
    }

    /// N-ary AND over a slice (balanced tree; empty slice is constant 1).
    pub fn and_all(&mut self, bits: &[Bit]) -> Bit {
        self.tree(bits, true, Self::and2)
    }

    /// N-ary OR over a slice (balanced tree; empty slice is constant 0).
    pub fn or_all(&mut self, bits: &[Bit]) -> Bit {
        self.tree(bits, false, Self::or2)
    }

    /// N-ary XOR over a slice (balanced tree; empty slice is constant 0).
    pub fn xor_all(&mut self, bits: &[Bit]) -> Bit {
        self.tree(bits, false, Self::xor2)
    }

    /// 2:1 multiplexer: `if s { b } else { a }`.
    pub fn mux(&mut self, s: Bit, a: Bit, b: Bit) -> Bit {
        Bit(self
            .netlist
            .add_mux2(s.0, a.0, b.0)
            .expect("mux operands exist in this module"))
    }

    // ---- word-level bitwise --------------------------------------------

    /// Bitwise NOT of a word.
    pub fn not_w(&mut self, a: &Word) -> Word {
        Word {
            bits: a.bits.iter().map(|&b| self.not(b)).collect(),
        }
    }

    /// Bitwise AND of equal-width words.
    pub fn and_w(&mut self, a: &Word, b: &Word) -> Word {
        self.zip(a, b, "and_w", Self::and2)
    }

    /// Bitwise OR of equal-width words.
    pub fn or_w(&mut self, a: &Word, b: &Word) -> Word {
        self.zip(a, b, "or_w", Self::or2)
    }

    /// Bitwise XOR of equal-width words.
    pub fn xor_w(&mut self, a: &Word, b: &Word) -> Word {
        self.zip(a, b, "xor_w", Self::xor2)
    }

    /// Word multiplexer: `if s { b } else { a }` per bit.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn mux_w(&mut self, s: Bit, a: &Word, b: &Word) -> Word {
        assert_eq!(a.width(), b.width(), "mux_w width mismatch");
        Word {
            bits: a
                .bits
                .iter()
                .zip(&b.bits)
                .map(|(&x, &y)| self.mux(s, x, y))
                .collect(),
        }
    }

    /// AND-reduction of a word.
    pub fn and_reduce(&mut self, a: &Word) -> Bit {
        let bits = a.bits.clone();
        self.and_all(&bits)
    }

    /// OR-reduction of a word.
    pub fn or_reduce(&mut self, a: &Word) -> Bit {
        let bits = a.bits.clone();
        self.or_all(&bits)
    }

    /// XOR-reduction (parity) of a word.
    pub fn xor_reduce(&mut self, a: &Word) -> Bit {
        let bits = a.bits.clone();
        self.xor_all(&bits)
    }

    /// Zero-extends (or truncates) a word to `width` bits.
    pub fn resize(&mut self, a: &Word, width: usize) -> Word {
        let mut bits = a.bits.clone();
        if bits.len() > width {
            bits.truncate(width);
        } else {
            let zero = self.const_bit(false);
            bits.resize(width, zero);
        }
        Word { bits }
    }

    /// Left shift by a constant amount (zero fill, same width).
    pub fn shl_const(&mut self, a: &Word, amount: usize) -> Word {
        let zero = self.const_bit(false);
        let mut bits = vec![zero; amount.min(a.width())];
        bits.extend_from_slice(&a.bits[..a.width() - bits.len()]);
        Word { bits }
    }

    /// Logical right shift by a constant amount (zero fill, same width).
    pub fn shr_const(&mut self, a: &Word, amount: usize) -> Word {
        let zero = self.const_bit(false);
        let k = amount.min(a.width());
        let mut bits: Vec<Bit> = a.bits[k..].to_vec();
        bits.resize(a.width(), zero);
        Word { bits }
    }

    /// Rotates a word left by a constant amount.
    pub fn rotl_const(&mut self, a: &Word, amount: usize) -> Word {
        if a.is_empty() {
            return a.clone();
        }
        let k = amount % a.width();
        let mut bits = a.bits[a.width() - k..].to_vec();
        bits.extend_from_slice(&a.bits[..a.width() - k]);
        Word { bits }
    }

    // ---- internal helpers ----------------------------------------------

    pub(crate) fn lut1(&mut self, table: u64, a: Bit) -> Bit {
        Bit(self
            .netlist
            .add_lut(TruthTable::from_bits(1, table), vec![a.0])
            .expect("1-input lut arity is correct"))
    }

    pub(crate) fn lut2(&mut self, table: u64, a: Bit, b: Bit) -> Bit {
        Bit(self
            .netlist
            .add_lut(TruthTable::from_bits(2, table), vec![a.0, b.0])
            .expect("2-input lut arity is correct"))
    }

    fn zip(
        &mut self,
        a: &Word,
        b: &Word,
        op: &str,
        f: impl Fn(&mut Self, Bit, Bit) -> Bit,
    ) -> Word {
        assert_eq!(a.width(), b.width(), "{op} width mismatch");
        Word {
            bits: a
                .bits
                .iter()
                .zip(&b.bits)
                .map(|(&x, &y)| f(self, x, y))
                .collect(),
        }
    }

    fn tree(
        &mut self,
        bits: &[Bit],
        empty: bool,
        f: impl Fn(&mut Self, Bit, Bit) -> Bit + Copy,
    ) -> Bit {
        match bits.len() {
            0 => self.const_bit(empty),
            1 => bits[0],
            _ => {
                let (lo, hi) = bits.split_at(bits.len() / 2);
                let l = self.tree(lo, empty, f);
                let r = self.tree(hi, empty, f);
                f(self, l, r)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_netlist::eval::Evaluator;

    /// Evaluates a 2-input bit function for all input pairs.
    fn truth2(f: impl Fn(&mut Module, Bit, Bit) -> Bit) -> Vec<bool> {
        let mut m = Module::new("t");
        let a = m.input_bit("a");
        let b = m.input_bit("b");
        let y = f(&mut m, a, b);
        m.output_bit("y", y);
        let n = m.elaborate_raw().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        (0..4)
            .map(|i| sim.step(&[i & 1 != 0, i & 2 != 0]).unwrap()[0])
            .collect()
    }

    #[test]
    fn gate_truth_tables() {
        assert_eq!(truth2(Module::and2), vec![false, false, false, true]);
        assert_eq!(truth2(Module::or2), vec![false, true, true, true]);
        assert_eq!(truth2(Module::xor2), vec![false, true, true, false]);
        assert_eq!(truth2(Module::nand2), vec![true, true, true, false]);
        assert_eq!(truth2(Module::nor2), vec![true, false, false, false]);
        assert_eq!(truth2(Module::xnor2), vec![true, false, false, true]);
        assert_eq!(truth2(Module::andn), vec![false, true, false, false]);
    }

    #[test]
    fn n_ary_trees() {
        let mut m = Module::new("t");
        let w = m.input_word("x", 5);
        let a = m.and_reduce(&w);
        let o = m.or_reduce(&w);
        let x = m.xor_reduce(&w);
        m.output_bit("and", a);
        m.output_bit("or", o);
        m.output_bit("xor", x);
        let n = m.elaborate_raw().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        for v in 0..32u32 {
            let ins: Vec<bool> = (0..5).map(|i| v & (1 << i) != 0).collect();
            let out = sim.step(&ins).unwrap();
            assert_eq!(out[0], v == 31);
            assert_eq!(out[1], v != 0);
            assert_eq!(out[2], v.count_ones() % 2 == 1);
        }
    }

    #[test]
    fn mux_and_mux_w() {
        let mut m = Module::new("t");
        let s = m.input_bit("s");
        let a = m.input_word("a", 2);
        let b = m.input_word("b", 2);
        let y = m.mux_w(s, &a, &b);
        m.output_word("y", &y);
        let n = m.elaborate_raw().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        // input order: s, a[0], a[1], b[0], b[1]
        let out = sim.step(&[false, true, false, false, true]).unwrap();
        assert_eq!(out, vec![true, false]); // selects a = 01
        let out = sim.step(&[true, true, false, false, true]).unwrap();
        assert_eq!(out, vec![false, true]); // selects b = 10
    }

    #[test]
    fn const_words() {
        let mut m = Module::new("t");
        let k = m.const_word(4, 0b1010);
        m.output_word("k", &k);
        let n = m.elaborate_raw().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        assert_eq!(sim.step(&[]).unwrap(), vec![false, true, false, true]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_const_panics() {
        let mut m = Module::new("t");
        let _ = m.const_word(2, 7);
    }

    #[test]
    fn shifts_and_rotate() {
        let mut m = Module::new("t");
        let a = m.input_word("a", 4);
        let l = m.shl_const(&a, 1);
        let r = m.shr_const(&a, 2);
        let rot = m.rotl_const(&a, 1);
        m.output_word("l", &l);
        m.output_word("r", &r);
        m.output_word("rot", &rot);
        let n = m.elaborate_raw().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        // a = 0b0110
        let out = sim.step(&[false, true, true, false]).unwrap();
        let l_val: u8 = (0..4).map(|i| u8::from(out[i]) << i).sum();
        let r_val: u8 = (0..4).map(|i| u8::from(out[4 + i]) << i).sum();
        let rot_val: u8 = (0..4).map(|i| u8::from(out[8 + i]) << i).sum();
        assert_eq!(l_val, 0b1100);
        assert_eq!(r_val, 0b0001);
        assert_eq!(rot_val, 0b1100);
    }

    #[test]
    fn resize_extends_and_truncates() {
        let mut m = Module::new("t");
        let a = m.input_word("a", 2);
        let big = m.resize(&a, 4);
        let small = m.resize(&a, 1);
        m.output_word("big", &big);
        m.output_word("small", &small);
        let n = m.elaborate_raw().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        let out = sim.step(&[true, true]).unwrap();
        assert_eq!(out, vec![true, true, false, false, true]);
    }

    #[test]
    fn elaborate_cleans_up() {
        let mut m = Module::new("t");
        let a = m.input_bit("a");
        let k = m.const_bit(true);
        let g = m.and2(a, k); // folds to a buffer of a
        m.output_bit("y", g);
        let n = m.elaborate().unwrap();
        let raw = m.elaborate_raw().unwrap();
        assert!(n.len() <= raw.len());
    }
}
