//! Priority k-feasible cut enumeration.
//!
//! A *cut* of node `n` is a set of nodes (leaves) such that every path from
//! a source to `n` passes through a leaf; it is *k-feasible* when it has at
//! most `k` leaves. Every k-feasible cut corresponds to a candidate LUT-k
//! implementation of the cone rooted at `n`. Cut sets are pruned to a small
//! priority list per node, ordered by (depth, size) — the standard
//! heuristic of depth-oriented FPGA mappers.

use pl_netlist::{Netlist, NetlistError, NodeId, NodeKind};

/// One k-feasible cut: sorted leaf list plus cached cost metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cut {
    /// Sorted leaf nodes (≤ k of them).
    pub leaves: Vec<NodeId>,
    /// Depth of the mapping rooted at this cut (levels of chosen LUTs).
    pub depth: u32,
    /// Heuristic area-flow estimate (scaled ×1000).
    pub area_flow: u64,
}

impl Cut {
    fn signature(&self) -> u64 {
        // A cheap subset filter: OR of hashed leaf bits.
        self.leaves
            .iter()
            .fold(0u64, |acc, l| acc | (1u64 << (l.index() % 64)))
    }

    /// Whether `self`'s leaves are a subset of `other`'s.
    #[must_use]
    pub fn dominates(&self, other: &Cut) -> bool {
        self.leaves.len() <= other.leaves.len()
            && self
                .leaves
                .iter()
                .all(|l| other.leaves.binary_search(l).is_ok())
    }
}

/// Cut sets for every node plus the chosen (best) cut per node.
#[derive(Debug, Clone)]
pub struct CutDatabase {
    /// `cuts[i]` is the priority cut list of node `i` (best first).
    pub cuts: Vec<Vec<Cut>>,
    /// Arrival level of each node under the best-cut mapping.
    pub depth: Vec<u32>,
}

/// Parameters for cut enumeration.
#[derive(Debug, Clone)]
pub struct CutOptions {
    /// Maximum leaves per cut (the LUT arity, 2..=6).
    pub k: usize,
    /// Priority-list length per node.
    pub max_cuts: usize,
}

impl Default for CutOptions {
    fn default() -> Self {
        Self { k: 4, max_cuts: 8 }
    }
}

/// Enumerates priority cuts for every node of a ≤2-input netlist.
///
/// Sources (inputs, constants, flip-flop outputs) have only their trivial
/// cut at depth 0. For LUT nodes, fanin cut lists are merged pairwise; the
/// trivial cut `{n}` is always kept as a fallback.
///
/// # Errors
///
/// Propagates topological-ordering errors.
///
/// # Panics
///
/// Panics if `opts.k < 2` (no merging possible).
pub fn enumerate(netlist: &Netlist, opts: &CutOptions) -> Result<CutDatabase, NetlistError> {
    assert!(opts.k >= 2, "cut size must be at least 2");
    let order = pl_netlist::analyze::comb_topo_order(netlist)?;
    let n = netlist.len();
    let mut db = CutDatabase {
        cuts: vec![Vec::new(); n],
        depth: vec![0; n],
    };
    // Fanout counts for area-flow normalization.
    let fanouts = pl_netlist::analyze::fanouts(netlist);

    for &id in &order {
        let i = id.index();
        match netlist.node(id).kind() {
            NodeKind::Lut { inputs, .. } => {
                let (candidates, best_depth) = compute_lut_cuts(&db, &fanouts, id, inputs, opts);
                db.depth[i] = best_depth;
                db.cuts[i] = candidates;
            }
            _ => {
                // Sources: trivial cut only.
                db.cuts[i] = vec![Cut {
                    leaves: vec![id],
                    depth: 0,
                    area_flow: 0,
                }];
                db.depth[i] = 0;
            }
        }
    }
    Ok(db)
}

/// Re-enumerates cuts for a ≤2-input netlist, translating cut lists from a
/// previous enumeration where a node's whole fanin cone is unchanged.
///
/// `old_of[i]` gives, for node `i` of `netlist`, the index of the
/// *corresponding* node in the netlist `prev` was enumerated over, or `None`
/// for nodes that are new or whose cone changed (those are recomputed with
/// the same merge path [`enumerate`] uses). The caller promises that a
/// `Some` correspondence means an identical local function *and* an
/// identical combinational fanin cone with identical fanout counts; the
/// correspondence must be monotone (`i < j ⇒ old_of[i] < old_of[j]` where
/// both are `Some`).
///
/// Why translation is exact under that promise: the FIFO Kahn topological
/// order preserves the relative order of corresponded nodes, every cost in a
/// [`Cut`] (`depth`, `area_flow`) is id-independent, and the sort/prune
/// tie-break on the lexicographic leaf list is invariant under a monotone
/// id remap — so translating the old list through the remap yields exactly
/// what recomputation would. (The dominance filter's `signature()` prefilter
/// is implied by the subset test it guards, so `%64` hash aliasing cannot
/// make pruning id-sensitive.) Any translation that would need a leaf
/// without a new-space counterpart — or would break leaf sortedness —
/// falls back to fresh recomputation, which is always sound.
///
/// Returns the database plus the number of LUT nodes whose lists were
/// translated rather than recomputed.
///
/// # Errors
///
/// Propagates topological-ordering errors.
///
/// # Panics
///
/// Panics if `opts.k < 2` or `old_of.len() != netlist.len()`.
pub fn enumerate_incremental(
    netlist: &Netlist,
    opts: &CutOptions,
    prev: &CutDatabase,
    old_of: &[Option<u32>],
) -> Result<(CutDatabase, usize), NetlistError> {
    assert!(opts.k >= 2, "cut size must be at least 2");
    assert_eq!(
        old_of.len(),
        netlist.len(),
        "correspondence covers every node"
    );
    let order = pl_netlist::analyze::comb_topo_order(netlist)?;
    let n = netlist.len();
    let mut db = CutDatabase {
        cuts: vec![Vec::new(); n],
        depth: vec![0; n],
    };
    let fanouts = pl_netlist::analyze::fanouts(netlist);
    // Reverse correspondence for leaf translation.
    let mut new_of: Vec<Option<u32>> = vec![None; prev.cuts.len()];
    for (new_idx, o) in old_of.iter().enumerate() {
        if let Some(o) = o {
            if (*o as usize) < prev.cuts.len() {
                new_of[*o as usize] = Some(new_idx as u32);
            }
        }
    }
    let mut reused = 0usize;
    for &id in &order {
        let i = id.index();
        match netlist.node(id).kind() {
            NodeKind::Lut { inputs, .. } => {
                let translated = old_of[i]
                    .filter(|o| (*o as usize) < prev.cuts.len())
                    .and_then(|o| {
                        translate_cuts(&prev.cuts[o as usize], &new_of)
                            .map(|cuts| (cuts, prev.depth[o as usize]))
                    });
                if let Some((cuts, depth)) = translated {
                    db.depth[i] = depth;
                    db.cuts[i] = cuts;
                    reused += 1;
                } else {
                    let (candidates, best_depth) =
                        compute_lut_cuts(&db, &fanouts, id, inputs, opts);
                    db.depth[i] = best_depth;
                    db.cuts[i] = candidates;
                }
            }
            _ => {
                db.cuts[i] = vec![Cut {
                    leaves: vec![id],
                    depth: 0,
                    area_flow: 0,
                }];
                db.depth[i] = 0;
            }
        }
    }
    Ok((db, reused))
}

/// Translates a cut list through the old→new correspondence; `None` if any
/// leaf has no counterpart or the remap is not order-preserving here.
fn translate_cuts(old: &[Cut], new_of: &[Option<u32>]) -> Option<Vec<Cut>> {
    let mut out = Vec::with_capacity(old.len());
    for c in old {
        let mut leaves = Vec::with_capacity(c.leaves.len());
        for l in &c.leaves {
            let n = (*new_of.get(l.index())?)?;
            let id = NodeId::from_index(n as usize);
            if leaves.last().is_some_and(|&p| p >= id) {
                return None; // non-monotone remap: recompute instead
            }
            leaves.push(id);
        }
        out.push(Cut {
            leaves,
            depth: c.depth,
            area_flow: c.area_flow,
        });
    }
    Some(out)
}

/// The full fresh cut computation for one LUT node: pairwise fanin merge,
/// cost finalization, sort/prune, trivial-cut fallback. Returns the final
/// priority list and the node's best depth. Shared between [`enumerate`]
/// and the recompute path of [`enumerate_incremental`] so the two cannot
/// drift.
fn compute_lut_cuts(
    db: &CutDatabase,
    fanouts: &[Vec<NodeId>],
    id: NodeId,
    inputs: &[NodeId],
    opts: &CutOptions,
) -> (Vec<Cut>, u32) {
    let mut candidates: Vec<Cut> = Vec::new();
    let fanin_cutlists: Vec<&[Cut]> = inputs
        .iter()
        .map(|f| db.cuts[f.index()].as_slice())
        .collect();
    merge_fanins(&fanin_cutlists, opts.k, &mut candidates);
    // Finalize costs: depth = 1 + max leaf depth; area-flow =
    // (1000 + Σ leaf flow/fanout) approximation.
    for c in &mut candidates {
        c.depth = 1 + c
            .leaves
            .iter()
            .map(|l| db.depth[l.index()])
            .max()
            .unwrap_or(0);
        c.area_flow = 1000
            + c.leaves
                .iter()
                .map(|l| {
                    let fo = fanouts[l.index()].len().max(1) as u64;
                    leaf_flow(db, l.index()) / fo
                })
                .sum::<u64>();
    }
    // The trivial cut (the node itself as a leaf) is only useful
    // for *fanouts* of this node, not for implementing it; store
    // it last so selection prefers real cuts.
    sort_and_prune(&mut candidates, opts.max_cuts);
    let best_depth = candidates.first().map_or(0, |c| c.depth);
    let trivial = Cut {
        leaves: vec![id],
        depth: best_depth,
        area_flow: 1000,
    };
    candidates.push(trivial);
    (candidates, best_depth)
}

/// Area-flow of the best cut of a node (0 for sources).
fn leaf_flow(db: &CutDatabase, idx: usize) -> u64 {
    db.cuts[idx].first().map_or(0, |c| c.area_flow)
}

/// Merges the cut lists of up to two fanins into candidate cuts.
fn merge_fanins(fanins: &[&[Cut]], k: usize, out: &mut Vec<Cut>) {
    match fanins.len() {
        0 => {}
        1 => {
            for c in fanins[0] {
                out.push(Cut {
                    leaves: c.leaves.clone(),
                    depth: 0,
                    area_flow: 0,
                });
            }
        }
        2 => {
            for a in fanins[0] {
                for b in fanins[1] {
                    if let Some(leaves) = union_leaves(&a.leaves, &b.leaves, k) {
                        out.push(Cut {
                            leaves,
                            depth: 0,
                            area_flow: 0,
                        });
                    }
                }
            }
        }
        _ => {
            // Fold pairwise for hypothetical >2-input nodes.
            let mut acc: Vec<Cut> = fanins[0]
                .iter()
                .map(|c| Cut {
                    leaves: c.leaves.clone(),
                    depth: 0,
                    area_flow: 0,
                })
                .collect();
            for rest in &fanins[1..] {
                let mut next = Vec::new();
                for a in &acc {
                    for b in *rest {
                        if let Some(leaves) = union_leaves(&a.leaves, &b.leaves, k) {
                            next.push(Cut {
                                leaves,
                                depth: 0,
                                area_flow: 0,
                            });
                        }
                    }
                }
                acc = next;
            }
            out.extend(acc);
        }
    }
}

/// Sorted-union of two leaf lists, `None` if it exceeds `k`.
fn union_leaves(a: &[NodeId], b: &[NodeId], k: usize) -> Option<Vec<NodeId>> {
    let mut out = Vec::with_capacity(k);
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let next = if j >= b.len() || (i < a.len() && a[i] <= b[j]) {
            let v = a[i];
            if j < b.len() && b[j] == v {
                j += 1;
            }
            i += 1;
            v
        } else {
            let v = b[j];
            j += 1;
            v
        };
        if out.len() == k {
            return None;
        }
        out.push(next);
    }
    Some(out)
}

/// Sorts by (depth, area_flow, size), removes duplicates and dominated
/// cuts, truncates to `max`.
fn sort_and_prune(cuts: &mut Vec<Cut>, max: usize) {
    cuts.sort_by(|a, b| {
        a.depth
            .cmp(&b.depth)
            .then(a.area_flow.cmp(&b.area_flow))
            .then(a.leaves.len().cmp(&b.leaves.len()))
            .then(a.leaves.cmp(&b.leaves))
    });
    cuts.dedup_by(|a, b| a.leaves == b.leaves);
    // Remove dominated cuts (superset with worse-or-equal rank later in list).
    let mut kept: Vec<Cut> = Vec::with_capacity(cuts.len().min(max));
    'outer: for c in cuts.drain(..) {
        for k in &kept {
            if k.signature() & c.signature() == k.signature() && k.dominates(&c) {
                continue 'outer;
            }
        }
        kept.push(c);
        if kept.len() == max {
            break;
        }
    }
    *cuts = kept;
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_netlist::Netlist;

    fn and_chain(len: usize) -> (Netlist, Vec<NodeId>) {
        let mut n = Netlist::new("chain");
        let mut ids = Vec::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let mut cur = n.add_and2(a, b).unwrap();
        ids.push(cur);
        for i in 0..len {
            let x = n.add_input(format!("x{i}"));
            cur = n.add_and2(cur, x).unwrap();
            ids.push(cur);
        }
        n.set_output("y", cur);
        (n, ids)
    }

    #[test]
    fn chain_depth_shrinks_with_k4() {
        // 7-input AND chain: 6 two-input gates, depth 6 unmapped.
        let (n, ids) = and_chain(5);
        let db = enumerate(&n, &CutOptions::default()).unwrap();
        let root = *ids.last().unwrap();
        // With k=4, depth should be ceil(log_4-ish) = 2 levels.
        assert_eq!(db.depth[root.index()], 2);
    }

    #[test]
    fn sources_have_trivial_cut() {
        let (n, _) = and_chain(2);
        let db = enumerate(&n, &CutOptions::default()).unwrap();
        for &pi in n.inputs() {
            assert_eq!(db.cuts[pi.index()].len(), 1);
            assert_eq!(db.cuts[pi.index()][0].leaves, vec![pi]);
            assert_eq!(db.depth[pi.index()], 0);
        }
    }

    #[test]
    fn cut_leaves_never_exceed_k() {
        let (n, _) = and_chain(8);
        for k in 2..=6 {
            let db = enumerate(&n, &CutOptions { k, max_cuts: 8 }).unwrap();
            for cl in &db.cuts {
                for c in cl {
                    assert!(c.leaves.len() <= k);
                }
            }
        }
    }

    #[test]
    fn union_respects_limit() {
        let a = vec![NodeId::from_index(1), NodeId::from_index(2)];
        let b = vec![NodeId::from_index(3), NodeId::from_index(4)];
        assert!(union_leaves(&a, &b, 4).is_some());
        assert!(union_leaves(&a, &b, 3).is_none());
        let shared = vec![NodeId::from_index(2), NodeId::from_index(3)];
        assert_eq!(union_leaves(&a, &shared, 3).unwrap().len(), 3);
    }

    #[test]
    fn dominated_cuts_are_pruned() {
        let small = Cut {
            leaves: vec![NodeId::from_index(1)],
            depth: 1,
            area_flow: 0,
        };
        let big = Cut {
            leaves: vec![NodeId::from_index(1), NodeId::from_index(2)],
            depth: 1,
            area_flow: 5,
        };
        let mut cuts = vec![big.clone(), small.clone()];
        sort_and_prune(&mut cuts, 8);
        assert_eq!(cuts, vec![small]);
    }
}
