//! Shannon decomposition of wide LUTs into 1–2-input gates.

use pl_boolfn::TruthTable;
use pl_netlist::{Netlist, NetlistError, NodeId, NodeKind};

/// The contiguous range of two-input-space nodes emitted for one source
/// node by [`to_two_input_with_segments`].
///
/// `emit` only ever appends, so each source node's decomposition tree
/// occupies one contiguous segment `[start, start + len)` of the two-input
/// netlist, with the tree root at `start + len - 1`. The segment's *shape*
/// (length and internal structure) depends only on the source node's truth
/// table and arity, which is what makes segments reusable across
/// incremental recompiles: an unchanged source node re-emits a byte-identical
/// segment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Segment {
    /// First two-space node index of the segment.
    pub start: u32,
    /// Number of two-space nodes in the segment (0 for unmapped slots, e.g.
    /// a flip-flop's data-pin entry that aliases its driver).
    pub len: u32,
}

impl Segment {
    /// The segment's root node (the one that realizes the source node).
    #[must_use]
    pub fn root(self) -> NodeId {
        debug_assert!(self.len > 0, "empty segment has no root");
        NodeId::from_index((self.start + self.len - 1) as usize)
    }
}

/// Rewrites the netlist so every LUT has at most two inputs.
///
/// LUTs of three or more inputs are recursively Shannon-expanded on their
/// highest support variable: `f = x'·f₀ + x·f₁`. Vacuous variables are
/// dropped first, so the expansion always terminates.
///
/// # Errors
///
/// Propagates netlist validation/construction errors.
pub fn to_two_input(netlist: &Netlist) -> Result<Netlist, NetlistError> {
    Ok(to_two_input_with_segments(netlist)?.0)
}

/// Like [`to_two_input`], but also returns, for every source node, the
/// [`Segment`] of two-space nodes emitted for it (indexed by source node
/// index). Sources that emit nothing themselves keep a zero-length segment.
///
/// # Errors
///
/// Propagates netlist validation/construction errors.
pub fn to_two_input_with_segments(
    netlist: &Netlist,
) -> Result<(Netlist, Vec<Segment>), NetlistError> {
    netlist.validate()?;
    let order = pl_netlist::analyze::comb_topo_order(netlist)?;
    let mut out = Netlist::new(netlist.name());
    let mut map: Vec<Option<NodeId>> = vec![None; netlist.len()];
    let mut segments: Vec<Segment> = vec![Segment::default(); netlist.len()];
    let record = |segments: &mut Vec<Segment>, idx: usize, start: usize, end: usize| {
        segments[idx] = Segment {
            start: start as u32,
            len: (end - start) as u32,
        };
    };

    for &pi in netlist.inputs() {
        if let NodeKind::Input { name } = netlist.node(pi).kind() {
            let start = out.len();
            map[pi.index()] = Some(out.add_input(name.clone()));
            record(&mut segments, pi.index(), start, out.len());
        }
    }
    for &ff in netlist.dffs() {
        if let NodeKind::Dff { init, .. } = netlist.node(ff).kind() {
            let start = out.len();
            map[ff.index()] = Some(out.add_dff(*init));
            record(&mut segments, ff.index(), start, out.len());
        }
    }
    for &id in &order {
        match netlist.node(id).kind() {
            NodeKind::Const { value } => {
                let start = out.len();
                map[id.index()] = Some(out.add_const(*value));
                record(&mut segments, id.index(), start, out.len());
            }
            NodeKind::Lut { table, inputs } => {
                let fanins: Vec<NodeId> = inputs
                    .iter()
                    .map(|i| map[i.index()].expect("topo order maps fanins first"))
                    .collect();
                let start = out.len();
                let root = emit(&mut out, *table, &fanins)?;
                record(&mut segments, id.index(), start, out.len());
                debug_assert_eq!(
                    segments[id.index()].root(),
                    root,
                    "emit root is appended last"
                );
                map[id.index()] = Some(root);
            }
            _ => {}
        }
    }
    for &ff in netlist.dffs() {
        if let NodeKind::Dff { d: Some(src), .. } = netlist.node(ff).kind() {
            out.set_dff_input(
                map[ff.index()].expect("flip-flop mapped"),
                map[src.index()].expect("driver mapped"),
            )?;
        }
    }
    for (name, id) in netlist.outputs() {
        out.set_output(name.clone(), map[id.index()].expect("output driver mapped"));
    }
    Ok((out, segments))
}

/// Emits `table` over `fanins` as a tree of ≤2-input LUTs, returning the
/// root node.
fn emit(out: &mut Netlist, table: TruthTable, fanins: &[NodeId]) -> Result<NodeId, NetlistError> {
    // Strip vacuous variables first.
    let support = table.support();
    if (support.count_ones() as usize) < fanins.len() {
        let kept: Vec<NodeId> = fanins
            .iter()
            .enumerate()
            .filter(|(i, _)| support & (1 << i) != 0)
            .map(|(_, &n)| n)
            .collect();
        let reduced = table.project(support);
        return emit(out, reduced, &kept);
    }
    if table.is_zero() {
        return Ok(out.add_const(false));
    }
    if table.is_ones() {
        return Ok(out.add_const(true));
    }
    if fanins.len() <= 2 {
        return out.add_lut(table, fanins.to_vec());
    }
    // Shannon on the highest variable: f = x'·f0 + x·f1.
    let var = fanins.len() - 1;
    let x = fanins[var];
    let rest = &fanins[..var];
    let f0 = emit(out, table.cofactor0(var).project(low_mask(var)), rest)?;
    let f1 = emit(out, table.cofactor1(var).project(low_mask(var)), rest)?;
    // t0 = f0 & !x   (table over (f0, x): minterm f0=1,x=0)
    let t0 = out.add_lut(TruthTable::from_bits(2, 0b0010), vec![f0, x])?;
    // t1 = f1 & x
    let t1 = out.add_lut(TruthTable::from_bits(2, 0b1000), vec![f1, x])?;
    out.add_lut(TruthTable::from_bits(2, 0b1110), vec![t0, t1])
}

fn low_mask(n: usize) -> u8 {
    ((1u16 << n) - 1) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_netlist::eval::Evaluator;

    fn equivalent(a: &Netlist, b: &Netlist, num_inputs: usize, cycles: usize) {
        let mut sa = Evaluator::new(a).unwrap();
        let mut sb = Evaluator::new(b).unwrap();
        let mut x: u64 = 0xDEAD_BEEF_CAFE_1234;
        for _ in 0..cycles {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let ins: Vec<bool> = (0..num_inputs).map(|i| (x >> i) & 1 == 1).collect();
            assert_eq!(sa.step(&ins).unwrap(), sb.step(&ins).unwrap());
        }
    }

    #[test]
    fn wide_luts_become_narrow() {
        let mut n = Netlist::new("wide");
        let ins: Vec<NodeId> = (0..5).map(|i| n.add_input(format!("x{i}"))).collect();
        // 5-input majority
        let maj5 = TruthTable::from_fn(5, |m| m.count_ones() >= 3);
        let g = n.add_lut(maj5, ins).unwrap();
        n.set_output("y", g);
        let d = to_two_input(&n).unwrap();
        assert!(d.iter().all(|(_, node)| match node.kind() {
            NodeKind::Lut { inputs, .. } => inputs.len() <= 2,
            _ => true,
        }));
        equivalent(&n, &d, 5, 64);
    }

    #[test]
    fn mux_decomposes_correctly() {
        let mut n = Netlist::new("mux");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let s = n.add_input("s");
        let m = n.add_mux2(s, a, b).unwrap();
        n.set_output("m", m);
        let d = to_two_input(&n).unwrap();
        equivalent(&n, &d, 3, 16);
    }

    #[test]
    fn vacuous_vars_are_dropped() {
        let mut n = Netlist::new("vac");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        // 3-input table that only depends on a
        let t = TruthTable::var(3, 0);
        let g = n.add_lut(t, vec![a, b, c]).unwrap();
        n.set_output("y", g);
        let d = to_two_input(&n).unwrap();
        // now a single 1-input LUT (buffer)
        assert!(d.num_luts() <= 1);
        equivalent(&n, &d, 3, 16);
    }

    #[test]
    fn sequential_designs_survive() {
        let mut n = Netlist::new("seq");
        let x = n.add_input("x");
        let q = n.add_dff(false);
        let wide = TruthTable::from_fn(3, |m| m.count_ones() % 2 == 1);
        let g = n.add_lut(wide, vec![x, q, x]).unwrap();
        n.set_dff_input(q, g).unwrap();
        n.set_output("q", q);
        let d = to_two_input(&n).unwrap();
        equivalent(&n, &d, 1, 32);
    }

    #[test]
    fn constant_tables_become_consts() {
        let mut n = Netlist::new("konst");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let t = TruthTable::ones(3);
        let g = n.add_lut(t, vec![a, b, c]).unwrap();
        n.set_output("y", g);
        let d = to_two_input(&n).unwrap();
        assert_eq!(d.num_luts(), 0);
        equivalent(&n, &d, 3, 8);
    }
}
