//! Depth-oriented LUT cover extraction.

use std::collections::HashMap;

use pl_boolfn::TruthTable;
use pl_netlist::{Netlist, NetlistError, NodeId, NodeKind};

use crate::cuts::{enumerate, enumerate_incremental, CutDatabase, CutOptions};
use crate::decompose::{to_two_input_with_segments, Segment};

/// Options controlling [`map_to_lut4`].
#[derive(Debug, Clone)]
pub struct MapOptions {
    /// Target LUT arity (2..=6; the paper's PL gate uses 4).
    pub lut_size: usize,
    /// Priority-cut list length per node (more = better area, slower).
    pub max_cuts: usize,
    /// Run the netlist cleanup passes on the mapped result.
    pub cleanup: bool,
}

impl Default for MapOptions {
    fn default() -> Self {
        Self {
            lut_size: 4,
            max_cuts: 8,
            cleanup: true,
        }
    }
}

/// Outcome of a mapping run.
#[derive(Debug, Clone)]
pub struct MapReport {
    /// The mapped netlist (every LUT has ≤ `lut_size` inputs).
    pub netlist: Netlist,
    /// LUT count before mapping (after 2-input decomposition).
    pub luts_before: usize,
    /// LUT count after mapping.
    pub luts_after: usize,
    /// Combinational depth after mapping.
    pub depth: u32,
}

/// Maps a netlist onto LUTs of at most `opts.lut_size` inputs.
///
/// The input may contain LUTs of any arity up to the IR maximum; it is
/// first decomposed to 2-input gates, then covered with depth-optimal
/// priority cuts (area-flow tie-breaking).
///
/// # Errors
///
/// Propagates netlist validation errors.
///
/// # Panics
///
/// Panics if `opts.lut_size` is outside `2..=6`.
pub fn map_to_lut4(netlist: &Netlist, opts: &MapOptions) -> Result<Netlist, NetlistError> {
    Ok(map_with_report(netlist, opts)?.netlist)
}

/// Like [`map_to_lut4`] but also returns mapping statistics.
///
/// # Errors
///
/// Propagates netlist validation errors.
///
/// # Panics
///
/// Panics if `opts.lut_size` is outside `2..=6`.
pub fn map_with_report(netlist: &Netlist, opts: &MapOptions) -> Result<MapReport, NetlistError> {
    Ok(map_with_memo(netlist, opts, None)?.0)
}

/// Reusable mapping state retained between incremental recompiles: the
/// per-source-node decomposition [`Segment`]s and the full cut database of
/// the previous run, keyed by the options they were built with.
#[derive(Debug, Clone)]
pub struct MapMemo {
    segments: Vec<Segment>,
    db: CutDatabase,
    lut_size: usize,
    max_cuts: usize,
}

/// Old↔new source-node correspondence for [`map_with_memo`].
///
/// `old_source[i]` names, for node `i` of the netlist being mapped, the
/// corresponding node of the netlist the [`MapMemo`] was built from —
/// `None` for nodes that are new, edited, or in the *combinational fanout
/// closure* of any edit (including the edit frontier, whose fanout counts
/// feed the area-flow cost). The mapping must be monotone where `Some`.
#[derive(Debug, Clone, Default)]
pub struct ReusePlan {
    /// Per new-netlist node: its counterpart in the memo's source netlist.
    pub old_source: Vec<Option<NodeId>>,
}

/// How much of an incremental mapping run was reused.
#[derive(Debug, Clone, Copy, Default)]
pub struct MapReuseStats {
    /// Two-input-space nodes in this run.
    pub two_nodes: usize,
    /// LUT nodes whose cut lists were translated from the memo instead of
    /// recomputed.
    pub cuts_reused: usize,
}

/// Like [`map_with_report`], but optionally reuses cut-enumeration work
/// from a previous run on an almost-identical netlist, and returns a
/// [`MapMemo`] for the *next* incremental run.
///
/// With `prev = Some((memo, plan))`, nodes the plan marks as corresponded
/// get their priority-cut lists translated from the memo (bit-identical to
/// recomputation — see [`enumerate_incremental`]); everything else,
/// including the whole demand-driven cover extraction and cleanup, runs
/// exactly as in a from-scratch [`map_with_report`], so the mapped netlist
/// is bit-identical to a full recompile by construction. A memo built with
/// different options, or a plan of the wrong length, is ignored (full
/// recompute, stats report zero reuse).
///
/// # Errors
///
/// Propagates netlist validation errors.
///
/// # Panics
///
/// Panics if `opts.lut_size` is outside `2..=6`.
pub fn map_with_memo(
    netlist: &Netlist,
    opts: &MapOptions,
    prev: Option<(&MapMemo, &ReusePlan)>,
) -> Result<(MapReport, MapMemo, MapReuseStats), NetlistError> {
    assert!(
        (2..=6).contains(&opts.lut_size),
        "lut size {} outside supported range 2..=6",
        opts.lut_size
    );
    let cut_opts = CutOptions {
        k: opts.lut_size,
        max_cuts: opts.max_cuts,
    };
    let (two, segments) = to_two_input_with_segments(netlist)?;
    let mut stats = MapReuseStats {
        two_nodes: two.len(),
        cuts_reused: 0,
    };
    let db = match prev.filter(|(memo, plan)| {
        memo.lut_size == opts.lut_size
            && memo.max_cuts == opts.max_cuts
            && plan.old_source.len() == netlist.len()
    }) {
        Some((memo, plan)) => {
            // Lift the source-level correspondence to two-space by zipping
            // equal-shaped segments.
            let mut old_of: Vec<Option<u32>> = vec![None; two.len()];
            for (i, seg_new) in segments.iter().enumerate() {
                let Some(old) = plan.old_source[i] else {
                    continue;
                };
                let Some(&seg_old) = memo.segments.get(old.index()) else {
                    continue;
                };
                if seg_new.len != seg_old.len {
                    continue;
                }
                for k in 0..seg_new.len {
                    old_of[(seg_new.start + k) as usize] = Some(seg_old.start + k);
                }
            }
            let (db, reused) = enumerate_incremental(&two, &cut_opts, &memo.db, &old_of)?;
            stats.cuts_reused = reused;
            db
        }
        None => enumerate(&two, &cut_opts)?,
    };

    let report = extract_cover(&two, &db, opts)?;
    let memo = MapMemo {
        segments,
        db,
        lut_size: opts.lut_size,
        max_cuts: opts.max_cuts,
    };
    Ok((report, memo, stats))
}

/// Demand-driven cover extraction over an enumerated cut database — the
/// back half of every mapping run, incremental or not.
fn extract_cover(
    two: &Netlist,
    db: &CutDatabase,
    opts: &MapOptions,
) -> Result<MapReport, NetlistError> {
    let mut out = Netlist::new(two.name());
    let mut map: Vec<Option<NodeId>> = vec![None; two.len()];

    // Sources first.
    for &pi in two.inputs() {
        if let NodeKind::Input { name } = two.node(pi).kind() {
            map[pi.index()] = Some(out.add_input(name.clone()));
        }
    }
    for &ff in two.dffs() {
        if let NodeKind::Dff { init, .. } = two.node(ff).kind() {
            map[ff.index()] = Some(out.add_dff(*init));
        }
    }

    // Roots: primary-output drivers and flip-flop data pins.
    let mut worklist: Vec<NodeId> = Vec::new();
    for (_, id) in two.outputs() {
        worklist.push(*id);
    }
    for &ff in two.dffs() {
        if let NodeKind::Dff { d: Some(src), .. } = two.node(ff).kind() {
            worklist.push(*src);
        }
    }

    // Demand-driven cover extraction. A node is realized with its best
    // non-trivial cut; the cut leaves become new demands.
    while let Some(id) = worklist.pop() {
        if map[id.index()].is_some() {
            continue;
        }
        match two.node(id).kind() {
            NodeKind::Const { value } => {
                map[id.index()] = Some(out.add_const(*value));
            }
            NodeKind::Lut { .. } => {
                let cut = db.cuts[id.index()]
                    .iter()
                    .find(|c| c.leaves != vec![id])
                    .expect("lut nodes have at least one real cut");
                let leaves = cut.leaves.clone();
                if leaves.iter().all(|l| map[l.index()].is_some()) {
                    let table = cone_truth_table(two, id, &leaves);
                    let fanins: Vec<NodeId> = leaves
                        .iter()
                        .map(|l| map[l.index()].expect("checked above"))
                        .collect();
                    // Constant or single-input cones degenerate gracefully.
                    let node = out.add_lut(table, fanins)?;
                    map[id.index()] = Some(node);
                } else {
                    worklist.push(id);
                    for l in &leaves {
                        if map[l.index()].is_none() {
                            worklist.push(*l);
                        }
                    }
                }
            }
            NodeKind::Input { .. } | NodeKind::Dff { .. } => {
                unreachable!("sources were pre-mapped")
            }
        }
    }

    for &ff in two.dffs() {
        if let NodeKind::Dff { d: Some(src), .. } = two.node(ff).kind() {
            out.set_dff_input(
                map[ff.index()].expect("flip-flop mapped"),
                map[src.index()].expect("root demand was mapped"),
            )?;
        }
    }
    for (name, id) in two.outputs() {
        out.set_output(
            name.clone(),
            map[id.index()].expect("root demand was mapped"),
        );
    }

    let final_netlist = if opts.cleanup {
        pl_netlist::opt::cleanup(&out)?
    } else {
        out
    };
    let depth = pl_netlist::analyze::depth(&final_netlist)?;
    Ok(MapReport {
        luts_before: two.num_luts(),
        luts_after: final_netlist.num_luts(),
        depth,
        netlist: final_netlist,
    })
}

/// Computes the truth table of the cone rooted at `root` with the given
/// leaves, by composing node tables bottom-up.
fn cone_truth_table(netlist: &Netlist, root: NodeId, leaves: &[NodeId]) -> TruthTable {
    let k = leaves.len();
    let mut memo: HashMap<NodeId, TruthTable> = HashMap::new();
    for (i, &l) in leaves.iter().enumerate() {
        memo.insert(l, TruthTable::var(k, i));
    }
    build_tt(netlist, root, k, &mut memo)
}

fn build_tt(
    netlist: &Netlist,
    node: NodeId,
    k: usize,
    memo: &mut HashMap<NodeId, TruthTable>,
) -> TruthTable {
    if let Some(t) = memo.get(&node) {
        return *t;
    }
    let t = match netlist.node(node).kind() {
        NodeKind::Const { value } => {
            if *value {
                TruthTable::ones(k)
            } else {
                TruthTable::zero(k)
            }
        }
        NodeKind::Lut { table, inputs } => {
            let fanin_tts: Vec<TruthTable> = inputs
                .iter()
                .map(|&f| build_tt(netlist, f, k, memo))
                .collect();
            table.compose(k, &fanin_tts)
        }
        NodeKind::Input { .. } | NodeKind::Dff { .. } => {
            unreachable!("cone traversal must stop at cut leaves (node {node})")
        }
    };
    memo.insert(node, t);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::to_two_input;
    use pl_netlist::eval::Evaluator;
    use pl_rtl::Module;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_equivalent(a: &Netlist, b: &Netlist, cycles: usize, seed: u64) {
        assert_eq!(a.inputs().len(), b.inputs().len());
        let mut sa = Evaluator::new(a).unwrap();
        let mut sb = Evaluator::new(b).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for c in 0..cycles {
            let ins: Vec<bool> = (0..a.inputs().len()).map(|_| rng.gen()).collect();
            assert_eq!(
                sa.step(&ins).unwrap(),
                sb.step(&ins).unwrap(),
                "cycle {c} diverged"
            );
        }
    }

    #[test]
    fn maps_adder_and_preserves_function() {
        let mut m = Module::new("add8");
        let a = m.input_word("a", 8);
        let b = m.input_word("b", 8);
        let s = m.add(&a, &b);
        m.output_word("s", &s);
        let gates = m.elaborate().unwrap();
        let report = map_with_report(&gates, &MapOptions::default()).unwrap();
        assert!(report.luts_after <= report.luts_before);
        assert_equivalent(&gates, &report.netlist, 128, 11);
        // every LUT is ≤4 inputs
        for (_, node) in report.netlist.iter() {
            if let Some(t) = node.lut_table() {
                assert!(t.num_vars() <= 4);
            }
        }
    }

    #[test]
    fn maps_sequential_accumulator() {
        let mut m = Module::new("acc");
        let en = m.input_bit("en");
        let x = m.input_word("x", 6);
        let acc = m.reg_word("acc", 6, 0);
        let sum = m.add(&acc.q(), &x);
        m.next_when(&acc, en, &sum);
        m.output_word("acc", &acc.q());
        let gates = m.elaborate().unwrap();
        let mapped = map_to_lut4(&gates, &MapOptions::default()).unwrap();
        assert_equivalent(&gates, &mapped, 200, 12);
    }

    #[test]
    fn depth_improves_over_two_input_form() {
        let mut m = Module::new("wide_and");
        let x = m.input_word("x", 16);
        let y = m.and_reduce(&x);
        m.output_bit("y", y);
        let gates = m.elaborate().unwrap();
        let two = to_two_input(&gates).unwrap();
        let report = map_with_report(&gates, &MapOptions::default()).unwrap();
        let depth2 = pl_netlist::analyze::depth(&two).unwrap();
        assert!(
            report.depth < depth2,
            "mapping should reduce depth ({} vs {depth2})",
            report.depth
        );
        assert_eq!(report.depth, 2); // 16-input AND in 2 LUT4 levels
    }

    #[test]
    fn lut6_target_works_too() {
        let mut m = Module::new("parity");
        let x = m.input_word("x", 12);
        let y = m.xor_reduce(&x);
        m.output_bit("y", y);
        let gates = m.elaborate().unwrap();
        let opts = MapOptions {
            lut_size: 6,
            ..MapOptions::default()
        };
        let mapped = map_to_lut4(&gates, &opts).unwrap();
        assert_equivalent(&gates, &mapped, 64, 13);
        assert_eq!(pl_netlist::analyze::depth(&mapped).unwrap(), 2);
    }

    #[test]
    fn cone_truth_table_simple() {
        let mut n = Netlist::new("cone");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let ab = n.add_and2(a, b).unwrap();
        let f = n.add_or2(ab, c).unwrap();
        let tt = cone_truth_table(&n, f, &[a, b, c]);
        let want = TruthTable::from_fn(3, |m| ((m & 1 != 0) && (m & 2 != 0)) || (m & 4 != 0));
        assert_eq!(tt, want);
    }

    #[test]
    fn output_driven_by_input_maps() {
        let mut m = Module::new("wire");
        let a = m.input_bit("a");
        m.output_bit("y", a);
        let gates = m.elaborate().unwrap();
        let mapped = map_to_lut4(&gates, &MapOptions::default()).unwrap();
        assert_equivalent(&gates, &mapped, 4, 14);
    }

    #[test]
    fn incremental_map_is_bit_identical_to_fresh() {
        use pl_netlist::eco::comb_fanout_closure;
        // Two disjoint cones so an edit in one leaves reusable work in the
        // other.
        let mut m = Module::new("two_cones");
        let a = m.input_word("a", 6);
        let b = m.input_word("b", 6);
        let s = m.add(&a, &b);
        m.output_word("s", &s);
        let x = m.input_word("x", 8);
        let y = m.and_reduce(&x);
        m.output_bit("y", y);
        let gates = m.elaborate().unwrap();

        let opts = MapOptions::default();
        let (full0, memo, _) = map_with_memo(&gates, &opts, None).unwrap();

        // Edit: complement the table of the first LUT.
        let mut edited = gates.clone();
        let victim = edited
            .iter()
            .find(|(_, n)| n.is_lut())
            .map(|(id, _)| id)
            .unwrap();
        let table = *edited.node(victim).lut_table().unwrap();
        let flipped = TruthTable::from_fn(table.num_vars(), |m| !table.eval(m));
        let dirty = edited.replace_lut_table(victim, flipped).unwrap();

        // Reuse plan: identity correspondence outside the combinational
        // fanout closure of the edit (cone + frontier).
        let seeds: Vec<NodeId> = dirty
            .nodes()
            .iter()
            .chain(dirty.frontier().iter())
            .copied()
            .collect();
        let closure = comb_fanout_closure(&edited, &seeds);
        let plan = ReusePlan {
            old_source: (0..edited.len())
                .map(|i| {
                    let id = NodeId::from_index(i);
                    (!closure.contains(&id)).then_some(id)
                })
                .collect(),
        };

        let (incr, _, stats) = map_with_memo(&edited, &opts, Some((&memo, &plan))).unwrap();
        let fresh = map_with_report(&edited, &opts).unwrap();
        assert_eq!(
            incr.netlist, fresh.netlist,
            "incremental map must be bit-identical"
        );
        assert_eq!(incr.depth, fresh.depth);
        assert_eq!(incr.luts_after, fresh.luts_after);
        assert!(
            stats.cuts_reused > 0,
            "untouched cone should reuse cut lists"
        );
        assert_ne!(
            incr.netlist, full0.netlist,
            "the edit must actually change the map"
        );
    }

    #[test]
    fn random_logic_equivalence_sweep() {
        // A mixed comb/seq design exercising muxes, compares, xors.
        let mut m = Module::new("mix");
        let a = m.input_word("a", 5);
        let b = m.input_word("b", 5);
        let s = m.input_bit("s");
        let r = m.reg_word("r", 5, 3);
        let sum = m.add(&a, &r.q());
        let diff = m.sub(&b, &a);
        let sel = m.mux_w(s, &sum, &diff);
        let lt = m.lt_u(&a, &b);
        let nxt = m.mux_w(lt, &sel, &b);
        m.next(&r, &nxt);
        m.output_word("r", &r.q());
        m.output_bit("lt", lt);
        let gates = m.elaborate().unwrap();
        let mapped = map_to_lut4(&gates, &MapOptions::default()).unwrap();
        assert_equivalent(&gates, &mapped, 300, 15);
    }
}
