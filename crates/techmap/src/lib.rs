//! Cut-based LUT technology mapping for the phased-logic flow.
//!
//! The DATE 2002 paper's phased-logic gate is built around a 4-input LUT
//! ("since all PL gates in the current implementation depend only on 4 input
//! signals", §3). This crate converts an arbitrary gate-level
//! [`pl_netlist::Netlist`] into an equivalent network of LUTs of at most a
//! configurable arity (default 4):
//!
//! 1. [`decompose::to_two_input`] Shannon-decomposes every wider LUT into
//!    1–2-input gates, giving the mapper freedom to rediscover good cones;
//! 2. [`cuts`] enumerates priority *k-feasible cuts* per node;
//! 3. [`map_to_lut4`] runs depth-oriented cut selection with area-flow
//!    tie-breaking and extracts the mapped cover, computing each cone's
//!    truth table.
//!
//! Mapped netlists are functionally equivalent to their source (verified by
//! randomized equivalence tests) and are the input to `pl-core`'s
//! synchronous→phased-logic mapping.
//!
//! # Example
//!
//! ```
//! use pl_rtl::Module;
//! use pl_techmap::{map_to_lut4, MapOptions};
//!
//! let mut m = Module::new("add4");
//! let a = m.input_word("a", 4);
//! let b = m.input_word("b", 4);
//! let s = m.add(&a, &b);
//! m.output_word("s", &s);
//! let gates = m.elaborate().unwrap();
//! let mapped = map_to_lut4(&gates, &MapOptions::default()).unwrap();
//! assert!(mapped.iter().all(|(_, n)| n.lut_table().map_or(true, |t| t.num_vars() <= 4)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cuts;
pub mod decompose;
mod mapper;

pub use mapper::{
    map_to_lut4, map_with_memo, map_with_report, MapMemo, MapOptions, MapReport, MapReuseStats,
    ReusePlan,
};
