//! Latency measurement and aggregation.

use pl_core::PlNetlist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::delay::DelayModel;
use crate::engine::PlSimulator;
use crate::error::SimError;
use crate::queue::QueueKind;

/// Aggregate of per-vector latencies (ns).
///
/// Table 3 of the paper reports the *average* of this distribution over
/// 100 random vectors per benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStats {
    /// Per-vector latencies in injection order.
    pub per_vector: Vec<f64>,
}

impl LatencyStats {
    /// Builds stats from raw samples.
    #[must_use]
    pub fn new(per_vector: Vec<f64>) -> Self {
        Self { per_vector }
    }

    /// Number of vectors measured.
    #[must_use]
    pub fn len(&self) -> usize {
        self.per_vector.len()
    }

    /// Whether any samples exist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.per_vector.is_empty()
    }

    /// Mean latency.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.per_vector.is_empty() {
            0.0
        } else {
            self.per_vector.iter().sum::<f64>() / self.per_vector.len() as f64
        }
    }

    /// Smallest sample; `0.0` when there are no samples, agreeing with
    /// [`LatencyStats::max`] on the n=0 case (an empty run used to report
    /// the fold identity `min inf, max 0.00`).
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.per_vector.is_empty() {
            return 0.0;
        }
        self.per_vector
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Largest sample; `0.0` when there are no samples (latencies are
    /// non-negative, so `0.0` is the fold identity).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.per_vector.iter().copied().fold(0.0, f64::max)
    }

    /// **Population** standard deviation (divides the squared deviations
    /// by `n`, not the sample estimator's `n - 1`): the per-vector
    /// latencies are the complete population of the run being reported,
    /// not a sample from a larger one. `0.0` for fewer than two samples.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        if self.per_vector.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self
            .per_vector
            .iter()
            .map(|x| (x - m) * (x - m))
            .sum::<f64>()
            / self.per_vector.len() as f64;
        var.sqrt()
    }
}

impl std::fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return write!(f, "no vectors measured (n=0)");
        }
        write!(
            f,
            "mean {:.2} ns (min {:.2}, max {:.2}, σ {:.2}, n={})",
            self.mean(),
            self.min(),
            self.max(),
            self.std_dev(),
            self.len()
        )
    }
}

/// The measurement protocol's input vectors: `count` uniformly random
/// vectors of `n_inputs` bits from a seeded [`StdRng`]. This is the one
/// definition of the vector stream — [`measure_latency`] draws from it,
/// and callers that need the vectors themselves (e.g. to cross-check
/// against a reference simulator) use it instead of replicating the RNG
/// recipe.
#[must_use]
pub fn random_vectors(n_inputs: usize, count: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| (0..n_inputs).map(|_| rng.gen()).collect())
        .collect()
}

/// Runs the given input vectors through a netlist on one simulator (state
/// carries across vectors) and returns the outputs per vector plus
/// latency statistics.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn measure_latency_on(
    pl: &PlNetlist,
    delays: &DelayModel,
    vectors: &[Vec<bool>],
) -> Result<(Vec<Vec<bool>>, LatencyStats), SimError> {
    measure_latency_on_with_queue(pl, delays, vectors, QueueKind::default())
}

/// [`measure_latency_on`] with an explicit event-queue backend for the
/// measuring simulator. Outputs and latencies are backend-invariant (the
/// backend only changes queue-operation cost, never the event schedule).
///
/// # Errors
///
/// Propagates simulator failures.
pub fn measure_latency_on_with_queue(
    pl: &PlNetlist,
    delays: &DelayModel,
    vectors: &[Vec<bool>],
    queue: QueueKind,
) -> Result<(Vec<Vec<bool>>, LatencyStats), SimError> {
    let mut sim = PlSimulator::with_queue(pl, delays.clone(), queue)?;
    let mut outputs = Vec::with_capacity(vectors.len());
    let mut lat = Vec::with_capacity(vectors.len());
    for v in vectors {
        let r = sim.run_vector(v)?;
        outputs.push(r.outputs);
        lat.push(r.latency);
    }
    Ok((outputs, LatencyStats::new(lat)))
}

/// Runs `count` uniformly random input vectors (seeded) through a netlist
/// and returns the outputs per vector plus latency statistics — the paper's
/// measurement protocol ("average statistics of 100 simulations where the
/// input vectors were randomly generated", §4).
///
/// # Errors
///
/// Propagates simulator failures.
pub fn measure_latency(
    pl: &PlNetlist,
    delays: &DelayModel,
    count: usize,
    seed: u64,
) -> Result<(Vec<Vec<bool>>, LatencyStats), SimError> {
    let vectors = random_vectors(pl.input_gates().len(), count, seed);
    measure_latency_on(pl, delays, &vectors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_netlist::Netlist;

    #[test]
    fn stats_arithmetic() {
        let s = LatencyStats::new(vec![1.0, 2.0, 3.0]);
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
        assert!(s.std_dev() > 0.0);
        assert_eq!(s.len(), 3);
        assert!(s.to_string().contains("mean 2.00"));
    }

    /// The n=0 case must be internally consistent: every aggregate is 0.0
    /// (`min()` used to leak its fold identity, `f64::INFINITY`) and the
    /// Display form says so instead of printing `min inf, max 0.00`.
    #[test]
    fn empty_stats() {
        let s = LatencyStats::new(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0, "min() must agree with max() on n=0");
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        let shown = s.to_string();
        assert_eq!(shown, "no vectors measured (n=0)");
        assert!(!shown.contains("inf"), "no infinity may leak: {shown}");
    }

    #[test]
    fn single_sample_stats() {
        let s = LatencyStats::new(vec![7.25]);
        assert!(!s.is_empty());
        assert_eq!(s.len(), 1);
        assert_eq!(s.mean(), 7.25);
        assert_eq!(s.min(), 7.25);
        assert_eq!(s.max(), 7.25);
        assert_eq!(s.std_dev(), 0.0, "one sample has no spread");
        assert_eq!(
            s.to_string(),
            "mean 7.25 ns (min 7.25, max 7.25, σ 0.00, n=1)"
        );
    }

    /// Population (not sample) deviation: divides by n, so [2, 4] has
    /// σ = 1, not the sample estimator's √2.
    #[test]
    fn std_dev_is_population() {
        let s = LatencyStats::new(vec![2.0, 4.0]);
        assert!((s.std_dev() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measure_runs_seeded_and_reproducibly() {
        let mut n = Netlist::new("xor");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_xor2(a, b).unwrap();
        n.set_output("y", g);
        let pl = PlNetlist::from_sync(&n).unwrap();
        let (o1, s1) = measure_latency(&pl, &DelayModel::default(), 20, 42).unwrap();
        let (o2, s2) = measure_latency(&pl, &DelayModel::default(), 20, 42).unwrap();
        assert_eq!(o1, o2);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 20);
        assert!(s1.mean() > 0.0);
    }
}
