//! Component delay model.

/// Per-component delays (nanoseconds) of the PL cell of the paper's
/// Figure 1, plus the early-evaluation overhead of Figure 2.
///
/// The defaults are nominal FPGA-cell figures chosen so that one gate
/// "firing" costs 2.4 ns; absolute values are testbed-specific (the paper
/// used a custom cell library) — relative comparisons are what matter.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayModel {
    /// Muller C-element rendezvous (input-phase completion detection).
    pub c_element: f64,
    /// LUT4 function evaluation.
    pub lut: f64,
    /// LEDR output latch.
    pub latch: f64,
    /// Interconnect delay per arc.
    pub wire: f64,
    /// Extra delay an EE master pays on **every** firing for its additional
    /// Muller C-element pair (the cause of the paper's occasional slowdowns:
    /// "some benchmarks suffered a slight degradation … because a
    /// master/trigger pair requires the use of an additional Muller-C
    /// element", §4).
    pub ee_overhead: f64,
}

impl Default for DelayModel {
    fn default() -> Self {
        Self { c_element: 0.6, lut: 1.4, latch: 0.4, wire: 0.3, ee_overhead: 0.7 }
    }
}

impl DelayModel {
    /// Full firing latency of an ordinary PL gate:
    /// C-element + LUT + output latch.
    #[must_use]
    pub fn gate_delay(&self) -> f64 {
        self.c_element + self.lut + self.latch
    }

    /// Firing latency of an EE master on its normal (all-inputs) path.
    #[must_use]
    pub fn ee_master_delay(&self) -> f64 {
        self.gate_delay() + self.ee_overhead
    }

    /// Latency from the efire token's arrival to early output production:
    /// the subset inputs already sit at the LUT, so only the EE C-element
    /// and the output latch remain.
    #[must_use]
    pub fn ee_early_delay(&self) -> f64 {
        self.ee_overhead + self.latch
    }

    /// A zero-delay model — useful for functional-only simulation.
    #[must_use]
    pub fn zero() -> Self {
        Self { c_element: 0.0, lut: 0.0, latch: 0.0, wire: 0.0, ee_overhead: 0.0 }
    }

    /// Scales every component by `factor` (e.g. to model a slower process).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            c_element: self.c_element * factor,
            lut: self.lut * factor,
            latch: self.latch * factor,
            wire: self.wire * factor,
            ee_overhead: self.ee_overhead * factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_gate_delay_is_sum() {
        let d = DelayModel::default();
        assert!((d.gate_delay() - 2.4).abs() < 1e-12);
        assert!(d.ee_master_delay() > d.gate_delay());
        assert!(d.ee_early_delay() < d.gate_delay());
    }

    #[test]
    fn scaling() {
        let d = DelayModel::default().scaled(2.0);
        assert!((d.gate_delay() - 4.8).abs() < 1e-12);
    }

    #[test]
    fn zero_model() {
        let d = DelayModel::zero();
        assert_eq!(d.gate_delay(), 0.0);
        assert_eq!(d.ee_early_delay(), 0.0);
    }
}
