//! Component delay model and its integer-tick projection.
//!
//! The discrete-event engine keys its event queue on **integer femtosecond
//! ticks** ([`TICKS_PER_NS`] per nanosecond) rather than `f64` nanoseconds:
//! integer keys compare exactly (no `total_cmp` tie-break fragility, no
//! accumulated rounding drift across long streams) and pack into the event
//! queue's `(tick, seq)` ordering key. [`DelayModel::to_ticks`] quantizes a
//! model once, up front; with the default resolution a femtosecond grid is
//! six orders of magnitude below the smallest component delay, so the
//! quantization error on any reported latency is ≤ 0.5 fs per event hop.

/// Per-component delays (nanoseconds) of the PL cell of the paper's
/// Figure 1, plus the early-evaluation overhead of Figure 2.
///
/// The defaults are nominal FPGA-cell figures chosen so that one gate
/// "firing" costs 2.4 ns; absolute values are testbed-specific (the paper
/// used a custom cell library) — relative comparisons are what matter.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayModel {
    /// Muller C-element rendezvous (input-phase completion detection).
    pub c_element: f64,
    /// LUT4 function evaluation.
    pub lut: f64,
    /// LEDR output latch.
    pub latch: f64,
    /// Interconnect delay per arc.
    pub wire: f64,
    /// Extra delay an EE master pays on **every** firing for its additional
    /// Muller C-element pair (the cause of the paper's occasional slowdowns:
    /// "some benchmarks suffered a slight degradation … because a
    /// master/trigger pair requires the use of an additional Muller-C
    /// element", §4).
    pub ee_overhead: f64,
}

impl Default for DelayModel {
    fn default() -> Self {
        Self {
            c_element: 0.6,
            lut: 1.4,
            latch: 0.4,
            wire: 0.3,
            ee_overhead: 0.7,
        }
    }
}

impl DelayModel {
    /// Full firing latency of an ordinary PL gate:
    /// C-element + LUT + output latch.
    #[must_use]
    pub fn gate_delay(&self) -> f64 {
        self.c_element + self.lut + self.latch
    }

    /// Firing latency of an EE master on its normal (all-inputs) path.
    #[must_use]
    pub fn ee_master_delay(&self) -> f64 {
        self.gate_delay() + self.ee_overhead
    }

    /// Latency from the efire token's arrival to early output production:
    /// the subset inputs already sit at the LUT, so only the EE C-element
    /// and the output latch remain.
    #[must_use]
    pub fn ee_early_delay(&self) -> f64 {
        self.ee_overhead + self.latch
    }

    /// A zero-delay model — useful for functional-only simulation.
    #[must_use]
    pub fn zero() -> Self {
        Self {
            c_element: 0.0,
            lut: 0.0,
            latch: 0.0,
            wire: 0.0,
            ee_overhead: 0.0,
        }
    }

    /// Scales every component by `factor` (e.g. to model a slower process).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            c_element: self.c_element * factor,
            lut: self.lut * factor,
            latch: self.latch * factor,
            wire: self.wire * factor,
            ee_overhead: self.ee_overhead * factor,
        }
    }

    /// Quantizes the model onto the integer femtosecond grid the
    /// discrete-event engine runs on.
    ///
    /// # Panics
    ///
    /// Panics if any component delay is negative or non-finite.
    #[must_use]
    pub fn to_ticks(&self) -> TickDelays {
        TickDelays {
            c_element: ns_to_ticks(self.c_element),
            gate: ns_to_ticks(self.gate_delay()),
            ee_master: ns_to_ticks(self.ee_master_delay()),
            ee_early: ns_to_ticks(self.ee_early_delay()),
            wire: ns_to_ticks(self.wire),
        }
    }
}

/// Event-queue ticks per nanosecond (1 tick = 1 fs).
pub const TICKS_PER_NS: u64 = 1_000_000;

/// Converts a nanosecond delay to integer ticks (round-to-nearest).
///
/// # Panics
///
/// Panics on negative or non-finite input, and on delays so large that
/// accumulated tick arithmetic could overflow `u64` (≥ 2⁶² fs ≈ 53 days
/// of simulated time per component delay) — the old `f64` engine would
/// have degraded gracefully there, the integer clock must refuse loudly.
#[must_use]
pub fn ns_to_ticks(ns: f64) -> u64 {
    assert!(
        ns.is_finite() && ns >= 0.0,
        "delays must be finite and non-negative, got {ns}"
    );
    let ticks = (ns * TICKS_PER_NS as f64).round();
    assert!(
        ticks < (1u64 << 62) as f64,
        "delay {ns} ns overflows the femtosecond event clock"
    );
    ticks as u64
}

/// Converts integer ticks back to nanoseconds (for reporting).
#[must_use]
pub fn ticks_to_ns(ticks: u64) -> f64 {
    ticks as f64 / TICKS_PER_NS as f64
}

/// A [`DelayModel`] quantized to integer femtosecond ticks, with the
/// composite per-path delays the engine posts pre-added.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickDelays {
    /// Muller C-element rendezvous (output gates, EE cleanup).
    pub c_element: u64,
    /// Ordinary gate firing: C-element + LUT + latch.
    pub gate: u64,
    /// EE-master normal-path firing: gate + EE overhead.
    pub ee_master: u64,
    /// EE-master early-path firing: EE overhead + latch.
    pub ee_early: u64,
    /// Interconnect delay per arc.
    pub wire: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_gate_delay_is_sum() {
        let d = DelayModel::default();
        assert!((d.gate_delay() - 2.4).abs() < 1e-12);
        assert!(d.ee_master_delay() > d.gate_delay());
        assert!(d.ee_early_delay() < d.gate_delay());
    }

    #[test]
    fn scaling() {
        let d = DelayModel::default().scaled(2.0);
        assert!((d.gate_delay() - 4.8).abs() < 1e-12);
    }

    #[test]
    fn zero_model() {
        let d = DelayModel::zero();
        assert_eq!(d.gate_delay(), 0.0);
        assert_eq!(d.ee_early_delay(), 0.0);
    }

    #[test]
    fn tick_quantization_round_trips_default_model() {
        let t = DelayModel::default().to_ticks();
        assert_eq!(t.c_element, 600_000);
        assert_eq!(t.gate, 2_400_000);
        assert_eq!(t.ee_master, 3_100_000);
        assert_eq!(t.ee_early, 1_100_000);
        assert_eq!(t.wire, 300_000);
        assert_eq!(ticks_to_ns(t.gate), 2.4);
        assert_eq!(DelayModel::zero().to_ticks().gate, 0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_delay_rejected_at_quantization() {
        let d = DelayModel {
            wire: -1.0,
            ..DelayModel::default()
        };
        let _ = d.to_ticks();
    }
}
