//! Discrete-event simulation of phased-logic netlists.
//!
//! This crate measures what the paper's Table 3 reports: "the average delay
//! time between the presence of a stable input vector and a stable output
//! word" (§4), for phased-logic netlists with and without early evaluation.
//!
//! * [`PlSimulator`] plays the marked-graph token game event-by-event under
//!   a configurable [`DelayModel`] (Muller C-element, LUT4, latches, wires,
//!   and the EE overhead C-element). Early-evaluation masters follow the
//!   paper's Figure 2 semantics: when the paired trigger fires with value 1
//!   the master produces its output before its slow inputs arrive, then
//!   performs the token cleanup when they do. Safety (an arc never holds
//!   two tokens) is asserted dynamically on every delivery.
//!
//!   The engine core is integer-timed: events are keyed on `u64`
//!   femtosecond ticks ([`TICKS_PER_NS`], quantized once via
//!   [`DelayModel::to_ticks`]) in a pluggable [`queue::EventQueue`]
//!   ordered by `(tick, seq)` — a binary min-heap by default
//!   (steady-state allocation-free: capacity is retained across rounds),
//!   or a calendar/ladder queue ([`QueueKind::Ladder`], amortized O(1)
//!   queue ops on the engine's dense near-monotonic schedules, at the
//!   cost of small per-bucket allocations) selected via
//!   [`PlSimulator::with_queue`], bit-identical results either way;
//!   topology queries go through the frozen CSR adjacency
//!   ([`pl_core::PlAdjacency`]: pin-indexed data-in arcs, ack in-arcs,
//!   out-arcs pre-split into value/ack lists); and firing readiness is
//!   tracked incrementally in per-gate pin bitsets plus an ack counter, so
//!   no arc list is ever re-scanned. One firing's simultaneous token
//!   deliveries dispatch as a single batched queue event. See
//!   [`reference`] for the retained pre-refactor engine that pins these
//!   semantics differentially (`tests/engine_equivalence.rs`) and anchors
//!   the speedup numbers in `BENCH_sim.json`.
//! * [`parallel`] scatter/gathers multi-vector sweeps across worker
//!   threads — independent streams ([`sweep_streams`]), reset-per-shard
//!   single streams ([`sweep_sharded`]), and the checkpoint-handoff
//!   pipelined single stream ([`sweep_pipelined`]). Outcomes merge
//!   deterministically in stream/vector order (bit-identical to the
//!   sequential run for any worker count and window size).
//!   [`sweep_resumable`] is the pipelined sweep made crash-resumable:
//!   window-boundary checkpoints ([`checkpoint::wire`]) plus a
//!   completed-window journal on disk, kill/resume recovery, bounded
//!   worker retry, and in-process degradation — still bit-identical.
//! * [`SimCheckpoint`] captures a simulator's complete dynamic state
//!   between vectors ([`PlSimulator::snapshot`]); a simulator resumed from
//!   it ([`PlSimulator::resume_from`] / [`PlSimulator::restore`]) is
//!   bit-identical to the uninterrupted run — the state-handoff primitive
//!   behind the pipelined sweep.
//! * [`SyncSimulator`] is the cycle-accurate synchronous reference; the
//!   [`verify_equivalence`] helper proves that PL mapping and early
//!   evaluation change *timing only*, never values.
//! * [`LatencyStats`] aggregates per-vector latencies into the numbers the
//!   benchmark harness prints.
//!
//! # Word-parallel batch simulation
//!
//! The engine is generic over a [`LaneWord`] payload: [`PlSimulator`] is
//! the 1-lane (`bool`) instantiation, [`BatchSimulator`] the 64-lane
//! (`u64`) one, which marches 64 independent input vectors through a
//! *single* event flow — one schedule, one queue, with every gate
//! evaluation computing all 64 lanes at once by bitwise cofactor
//! reduction over the packed LUT truth table. This works because the
//! token game (which gate fires when) is value-independent in a marked
//! graph, so all lanes share the schedule and only the values are
//! per-lane; see [`lane`] and the engine module docs for the invariants.
//! [`BatchSimulator::run_lanes`] packs up to 64 scalar streams, runs them
//! in lockstep, and unpacks per-lane outcomes that are bit-identical,
//! vector for vector, to 64 sequential scalar runs. Batch sweeps
//! ([`sweep_streams_batch`], [`sweep_sharded_batch`]) scatter whole
//! 64-stream blocks across workers.
//!
//! # Example
//!
//! ```
//! use pl_core::PlNetlist;
//! use pl_netlist::Netlist;
//! use pl_sim::{DelayModel, PlSimulator};
//!
//! let mut n = Netlist::new("andgate");
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let g = n.add_and2(a, b)?;
//! n.set_output("y", g);
//! let pl = PlNetlist::from_sync(&n)?;
//! let mut sim = PlSimulator::new(&pl, DelayModel::default())?;
//! let out = sim.run_vector(&[true, true])?;
//! assert_eq!(out.outputs, vec![true]);
//! assert!(out.latency > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
mod delay;
mod engine;
mod error;
pub mod lane;
pub mod parallel;
pub mod queue;
pub mod reference;
mod stats;
mod sync;
pub mod trace;

pub use checkpoint::{Fnv64, SimCheckpoint};
pub use delay::{ns_to_ticks, ticks_to_ns, DelayModel, TickDelays, TICKS_PER_NS};
pub use engine::{BatchSimulator, LaneSimulator, PlSimulator, StreamOutcome, VectorOutcome};
pub use error::SimError;
pub use lane::{pack_lanes, LaneWord};
pub use parallel::{
    scatter_gather, sweep_pipelined, sweep_pipelined_with_queue, sweep_resumable,
    sweep_resumable_with_faults, sweep_sharded, sweep_sharded_batch,
    sweep_sharded_batch_with_queue, sweep_sharded_with_queue, sweep_streams, sweep_streams_batch,
    sweep_streams_batch_with_queue, sweep_streams_with_queue, FaultPlan, ResumableOptions,
    ResumableOutcome, SweepRecovery, WindowFailure,
};
pub use queue::{EventQueue, QueueKind};
pub use reference::ReferenceSimulator;
pub use stats::{
    measure_latency, measure_latency_on, measure_latency_on_with_queue, random_vectors,
    LatencyStats,
};
pub use sync::{verify_equivalence, Mismatch, SyncSimulator};
