//! Pluggable pending-event queues for the discrete-event engine.
//!
//! The engine schedules every token through one priority queue keyed on
//! packed `(tick, seq)` `u128` keys (tick in the high 64 bits, a unique
//! monotone sequence number in the low 64 — a strict total order). This
//! module provides that queue behind an enum-dispatched abstraction
//! ([`EventQueue`]) with two backends selected by [`QueueKind`]:
//!
//! * [`QueueKind::Heap`] — the classic `Vec`-backed binary min-heap.
//!   O(log n) push/pop, fully general, the engine's historical backend.
//! * [`QueueKind::Ladder`] — a calendar/ladder queue bucketed by integer
//!   tick. Events land in tick-range buckets (O(1) push); buckets are
//!   refined into finer rungs when they overflow and sorted only when
//!   they reach the consumption front, giving amortized O(1) pop for the
//!   dense, near-monotonic tick distributions a gate-level simulation
//!   produces (every event lives at most one max-component-delay ahead
//!   of the clock).
//!
//! Both backends pop in **exactly** ascending key order — the ladder
//! queue is not an approximation. Determinism is structural: within a
//! bucket events are kept in insertion order, which is `seq` order
//! (sequence numbers only grow), and a bucket is stably ordered by the
//! full key before it is consumed. The differential tests below (and the
//! property suite in `tests/prop_flow.rs`) drive both backends with
//! identical push/pop interleavings over adversarial tick distributions
//! and assert identical pop sequences.
//!
//! The queue is generic over its payload so the engine can store bare
//! event descriptors (no ordering bound on `T` — order lives in the key
//! alone) and so tests can drive the queue in isolation.

use std::collections::{BinaryHeap, VecDeque};

/// Packs an integer tick and a unique sequence number into one ordering
/// key: `(tick << 64) | seq`, so keys compare as `(tick, seq)` tuples.
/// The one definition of the key layout — the engine and both backends
/// go through this pair of helpers.
#[must_use]
pub fn pack_key(tick: u64, seq: u64) -> u128 {
    (u128::from(tick) << 64) | u128::from(seq)
}

/// The tick half of a packed key (see [`pack_key`]).
#[must_use]
pub fn tick_of(key: u128) -> u64 {
    (key >> 64) as u64
}

/// Which pending-event queue backend a simulator schedules through.
///
/// The backend is a pure implementation choice: simulation results are
/// bit-identical across kinds (pinned by `tests/engine_equivalence.rs`),
/// and checkpoints are portable between them ([`crate::SimCheckpoint`]
/// canonicalizes the in-flight queue to a sorted event list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueueKind {
    /// Binary min-heap over packed keys (O(log n) push/pop).
    #[default]
    Heap,
    /// Calendar/ladder queue bucketed by tick (amortized O(1) push/pop
    /// on dense, near-monotonic schedules).
    Ladder,
}

impl QueueKind {
    /// The spelling accepted by [`QueueKind::from_str`] and printed by
    /// [`QueueKind::fmt`] (`"heap"` / `"ladder"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            QueueKind::Heap => "heap",
            QueueKind::Ladder => "ladder",
        }
    }
}

impl std::fmt::Display for QueueKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for QueueKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "heap" => Ok(QueueKind::Heap),
            "ladder" => Ok(QueueKind::Ladder),
            other => Err(format!("unknown queue kind '{other}' (heap|ladder)")),
        }
    }
}

/// One heap entry: ordering is by the packed key alone (reversed, so the
/// max-heap pops the smallest `(tick, seq)` first); the payload carries no
/// ordering bound.
#[derive(Debug, Clone)]
struct HeapEntry<T> {
    key: u128,
    item: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.key.cmp(&self.key)
    }
}

/// The pending-event queue: a min-queue over packed `(tick, seq)` keys
/// with a payload per event, enum-dispatched over the [`QueueKind`]
/// backends (no trait objects on the hot path).
///
/// Keys must be unique (the engine's monotone `seq` guarantees this);
/// [`EventQueue::pop`] returns events in strictly ascending key order for
/// either backend.
#[derive(Debug, Clone)]
pub struct EventQueue<T>(Backend<T>);

#[derive(Debug, Clone)]
enum Backend<T> {
    Heap(BinaryHeap<HeapEntry<T>>),
    Ladder(LadderQueue<T>),
}

impl<T> EventQueue<T> {
    /// An empty queue of the given backend kind.
    #[must_use]
    pub fn new(kind: QueueKind) -> Self {
        Self(match kind {
            QueueKind::Heap => Backend::Heap(BinaryHeap::new()),
            QueueKind::Ladder => Backend::Ladder(LadderQueue::new()),
        })
    }

    /// Which backend this queue dispatches to.
    #[must_use]
    pub fn kind(&self) -> QueueKind {
        match &self.0 {
            Backend::Heap(_) => QueueKind::Heap,
            Backend::Ladder(_) => QueueKind::Ladder,
        }
    }

    /// Inserts an event under a packed `(tick, seq)` key.
    pub fn push(&mut self, key: u128, item: T) {
        match &mut self.0 {
            Backend::Heap(h) => h.push(HeapEntry { key, item }),
            Backend::Ladder(l) => l.push(key, item),
        }
    }

    /// Removes and returns the event with the smallest key.
    pub fn pop(&mut self) -> Option<(u128, T)> {
        match &mut self.0 {
            Backend::Heap(h) => h.pop().map(|e| (e.key, e.item)),
            Backend::Ladder(l) => l.pop(),
        }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.0 {
            Backend::Heap(h) => h.len(),
            Backend::Ladder(l) => l.len,
        }
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every pending event and resets the backend's internal
    /// consumption state (the ladder's rung/bottom bounds), keeping the
    /// kind. Used by checkpoint restore before re-inserting the captured
    /// events.
    pub fn clear(&mut self) {
        match &mut self.0 {
            Backend::Heap(h) => h.clear(),
            Backend::Ladder(l) => *l = LadderQueue::new(),
        }
    }
}

impl<T: Clone> EventQueue<T> {
    /// Every pending event in canonical ascending-key order, without
    /// disturbing the queue — the queue-kind-portable serialization a
    /// checkpoint stores (a live backend's internal layout is not
    /// canonical; this is).
    #[must_use]
    pub fn sorted_events(&self) -> Vec<(u128, T)> {
        let mut events: Vec<(u128, T)> = match &self.0 {
            Backend::Heap(h) => h.iter().map(|e| (e.key, e.item.clone())).collect(),
            Backend::Ladder(l) => l.iter_unordered().cloned().collect(),
        };
        events.sort_unstable_by_key(|(k, _)| *k);
        events
    }
}

const RUNG_BUCKETS: usize = 64;
/// A bucket reaching the consumption front with more events than this is
/// refined into a finer rung instead of being sorted wholesale.
const SPAWN_THRESHOLD: usize = 48;

/// One ladder rung: a contiguous band of `RUNG_BUCKETS` equal-width tick
/// buckets, consumed front to back. Inner rungs (later in the rung stack)
/// subdivide the bucket of the outer rung that reached the consumption
/// front while overfull.
#[derive(Debug, Clone)]
struct Rung<T> {
    /// Tick at the start of bucket 0.
    start: u64,
    /// Ticks per bucket (≥ 1).
    width: u64,
    /// One past the last tick this rung is responsible for (u128: the
    /// bound may lie beyond `u64::MAX` after coverage rounding). For a
    /// rung spawned from a parent bucket this is the parent bucket's
    /// end, NOT `start + width * RUNG_BUCKETS`: the bucket grid rounds
    /// up, and ticks in the overshoot band belong to the parent's next
    /// bucket — filing them here would pop them ahead of earlier events
    /// already waiting there.
    limit: u128,
    /// Next bucket index to consume.
    cur: usize,
    /// Events across `buckets[cur..]`.
    count: usize,
    buckets: Vec<Vec<(u128, T)>>,
}

impl<T> Rung<T> {
    fn new(start: u64, width: u64, limit: u128) -> Self {
        debug_assert!(width >= 1);
        debug_assert!(limit <= u128::from(start) + u128::from(width) * RUNG_BUCKETS as u128);
        Self {
            start,
            width,
            limit,
            cur: 0,
            count: 0,
            buckets: (0..RUNG_BUCKETS).map(|_| Vec::new()).collect(),
        }
    }

    /// First tick of the unconsumed region.
    fn cur_start(&self) -> u128 {
        u128::from(self.start) + u128::from(self.width) * self.cur as u128
    }

    fn insert(&mut self, key: u128, item: T) {
        let tick = tick_of(key);
        debug_assert!(u128::from(tick) < self.limit);
        let idx = ((tick - self.start) / self.width) as usize;
        debug_assert!(idx >= self.cur && idx < RUNG_BUCKETS);
        self.buckets[idx].push((key, item));
        self.count += 1;
    }
}

/// A calendar/ladder queue over packed `(tick, seq)` keys.
///
/// Structure (following Tang/Goh/Thng's ladder queue, simplified to the
/// engine's needs):
///
/// * **bottom** — a key-sorted deque holding the events at the current
///   consumption front; `pop` serves from here.
/// * **rungs** — a stack of bucket bands. The outermost rung spans the
///   spread of the far-future pool; each inner rung subdivides one
///   overfull bucket of its parent into `RUNG_BUCKETS` finer buckets
///   (down to width 1, a single tick — the overflow/refinement mechanism
///   that keeps per-bucket sorting O(threshold)).
/// * **top** — the unsorted far-future pool: everything beyond the
///   outermost rung's band. When the rungs drain, the pool is spread
///   into a fresh rung sized to its actual tick range (automatic
///   resize).
///
/// Pushes go to the innermost structure whose range covers the tick;
/// ticks at or behind the consumption front insert into `bottom` in
/// sorted position, so arbitrary (even decreasing) tick sequences stay
/// correctly ordered.
///
/// Not exported: every public path goes through
/// [`EventQueue::new`]`(`[`QueueKind::Ladder`]`)`.
#[derive(Debug, Clone)]
struct LadderQueue<T> {
    len: usize,
    /// Sorted ascending by key; the front is the global minimum.
    bottom: VecDeque<(u128, T)>,
    /// Ticks strictly below this bound belong in `bottom`.
    bottom_limit: u128,
    /// Rung stack, outermost first.
    rungs: Vec<Rung<T>>,
    /// Far-future events, unsorted (insertion = `seq` order).
    top: Vec<(u128, T)>,
}

impl<T> LadderQueue<T> {
    fn new() -> Self {
        Self {
            len: 0,
            bottom: VecDeque::new(),
            bottom_limit: 0,
            rungs: Vec::new(),
            top: Vec::new(),
        }
    }

    fn iter_unordered(&self) -> impl Iterator<Item = &(u128, T)> {
        self.bottom
            .iter()
            .chain(
                self.rungs
                    .iter()
                    .flat_map(|r| r.buckets[r.cur..].iter().flat_map(|b| b.iter())),
            )
            .chain(self.top.iter())
    }

    fn insert_bottom(&mut self, key: u128, item: T) {
        let at = self.bottom.partition_point(|(k, _)| *k < key);
        self.bottom.insert(at, (key, item));
    }

    fn push(&mut self, key: u128, item: T) {
        self.len += 1;
        let tick = u128::from(tick_of(key));
        if tick < self.bottom_limit {
            self.insert_bottom(key, item);
            return;
        }
        for rung in self.rungs.iter_mut().rev() {
            if tick < rung.limit {
                if tick >= rung.cur_start() {
                    rung.insert(key, item);
                } else {
                    // The gap behind the innermost rung's consumption
                    // front (possible only for adversarial, non-causal
                    // tick sequences): keep it sorted in bottom.
                    self.insert_bottom(key, item);
                }
                return;
            }
        }
        self.top.push((key, item));
    }

    fn pop(&mut self) -> Option<(u128, T)> {
        loop {
            if let Some(front) = self.bottom.pop_front() {
                self.len -= 1;
                return Some(front);
            }
            let Some(rung) = self.rungs.last_mut() else {
                if self.top.is_empty() {
                    return None;
                }
                self.spread_top();
                continue;
            };
            if rung.count == 0 {
                // Exhausted: everything up to the rung's covered bound is
                // consumed, so later pushes below it sort into bottom.
                self.bottom_limit = self.bottom_limit.max(rung.limit);
                self.rungs.pop();
                continue;
            }
            while rung.buckets[rung.cur].is_empty() {
                rung.cur += 1;
            }
            let bucket_start = rung.start + rung.cur as u64 * rung.width;
            let mut bucket = std::mem::take(&mut rung.buckets[rung.cur]);
            rung.count -= bucket.len();
            rung.cur += 1;
            // The bucket's covered band, capped at the rung's own bound
            // (the grid's last bucket may overshoot it).
            let bucket_end = (u128::from(bucket_start) + u128::from(rung.width)).min(rung.limit);
            if rung.width > 1 && bucket.len() > SPAWN_THRESHOLD {
                // Refine the overfull bucket into a finer rung; relative
                // order within the new buckets is preserved (still `seq`
                // order). The inner rung's responsibility is capped at
                // this bucket's band even though its finer grid rounds up
                // past it.
                let new_width = rung.width.div_ceil(RUNG_BUCKETS as u64).max(1);
                let mut inner = Rung::new(bucket_start, new_width, bucket_end);
                for (key, item) in bucket {
                    inner.insert(key, item);
                }
                self.rungs.push(inner);
                continue;
            }
            // Keys are unique, so the unstable sort is deterministic.
            bucket.sort_unstable_by_key(|(k, _)| *k);
            self.bottom_limit = bucket_end;
            self.bottom = VecDeque::from(bucket);
        }
    }

    /// Spreads the far-future pool into a fresh rung sized to its actual
    /// tick range (or straight into bottom when it is small) — the
    /// automatic resize that keeps bucket widths matched to the live
    /// event horizon.
    fn spread_top(&mut self) {
        debug_assert!(!self.top.is_empty());
        let ticks = self.top.iter().map(|(k, _)| tick_of(*k));
        let (mut min_t, mut max_t) = (u64::MAX, u64::MIN);
        for t in ticks {
            min_t = min_t.min(t);
            max_t = max_t.max(t);
        }
        let pool = std::mem::take(&mut self.top);
        if pool.len() <= SPAWN_THRESHOLD || min_t == max_t {
            let mut sorted = pool;
            sorted.sort_unstable_by_key(|(k, _)| *k);
            self.bottom_limit = u128::from(max_t) + 1;
            self.bottom = VecDeque::from(sorted);
            return;
        }
        let width = ((max_t - min_t) / RUNG_BUCKETS as u64) + 1;
        let limit = u128::from(max_t) + 1;
        let mut rung = Rung::new(min_t, width, limit);
        for (key, item) in pool {
            rung.insert(key, item);
        }
        self.rungs.push(rung);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tick: u64, seq: u64) -> u128 {
        pack_key(tick, seq)
    }

    /// Tiny deterministic LCG for the differential drivers.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// Drives both backends with an identical interleaved push/pop
    /// sequence and asserts identical pop streams (including the final
    /// drain). `ticks` yields the tick of each pushed event in order.
    fn assert_backends_agree(ticks: &[u64], pop_every: usize, context: &str) {
        let mut heap = EventQueue::<u64>::new(QueueKind::Heap);
        let mut ladder = EventQueue::<u64>::new(QueueKind::Ladder);
        for (i, &t) in ticks.iter().enumerate() {
            let seq = i as u64;
            let k = key(t, seq);
            heap.push(k, seq);
            ladder.push(k, seq);
            if pop_every > 0 && i % pop_every == pop_every - 1 {
                let (h, l) = (heap.pop(), ladder.pop());
                assert_eq!(h, l, "{context}: interleaved pop {i} diverged");
            }
            assert_eq!(heap.len(), ladder.len(), "{context}: lengths diverged");
        }
        let mut last = None;
        loop {
            let (h, l) = (heap.pop(), ladder.pop());
            assert_eq!(h, l, "{context}: drain pop diverged");
            let Some((k, _)) = h else { break };
            assert!(Some(k) > last, "{context}: pop order not ascending");
            last = Some(k);
        }
        assert!(heap.is_empty() && ladder.is_empty());
    }

    #[test]
    fn dense_same_tick_bursts_agree() {
        // Long runs of identical ticks: FIFO (seq) order inside a tick is
        // the whole contract.
        let mut ticks = Vec::new();
        let mut rng = Lcg(0xDE5E);
        let mut t = 0u64;
        for _ in 0..40 {
            t += rng.below(3);
            for _ in 0..rng.below(20) + 1 {
                ticks.push(t);
            }
        }
        assert_backends_agree(&ticks, 3, "dense same-tick bursts");
    }

    #[test]
    fn sparse_far_future_agree() {
        // Huge tick jumps force repeated top spreads and wide rungs.
        let mut ticks = Vec::new();
        let mut rng = Lcg(0x5BA2);
        let mut t = 0u64;
        for _ in 0..120 {
            t = t.saturating_add(rng.below(1 << 40) + 1);
            ticks.push(t);
        }
        ticks.push(u64::MAX); // the extreme end of the tick domain
        ticks.push(u64::MAX - 1);
        assert_backends_agree(&ticks, 5, "sparse far future");
    }

    #[test]
    fn decreasing_then_increasing_agree() {
        // Non-causal pushes (ticks behind the consumption front) must
        // still pop in global order.
        let mut ticks: Vec<u64> = (0..60).rev().map(|i| i * 1000).collect();
        ticks.extend((0..60).map(|i| i * 777));
        assert_backends_agree(&ticks, 4, "decreasing then increasing");
    }

    #[test]
    fn near_monotonic_simulation_shape_agree() {
        // The engine's actual shape: now advances, events land at
        // now + one of a few component delays.
        const DELAYS: [u64; 5] = [0, 300_000, 600_000, 2_400_000, 3_100_000];
        let mut rng = Lcg(0x51A1);
        let mut heap = EventQueue::<u64>::new(QueueKind::Heap);
        let mut ladder = EventQueue::<u64>::new(QueueKind::Ladder);
        let mut seq = 0u64;
        for _ in 0..6 {
            let k = key(0, seq);
            heap.push(k, seq);
            ladder.push(k, seq);
            seq += 1;
        }
        loop {
            let (h, l) = (heap.pop(), ladder.pop());
            assert_eq!(h, l, "simulation-shaped pop diverged");
            let Some((k, _)) = h else { break };
            let now = tick_of(k);
            // Growth phase: 1..=2 successors per dispatch (supercritical,
            // so the pending set builds up); then stop scheduling and
            // drain.
            let successors = if seq < 3000 { 1 + rng.below(2) } else { 0 };
            for _ in 0..successors {
                let k = key(now + DELAYS[rng.below(5) as usize], seq);
                heap.push(k, seq);
                ladder.push(k, seq);
                seq += 1;
            }
        }
        assert!(seq >= 3000, "workload degenerated: only {seq} events");
    }

    #[test]
    fn randomized_interleavings_agree() {
        let mut rng = Lcg(0x1A77E);
        for round in 0..20 {
            let n = 30 + rng.below(200) as usize;
            let spread = [10u64, 1_000, 1 << 20, 1 << 50][round % 4];
            let ticks: Vec<u64> = (0..n).map(|_| rng.below(spread)).collect();
            let pop_every = (rng.below(6) + 1) as usize;
            assert_backends_agree(&ticks, pop_every, &format!("random round {round}"));
        }
    }

    /// Regression: a rung spawned from an overfull bucket must not claim
    /// ticks beyond the parent bucket's band. The finer grid rounds up
    /// (width 100 → 64 buckets of width 2 cover 128 ticks); an event
    /// pushed into the overshoot band [100, 128) while the inner rung is
    /// active belongs to the parent's NEXT bucket and must pop after the
    /// earlier, smaller-keyed event already waiting there.
    #[test]
    fn refined_rung_does_not_capture_the_parents_next_bucket() {
        let mut heap = EventQueue::<u64>::new(QueueKind::Heap);
        let mut ladder = EventQueue::<u64>::new(QueueKind::Ladder);
        let mut seq = 0u64;
        let mut push = |heap: &mut EventQueue<u64>, ladder: &mut EventQueue<u64>, t: u64| {
            let k = key(t, seq);
            heap.push(k, seq);
            ladder.push(k, seq);
            seq += 1;
        };
        // Top spread: min 0, max 6390 → rung width (6390/64)+1 = 100.
        // Bucket 0 = [0, 100) holds 60 > SPAWN_THRESHOLD events, so the
        // first pop refines it into an inner rung of width 2.
        for i in 0..60 {
            push(&mut heap, &mut ladder, (i * 13) % 100);
        }
        push(&mut heap, &mut ladder, 105); // parent bucket 1
        push(&mut heap, &mut ladder, 6390); // fixes the spread
        assert_eq!(heap.pop(), ladder.pop(), "refining pop diverged");
        // Pushed while the inner rung is consuming: tick 110 sits in the
        // naive inner band [0, 128) but belongs to parent bucket 1 —
        // after tick 105.
        push(&mut heap, &mut ladder, 110);
        loop {
            let (h, l) = (heap.pop(), ladder.pop());
            assert_eq!(h, l, "overshoot-band drain diverged");
            if h.is_none() {
                break;
            }
        }
    }

    /// Randomized interleavings tuned to keep refinement and pushes
    /// concurrent: bursty ticks over a spread that yields non-power-of-two
    /// bucket widths, with pops (and hence rung spawns) interleaved
    /// throughout.
    #[test]
    fn interleaved_pushes_during_refinement_agree() {
        let mut rng = Lcg(0x0E25_111D);
        for round in 0..8 {
            let mut ticks = Vec::new();
            // Dense bursts near the front force overfull early buckets;
            // a far tail fixes a wide, odd spread.
            for _ in 0..300 {
                ticks.push(rng.below(150));
            }
            ticks.push(5000 + rng.below(2000));
            for _ in 0..100 {
                ticks.push(rng.below(700));
            }
            assert_backends_agree(&ticks, 2, &format!("refinement round {round}"));
        }
    }

    #[test]
    fn overflow_rungs_refine_big_buckets() {
        // Thousands of events inside one narrow band force bucket
        // refinement (spawned inner rungs) down to width 1.
        let mut rng = Lcg(0x0F10);
        let ticks: Vec<u64> = (0..2000).map(|_| 1 << 30 | rng.below(4096)).collect();
        assert_backends_agree(&ticks, 0, "overflow refinement");
    }

    #[test]
    fn sorted_events_is_canonical_and_nondestructive() {
        let ticks = [5u64, 1, 1, 9, 3, 3, 3, 7];
        for kind in [QueueKind::Heap, QueueKind::Ladder] {
            let mut q = EventQueue::<u64>::new(kind);
            for (seq, &t) in ticks.iter().enumerate() {
                q.push(key(t, seq as u64), seq as u64);
            }
            let snap = q.sorted_events();
            assert_eq!(snap.len(), q.len());
            assert!(snap.windows(2).all(|w| w[0].0 < w[1].0), "not sorted");
            // The snapshot is a pure read: popping still yields the same
            // ascending stream.
            let mut popped = Vec::new();
            while let Some(e) = q.pop() {
                popped.push(e);
            }
            assert_eq!(popped, snap, "{kind}: snapshot diverged from pops");
        }
    }

    #[test]
    fn clear_resets_consumption_state() {
        let mut q = EventQueue::<u64>::new(QueueKind::Ladder);
        for seq in 0..100u64 {
            q.push(key(seq * 1_000_000, seq), seq);
        }
        for _ in 0..50 {
            q.pop();
        }
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.kind(), QueueKind::Ladder);
        // Events far behind the pre-clear consumption front are served
        // first again.
        q.push(key(3, 0), 0);
        q.push(key(1, 1), 1);
        assert_eq!(q.pop(), Some((key(1, 1), 1)));
        assert_eq!(q.pop(), Some((key(3, 0), 0)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn kind_parses_and_displays() {
        assert_eq!("heap".parse::<QueueKind>(), Ok(QueueKind::Heap));
        assert_eq!("ladder".parse::<QueueKind>(), Ok(QueueKind::Ladder));
        assert!("fifo".parse::<QueueKind>().is_err());
        assert_eq!(QueueKind::Heap.to_string(), "heap");
        assert_eq!(QueueKind::Ladder.to_string(), "ladder");
        assert_eq!(QueueKind::default(), QueueKind::Heap);
    }

    #[test]
    fn empty_queue_pops_none() {
        for kind in [QueueKind::Heap, QueueKind::Ladder] {
            let mut q = EventQueue::<()>::new(kind);
            assert!(q.is_empty());
            assert_eq!(q.len(), 0);
            assert_eq!(q.pop(), None);
            assert_eq!(q.pop(), None, "pop on empty must stay None");
        }
    }
}
