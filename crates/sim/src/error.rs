//! Simulation error type.

use std::error::Error;
use std::fmt;

use pl_core::{PlArcId, PlError, PlGateId};

/// Errors produced by the discrete-event simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// Wrong number of primary-input values supplied for a vector.
    InputArityMismatch {
        /// Values supplied.
        got: usize,
        /// Input ports expected.
        expected: usize,
    },
    /// The token game stalled before every output produced its token — a
    /// liveness failure at run time.
    Deadlock {
        /// Simulation time at which no further event was schedulable.
        at_time: f64,
        /// Output ports still waiting for a token.
        missing_outputs: Vec<String>,
    },
    /// A second token was delivered onto an occupied arc — a safety
    /// violation (the marked graph was not safe).
    SafetyViolation {
        /// The over-full arc.
        arc: PlArcId,
        /// The gate that produced the extra token.
        producer: PlGateId,
    },
    /// An early-evaluation master was fired early although its known pins
    /// do not force the output — an unsound trigger.
    UnsoundTrigger {
        /// The offending master gate.
        master: PlGateId,
    },
    /// The netlist failed its structural (liveness) pre-check.
    Structural(PlError),
    /// A [`crate::SimCheckpoint`] was restored into a simulator whose
    /// netlist shape differs from the one the snapshot was taken from.
    CheckpointMismatch {
        /// Gate count of the snapshotted netlist.
        snapshot_gates: usize,
        /// Arc count of the snapshotted netlist.
        snapshot_arcs: usize,
        /// Output count of the snapshotted netlist.
        snapshot_outputs: usize,
        /// Gate count of the restoring simulator's netlist.
        netlist_gates: usize,
        /// Arc count of the restoring simulator's netlist.
        netlist_arcs: usize,
        /// Output count of the restoring simulator's netlist.
        netlist_outputs: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InputArityMismatch { got, expected } => {
                write!(f, "expected {expected} input values, got {got}")
            }
            SimError::Deadlock {
                at_time,
                missing_outputs,
            } => {
                write!(
                    f,
                    "deadlock at t={at_time}: outputs {} never produced a token",
                    missing_outputs.join(", ")
                )
            }
            SimError::SafetyViolation { arc, producer } => {
                write!(
                    f,
                    "safety violation: gate {producer} double-marked arc {arc}"
                )
            }
            SimError::UnsoundTrigger { master } => {
                write!(
                    f,
                    "unsound trigger fired master {master} without a forced output"
                )
            }
            SimError::Structural(e) => write!(f, "structural check failed: {e}"),
            SimError::CheckpointMismatch {
                snapshot_gates,
                snapshot_arcs,
                snapshot_outputs,
                netlist_gates,
                netlist_arcs,
                netlist_outputs,
            } => {
                write!(
                    f,
                    "checkpoint restored onto a structurally different netlist: snapshot \
                     over a {snapshot_gates}-gate/{snapshot_arcs}-arc/{snapshot_outputs}\
                     -output netlist, restoring simulator over a {netlist_gates}-gate/\
                     {netlist_arcs}-arc/{netlist_outputs}-output netlist (equal counts \
                     mean the arc topologies differ)"
                )
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Structural(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<PlError> for SimError {
    fn from(e: PlError) -> Self {
        SimError::Structural(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_ports() {
        let e = SimError::Deadlock {
            at_time: 4.2,
            missing_outputs: vec!["y".into()],
        };
        assert!(e.to_string().contains('y'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<SimError>();
    }
}
