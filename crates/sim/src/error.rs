//! Simulation error type.

use std::error::Error;
use std::fmt;

use pl_core::{PlArcId, PlError, PlGateId};

/// Errors produced by the discrete-event simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// Wrong number of primary-input values supplied for a vector.
    InputArityMismatch {
        /// Values supplied.
        got: usize,
        /// Input ports expected.
        expected: usize,
    },
    /// The token game stalled before every output produced its token — a
    /// liveness failure at run time.
    Deadlock {
        /// Simulation time at which no further event was schedulable.
        at_time: f64,
        /// Output ports still waiting for a token.
        missing_outputs: Vec<String>,
    },
    /// A second token was delivered onto an occupied arc — a safety
    /// violation (the marked graph was not safe).
    SafetyViolation {
        /// The over-full arc.
        arc: PlArcId,
        /// The gate that produced the extra token.
        producer: PlGateId,
    },
    /// An early-evaluation master was fired early although its known pins
    /// do not force the output — an unsound trigger.
    UnsoundTrigger {
        /// The offending master gate.
        master: PlGateId,
    },
    /// The netlist failed its structural (liveness) pre-check.
    Structural(PlError),
    /// A [`crate::SimCheckpoint`] was restored into a simulator whose
    /// netlist shape differs from the one the snapshot was taken from.
    CheckpointMismatch {
        /// Gate count of the snapshotted netlist.
        snapshot_gates: usize,
        /// Arc count of the snapshotted netlist.
        snapshot_arcs: usize,
        /// Output count of the snapshotted netlist.
        snapshot_outputs: usize,
        /// Gate count of the restoring simulator's netlist.
        netlist_gates: usize,
        /// Arc count of the restoring simulator's netlist.
        netlist_arcs: usize,
        /// Output count of the restoring simulator's netlist.
        netlist_outputs: usize,
    },
    /// A serialized checkpoint ([`crate::checkpoint::wire`]) ended before
    /// the bytes the decoder needed — the file (or buffer) was truncated.
    CheckpointTruncated {
        /// What the decoder was reading when the bytes ran out.
        context: &'static str,
        /// Bytes the decoder needed at that point.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A serialized checkpoint did not start with the wire-format magic —
    /// the bytes are not a checkpoint at all.
    CheckpointBadMagic {
        /// The first eight bytes actually found.
        found: [u8; 8],
    },
    /// A serialized checkpoint was written by an unsupported wire-format
    /// version (see [`crate::checkpoint::wire`] for the evolution rules).
    CheckpointVersionSkew {
        /// Version number stored in the encoding.
        found: u32,
        /// The version this build supports.
        supported: u32,
    },
    /// A serialized checkpoint was written at a different lane width than
    /// the simulator decoding it (scalar checkpoints restore only into
    /// scalar simulators, 64-lane into 64-lane).
    CheckpointLaneMismatch {
        /// Lane count the encoding was written at.
        found: u32,
        /// Lane count of the decoding simulator.
        expected: u32,
    },
    /// A serialized checkpoint's identity digest (netlist fingerprint,
    /// delay-model digest, or a shape count) disagrees with the netlist /
    /// delay model it is being decoded against.
    CheckpointDigestMismatch {
        /// Which digest disagreed.
        what: &'static str,
        /// The value stored in the encoding.
        stored: u64,
        /// The value computed from the decode context.
        expected: u64,
    },
    /// A CRC32 over a serialized checkpoint section (or the whole file)
    /// did not match — the bytes were corrupted in flight or at rest.
    CheckpointChecksum {
        /// Which section failed its checksum.
        section: &'static str,
        /// The CRC stored in the encoding.
        stored: u32,
        /// The CRC computed over the received bytes.
        computed: u32,
    },
    /// A decoded checkpoint field landed outside its valid domain (a gate
    /// index past the netlist, a flag byte with unknown bits, a non-0/1
    /// boolean, ...) even though every checksum passed.
    CheckpointOutOfRange {
        /// Which field was out of range.
        field: &'static str,
        /// The decoded value.
        value: u64,
        /// The exclusive upper bound (or bit-mask limit) it violated.
        limit: u64,
    },
    /// An I/O operation on a checkpoint directory failed (the `std::io`
    /// error is carried as text so this enum stays `Clone + PartialEq`).
    CheckpointIo {
        /// The file or directory the operation touched.
        path: String,
        /// The underlying I/O error, rendered.
        message: String,
    },
    /// A resumed sweep's parameters disagree with the `sweep.meta` the
    /// checkpoint directory was created with — the directory belongs to a
    /// different run.
    ResumeMismatch {
        /// Which parameter disagreed.
        field: &'static str,
        /// The value recorded in `sweep.meta`.
        stored: u64,
        /// The value of the current invocation.
        expected: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InputArityMismatch { got, expected } => {
                write!(f, "expected {expected} input values, got {got}")
            }
            SimError::Deadlock {
                at_time,
                missing_outputs,
            } => {
                write!(
                    f,
                    "deadlock at t={at_time}: outputs {} never produced a token",
                    missing_outputs.join(", ")
                )
            }
            SimError::SafetyViolation { arc, producer } => {
                write!(
                    f,
                    "safety violation: gate {producer} double-marked arc {arc}"
                )
            }
            SimError::UnsoundTrigger { master } => {
                write!(
                    f,
                    "unsound trigger fired master {master} without a forced output"
                )
            }
            SimError::Structural(e) => write!(f, "structural check failed: {e}"),
            SimError::CheckpointMismatch {
                snapshot_gates,
                snapshot_arcs,
                snapshot_outputs,
                netlist_gates,
                netlist_arcs,
                netlist_outputs,
            } => {
                write!(
                    f,
                    "checkpoint restored onto a structurally different netlist: snapshot \
                     over a {snapshot_gates}-gate/{snapshot_arcs}-arc/{snapshot_outputs}\
                     -output netlist, restoring simulator over a {netlist_gates}-gate/\
                     {netlist_arcs}-arc/{netlist_outputs}-output netlist (equal counts \
                     mean the arc topologies differ)"
                )
            }
            SimError::CheckpointTruncated {
                context,
                needed,
                available,
            } => {
                write!(
                    f,
                    "checkpoint truncated while reading {context}: needed {needed} \
                     bytes, only {available} available"
                )
            }
            SimError::CheckpointBadMagic { found } => {
                write!(f, "checkpoint bad magic: found {found:02x?}")
            }
            SimError::CheckpointVersionSkew { found, supported } => {
                write!(
                    f,
                    "checkpoint version skew: encoded as format v{found}, this \
                     build supports v{supported}"
                )
            }
            SimError::CheckpointLaneMismatch { found, expected } => {
                write!(
                    f,
                    "checkpoint lane mismatch: encoded at {found} lane(s), \
                     this simulator runs {expected} lane(s)"
                )
            }
            SimError::CheckpointDigestMismatch {
                what,
                stored,
                expected,
            } => {
                write!(
                    f,
                    "checkpoint digest mismatch on {what}: stored {stored:#x}, \
                     expected {expected:#x} (the checkpoint belongs to a \
                     different design or delay model)"
                )
            }
            SimError::CheckpointChecksum {
                section,
                stored,
                computed,
            } => {
                write!(
                    f,
                    "checkpoint checksum failure in {section}: stored \
                     {stored:#010x}, computed {computed:#010x}"
                )
            }
            SimError::CheckpointOutOfRange {
                field,
                value,
                limit,
            } => {
                write!(
                    f,
                    "checkpoint field {field} out of range: value {value}, \
                     limit {limit}"
                )
            }
            SimError::CheckpointIo { path, message } => {
                write!(f, "checkpoint i/o failure on {path}: {message}")
            }
            SimError::ResumeMismatch {
                field,
                stored,
                expected,
            } => {
                write!(
                    f,
                    "resume mismatch on {field}: sweep.meta records {stored:#x}, \
                     this invocation has {expected:#x} (the checkpoint directory \
                     belongs to a different sweep)"
                )
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Structural(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<PlError> for SimError {
    fn from(e: PlError) -> Self {
        SimError::Structural(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_ports() {
        let e = SimError::Deadlock {
            at_time: 4.2,
            missing_outputs: vec!["y".into()],
        };
        assert!(e.to_string().contains('y'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<SimError>();
    }
}
