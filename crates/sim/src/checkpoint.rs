//! Checkpoint/resume for the discrete-event engine: capture a simulator's
//! complete dynamic state between vectors and rebuild a bit-identical
//! simulator from it later — on this thread or another.
//!
//! A [`SimCheckpoint`] is the quiescent inter-vector state of a
//! [`PlSimulator`]: the marking (per-arc token presence and values), the
//! per-gate incremental bookkeeping (pin bitsets, ack counters, scheduling
//! flags, EE round generations), the pending environment inputs, the
//! recorded-but-uncollected output words, the integer clock, and the
//! in-flight event queue. It does **not** borrow the netlist — the
//! checkpoint is an owned, `Send` value, so it can cross threads while the
//! workers share the same `&PlNetlist` (which is `Sync`).
//!
//! The contract, pinned differentially in `tests/engine_equivalence.rs`:
//! a simulator restored from a checkpoint and driven with the remaining
//! vectors produces **bit-identical** outcomes (output words, record
//! timestamps, latencies) to the uninterrupted run, and taking a snapshot
//! never perturbs the snapshotted simulator. This is the state-handoff
//! primitive behind [`crate::parallel::sweep_pipelined`], where a leader
//! pass emits window-boundary checkpoints and workers replay the windows
//! in full behind it.
//!
//! Checkpoints are **queue-kind-portable**: the in-flight event queue is
//! canonicalized to a sorted `(tick, seq)` event list regardless of the
//! source simulator's [`crate::queue::QueueKind`], so a snapshot taken on
//! a heap-engine simulator resumes bit-identically on a ladder-engine one
//! and vice versa (the restoring simulator keeps its own backend).
//!
//! What is deliberately *not* captured: the waveform trace
//! ([`PlSimulator::enable_tracing`] recordings are a debugging artifact,
//! not simulation state — [`PlSimulator::restore`] clears any recorded
//! trace events so a resumed trace never mixes two timelines), and the
//! netlist/delay model themselves. The caller must resume against the
//! same netlist and delays; a different netlist — diverging gate/arc/
//! output counts, arc topology, or gate logic functions — is rejected
//! with [`SimError::CheckpointMismatch`]. The delay model cannot be
//! cross-checked (it is not part of the netlist) and stays the caller's
//! responsibility.

pub mod wire;

use std::collections::VecDeque;

use pl_core::{PlArcKind, PlNetlist};

use crate::delay::{ticks_to_ns, DelayModel};
use crate::engine::{Event, LaneSimulator};
use crate::error::SimError;
use crate::lane::LaneWord;

/// A tiny FNV-1a folder over `u64` words — the one digest definition the
/// workspace shares (netlist fingerprints here, output digests in `plc`
/// and the golden-fingerprint tests) so the mixing constants can never
/// drift apart between copies.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// The FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    /// Folds one word into the state.
    pub fn mix(&mut self, x: u64) {
        self.0 ^= x;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
    }

    /// The accumulated digest.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// FNV-1a over the netlist's arc topology (per arc: source gate,
/// destination gate, kind, destination pin), per-gate logic functions,
/// and the input-port / output-slot gate orders — the design identity a
/// checkpoint is bound to. Two different designs that merely share
/// gate/arc/output *counts* hash differently, so a checkpoint cannot be
/// replayed onto them; covering the port/slot orders explicitly keeps
/// the slot-indexed state (record queues, pending inputs) bound to the
/// right gates even for a builder whose port order could diverge from
/// gate-creation order (arc topology alone would not see that). Computed
/// once per simulator ([`PlSimulator::new`]) and carried, so
/// snapshot/restore on the pipelined sweep's per-window hot path never
/// re-walk the netlist.
pub(crate) fn netlist_fingerprint(pl: &PlNetlist) -> u64 {
    let mut h = Fnv64::new();
    h.mix(pl.gates().len() as u64);
    for gate in pl.gates() {
        h.mix(gate.table().map_or(u64::MAX, |t| t.bits()));
    }
    for arc in pl.arcs() {
        h.mix(arc.src().index() as u64);
        h.mix(arc.dst().index() as u64);
        h.mix(match arc.kind() {
            PlArcKind::Data => 0,
            PlArcKind::Ack => 1,
            PlArcKind::Efire => 2,
        });
        h.mix(arc.dst_pin().map_or(u64::MAX, u64::from));
    }
    for g in pl.input_gates() {
        h.mix(g.index() as u64);
    }
    for (_, g) in pl.output_gates() {
        h.mix(g.index() as u64);
    }
    h.finish()
}

/// The complete dynamic state of a [`PlSimulator`], detached from the
/// netlist borrow. Create with [`PlSimulator::snapshot`]; rebuild with
/// [`PlSimulator::resume_from`] or [`PlSimulator::restore`], or
/// serialize across the process boundary with
/// [`SimCheckpoint::to_bytes`] / [`SimCheckpoint::from_bytes`]
/// ([`wire`]). `PartialEq` compares the full dynamic state — the
/// encode→decode identity the wire format's property tests pin.
///
/// The lane parameter mirrors the simulator's: a checkpoint carries the
/// per-lane value state at the width it was captured at, and restores
/// only into a simulator of the same width (the wire format rejects a
/// cross-width decode with [`SimError::CheckpointLaneMismatch`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SimCheckpoint<L: LaneWord = bool> {
    /// Shape of the source netlist (gates, arcs, outputs) plus its arc
    /// topology fingerprint — checked on restore so a checkpoint can
    /// never be replayed onto a structurally different design.
    pub(crate) gates: usize,
    pub(crate) arcs: usize,
    pub(crate) outputs: usize,
    pub(crate) fingerprint: u64,
    pub(crate) now: u64,
    pub(crate) seq: u64,
    pub(crate) events: u64,
    pub(crate) rounds: u64,
    /// In-flight events, sorted by `(tick, seq)` key (a canonical order —
    /// the live heap's internal layout is not).
    pub(crate) queue: Vec<Event<L>>,
    pub(crate) tokens: Vec<u8>,
    pub(crate) values: Vec<L>,
    pub(crate) pin_tokens: Vec<u8>,
    pub(crate) pin_vals: Vec<L::PinVals>,
    pub(crate) ack_missing: Vec<u32>,
    pub(crate) pending_input: Vec<Option<L>>,
    pub(crate) flags: Vec<u8>,
    pub(crate) gen: Vec<u64>,
    pub(crate) records: Vec<VecDeque<(L, u64)>>,
}

impl<L: LaneWord> SimCheckpoint<L> {
    /// Simulation time (ns) at which the snapshot was taken.
    #[must_use]
    pub fn time(&self) -> f64 {
        ticks_to_ns(self.now)
    }

    /// Simulation time in integer ticks (femtoseconds).
    #[must_use]
    pub fn time_ticks(&self) -> u64 {
        self.now
    }

    /// Completed (collected) vectors at snapshot time.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Number of in-flight events captured with the state.
    #[must_use]
    pub fn queued_events(&self) -> usize {
        self.queue.len()
    }
}

impl<'a, L: LaneWord> LaneSimulator<'a, L> {
    /// Captures the simulator's complete dynamic state as an owned
    /// [`SimCheckpoint`]. The simulator itself is untouched — continuing
    /// to drive it produces exactly the run it would have produced without
    /// the snapshot.
    ///
    /// Call between vectors (after [`PlSimulator::run_vector`] /
    /// [`PlSimulator::feed_vector`] returns); the in-flight event queue is
    /// captured too, so tokens still propagating are part of the state.
    #[must_use]
    pub fn snapshot(&self) -> SimCheckpoint<L> {
        let queue: Vec<Event<L>> = self
            .queue
            .sorted_events()
            .into_iter()
            .map(|(key, kind)| Event { key, kind })
            .collect();
        SimCheckpoint {
            gates: self.pl.gates().len(),
            arcs: self.pl.arcs().len(),
            outputs: self.pl.output_gates().len(),
            fingerprint: self.fingerprint,
            now: self.now,
            seq: self.seq,
            events: self.events,
            rounds: self.rounds,
            queue,
            tokens: self.tokens.clone(),
            values: self.values.clone(),
            pin_tokens: self.pin_tokens.clone(),
            pin_vals: self.pin_vals.clone(),
            ack_missing: self.ack_missing.clone(),
            pending_input: self.pending_input.clone(),
            flags: self.flags.clone(),
            gen: self.gen.clone(),
            records: self.records.clone(),
        }
    }

    /// Overwrites this simulator's dynamic state with a checkpoint's. The
    /// netlist this simulator was built over must structurally match the
    /// one the checkpoint was taken from — same gate/arc/output counts
    /// AND the same arc topology fingerprint (resuming is only meaningful
    /// against the *same* netlist and delay model; the delay model is the
    /// caller's responsibility). Any recorded trace events are cleared;
    /// the tracing on/off setting is kept.
    ///
    /// # Errors
    ///
    /// [`SimError::CheckpointMismatch`] when the netlists differ.
    pub fn restore(&mut self, ck: &SimCheckpoint<L>) -> Result<(), SimError> {
        if ck.gates != self.pl.gates().len()
            || ck.arcs != self.pl.arcs().len()
            || ck.outputs != self.pl.output_gates().len()
            || ck.fingerprint != self.fingerprint
        {
            return Err(SimError::CheckpointMismatch {
                snapshot_gates: ck.gates,
                snapshot_arcs: ck.arcs,
                snapshot_outputs: ck.outputs,
                netlist_gates: self.pl.gates().len(),
                netlist_arcs: self.pl.arcs().len(),
                netlist_outputs: self.pl.output_gates().len(),
            });
        }
        self.now = ck.now;
        self.seq = ck.seq;
        self.events = ck.events;
        self.rounds = ck.rounds;
        self.queue.clear();
        for e in &ck.queue {
            self.queue.push(e.key, e.kind);
        }
        self.tokens.clone_from(&ck.tokens);
        self.values.clone_from(&ck.values);
        self.pin_tokens.clone_from(&ck.pin_tokens);
        self.pin_vals.clone_from(&ck.pin_vals);
        self.ack_missing.clone_from(&ck.ack_missing);
        self.pending_input.clone_from(&ck.pending_input);
        self.flags.clone_from(&ck.flags);
        self.gen.clone_from(&ck.gen);
        self.records.clone_from(&ck.records);
        // Leader-diet bookkeeping is not checkpoint state (the counts are
        // folded into the window base offsets before every snapshot); a
        // restored simulator starts its own tally.
        self.records_skipped.iter_mut().for_each(|s| *s = 0);
        self.fired_rounds.iter_mut().for_each(|s| *s = 0);
        self.record_horizon = 0;
        if let Some(trace) = &mut self.trace {
            trace.clear();
        }
        Ok(())
    }

    /// Builds a fresh simulator over `pl` and restores `ck` into it — the
    /// one-call resume path. For restoring many checkpoints against the
    /// same netlist (the pipelined sweep's workers), build one simulator
    /// with [`PlSimulator::new`] and call [`PlSimulator::restore`] per
    /// checkpoint instead: that reuses the frozen adjacency.
    ///
    /// # Errors
    ///
    /// [`SimError::Structural`] if `pl` fails the liveness pre-check;
    /// [`SimError::CheckpointMismatch`] when the netlist shapes differ.
    pub fn resume_from(
        pl: &'a PlNetlist,
        delays: DelayModel,
        ck: &SimCheckpoint<L>,
    ) -> Result<Self, SimError> {
        let mut sim = Self::new(pl, delays)?;
        sim.restore(ck)?;
        Ok(sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::PlSimulator;
    use pl_netlist::Netlist;

    fn counter() -> PlNetlist {
        let mut n = Netlist::new("cnt");
        let q0 = n.add_dff(false);
        let q1 = n.add_dff(false);
        let n0 = n.add_not(q0).unwrap();
        let t1 = n.add_xor2(q1, q0).unwrap();
        n.set_dff_input(q0, n0).unwrap();
        n.set_dff_input(q1, t1).unwrap();
        n.set_output("q0", q0);
        n.set_output("q1", q1);
        PlNetlist::from_sync(&n).unwrap()
    }

    fn xor_gate() -> PlNetlist {
        let mut n = Netlist::new("xor");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_xor2(a, b).unwrap();
        n.set_output("y", g);
        PlNetlist::from_sync(&n).unwrap()
    }

    /// Outcomes after a resume are bit-identical to the uninterrupted run —
    /// on a stateful, autonomously firing circuit (the event queue is never
    /// empty between vectors, so the in-flight events must round-trip).
    #[test]
    fn resume_is_bit_identical_on_stateful_circuit() {
        let pl = counter();
        let delays = DelayModel::default();
        let mut base = PlSimulator::new(&pl, delays.clone()).unwrap();
        let reference: Vec<_> = (0..8)
            .map(|_| {
                let r = base.run_vector(&[]).unwrap();
                (r.outputs, r.latency.to_bits(), r.completed_at.to_bits())
            })
            .collect();

        let mut first = PlSimulator::new(&pl, delays.clone()).unwrap();
        for expect in &reference[..3] {
            let r = first.run_vector(&[]).unwrap();
            assert_eq!(
                &(r.outputs, r.latency.to_bits(), r.completed_at.to_bits()),
                expect
            );
        }
        let ck = first.snapshot();
        assert_eq!(ck.rounds(), 3);
        assert!(ck.queued_events() > 0, "the counter free-runs");
        assert!((ck.time() - first.time()).abs() < f64::EPSILON);

        // The resumed simulator continues the same run exactly...
        let mut resumed = PlSimulator::resume_from(&pl, delays.clone(), &ck).unwrap();
        for expect in &reference[3..] {
            let r = resumed.run_vector(&[]).unwrap();
            assert_eq!(
                &(r.outputs, r.latency.to_bits(), r.completed_at.to_bits()),
                expect
            );
        }
        // ...and taking the snapshot did not perturb the original.
        for expect in &reference[3..] {
            let r = first.run_vector(&[]).unwrap();
            assert_eq!(
                &(r.outputs, r.latency.to_bits(), r.completed_at.to_bits()),
                expect
            );
        }
    }

    #[test]
    fn restore_reuses_one_simulator_across_checkpoints() {
        let pl = xor_gate();
        let delays = DelayModel::default();
        let mut a = PlSimulator::new(&pl, delays.clone()).unwrap();
        let ck0 = a.snapshot();
        let r1 = a.run_vector(&[true, false]).unwrap();
        let ck1 = a.snapshot();
        let r2 = a.run_vector(&[true, true]).unwrap();

        let mut b = PlSimulator::new(&pl, delays).unwrap();
        b.restore(&ck1).unwrap();
        let r2b = b.run_vector(&[true, true]).unwrap();
        assert_eq!(r2b, r2);
        b.restore(&ck0).unwrap();
        let r1b = b.run_vector(&[true, false]).unwrap();
        assert_eq!(r1b, r1);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let small = xor_gate();
        let big = counter();
        let ck = PlSimulator::new(&small, DelayModel::default())
            .unwrap()
            .snapshot();
        match PlSimulator::resume_from(&big, DelayModel::default(), &ck) {
            Err(SimError::CheckpointMismatch { .. }) => {}
            other => panic!("expected CheckpointMismatch, got {other:?}"),
        }
    }

    /// Counts are not identity: a different design with the SAME
    /// gate/arc/output counts must still be rejected (the fingerprint
    /// covers arc topology and gate functions, not just sizes).
    #[test]
    fn same_counts_different_design_is_rejected() {
        fn two_input(
            table_of: fn(
                &mut Netlist,
                pl_netlist::NodeId,
                pl_netlist::NodeId,
            ) -> pl_netlist::NodeId,
        ) -> PlNetlist {
            let mut n = Netlist::new("g");
            let a = n.add_input("a");
            let b = n.add_input("b");
            let g = table_of(&mut n, a, b);
            n.set_output("y", g);
            PlNetlist::from_sync(&n).unwrap()
        }
        let xor = two_input(|n, a, b| n.add_xor2(a, b).unwrap());
        let and = two_input(|n, a, b| n.add_and2(a, b).unwrap());
        assert_eq!(xor.gates().len(), and.gates().len());
        assert_eq!(xor.arcs().len(), and.arcs().len());
        let ck = PlSimulator::new(&xor, DelayModel::default())
            .unwrap()
            .snapshot();
        match PlSimulator::resume_from(&and, DelayModel::default(), &ck) {
            Err(SimError::CheckpointMismatch { .. }) => {}
            other => panic!("expected CheckpointMismatch, got {other:?}"),
        }
        // The genuinely same design (a separate but identical build) is
        // accepted: the fingerprint identifies the design, not the object.
        let xor_again = two_input(|n, a, b| n.add_xor2(a, b).unwrap());
        assert!(PlSimulator::resume_from(&xor_again, DelayModel::default(), &ck).is_ok());
    }

    #[test]
    fn checkpoint_crosses_threads() {
        fn ok<T: Send + Sync + Clone + std::fmt::Debug>() {}
        ok::<SimCheckpoint>();
    }

    #[test]
    fn restore_clears_recorded_trace() {
        let pl = xor_gate();
        let mut sim = PlSimulator::new(&pl, DelayModel::default()).unwrap();
        sim.enable_tracing();
        sim.run_vector(&[true, true]).unwrap();
        assert!(!sim.trace().is_empty());
        let ck = sim.snapshot();
        sim.restore(&ck).unwrap();
        assert!(
            sim.trace().is_empty(),
            "a resumed trace must not mix timelines"
        );
    }
}
