//! Parallel multi-vector sweeps: deterministic scatter/gather across
//! worker threads.
//!
//! The paper's headline numbers come from sweeping many input vectors over
//! each benchmark; independent sweeps are the classic embarrassingly
//! parallel discrete-event speedup. This module vendors a small
//! work-queue pool built from `std::thread::scope` plus an `mpsc` gather
//! channel — no external dependencies — and exposes two sweep shapes on
//! top of it:
//!
//! * [`sweep_streams`] — N independent vector streams, each simulated by a
//!   **private** [`PlSimulator`] over a shared `&`[`PlNetlist`] from the
//!   initial marking. Results come back in stream order.
//! * [`sweep_sharded`] — ONE long vector stream split into fixed-size
//!   shards. Shard boundaries depend only on the stream length and
//!   `shard_len` — never on the worker count — so the merged
//!   [`StreamOutcome`] is **bit-identical for every `jobs` value**,
//!   including the `jobs = 1` sequential run. With `shard_len >=
//!   vectors.len()` there is exactly one shard and the result equals a
//!   plain [`PlSimulator::run_stream`] call. Each shard restarts from the
//!   initial marking, so for stateful designs a shard boundary is a reset
//!   (independent experiments, not one long run).
//! * [`sweep_pipelined`] — ONE long vector stream as **one continuous
//!   pipelined run**, parallelized *without* resets: a leader pass
//!   advances the simulator state cheaply through the stream (injections
//!   only — no output collection, no latency/trace bookkeeping, and no
//!   record-queue bookkeeping at all: the leader runs with recording
//!   switched off and folds the skipped-round counts into the window
//!   `base` offsets), emitting a [`crate::SimCheckpoint`] at every
//!   `window`-vector boundary, while worker threads replay each window in
//!   full behind it. Window results merge vector-index-ordered into a
//!   [`StreamOutcome`] that is **bit-identical to a sequential
//!   [`PlSimulator::run_stream`] call** for every `(jobs, window)`
//!   combination.
//! * [`sweep_resumable`] ([`resume`]) — the pipelined single stream made
//!   crash-resumable: window-boundary checkpoints and a completed-window
//!   journal persist to a directory (atomic write-tmp-then-rename), a
//!   killed run resumes by replaying only unfinished windows, corrupt
//!   checkpoint files are detected (typed [`SimError`]) and routed
//!   around, and a failed or panicked worker's window is retried up to a
//!   bounded budget before degrading to in-process execution — all while
//!   staying bit-identical to [`PlSimulator::run_stream`].
//!
//! The independent-stream shapes also come in **batch** variants
//! ([`sweep_streams_batch`], [`sweep_sharded_batch`]) that scatter whole
//! 64-stream blocks, each block marched through a single
//! [`BatchSimulator`] event flow with `u64` lane words — the unit of
//! parallel work becomes 64 vectors instead of one, multiplying the
//! throughput of both levels (threads × lanes) while staying
//! bit-identical to the scalar sweeps.
//!
//! Every sweep shape also has a `_with_queue` variant
//! ([`sweep_streams_with_queue`], [`sweep_sharded_with_queue`],
//! [`sweep_pipelined_with_queue`]) selecting the event-queue backend
//! ([`crate::queue::QueueKind`]) of every simulator involved — a pure
//! cost-profile choice, results are backend-invariant.
//!
//! Determinism is structural, not incidental: workers only *pull* work
//! (item indices from an atomic counter, or checkpointed windows from a
//! channel); every result is sent back tagged with its index and the
//! gather side reorders into index order. The engine itself is
//! single-threaded and deterministic, and — for the pipelined sweep — a
//! window replayed from its boundary checkpoint reproduces the exact
//! event schedule of the uninterrupted run, because later windows'
//! injections cannot influence earlier rounds (token waves are causally
//! ordered by the marked graph's acknowledge arcs). Identical (netlist,
//! delays, vectors, shard_len/window) inputs give identical outputs
//! regardless of scheduling. `tests/engine_equivalence.rs` pins all three
//! shapes at 1/2/4/8 workers across the ITC'99 suite and randomized
//! netlists.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

use pl_core::PlNetlist;

use crate::checkpoint::SimCheckpoint;
use crate::delay::{ticks_to_ns, DelayModel};
use crate::engine::{BatchSimulator, PlSimulator, StreamOutcome};
use crate::error::SimError;
use crate::queue::QueueKind;

pub mod resume;

pub use resume::{
    sweep_resumable, sweep_resumable_with_faults, FaultPlan, ResumableOptions, ResumableOutcome,
    SweepRecovery, WindowFailure,
};

/// Resolves a `--jobs`-style request into a concrete worker count:
/// `0` means "ask the OS" ([`std::thread::available_parallelism`]), and
/// the result is clamped to `[1, items]` so no thread is ever spawned
/// without work.
#[must_use]
pub fn effective_jobs(requested: usize, items: usize) -> usize {
    let jobs = if requested == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        requested
    };
    jobs.clamp(1, items.max(1))
}

/// Applies `work` to every item on up to `jobs` worker threads and
/// returns the results **in item order**, regardless of which worker ran
/// what when.
///
/// Scatter is a shared atomic cursor (each worker pulls the next
/// unclaimed index — no pre-partitioning, so an expensive item cannot
/// strand a worker's whole static share); gather is an `mpsc` channel of
/// `(index, result)` pairs reordered into a dense `Vec`. With `jobs <= 1`
/// the items run inline on the caller's thread.
///
/// # Panics
///
/// A panic in `work` is re-raised on the calling thread with its original
/// payload; when several items panic, the lowest item index wins, so the
/// surfaced failure is deterministic across worker counts.
pub fn scatter_gather<T, R, F>(jobs: usize, items: &[T], work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = effective_jobs(jobs, items.len());
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| work(i, t)).collect();
    }
    // Worker panics are caught and shipped through the gather channel so
    // the caller sees the `work` payload itself (e.g. "flow failed for
    // b14"), not a gather-side unwind about a missing slot. Rethrowing
    // makes AssertUnwindSafe sound here: no caller observes any state the
    // panic may have left half-updated.
    type Caught<R> = std::thread::Result<R>;
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Caught<R>)>();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let cursor = &cursor;
            let work = &work;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| work(i, item)));
                if tx.send((i, result)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<Caught<R>>> = (0..items.len()).map(|_| None).collect();
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| {
                s.expect("every index was claimed exactly once")
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    })
}

/// Simulates each independent vector stream on a private simulator (fresh
/// initial marking) over the shared netlist, using up to `jobs` workers
/// (`0` = auto). Outcomes are returned in stream order and are
/// bit-identical to running the same streams sequentially through
/// [`PlSimulator::run_stream`], for any worker count.
///
/// # Errors
///
/// Propagates the first failing stream's error, by stream index (so the
/// reported error is deterministic even when several streams fail).
pub fn sweep_streams<S>(
    pl: &PlNetlist,
    delays: &DelayModel,
    streams: &[S],
    jobs: usize,
) -> Result<Vec<StreamOutcome>, SimError>
where
    S: AsRef<[Vec<bool>]> + Sync,
{
    sweep_streams_with_queue(pl, delays, streams, jobs, QueueKind::default())
}

/// [`sweep_streams`] with an explicit event-queue backend for the worker
/// simulators. The backend never changes results (see [`crate::queue`]),
/// only the queue-operation cost profile.
///
/// # Errors
///
/// Same conditions as [`sweep_streams`].
pub fn sweep_streams_with_queue<S>(
    pl: &PlNetlist,
    delays: &DelayModel,
    streams: &[S],
    jobs: usize,
    queue: QueueKind,
) -> Result<Vec<StreamOutcome>, SimError>
where
    S: AsRef<[Vec<bool>]> + Sync,
{
    scatter_gather(jobs, streams, |_, stream| {
        PlSimulator::with_queue(pl, delays.clone(), queue)?.run_stream(stream.as_ref())
    })
    .into_iter()
    .collect()
}

/// Splits one vector stream into `shard_len`-sized shards (the last may
/// be short), sweeps them with [`sweep_streams`], and merges the shard
/// outcomes vector-index-ordered into one [`StreamOutcome`].
///
/// Each shard starts from the netlist's initial marking, so for stateful
/// designs a shard boundary is a reset — this is the *sweep* semantics
/// (independent experiments), not one long pipelined run. The merged
/// outcome is a pure function of the per-shard outcomes: `outputs` are
/// concatenated in vector order, `makespan` is the slowest shard (the
/// critical path of a fully parallel schedule), and `throughput` counts
/// all vectors against that makespan. `jobs` therefore never changes the
/// result, only the wall-clock time.
///
/// # Errors
///
/// Propagates the first failing shard's error, by shard index.
///
/// # Panics
///
/// Panics if `shard_len` is zero.
pub fn sweep_sharded(
    pl: &PlNetlist,
    delays: &DelayModel,
    vectors: &[Vec<bool>],
    shard_len: usize,
    jobs: usize,
) -> Result<StreamOutcome, SimError> {
    sweep_sharded_with_queue(pl, delays, vectors, shard_len, jobs, QueueKind::default())
}

/// [`sweep_sharded`] with an explicit event-queue backend for the worker
/// simulators (results are backend-invariant).
///
/// # Errors
///
/// Propagates the first failing shard's error, by shard index.
///
/// # Panics
///
/// Panics if `shard_len` is zero.
pub fn sweep_sharded_with_queue(
    pl: &PlNetlist,
    delays: &DelayModel,
    vectors: &[Vec<bool>],
    shard_len: usize,
    jobs: usize,
    queue: QueueKind,
) -> Result<StreamOutcome, SimError> {
    assert!(shard_len > 0, "shard_len must be at least 1");
    let shards: Vec<&[Vec<bool>]> = vectors.chunks(shard_len).collect();
    let outcomes = sweep_streams_with_queue(pl, delays, &shards, jobs, queue)?;
    let mut merged = StreamOutcome {
        outputs: Vec::with_capacity(vectors.len()),
        makespan: 0.0,
        throughput: f64::INFINITY,
    };
    for o in outcomes {
        merged.outputs.extend(o.outputs);
        merged.makespan = merged.makespan.max(o.makespan);
    }
    if merged.makespan > 0.0 {
        merged.throughput = merged.outputs.len() as f64 / merged.makespan;
    }
    Ok(merged)
}

/// [`sweep_streams`] over the 64-lane batch engine: streams are packed
/// into blocks of up to 64, each block marched through one
/// [`BatchSimulator`] event flow ([`BatchSimulator::run_lanes`]), and the
/// blocks scattered across up to `jobs` workers. Per-stream outcomes come
/// back in stream order and are bit-identical, vector for vector, to
/// [`sweep_streams`] over the same streams (the lane dimension never
/// changes values — see [`crate::lane`]).
///
/// # Errors
///
/// Propagates the first failing block's error, by block index.
pub fn sweep_streams_batch<S>(
    pl: &PlNetlist,
    delays: &DelayModel,
    streams: &[S],
    jobs: usize,
) -> Result<Vec<StreamOutcome>, SimError>
where
    S: AsRef<[Vec<bool>]> + Sync,
{
    sweep_streams_batch_with_queue(pl, delays, streams, jobs, QueueKind::default())
}

/// [`sweep_streams_batch`] with an explicit event-queue backend for the
/// block simulators (results are backend-invariant).
///
/// # Errors
///
/// Same conditions as [`sweep_streams_batch`].
pub fn sweep_streams_batch_with_queue<S>(
    pl: &PlNetlist,
    delays: &DelayModel,
    streams: &[S],
    jobs: usize,
    queue: QueueKind,
) -> Result<Vec<StreamOutcome>, SimError>
where
    S: AsRef<[Vec<bool>]> + Sync,
{
    let blocks: Vec<&[S]> = streams.chunks(64).collect();
    let per_block = scatter_gather(jobs, &blocks, |_, block| {
        let lanes: Vec<&[Vec<bool>]> = block.iter().map(AsRef::as_ref).collect();
        BatchSimulator::with_queue(pl, delays.clone(), queue)?.run_lanes(&lanes)
    });
    let mut outcomes = Vec::with_capacity(streams.len());
    for block in per_block {
        outcomes.extend(block?);
    }
    Ok(outcomes)
}

/// [`sweep_sharded`] over the 64-lane batch engine: one long vector
/// stream split into `shard_len`-sized shards, the shards marched 64 at
/// a time through [`BatchSimulator::run_lanes`], and the shard outcomes
/// merged vector-index-ordered exactly like [`sweep_sharded`] (outputs
/// concatenated, makespan = slowest shard). Shard boundaries depend only
/// on the stream length and `shard_len`, so the merged outcome is
/// bit-identical to [`sweep_sharded`] for every `jobs` value.
///
/// # Errors
///
/// Propagates the first failing block's error, by block index.
///
/// # Panics
///
/// Panics if `shard_len` is zero.
pub fn sweep_sharded_batch(
    pl: &PlNetlist,
    delays: &DelayModel,
    vectors: &[Vec<bool>],
    shard_len: usize,
    jobs: usize,
) -> Result<StreamOutcome, SimError> {
    sweep_sharded_batch_with_queue(pl, delays, vectors, shard_len, jobs, QueueKind::default())
}

/// [`sweep_sharded_batch`] with an explicit event-queue backend for the
/// block simulators (results are backend-invariant).
///
/// # Errors
///
/// Propagates the first failing block's error, by block index.
///
/// # Panics
///
/// Panics if `shard_len` is zero.
pub fn sweep_sharded_batch_with_queue(
    pl: &PlNetlist,
    delays: &DelayModel,
    vectors: &[Vec<bool>],
    shard_len: usize,
    jobs: usize,
    queue: QueueKind,
) -> Result<StreamOutcome, SimError> {
    assert!(shard_len > 0, "shard_len must be at least 1");
    let shards: Vec<&[Vec<bool>]> = vectors.chunks(shard_len).collect();
    let outcomes = sweep_streams_batch_with_queue(pl, delays, &shards, jobs, queue)?;
    let mut merged = StreamOutcome {
        outputs: Vec::with_capacity(vectors.len()),
        makespan: 0.0,
        throughput: f64::INFINITY,
    };
    for o in outcomes {
        merged.outputs.extend(o.outputs);
        merged.makespan = merged.makespan.max(o.makespan);
    }
    if merged.makespan > 0.0 {
        merged.throughput = merged.outputs.len() as f64 / merged.makespan;
    }
    Ok(merged)
}

/// One window of work handed from the pipelined sweep's leader to a
/// worker: the boundary checkpoint plus the vectors to replay from it.
struct WindowTask<'v> {
    index: usize,
    start_round: usize,
    /// Per-output-queue count of rounds the leader pruned from the front
    /// of its record queues before this snapshot (queue `o`'s index for
    /// round `r` is therefore `r - base[o]`).
    base: Vec<usize>,
    vectors: &'v [Vec<bool>],
    checkpoint: SimCheckpoint,
}

/// Simulates ONE vector stream as a single continuous pipelined run —
/// state carries across every vector, exactly like handing the whole
/// stream to [`PlSimulator::run_stream`] — but parallelized over `jobs`
/// workers (`0` = auto) via checkpointed `window`-vector windows.
///
/// A leader pass (on the calling thread) advances the simulator through
/// the stream using only the cheap injection step
/// ([`PlSimulator::feed_vector`]: no output collection, no latency or
/// trace bookkeeping), taking a [`crate::SimCheckpoint`] at each window
/// boundary and handing `(checkpoint, window)` to the worker pool through
/// a bounded channel while it keeps advancing. Each worker restores the
/// checkpoint into its private simulator and replays the window in full,
/// extracting that window's output words and record timestamps. Window
/// results are merged **vector-index-ordered**.
///
/// The merged [`StreamOutcome`] is **bit-identical** — output words,
/// makespan and throughput compared exactly — to a sequential
/// [`PlSimulator::run_stream`] call on a fresh simulator, for every
/// `(jobs, window)` combination: a window replayed from its boundary
/// checkpoint reproduces the uninterrupted run's event schedule because
/// later injections cannot affect earlier rounds (waves are causally
/// ordered by the acknowledge arcs), and every record tick is assigned
/// causally, never by wall clock. `tests/engine_equivalence.rs` pins this
/// across the ITC'99 suite (plain + EE) and randomized netlists.
///
/// With `jobs <= 1` (after resolution) or a single window, the stream
/// runs directly through [`PlSimulator::run_stream`] on the calling
/// thread — the same result without the leader/replay duplication.
///
/// # Errors
///
/// Propagates the first failing window's error, by window index (so the
/// reported error is deterministic across worker counts). A leader-side
/// failure surfaces through the window that replays the same vectors.
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn sweep_pipelined(
    pl: &PlNetlist,
    delays: &DelayModel,
    vectors: &[Vec<bool>],
    window: usize,
    jobs: usize,
) -> Result<StreamOutcome, SimError> {
    sweep_pipelined_with_queue(pl, delays, vectors, window, jobs, QueueKind::default())
}

/// [`sweep_pipelined`] with an explicit event-queue backend for the
/// leader and every window-replay worker. Checkpoints are
/// queue-kind-portable, so any backend combination would agree; using one
/// kind throughout keeps the timing profile uniform. Results are
/// backend-invariant.
///
/// # Errors
///
/// Same conditions as [`sweep_pipelined`].
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn sweep_pipelined_with_queue(
    pl: &PlNetlist,
    delays: &DelayModel,
    vectors: &[Vec<bool>],
    window: usize,
    jobs: usize,
    queue: QueueKind,
) -> Result<StreamOutcome, SimError> {
    assert!(window > 0, "window must be at least 1");
    let n_windows = vectors.len().div_ceil(window);
    let jobs = effective_jobs(jobs, n_windows);
    // Building the leader first also validates the netlist: the workers'
    // own constructions below run the same deterministic checks and
    // therefore cannot fail once this one succeeded.
    let mut leader = PlSimulator::with_queue(pl, delays.clone(), queue)?;
    if jobs <= 1 || n_windows <= 1 {
        return leader.run_stream(vectors);
    }
    // Bounded task channel: the leader stays at most a few windows ahead,
    // and it prunes already-dispatched rounds from its record queues
    // before every snapshot, so checkpoint memory is O(jobs · in-flight
    // rounds), not O(stream). Workers share the receiver behind a mutex
    // (lock held only across the recv itself).
    let (task_tx, task_rx) = mpsc::sync_channel::<WindowTask<'_>>(2 * jobs);
    let task_rx = Mutex::new(task_rx);
    type WindowResult = Result<(Vec<Vec<bool>>, u64), SimError>;
    let (res_tx, res_rx) = mpsc::channel::<(usize, WindowResult)>();

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let task_rx = &task_rx;
            let res_tx = res_tx.clone();
            let delays = delays.clone();
            scope.spawn(move || {
                let mut sim = PlSimulator::with_queue(pl, delays, queue)
                    .expect("the leader already validated this netlist");
                loop {
                    let task = {
                        // A sibling that panicked while holding the lock
                        // poisons it; the queue itself is still intact, so
                        // recover the guard rather than cascading the
                        // panic into every healthy worker.
                        let rx = task_rx
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        rx.recv()
                    };
                    let Ok(task) = task else { break };
                    let result = match sim.restore(&task.checkpoint) {
                        Ok(()) => sim.replay_window(task.vectors, task.start_round, &task.base),
                        Err(e) => Err(e),
                    };
                    if res_tx.send((task.index, result)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(res_tx);

        // Leader pass: snapshot each boundary, hand the window off, keep
        // advancing. A leader-side simulation error stops dispatch; the
        // already-dispatched window replaying the same vectors reports the
        // identical error (the engine is deterministic), so error
        // propagation stays index-ordered.
        let start_tick = leader.time_ticks();
        let mut dispatched = 0usize;
        let mut start_round = 0usize;
        let mut base = vec![0usize; pl.output_gates().len()];
        'feed: for (index, w) in vectors.chunks(window).enumerate() {
            // Rounds before this window were dispatched to earlier
            // workers; the leader (and every later snapshot) no longer
            // needs their recorded words.
            leader.prune_records(start_round, &mut base);
            let checkpoint = leader.snapshot();
            if task_tx
                .send(WindowTask {
                    index,
                    start_round,
                    base: base.clone(),
                    vectors: w,
                    checkpoint,
                })
                .is_err()
            {
                break;
            }
            dispatched += 1;
            // Leader diet: this window is now some worker's job, so the
            // leader need not store its output words — raise the record
            // horizon to the window's end and only *count* firings below
            // it (the counts fold into `base` at the next prune, keeping
            // worker indexing, and hence results, bit-identical).
            leader.set_record_horizon(start_round + w.len());
            for v in w {
                if leader.feed_vector(v).is_err() {
                    break 'feed;
                }
            }
            start_round += w.len();
        }
        drop(task_tx);

        let mut slots: Vec<Option<WindowResult>> = (0..dispatched).map(|_| None).collect();
        for (i, r) in res_rx {
            slots[i] = Some(r);
        }
        let mut outputs = Vec::with_capacity(vectors.len());
        let mut last = start_tick;
        for slot in slots {
            let (words, window_last) = slot.expect("every dispatched window reports")?;
            outputs.extend(words);
            last = last.max(window_last);
        }
        let makespan = ticks_to_ns(last - start_tick);
        Ok(StreamOutcome {
            outputs,
            makespan,
            throughput: if makespan > 0.0 {
                vectors.len() as f64 / makespan
            } else {
                f64::INFINITY
            },
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_netlist::Netlist;

    fn xor_netlist() -> PlNetlist {
        let mut n = Netlist::new("xor");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_xor2(a, b).unwrap();
        n.set_output("y", g);
        PlNetlist::from_sync(&n).unwrap()
    }

    fn vectors(count: usize, seed: u64) -> Vec<Vec<bool>> {
        let mut x = seed;
        (0..count)
            .map(|_| {
                (0..2)
                    .map(|_| {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        x >> 63 == 1
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn shared_sweep_types_cross_threads() {
        fn ok<T: Send + Sync>() {}
        ok::<PlNetlist>();
        ok::<pl_core::PlAdjacency>();
        ok::<DelayModel>();
        ok::<StreamOutcome>();
        ok::<SimError>();
        fn ok_send<T: Send>() {}
        ok_send::<PlSimulator<'_>>();
    }

    #[test]
    fn scatter_gather_orders_results_by_index() {
        let items: Vec<usize> = (0..100).collect();
        for jobs in [1, 2, 4, 8] {
            let out = scatter_gather(jobs, &items, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn worker_panic_payload_reaches_caller_with_lowest_index() {
        let items: Vec<usize> = (0..16).collect();
        let caught = std::panic::catch_unwind(|| {
            scatter_gather(4, &items, |i, &x| {
                if x % 5 == 3 {
                    panic!("item {x} exploded");
                }
                i
            })
        })
        .expect_err("a worker panicked");
        // The original payload — not a gather-side slot invariant — and
        // deterministically the lowest panicking index (3, not 8 or 13).
        let msg = caught
            .downcast_ref::<String>()
            .expect("panic! with format produces a String payload");
        assert_eq!(msg, "item 3 exploded");
    }

    #[test]
    fn effective_jobs_clamps_and_resolves_auto() {
        assert_eq!(effective_jobs(4, 2), 2);
        assert_eq!(effective_jobs(4, 100), 4);
        assert_eq!(effective_jobs(1, 0), 1);
        assert!(effective_jobs(0, 64) >= 1);
    }

    /// Degenerate inputs: no items, one item, and far more workers than
    /// items must all resolve without spawning useless threads and without
    /// changing results.
    #[test]
    fn effective_jobs_degenerate_inputs() {
        // 0 items: still 1 (a worker count of 0 is never returned)...
        assert_eq!(effective_jobs(8, 0), 1);
        assert_eq!(effective_jobs(0, 0), 1);
        // 1 item: exactly one worker regardless of the request.
        assert_eq!(effective_jobs(8, 1), 1);
        assert_eq!(effective_jobs(0, 1), 1);
        // jobs ≫ items: clamped to the item count.
        assert_eq!(effective_jobs(1024, 3), 3);
    }

    #[test]
    fn scatter_gather_degenerate_inputs() {
        // 0 items: no work, no threads, empty result for any jobs value.
        let empty: [usize; 0] = [];
        for jobs in [0, 1, 8] {
            assert!(scatter_gather(jobs, &empty, |_, &x| x).is_empty());
        }
        // 1 item: runs inline on the caller's thread.
        assert_eq!(
            scatter_gather(8, &[41usize], |i, &x| (i, x + 1)),
            vec![(0, 42)]
        );
        // jobs ≫ items: every item claimed exactly once, in order.
        let items: Vec<usize> = (0..3).collect();
        assert_eq!(scatter_gather(64, &items, |_, &x| x * 2), vec![0, 2, 4]);
    }

    #[test]
    fn pipelined_sweep_is_jobs_and_window_invariant() {
        let pl = xor_netlist();
        let delays = DelayModel::default();
        let vecs = vectors(17, 0xD00F);
        let baseline = PlSimulator::new(&pl, delays.clone())
            .unwrap()
            .run_stream(&vecs)
            .unwrap();
        for window in [1, 2, 3, 5, 17, 40] {
            for jobs in [1, 2, 4, 8] {
                let p = sweep_pipelined(&pl, &delays, &vecs, window, jobs).unwrap();
                assert_eq!(p, baseline, "window={window} jobs={jobs} diverged");
            }
        }
    }

    /// Unlike the sharded sweep, window boundaries are NOT resets: state
    /// carries across them, so a stateful design (free-running counter)
    /// must behave as one continuous stream.
    #[test]
    fn pipelined_sweep_carries_state_across_windows() {
        let mut n = Netlist::new("cnt");
        let q0 = n.add_dff(false);
        let q1 = n.add_dff(false);
        let n0 = n.add_not(q0).unwrap();
        let t1 = n.add_xor2(q1, q0).unwrap();
        n.set_dff_input(q0, n0).unwrap();
        n.set_dff_input(q1, t1).unwrap();
        n.set_output("q0", q0);
        n.set_output("q1", q1);
        let pl = PlNetlist::from_sync(&n).unwrap();
        let delays = DelayModel::default();
        let vecs: Vec<Vec<bool>> = (0..8).map(|_| Vec::new()).collect();
        let out = sweep_pipelined(&pl, &delays, &vecs, 2, 4).unwrap();
        let counts: Vec<u8> = out
            .outputs
            .iter()
            .map(|w| (u8::from(w[1]) << 1) | u8::from(w[0]))
            .collect();
        assert_eq!(
            counts,
            vec![0, 1, 2, 3, 0, 1, 2, 3],
            "window boundary reset the counter"
        );
    }

    /// Leader-diet regression: the record-horizon skip must be invisible
    /// in results even on a netlist that mixes every record source — an
    /// input-paced output, a free-running DFF ring output (which *outruns*
    /// the fed vectors, so its beyond-horizon records must be kept, not
    /// skipped), and a constant-tied output (recorded at feed time, not by
    /// a gate firing).
    #[test]
    fn pipelined_sweep_leader_diet_is_bit_identical() {
        let mut n = Netlist::new("mixed");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_xor2(a, b).unwrap();
        let q0 = n.add_dff(false);
        let q1 = n.add_dff(false);
        let n0 = n.add_not(q0).unwrap();
        let t1 = n.add_xor2(q1, q0).unwrap();
        n.set_dff_input(q0, n0).unwrap();
        n.set_dff_input(q1, t1).unwrap();
        let c = n.add_const(true);
        n.set_output("x", x);
        n.set_output("q1", q1);
        n.set_output("k", c);
        let pl = PlNetlist::from_sync(&n).unwrap();
        let delays = DelayModel::default();
        let vecs = vectors(23, 0xD1E7);
        let baseline = PlSimulator::new(&pl, delays.clone())
            .unwrap()
            .run_stream(&vecs)
            .unwrap();
        for window in [1, 2, 3, 7, 23] {
            for jobs in [2, 4, 8] {
                let p = sweep_pipelined(&pl, &delays, &vecs, window, jobs).unwrap();
                assert_eq!(p, baseline, "window={window} jobs={jobs} diverged");
            }
        }
    }

    #[test]
    fn pipelined_sweep_empty_stream_matches_run_stream() {
        let pl = xor_netlist();
        let delays = DelayModel::default();
        let direct = PlSimulator::new(&pl, delays.clone())
            .unwrap()
            .run_stream(&[])
            .unwrap();
        let piped = sweep_pipelined(&pl, &delays, &[], 4, 8).unwrap();
        assert_eq!(piped, direct);
        assert!(piped.outputs.is_empty());
    }

    #[test]
    fn pipelined_sweep_errors_deterministically_by_window() {
        let pl = xor_netlist();
        let delays = DelayModel::default();
        // Vector 5 (window 2 at window-size 2) is malformed; its window's
        // arity error must win for every worker count.
        let mut vecs = vectors(9, 0xEBB);
        vecs[5] = vec![true];
        for jobs in [1, 2, 4, 8] {
            match sweep_pipelined(&pl, &delays, &vecs, 2, jobs) {
                Err(SimError::InputArityMismatch {
                    got: 1,
                    expected: 2,
                }) => {}
                other => panic!("jobs={jobs}: expected the arity error, got {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "window must be at least 1")]
    fn pipelined_sweep_rejects_zero_window() {
        let pl = xor_netlist();
        let _ = sweep_pipelined(&pl, &DelayModel::default(), &vectors(4, 1), 0, 2);
    }

    #[test]
    fn sweep_streams_matches_sequential_for_all_worker_counts() {
        let pl = xor_netlist();
        let delays = DelayModel::default();
        let streams: Vec<Vec<Vec<bool>>> =
            (0..6).map(|k| vectors(5 + k, 0xA11CE + k as u64)).collect();
        let sequential: Vec<StreamOutcome> = streams
            .iter()
            .map(|s| {
                PlSimulator::new(&pl, delays.clone())
                    .unwrap()
                    .run_stream(s)
                    .unwrap()
            })
            .collect();
        for jobs in [1, 2, 4, 8] {
            let par = sweep_streams(&pl, &delays, &streams, jobs).unwrap();
            assert_eq!(par, sequential, "jobs={jobs} diverged");
        }
    }

    #[test]
    fn sharded_sweep_is_jobs_invariant_and_single_shard_equals_run_stream() {
        let pl = xor_netlist();
        let delays = DelayModel::default();
        let vecs = vectors(23, 0xBEEF);
        let baseline = sweep_sharded(&pl, &delays, &vecs, 5, 1).unwrap();
        for jobs in [2, 4, 8] {
            let par = sweep_sharded(&pl, &delays, &vecs, 5, jobs).unwrap();
            assert_eq!(par, baseline, "jobs={jobs} diverged");
        }
        let single = sweep_sharded(&pl, &delays, &vecs, vecs.len(), 4).unwrap();
        let direct = PlSimulator::new(&pl, delays.clone())
            .unwrap()
            .run_stream(&vecs)
            .unwrap();
        assert_eq!(single, direct);
    }

    /// The batch sweep must reproduce the scalar sweep bit for bit — for
    /// any worker count, and across a 64-stream block boundary (65
    /// streams → two blocks, the second holding a single lane) with
    /// ragged stream lengths.
    #[test]
    fn batch_sweep_matches_scalar_sweep_across_block_boundary() {
        let pl = xor_netlist();
        let delays = DelayModel::default();
        let streams: Vec<Vec<Vec<bool>>> = (0..65)
            .map(|k| vectors(1 + k % 5, 0x1A4E + k as u64))
            .collect();
        let scalar = sweep_streams(&pl, &delays, &streams, 1).unwrap();
        for jobs in [1, 2, 4] {
            let batch = sweep_streams_batch(&pl, &delays, &streams, jobs).unwrap();
            assert_eq!(batch.len(), scalar.len());
            for (i, (b, s)) in batch.iter().zip(&scalar).enumerate() {
                assert_eq!(b.outputs, s.outputs, "stream {i} diverged at jobs={jobs}");
            }
        }
    }

    #[test]
    fn batch_sweep_empty_and_single_stream() {
        let pl = xor_netlist();
        let delays = DelayModel::default();
        let empty: Vec<Vec<Vec<bool>>> = Vec::new();
        assert!(sweep_streams_batch(&pl, &delays, &empty, 4)
            .unwrap()
            .is_empty());
        let one = vec![vectors(7, 0xF00)];
        let batch = sweep_streams_batch(&pl, &delays, &one, 4).unwrap();
        let scalar = sweep_streams(&pl, &delays, &one, 1).unwrap();
        assert_eq!(batch[0].outputs, scalar[0].outputs);
    }

    #[test]
    fn sharded_batch_matches_sharded_outputs_for_all_worker_counts() {
        let pl = xor_netlist();
        let delays = DelayModel::default();
        let vecs = vectors(143, 0xC0DE);
        let baseline = sweep_sharded(&pl, &delays, &vecs, 5, 1).unwrap();
        for jobs in [1, 2, 4] {
            let batch = sweep_sharded_batch(&pl, &delays, &vecs, 5, jobs).unwrap();
            assert_eq!(batch.outputs, baseline.outputs, "jobs={jobs} diverged");
        }
    }

    #[test]
    fn batch_errors_propagate_deterministically_by_block() {
        let pl = xor_netlist();
        let delays = DelayModel::default();
        // Lane 1 of the first block is malformed; its arity error must
        // win for every worker count.
        let streams: Vec<Vec<Vec<bool>>> = vec![
            vectors(3, 1),
            vec![vec![true]],
            vectors(3, 2),
            vec![vec![false; 5]],
        ];
        for jobs in [1, 2, 4] {
            match sweep_streams_batch(&pl, &delays, &streams, jobs) {
                Err(SimError::InputArityMismatch {
                    got: 1,
                    expected: 2,
                }) => {}
                other => panic!("jobs={jobs}: expected the arity error, got {other:?}"),
            }
        }
    }

    #[test]
    fn errors_propagate_deterministically_by_index() {
        let pl = xor_netlist();
        let delays = DelayModel::default();
        // Streams 1 and 3 are malformed (wrong arity); stream 1's error
        // must win for every worker count.
        let streams: Vec<Vec<Vec<bool>>> = vec![
            vectors(3, 1),
            vec![vec![true]],
            vectors(3, 2),
            vec![vec![false; 5]],
        ];
        for jobs in [1, 2, 4, 8] {
            match sweep_streams(&pl, &delays, &streams, jobs) {
                Err(SimError::InputArityMismatch {
                    got: 1,
                    expected: 2,
                }) => {}
                other => panic!("jobs={jobs}: expected stream 1's arity error, got {other:?}"),
            }
        }
    }
}
