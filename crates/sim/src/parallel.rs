//! Parallel multi-vector sweeps: deterministic scatter/gather across
//! worker threads.
//!
//! The paper's headline numbers come from sweeping many input vectors over
//! each benchmark; independent sweeps are the classic embarrassingly
//! parallel discrete-event speedup. This module vendors a small
//! work-queue pool built from `std::thread::scope` plus an `mpsc` gather
//! channel — no external dependencies — and exposes two sweep shapes on
//! top of it:
//!
//! * [`sweep_streams`] — N independent vector streams, each simulated by a
//!   **private** [`PlSimulator`] over a shared `&`[`PlNetlist`] from the
//!   initial marking. Results come back in stream order.
//! * [`sweep_sharded`] — ONE long vector stream split into fixed-size
//!   shards. Shard boundaries depend only on the stream length and
//!   `shard_len` — never on the worker count — so the merged
//!   [`StreamOutcome`] is **bit-identical for every `jobs` value**,
//!   including the `jobs = 1` sequential run. With `shard_len >=
//!   vectors.len()` there is exactly one shard and the result equals a
//!   plain [`PlSimulator::run_stream`] call.
//!
//! Determinism is structural, not incidental: workers only *pull* item
//! indices from an atomic counter; every result is sent back tagged with
//! its index and the gather side reorders into index order. The engine
//! itself is single-threaded and deterministic, so identical (netlist,
//! delays, vectors, shard_len) inputs give identical outputs regardless
//! of scheduling. `tests/engine_equivalence.rs` pins this at 1/2/4/8
//! workers across the ITC'99 suite and randomized netlists.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use pl_core::PlNetlist;

use crate::delay::DelayModel;
use crate::engine::{PlSimulator, StreamOutcome};
use crate::error::SimError;

/// Resolves a `--jobs`-style request into a concrete worker count:
/// `0` means "ask the OS" ([`std::thread::available_parallelism`]), and
/// the result is clamped to `[1, items]` so no thread is ever spawned
/// without work.
#[must_use]
pub fn effective_jobs(requested: usize, items: usize) -> usize {
    let jobs = if requested == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        requested
    };
    jobs.clamp(1, items.max(1))
}

/// Applies `work` to every item on up to `jobs` worker threads and
/// returns the results **in item order**, regardless of which worker ran
/// what when.
///
/// Scatter is a shared atomic cursor (each worker pulls the next
/// unclaimed index — no pre-partitioning, so an expensive item cannot
/// strand a worker's whole static share); gather is an `mpsc` channel of
/// `(index, result)` pairs reordered into a dense `Vec`. With `jobs <= 1`
/// the items run inline on the caller's thread.
///
/// # Panics
///
/// A panic in `work` is re-raised on the calling thread with its original
/// payload; when several items panic, the lowest item index wins, so the
/// surfaced failure is deterministic across worker counts.
pub fn scatter_gather<T, R, F>(jobs: usize, items: &[T], work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = effective_jobs(jobs, items.len());
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| work(i, t)).collect();
    }
    // Worker panics are caught and shipped through the gather channel so
    // the caller sees the `work` payload itself (e.g. "flow failed for
    // b14"), not a gather-side unwind about a missing slot. Rethrowing
    // makes AssertUnwindSafe sound here: no caller observes any state the
    // panic may have left half-updated.
    type Caught<R> = std::thread::Result<R>;
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Caught<R>)>();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let cursor = &cursor;
            let work = &work;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| work(i, item)));
                if tx.send((i, result)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<Caught<R>>> = (0..items.len()).map(|_| None).collect();
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| {
                s.expect("every index was claimed exactly once")
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    })
}

/// Simulates each independent vector stream on a private simulator (fresh
/// initial marking) over the shared netlist, using up to `jobs` workers
/// (`0` = auto). Outcomes are returned in stream order and are
/// bit-identical to running the same streams sequentially through
/// [`PlSimulator::run_stream`], for any worker count.
///
/// # Errors
///
/// Propagates the first failing stream's error, by stream index (so the
/// reported error is deterministic even when several streams fail).
pub fn sweep_streams<S>(
    pl: &PlNetlist,
    delays: &DelayModel,
    streams: &[S],
    jobs: usize,
) -> Result<Vec<StreamOutcome>, SimError>
where
    S: AsRef<[Vec<bool>]> + Sync,
{
    scatter_gather(jobs, streams, |_, stream| {
        PlSimulator::new(pl, delays.clone())?.run_stream(stream.as_ref())
    })
    .into_iter()
    .collect()
}

/// Splits one vector stream into `shard_len`-sized shards (the last may
/// be short), sweeps them with [`sweep_streams`], and merges the shard
/// outcomes vector-index-ordered into one [`StreamOutcome`].
///
/// Each shard starts from the netlist's initial marking, so for stateful
/// designs a shard boundary is a reset — this is the *sweep* semantics
/// (independent experiments), not one long pipelined run. The merged
/// outcome is a pure function of the per-shard outcomes: `outputs` are
/// concatenated in vector order, `makespan` is the slowest shard (the
/// critical path of a fully parallel schedule), and `throughput` counts
/// all vectors against that makespan. `jobs` therefore never changes the
/// result, only the wall-clock time.
///
/// # Errors
///
/// Propagates the first failing shard's error, by shard index.
///
/// # Panics
///
/// Panics if `shard_len` is zero.
pub fn sweep_sharded(
    pl: &PlNetlist,
    delays: &DelayModel,
    vectors: &[Vec<bool>],
    shard_len: usize,
    jobs: usize,
) -> Result<StreamOutcome, SimError> {
    assert!(shard_len > 0, "shard_len must be at least 1");
    let shards: Vec<&[Vec<bool>]> = vectors.chunks(shard_len).collect();
    let outcomes = sweep_streams(pl, delays, &shards, jobs)?;
    let mut merged = StreamOutcome {
        outputs: Vec::with_capacity(vectors.len()),
        makespan: 0.0,
        throughput: f64::INFINITY,
    };
    for o in outcomes {
        merged.outputs.extend(o.outputs);
        merged.makespan = merged.makespan.max(o.makespan);
    }
    if merged.makespan > 0.0 {
        merged.throughput = merged.outputs.len() as f64 / merged.makespan;
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_netlist::Netlist;

    fn xor_netlist() -> PlNetlist {
        let mut n = Netlist::new("xor");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_xor2(a, b).unwrap();
        n.set_output("y", g);
        PlNetlist::from_sync(&n).unwrap()
    }

    fn vectors(count: usize, seed: u64) -> Vec<Vec<bool>> {
        let mut x = seed;
        (0..count)
            .map(|_| {
                (0..2)
                    .map(|_| {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        x >> 63 == 1
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn shared_sweep_types_cross_threads() {
        fn ok<T: Send + Sync>() {}
        ok::<PlNetlist>();
        ok::<pl_core::PlAdjacency>();
        ok::<DelayModel>();
        ok::<StreamOutcome>();
        ok::<SimError>();
        fn ok_send<T: Send>() {}
        ok_send::<PlSimulator<'_>>();
    }

    #[test]
    fn scatter_gather_orders_results_by_index() {
        let items: Vec<usize> = (0..100).collect();
        for jobs in [1, 2, 4, 8] {
            let out = scatter_gather(jobs, &items, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn worker_panic_payload_reaches_caller_with_lowest_index() {
        let items: Vec<usize> = (0..16).collect();
        let caught = std::panic::catch_unwind(|| {
            scatter_gather(4, &items, |i, &x| {
                if x % 5 == 3 {
                    panic!("item {x} exploded");
                }
                i
            })
        })
        .expect_err("a worker panicked");
        // The original payload — not a gather-side slot invariant — and
        // deterministically the lowest panicking index (3, not 8 or 13).
        let msg = caught
            .downcast_ref::<String>()
            .expect("panic! with format produces a String payload");
        assert_eq!(msg, "item 3 exploded");
    }

    #[test]
    fn effective_jobs_clamps_and_resolves_auto() {
        assert_eq!(effective_jobs(4, 2), 2);
        assert_eq!(effective_jobs(4, 100), 4);
        assert_eq!(effective_jobs(1, 0), 1);
        assert!(effective_jobs(0, 64) >= 1);
    }

    #[test]
    fn sweep_streams_matches_sequential_for_all_worker_counts() {
        let pl = xor_netlist();
        let delays = DelayModel::default();
        let streams: Vec<Vec<Vec<bool>>> =
            (0..6).map(|k| vectors(5 + k, 0xA11CE + k as u64)).collect();
        let sequential: Vec<StreamOutcome> = streams
            .iter()
            .map(|s| {
                PlSimulator::new(&pl, delays.clone())
                    .unwrap()
                    .run_stream(s)
                    .unwrap()
            })
            .collect();
        for jobs in [1, 2, 4, 8] {
            let par = sweep_streams(&pl, &delays, &streams, jobs).unwrap();
            assert_eq!(par, sequential, "jobs={jobs} diverged");
        }
    }

    #[test]
    fn sharded_sweep_is_jobs_invariant_and_single_shard_equals_run_stream() {
        let pl = xor_netlist();
        let delays = DelayModel::default();
        let vecs = vectors(23, 0xBEEF);
        let baseline = sweep_sharded(&pl, &delays, &vecs, 5, 1).unwrap();
        for jobs in [2, 4, 8] {
            let par = sweep_sharded(&pl, &delays, &vecs, 5, jobs).unwrap();
            assert_eq!(par, baseline, "jobs={jobs} diverged");
        }
        let single = sweep_sharded(&pl, &delays, &vecs, vecs.len(), 4).unwrap();
        let direct = PlSimulator::new(&pl, delays.clone())
            .unwrap()
            .run_stream(&vecs)
            .unwrap();
        assert_eq!(single, direct);
    }

    #[test]
    fn errors_propagate_deterministically_by_index() {
        let pl = xor_netlist();
        let delays = DelayModel::default();
        // Streams 1 and 3 are malformed (wrong arity); stream 1's error
        // must win for every worker count.
        let streams: Vec<Vec<Vec<bool>>> = vec![
            vectors(3, 1),
            vec![vec![true]],
            vectors(3, 2),
            vec![vec![false; 5]],
        ];
        for jobs in [1, 2, 4, 8] {
            match sweep_streams(&pl, &delays, &streams, jobs) {
                Err(SimError::InputArityMismatch {
                    got: 1,
                    expected: 2,
                }) => {}
                other => panic!("jobs={jobs}: expected stream 1's arity error, got {other:?}"),
            }
        }
    }
}
