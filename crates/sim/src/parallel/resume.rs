//! Crash-resumable pipelined sweeps: window-boundary checkpoints, a
//! completed-window journal, bounded worker retry, and in-process
//! degradation — all pinned bit-identical to an uninterrupted
//! [`PlSimulator::run_stream`].
//!
//! # On-disk layout
//!
//! [`sweep_resumable`] owns one directory per sweep:
//!
//! | file | contents |
//! |------|----------|
//! | `sweep.meta` | run identity: magic `PLSWMETA`, format version, netlist fingerprint, delay-model digest, vector-stream digest, window size, vector count, trailing CRC32 |
//! | `journal.bin` | append-only completed-window log; each entry is `len:u32 \| payload \| crc32(payload):u32` with payload `window:u64, last_tick:u64, n_words:u64, width:u64, words as 0/1 bytes` |
//! | `window-{k:08}.ck` | the [`crate::SimCheckpoint`] wire encoding ([`crate::checkpoint::wire`]) of the leader state at the boundary *before* window `k`, for `k >= 1` (boundary 0 is the fresh simulator — no file needed) |
//!
//! Every file is written atomically (write `*.tmp`, `sync_all`, rename),
//! so a kill can leave at worst a stale `*.tmp` (ignored) or a torn
//! journal *tail* (detected by the per-entry CRC and truncated away on
//! recovery — completed entries before it survive).
//!
//! # Recovery
//!
//! On `resume`, the runner decodes `sweep.meta` (any corruption is a
//! typed fatal [`SimError`] — a directory whose identity cannot be
//! trusted is not resumed), rejects parameter drift with
//! [`SimError::ResumeMismatch`], replays the journal to learn which
//! windows already completed, finds the first incomplete window `F`, and
//! restarts the leader from the *largest decodable* checkpoint boundary
//! `<= F`. A corrupt or missing `window-k.ck` is recorded in
//! [`SweepRecovery::corrupt_files`] and routed around by falling back to
//! the previous boundary (ultimately boundary 0), never trusted: the
//! wire format's digests and CRCs decide, so resumption is correct even
//! if every checkpoint file was byte-flipped.
//!
//! # Fault tolerance during a run
//!
//! Window replays run on a scoped worker pool with `catch_unwind`
//! isolation. A window whose worker panics or returns an error is
//! retried up to [`ResumableOptions::max_retries`] times; past the
//! budget the failure is recorded in [`SweepRecovery::worker_failures`]
//! and the window degrades to in-process sequential execution on the
//! caller's thread ([`SweepRecovery::degraded_windows`]) — a determinism
//! bug that also fails in-process then surfaces as the run's error
//! rather than being swallowed. Replay is deterministic, so none of this
//! changes a single output bit.
//!
//! Memory note: unlike [`super::sweep_pipelined`], the leader here keeps
//! recording output words (no pruning), so each `window-k.ck` file is a
//! *self-contained* restart point decodable in a fresh process. Leader
//! memory and checkpoint size are therefore O(rounds so far) — the price
//! of crash-resumability; keep windows coarse for very long sweeps.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI64, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use pl_core::PlNetlist;

use crate::checkpoint::wire::{crc32, delay_digest, Reader};
use crate::checkpoint::{netlist_fingerprint, Fnv64, SimCheckpoint};
use crate::delay::{ticks_to_ns, DelayModel};
use crate::engine::{PlSimulator, StreamOutcome};
use crate::error::SimError;
use crate::parallel::effective_jobs;
use crate::queue::QueueKind;

/// Magic bytes opening `sweep.meta` (distinct from the checkpoint
/// magic, so the two file kinds can never be confused).
pub const META_MAGIC: [u8; 8] = *b"PLSWMETA";

/// `sweep.meta` format version this build writes and accepts.
pub const META_VERSION: u32 = 1;

/// Tuning knobs for [`sweep_resumable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResumableOptions {
    /// Vectors per window (checkpoint/journal granularity). Must be > 0.
    pub window: usize,
    /// Worker threads; `0` asks the OS ([`effective_jobs`]).
    pub jobs: usize,
    /// Event-queue backend for the leader and every worker.
    pub queue: QueueKind,
    /// `true` resumes an interrupted sweep already in the directory;
    /// `false` starts fresh and refuses a directory that has one.
    pub resume: bool,
    /// Re-attempts granted to a failed or panicked window before it
    /// degrades to in-process execution (`2` means up to 3 attempts).
    pub max_retries: u32,
}

impl Default for ResumableOptions {
    fn default() -> Self {
        Self {
            window: 64,
            jobs: 0,
            queue: QueueKind::default(),
            resume: false,
            max_retries: 2,
        }
    }
}

/// One window that exhausted its worker retry budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowFailure {
    /// The window index that kept failing.
    pub window: usize,
    /// Worker attempts made before giving up (0 if the pool died before
    /// the window was ever picked up).
    pub attempts: u32,
    /// The last failure, rendered (panic payload or [`SimError`]).
    pub message: String,
}

/// What recovery and fault handling did during a [`sweep_resumable`]
/// run — the run's outputs are bit-identical regardless, this is the
/// audit trail.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SweepRecovery {
    /// Total windows in the sweep.
    pub windows: usize,
    /// Windows whose results were taken from the journal instead of
    /// being re-simulated (0 on a fresh run).
    pub replayed_from_journal: usize,
    /// The checkpoint boundary the leader restarted from (equals
    /// `windows` when the journal was already complete).
    pub restart_window: usize,
    /// Windows retried at least once that still succeeded on a worker.
    pub retried_windows: usize,
    /// Windows that exhausted the retry budget, oldest first.
    pub worker_failures: Vec<WindowFailure>,
    /// Windows re-run in-process after exhausting the retry budget.
    pub degraded_windows: usize,
    /// Corrupt or unreadable recovery files that were detected and
    /// routed around (`path: error` strings).
    pub corrupt_files: Vec<String>,
}

impl fmt::Display for SweepRecovery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} windows, {} from journal, restart at {}, {} retried, \
             {} failed, {} degraded, {} corrupt files",
            self.windows,
            self.replayed_from_journal,
            self.restart_window,
            self.retried_windows,
            self.worker_failures.len(),
            self.degraded_windows,
            self.corrupt_files.len()
        )
    }
}

/// A completed [`sweep_resumable`] run: the stream outcome (bit-identical
/// to [`PlSimulator::run_stream`]) plus its recovery audit trail.
#[derive(Debug, Clone, PartialEq)]
pub struct ResumableOutcome {
    /// Outputs, makespan, and throughput of the full stream.
    pub outcome: StreamOutcome,
    /// What recovery and fault handling happened along the way.
    pub recovery: SweepRecovery,
}

/// Fault-injection hooks for [`sweep_resumable_with_faults`] — the
/// corruption harness's way to kill workers and halt runs at adversarial
/// points. A default-constructed plan injects nothing.
#[derive(Debug)]
pub struct FaultPlan {
    /// window -> remaining worker panics to inject for that window.
    panics: Mutex<HashMap<usize, u32>>,
    /// Remaining successful journal appends before the injected halt
    /// (-1 = disabled).
    halt_after: AtomicI64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            panics: Mutex::new(HashMap::new()),
            halt_after: AtomicI64::new(-1),
        }
    }
}

impl FaultPlan {
    /// A plan that injects nothing.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Panics the worker replaying `window` on each of its next `times`
    /// attempts (each panic kills that worker thread; the window is
    /// retried by a surviving one).
    pub fn panic_on_window(&self, window: usize, times: u32) {
        *lock(&self.panics).entry(window).or_insert(0) += times;
    }

    /// Halts the run with a typed I/O error just before the `(n+1)`-th
    /// journal append — simulating a kill at a window boundary, after
    /// `n` windows durably completed.
    pub fn halt_after_journal_appends(&self, n: u64) {
        self.halt_after
            .store(i64::try_from(n).unwrap_or(i64::MAX), Ordering::SeqCst);
    }

    fn take_panic(&self, window: usize) -> bool {
        let mut m = lock(&self.panics);
        match m.get_mut(&window) {
            Some(n) if *n > 0 => {
                *n -= 1;
                true
            }
            _ => false,
        }
    }

    fn check_halt(&self) -> Result<(), SimError> {
        let prev = self
            .halt_after
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                (v >= 0).then(|| v - 1)
            });
        match prev {
            Ok(0) => Err(SimError::CheckpointIo {
                path: "<fault-injection>".into(),
                message: "injected halt before journal append".into(),
            }),
            _ => Ok(()),
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn io_err(path: &Path, e: &std::io::Error) -> SimError {
    SimError::CheckpointIo {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// Durable write: `*.tmp`, `sync_all`, rename over the target. A kill at
/// any point leaves either the old file or the complete new one.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), SimError> {
    let tmp = path.with_extension("tmp");
    let write = |p: &Path| -> std::io::Result<()> {
        let mut f = fs::File::create(p)?;
        f.write_all(bytes)?;
        f.sync_all()
    };
    write(&tmp).map_err(|e| io_err(&tmp, &e))?;
    fs::rename(&tmp, path).map_err(|e| io_err(path, &e))
}

fn ck_path(dir: &Path, boundary: usize) -> PathBuf {
    dir.join(format!("window-{boundary:08}.ck"))
}

/// FNV-1a over the vector stream (counts + bit-packed values) — binds a
/// checkpoint directory to the exact inputs, since resuming under
/// different vectors would splice two unrelated streams.
fn vectors_digest(vectors: &[Vec<bool>]) -> u64 {
    let mut h = Fnv64::new();
    h.mix(vectors.len() as u64);
    for v in vectors {
        h.mix(v.len() as u64);
        let mut word = 0u64;
        let mut n = 0u32;
        for &b in v {
            word = word << 1 | u64::from(b);
            n += 1;
            if n == 64 {
                h.mix(word);
                word = 0;
                n = 0;
            }
        }
        if n > 0 {
            h.mix(word);
        }
    }
    h.finish()
}

struct MetaFields {
    fingerprint: u64,
    delay_digest: u64,
    vectors_digest: u64,
    window: u64,
    n_vectors: u64,
}

fn encode_meta(m: &MetaFields) -> Vec<u8> {
    let mut out = Vec::with_capacity(56);
    out.extend_from_slice(&META_MAGIC);
    out.extend_from_slice(&META_VERSION.to_le_bytes());
    out.extend_from_slice(&m.fingerprint.to_le_bytes());
    out.extend_from_slice(&m.delay_digest.to_le_bytes());
    out.extend_from_slice(&m.vectors_digest.to_le_bytes());
    out.extend_from_slice(&m.window.to_le_bytes());
    out.extend_from_slice(&m.n_vectors.to_le_bytes());
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn decode_meta(bytes: &[u8]) -> Result<MetaFields, SimError> {
    let mut r = Reader::new(bytes);
    let magic = r.take(8, "sweep.meta magic")?;
    if magic != META_MAGIC {
        return Err(SimError::CheckpointBadMagic {
            found: magic.try_into().expect("8 bytes"),
        });
    }
    let version = r.u32("sweep.meta version")?;
    if version != META_VERSION {
        return Err(SimError::CheckpointVersionSkew {
            found: version,
            supported: META_VERSION,
        });
    }
    // Trailer CRC over everything before it; checked before the fields
    // are trusted, so any flip past the version is a checksum error.
    if r.remaining() < 44 {
        return Err(SimError::CheckpointTruncated {
            context: "sweep.meta",
            needed: 44,
            available: r.remaining(),
        });
    }
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    let computed = crc32(&bytes[..bytes.len() - 4]);
    if stored != computed {
        return Err(SimError::CheckpointChecksum {
            section: "sweep.meta",
            stored,
            computed,
        });
    }
    let fields = MetaFields {
        fingerprint: r.u64("sweep.meta fingerprint")?,
        delay_digest: r.u64("sweep.meta delay digest")?,
        vectors_digest: r.u64("sweep.meta vectors digest")?,
        window: r.u64("sweep.meta window")?,
        n_vectors: r.u64("sweep.meta vector count")?,
    };
    if r.remaining() != 4 {
        return Err(SimError::CheckpointOutOfRange {
            field: "sweep.meta trailing bytes",
            value: r.remaining() as u64,
            limit: 4,
        });
    }
    Ok(fields)
}

/// One decoded journal entry: a durably completed window.
struct JournalEntry {
    last_tick: u64,
    words: Vec<Vec<bool>>,
}

fn encode_entry(window: usize, last_tick: u64, words: &[Vec<bool>]) -> Vec<u8> {
    let width = words.first().map_or(0, Vec::len);
    let mut payload = Vec::with_capacity(32 + words.len() * width);
    payload.extend_from_slice(&(window as u64).to_le_bytes());
    payload.extend_from_slice(&last_tick.to_le_bytes());
    payload.extend_from_slice(&(words.len() as u64).to_le_bytes());
    payload.extend_from_slice(&(width as u64).to_le_bytes());
    for w in words {
        debug_assert_eq!(w.len(), width);
        for &b in w {
            payload.push(u8::from(b));
        }
    }
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let crc = crc32(&payload);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// The shape every journal entry must decode into — anything else is
/// treated as the torn tail of a killed append.
struct JournalShape {
    n_windows: usize,
    window_len: usize,
    n_vectors: usize,
    width: usize,
}

impl JournalShape {
    fn words_in(&self, window: usize) -> usize {
        self.window_len
            .min(self.n_vectors - window * self.window_len)
    }
}

/// Parses one `len | payload | crc` frame. `None` means "malformed from
/// here on" — the caller truncates the tail.
fn parse_entry(bytes: &[u8], shape: &JournalShape) -> Option<(usize, usize, JournalEntry)> {
    let len = u32::from_le_bytes(bytes.get(..4)?.try_into().ok()?) as usize;
    let payload = bytes.get(4..4 + len)?;
    let stored = u32::from_le_bytes(bytes.get(4 + len..4 + len + 4)?.try_into().ok()?);
    if crc32(payload) != stored {
        return None;
    }
    let mut r = Reader::new(payload);
    // Checked narrowing: a u64 that does not fit usize is malformed by
    // definition (no real window/word count gets near it), and an `as`
    // cast would instead truncate it into a plausible small value on
    // 32-bit targets.
    let window = usize::try_from(r.u64("journal").ok()?).ok()?;
    let last_tick = r.u64("journal").ok()?;
    let n_words = usize::try_from(r.u64("journal").ok()?).ok()?;
    let width = usize::try_from(r.u64("journal").ok()?).ok()?;
    if window >= shape.n_windows || width != shape.width || n_words != shape.words_in(window) {
        return None;
    }
    if r.remaining() != n_words.checked_mul(width)? {
        return None;
    }
    let mut words = Vec::with_capacity(n_words);
    for _ in 0..n_words {
        let row = r.take(width, "journal").ok()?;
        if row.iter().any(|&b| b > 1) {
            return None;
        }
        words.push(row.iter().map(|&b| b == 1).collect());
    }
    Some((8 + len, window, JournalEntry { last_tick, words }))
}

/// Replays `journal.bin`: returns the completed windows and, if a torn
/// tail was found, truncates it away (so the next append lands on a
/// clean frame boundary) and reports it as a note for
/// [`SweepRecovery::corrupt_files`].
fn scan_journal(
    path: &Path,
    shape: &JournalShape,
) -> Result<(HashMap<usize, JournalEntry>, Option<String>), SimError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((HashMap::new(), None)),
        Err(e) => return Err(io_err(path, &e)),
    };
    let mut completed = HashMap::new();
    let mut pos = 0usize;
    let mut note = None;
    while pos < bytes.len() {
        match parse_entry(&bytes[pos..], shape) {
            Some((consumed, window, entry)) => {
                completed.insert(window, entry);
                pos += consumed;
            }
            None => {
                let f = fs::OpenOptions::new()
                    .write(true)
                    .open(path)
                    .map_err(|e| io_err(path, &e))?;
                f.set_len(pos as u64).map_err(|e| io_err(path, &e))?;
                f.sync_all().map_err(|e| io_err(path, &e))?;
                note = Some(format!(
                    "{}: torn journal tail truncated at byte {pos}",
                    path.display()
                ));
                break;
            }
        }
    }
    Ok((completed, note))
}

/// The journal file held open across the run; every append is a single
/// `write_all` + `sync_data`, so a kill tears at most the last frame.
struct Journal {
    file: fs::File,
    path: PathBuf,
}

impl Journal {
    fn open_append(path: PathBuf) -> Result<Self, SimError> {
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err(&path, &e))?;
        Ok(Self { file, path })
    }

    fn append(
        &mut self,
        faults: &FaultPlan,
        window: usize,
        last_tick: u64,
        words: &[Vec<bool>],
    ) -> Result<(), SimError> {
        faults.check_halt()?;
        let frame = encode_entry(window, last_tick, words);
        self.file
            .write_all(&frame)
            .and_then(|()| self.file.sync_data())
            .map_err(|e| io_err(&self.path, &e))
    }
}

/// One staged window replay.
struct Task<'v> {
    window: usize,
    start_round: usize,
    vectors: &'v [Vec<bool>],
    checkpoint: SimCheckpoint,
}

/// A replayed window's payload: the collected output words plus the
/// replaying simulator's final tick.
type WindowResult = (Vec<Vec<bool>>, u64);

/// Per-task batch verdict: attempts made, then the replay result or the
/// last failure message.
type TaskResult = (u32, Result<WindowResult, String>);

/// Everything a batch's workers share besides the tasks themselves.
struct BatchCtx<'a> {
    pl: &'a PlNetlist,
    delays: &'a DelayModel,
    queue: QueueKind,
    jobs: usize,
    max_retries: u32,
    faults: &'a FaultPlan,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

/// Replays a batch of windows on up to `jobs` workers with retry.
///
/// Workers pull tasks off a shared cursor; a failed attempt (error or
/// caught panic) goes onto a retry stack while the budget lasts. A
/// panicked worker's simulator state is unreliable, so that worker
/// thread exits; survivors pick the retry up. If the whole pool dies the
/// leftover tasks simply come back as failures — the caller degrades
/// them in-process, so the sweep always terminates.
fn run_batch(ctx: &BatchCtx<'_>, tasks: &[Task<'_>], base: &[usize]) -> Vec<TaskResult> {
    if tasks.is_empty() {
        return Vec::new();
    }
    let BatchCtx {
        pl,
        queue,
        jobs,
        max_retries,
        faults,
        ..
    } = *ctx;
    let successes: Mutex<Vec<Option<WindowResult>>> =
        Mutex::new((0..tasks.len()).map(|_| None).collect());
    let fail_log: Mutex<Vec<Option<String>>> = Mutex::new(vec![None; tasks.len()]);
    let attempts: Vec<AtomicU32> = tasks.iter().map(|_| AtomicU32::new(0)).collect();
    let cursor = AtomicUsize::new(0);
    let retry: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    let workers = effective_jobs(jobs, tasks.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let (successes, fail_log, attempts) = (&successes, &fail_log, &attempts);
            let (cursor, retry) = (&cursor, &retry);
            let delays = ctx.delays.clone();
            scope.spawn(move || {
                let mut sim = PlSimulator::with_queue(pl, delays, queue)
                    .expect("the leader already validated this netlist");
                loop {
                    let i = lock(retry)
                        .pop()
                        .unwrap_or_else(|| cursor.fetch_add(1, Ordering::SeqCst));
                    if i >= tasks.len() {
                        break;
                    }
                    let t = &tasks[i];
                    let n = attempts[i].fetch_add(1, Ordering::SeqCst) + 1;
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        if faults.take_panic(t.window) {
                            panic!(
                                "injected fault: worker killed replaying window {}",
                                t.window
                            );
                        }
                        sim.restore(&t.checkpoint)?;
                        sim.replay_window(t.vectors, t.start_round, base)
                    }));
                    match outcome {
                        Ok(Ok(result)) => {
                            lock(successes)[i] = Some(result);
                        }
                        Ok(Err(e)) => {
                            lock(fail_log)[i] = Some(e.to_string());
                            if n <= max_retries {
                                lock(retry).push(i);
                            }
                        }
                        Err(payload) => {
                            lock(fail_log)[i] = Some(panic_message(payload.as_ref()));
                            if n <= max_retries {
                                lock(retry).push(i);
                            }
                            break;
                        }
                    }
                }
            });
        }
    });
    let mut successes = successes
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    let mut fail_log = fail_log
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    (0..tasks.len())
        .map(|i| {
            let n = attempts[i].load(Ordering::SeqCst);
            match successes[i].take() {
                Some(r) => (n.max(1), Ok(r)),
                None => (
                    n,
                    Err(fail_log[i].take().unwrap_or_else(|| {
                        "window never completed: worker pool exhausted".to_string()
                    })),
                ),
            }
        })
        .collect()
}

/// Runs one long vector stream as a crash-resumable pipelined sweep (see
/// the [module docs](self) for the on-disk layout and recovery rules).
/// The returned outputs, makespan, and throughput are **bit-identical to
/// a sequential [`PlSimulator::run_stream`]** for every `(jobs, window)`
/// combination, across kills, resumes, corrupt checkpoint files, and
/// worker failures.
///
/// # Errors
///
/// * [`SimError::CheckpointIo`] — directory/journal I/O failures, or a
///   fresh run pointed at a directory that already holds a sweep.
/// * [`SimError::CheckpointTruncated`] / [`SimError::CheckpointBadMagic`]
///   / [`SimError::CheckpointVersionSkew`] / [`SimError::CheckpointChecksum`]
///   — a resume whose `sweep.meta` is corrupt (fatal by design; corrupt
///   `window-*.ck` files are merely routed around).
/// * [`SimError::ResumeMismatch`] — a resume under a different netlist,
///   delay model, vector stream, or window size.
/// * Any simulation error ([`SimError::Deadlock`], ...) the sequential
///   run would also report, at the lowest failing window.
///
/// # Panics
///
/// Panics if `opts.window` is zero.
pub fn sweep_resumable(
    pl: &PlNetlist,
    delays: &DelayModel,
    vectors: &[Vec<bool>],
    dir: &Path,
    opts: &ResumableOptions,
) -> Result<ResumableOutcome, SimError> {
    sweep_resumable_with_faults(pl, delays, vectors, dir, opts, &FaultPlan::default())
}

/// [`sweep_resumable`] with a [`FaultPlan`] — the corruption-injection
/// harness's entry point, also exercised by the failure-injection test
/// suite. A default plan makes this identical to [`sweep_resumable`].
///
/// # Errors
///
/// Same conditions as [`sweep_resumable`], plus the typed I/O error an
/// armed [`FaultPlan::halt_after_journal_appends`] injects.
///
/// # Panics
///
/// Panics if `opts.window` is zero.
pub fn sweep_resumable_with_faults(
    pl: &PlNetlist,
    delays: &DelayModel,
    vectors: &[Vec<bool>],
    dir: &Path,
    opts: &ResumableOptions,
    faults: &FaultPlan,
) -> Result<ResumableOutcome, SimError> {
    assert!(opts.window > 0, "window must be at least 1");
    fs::create_dir_all(dir).map_err(|e| io_err(dir, &e))?;
    let meta_path = dir.join("sweep.meta");
    let meta = MetaFields {
        fingerprint: netlist_fingerprint(pl),
        delay_digest: delay_digest(delays),
        vectors_digest: vectors_digest(vectors),
        window: opts.window as u64,
        n_vectors: vectors.len() as u64,
    };
    let n_windows = vectors.len().div_ceil(opts.window);
    let mut recovery = SweepRecovery {
        windows: n_windows,
        ..SweepRecovery::default()
    };

    // Window results, indexed by window. Journal replay fills some of
    // these on resume; simulation fills the rest.
    let mut results: Vec<Option<(u64, Vec<Vec<bool>>)>> = (0..n_windows).map(|_| None).collect();

    if opts.resume {
        let bytes = fs::read(&meta_path).map_err(|e| io_err(&meta_path, &e))?;
        let stored = decode_meta(&bytes)?;
        for (field, stored, expected) in [
            ("netlist fingerprint", stored.fingerprint, meta.fingerprint),
            ("delay model digest", stored.delay_digest, meta.delay_digest),
            ("vector count", stored.n_vectors, meta.n_vectors),
            (
                "vector stream digest",
                stored.vectors_digest,
                meta.vectors_digest,
            ),
            ("window size", stored.window, meta.window),
        ] {
            if stored != expected {
                return Err(SimError::ResumeMismatch {
                    field,
                    stored,
                    expected,
                });
            }
        }
        let shape = JournalShape {
            n_windows,
            window_len: opts.window,
            n_vectors: vectors.len(),
            width: pl.output_gates().len(),
        };
        let (completed, note) = scan_journal(&dir.join("journal.bin"), &shape)?;
        recovery.replayed_from_journal = completed.len();
        if let Some(n) = note {
            recovery.corrupt_files.push(n);
        }
        for (k, e) in completed {
            results[k] = Some((e.last_tick, e.words));
        }
    } else {
        if fs::metadata(&meta_path).is_ok() {
            return Err(SimError::CheckpointIo {
                path: meta_path.display().to_string(),
                message: "directory already holds a sweep (resume it, or use a fresh directory)"
                    .into(),
            });
        }
        write_atomic(&meta_path, &encode_meta(&meta))?;
    }

    // Building the leader also validates the netlist, so worker-side
    // construction cannot fail once this succeeds.
    let mut leader = PlSimulator::with_queue(pl, delays.clone(), opts.queue)?;

    if let Some(first) = results.iter().position(Option::is_none) {
        // Restart the leader from the largest decodable boundary <= first;
        // corrupt checkpoint files are recorded and routed around.
        let mut restart = 0usize;
        for k in (1..=first).rev() {
            let path = ck_path(dir, k);
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => {
                    recovery
                        .corrupt_files
                        .push(format!("{}: {e}", path.display()));
                    continue;
                }
            };
            match SimCheckpoint::from_bytes(&bytes, pl, delays) {
                Ok(ck) => {
                    leader.restore(&ck)?;
                    restart = k;
                    break;
                }
                Err(e) => {
                    recovery
                        .corrupt_files
                        .push(format!("{}: {e}", path.display()));
                }
            }
        }
        recovery.restart_window = restart;

        let chunks: Vec<&[Vec<bool>]> = vectors.chunks(opts.window).collect();
        let jobs = effective_jobs(opts.jobs, n_windows - first);
        let batch_cap = 2 * jobs;
        let base = vec![0usize; pl.output_gates().len()];
        let mut journal = Journal::open_append(dir.join("journal.bin"))?;
        let mut leader_err: Option<SimError> = None;
        let mut k = restart;
        while k < n_windows && leader_err.is_none() {
            // Stage a batch: write the boundary checkpoint, queue the
            // window unless the journal already has it, advance the
            // leader through its vectors.
            let mut batch: Vec<Task<'_>> = Vec::new();
            while k < n_windows && batch.len() < batch_cap {
                let done = results[k].is_some();
                if k > 0 || !done {
                    let ck = leader.snapshot();
                    if k > 0 {
                        write_atomic(&ck_path(dir, k), &ck.to_bytes(delays))?;
                    }
                    if !done {
                        batch.push(Task {
                            window: k,
                            start_round: k * opts.window,
                            vectors: chunks[k],
                            checkpoint: ck,
                        });
                    }
                }
                let mut fed_err = None;
                for v in chunks[k] {
                    if let Err(e) = leader.feed_vector(v) {
                        fed_err = Some(e);
                        break;
                    }
                }
                k += 1;
                if let Some(e) = fed_err {
                    // The windows already staged may hold the true (lower)
                    // first error — flush them before reporting this one.
                    leader_err = Some(e);
                    break;
                }
            }
            let verdicts = run_batch(
                &BatchCtx {
                    pl,
                    delays,
                    queue: opts.queue,
                    jobs,
                    max_retries: opts.max_retries,
                    faults,
                },
                &batch,
                &base,
            );
            for (t, (made, verdict)) in batch.iter().zip(verdicts) {
                let (words, last) = match verdict {
                    Ok(r) => {
                        if made > 1 {
                            recovery.retried_windows += 1;
                        }
                        r
                    }
                    Err(message) => {
                        recovery.worker_failures.push(WindowFailure {
                            window: t.window,
                            attempts: made,
                            message,
                        });
                        // Degrade: replay in-process. An error here is the
                        // deterministic simulation error the sequential
                        // run would hit — propagate it.
                        let mut sim = PlSimulator::with_queue(pl, delays.clone(), opts.queue)?;
                        sim.restore(&t.checkpoint)?;
                        let r = sim.replay_window(t.vectors, t.start_round, &base)?;
                        recovery.degraded_windows += 1;
                        r
                    }
                };
                journal.append(faults, t.window, last, &words)?;
                results[t.window] = Some((last, words));
            }
        }
        if let Some(e) = leader_err {
            return Err(e);
        }
    } else {
        recovery.restart_window = n_windows;
    }

    let mut outputs = Vec::with_capacity(vectors.len());
    let mut last = 0u64;
    for slot in results {
        let (t, words) = slot.expect("every window resolved");
        outputs.extend(words);
        last = last.max(t);
    }
    let makespan = ticks_to_ns(last);
    Ok(ResumableOutcome {
        outcome: StreamOutcome {
            outputs,
            makespan,
            throughput: if makespan > 0.0 {
                vectors.len() as f64 / makespan
            } else {
                f64::INFINITY
            },
        },
        recovery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_netlist::Netlist;

    /// An input-paced XOR output, a free-running DFF counter output, and
    /// a constant output — every record source in one design, with state
    /// carried across window boundaries.
    fn mixed_netlist() -> PlNetlist {
        let mut n = Netlist::new("mixed");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_xor2(a, b).unwrap();
        let q0 = n.add_dff(false);
        let q1 = n.add_dff(false);
        let n0 = n.add_not(q0).unwrap();
        let t1 = n.add_xor2(q1, q0).unwrap();
        n.set_dff_input(q0, n0).unwrap();
        n.set_dff_input(q1, t1).unwrap();
        n.set_output("x", x);
        n.set_output("q1", q1);
        PlNetlist::from_sync(&n).unwrap()
    }

    fn test_vectors(count: usize, seed: u64) -> Vec<Vec<bool>> {
        let mut s = seed;
        (0..count)
            .map(|_| {
                (0..2)
                    .map(|_| {
                        s = s
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        s >> 63 == 1
                    })
                    .collect()
            })
            .collect()
    }

    fn baseline(pl: &PlNetlist, vecs: &[Vec<bool>]) -> StreamOutcome {
        PlSimulator::new(pl, DelayModel::default())
            .unwrap()
            .run_stream(vecs)
            .unwrap()
    }

    /// A per-test scratch directory, removed on drop.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let p = std::env::temp_dir().join(format!("pl_resume_{}_{tag}", std::process::id()));
            let _ = fs::remove_dir_all(&p);
            Self(p)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn fresh_sweep_matches_run_stream_across_jobs_and_windows() {
        let pl = mixed_netlist();
        let delays = DelayModel::default();
        let vecs = test_vectors(19, 0xC0FFEE);
        let expect = baseline(&pl, &vecs);
        for (window, jobs) in [(1, 2), (3, 2), (4, 4), (7, 3), (19, 2), (40, 8)] {
            let dir = TempDir::new(&format!("fresh_{window}_{jobs}"));
            let opts = ResumableOptions {
                window,
                jobs,
                ..ResumableOptions::default()
            };
            let got = sweep_resumable(&pl, &delays, &vecs, dir.path(), &opts).unwrap();
            assert_eq!(got.outcome, expect, "window={window} jobs={jobs} diverged");
            assert_eq!(got.recovery.windows, vecs.len().div_ceil(window));
            assert_eq!(got.recovery.replayed_from_journal, 0);
            assert!(got.recovery.worker_failures.is_empty());
            assert_eq!(got.recovery.degraded_windows, 0);
            assert!(got.recovery.corrupt_files.is_empty());
        }
    }

    #[test]
    fn completed_sweep_resumes_entirely_from_journal() {
        let pl = mixed_netlist();
        let delays = DelayModel::default();
        let vecs = test_vectors(12, 0xBEEF);
        let dir = TempDir::new("complete_resume");
        let opts = ResumableOptions {
            window: 4,
            jobs: 2,
            ..ResumableOptions::default()
        };
        let first = sweep_resumable(&pl, &delays, &vecs, dir.path(), &opts).unwrap();
        let again = sweep_resumable(
            &pl,
            &delays,
            &vecs,
            dir.path(),
            &ResumableOptions {
                resume: true,
                ..opts
            },
        )
        .unwrap();
        assert_eq!(again.outcome, first.outcome);
        assert_eq!(again.recovery.replayed_from_journal, 3);
        assert_eq!(again.recovery.restart_window, 3);
    }

    #[test]
    fn halt_at_boundary_then_resume_is_bit_identical() {
        let pl = mixed_netlist();
        let delays = DelayModel::default();
        let vecs = test_vectors(20, 0xDEAD);
        let expect = baseline(&pl, &vecs);
        let dir = TempDir::new("halt_resume");
        let opts = ResumableOptions {
            window: 3,
            jobs: 2,
            ..ResumableOptions::default()
        };
        let faults = FaultPlan::new();
        faults.halt_after_journal_appends(2);
        let err = sweep_resumable_with_faults(&pl, &delays, &vecs, dir.path(), &opts, &faults)
            .expect_err("the injected halt kills the run");
        assert!(
            matches!(err, SimError::CheckpointIo { ref path, .. } if path == "<fault-injection>"),
            "unexpected error: {err}"
        );
        let resumed = sweep_resumable(
            &pl,
            &delays,
            &vecs,
            dir.path(),
            &ResumableOptions {
                resume: true,
                ..opts
            },
        )
        .unwrap();
        assert_eq!(resumed.outcome, expect, "resume diverged from sequential");
        assert_eq!(resumed.recovery.replayed_from_journal, 2);
        assert!(resumed.recovery.restart_window >= 2);
    }

    #[test]
    fn corrupt_checkpoint_files_are_recorded_and_routed_around() {
        let pl = mixed_netlist();
        let delays = DelayModel::default();
        let vecs = test_vectors(20, 0xF00D);
        let expect = baseline(&pl, &vecs);
        let dir = TempDir::new("corrupt_ck");
        let opts = ResumableOptions {
            window: 3,
            jobs: 2,
            ..ResumableOptions::default()
        };
        let faults = FaultPlan::new();
        faults.halt_after_journal_appends(2);
        sweep_resumable_with_faults(&pl, &delays, &vecs, dir.path(), &opts, &faults)
            .expect_err("the injected halt kills the run");
        // First incomplete window is 2: truncate its boundary checkpoint
        // and byte-flip boundary 1's, forcing recovery back to a fresh
        // leader that re-feeds the journaled windows.
        let ck2 = ck_path(dir.path(), 2);
        let bytes = fs::read(&ck2).unwrap();
        fs::write(&ck2, &bytes[..7]).unwrap();
        let ck1 = ck_path(dir.path(), 1);
        let mut bytes = fs::read(&ck1).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xA5;
        fs::write(&ck1, bytes).unwrap();
        let resumed = sweep_resumable(
            &pl,
            &delays,
            &vecs,
            dir.path(),
            &ResumableOptions {
                resume: true,
                ..opts
            },
        )
        .unwrap();
        assert_eq!(resumed.outcome, expect, "recovery diverged from sequential");
        assert_eq!(resumed.recovery.restart_window, 0);
        assert_eq!(
            resumed.recovery.corrupt_files.len(),
            2,
            "both damaged files must be reported: {:?}",
            resumed.recovery.corrupt_files
        );
    }

    #[test]
    fn torn_journal_tail_is_truncated_and_reported() {
        let pl = mixed_netlist();
        let delays = DelayModel::default();
        let vecs = test_vectors(20, 0x7EA);
        let expect = baseline(&pl, &vecs);
        let dir = TempDir::new("torn_tail");
        let opts = ResumableOptions {
            window: 3,
            jobs: 2,
            ..ResumableOptions::default()
        };
        let faults = FaultPlan::new();
        faults.halt_after_journal_appends(3);
        sweep_resumable_with_faults(&pl, &delays, &vecs, dir.path(), &opts, &faults)
            .expect_err("the injected halt kills the run");
        // Simulate a kill mid-append: garbage where the next frame starts.
        let journal = dir.path().join("journal.bin");
        let mut bytes = fs::read(&journal).unwrap();
        bytes.extend_from_slice(&[0x99, 0x07, 0x13]);
        fs::write(&journal, bytes).unwrap();
        let resumed = sweep_resumable(
            &pl,
            &delays,
            &vecs,
            dir.path(),
            &ResumableOptions {
                resume: true,
                ..opts
            },
        )
        .unwrap();
        assert_eq!(resumed.outcome, expect);
        assert_eq!(resumed.recovery.replayed_from_journal, 3);
        assert_eq!(resumed.recovery.corrupt_files.len(), 1);
        assert!(
            resumed.recovery.corrupt_files[0].contains("torn journal tail"),
            "{:?}",
            resumed.recovery.corrupt_files
        );
    }

    #[test]
    fn panicked_worker_window_is_retried_and_stays_identical() {
        let pl = mixed_netlist();
        let delays = DelayModel::default();
        let vecs = test_vectors(20, 0x9A1C);
        let expect = baseline(&pl, &vecs);
        let dir = TempDir::new("retry");
        let opts = ResumableOptions {
            window: 3,
            jobs: 4,
            max_retries: 2,
            ..ResumableOptions::default()
        };
        let faults = FaultPlan::new();
        faults.panic_on_window(1, 1);
        faults.panic_on_window(4, 1);
        let got = sweep_resumable_with_faults(&pl, &delays, &vecs, dir.path(), &opts, &faults)
            .expect("retries absorb the injected panics");
        assert_eq!(got.outcome, expect);
        assert!(got.recovery.retried_windows >= 1, "{}", got.recovery);
        assert!(got.recovery.worker_failures.is_empty(), "{}", got.recovery);
        assert_eq!(got.recovery.degraded_windows, 0);
    }

    #[test]
    fn exhausted_retries_degrade_in_process_not_swallowed() {
        let pl = mixed_netlist();
        let delays = DelayModel::default();
        let vecs = test_vectors(20, 0xDE6);
        let expect = baseline(&pl, &vecs);
        let dir = TempDir::new("degrade");
        let opts = ResumableOptions {
            window: 3,
            jobs: 4,
            max_retries: 1,
            ..ResumableOptions::default()
        };
        let faults = FaultPlan::new();
        faults.panic_on_window(2, u32::MAX);
        let got = sweep_resumable_with_faults(&pl, &delays, &vecs, dir.path(), &opts, &faults)
            .expect("the degraded window still completes in-process");
        assert_eq!(got.outcome, expect, "degraded run diverged");
        assert_eq!(got.recovery.degraded_windows, 1);
        assert_eq!(got.recovery.worker_failures.len(), 1);
        let failure = &got.recovery.worker_failures[0];
        assert_eq!(failure.window, 2);
        assert!(
            failure.message.contains("injected fault"),
            "the real panic payload must be reported, got: {}",
            failure.message
        );
    }

    #[test]
    fn fresh_run_refuses_a_directory_holding_a_sweep() {
        let pl = mixed_netlist();
        let delays = DelayModel::default();
        let vecs = test_vectors(6, 0x11);
        let dir = TempDir::new("refuse_reuse");
        let opts = ResumableOptions {
            window: 2,
            jobs: 2,
            ..ResumableOptions::default()
        };
        sweep_resumable(&pl, &delays, &vecs, dir.path(), &opts).unwrap();
        let err = sweep_resumable(&pl, &delays, &vecs, dir.path(), &opts)
            .expect_err("a second fresh run must refuse the directory");
        assert!(matches!(err, SimError::CheckpointIo { .. }), "{err}");
        assert!(err.to_string().contains("already holds a sweep"), "{err}");
    }

    #[test]
    fn resume_mismatch_is_typed_per_field() {
        let pl = mixed_netlist();
        let delays = DelayModel::default();
        let vecs = test_vectors(8, 0x22);
        let dir = TempDir::new("mismatch");
        let opts = ResumableOptions {
            window: 2,
            jobs: 2,
            ..ResumableOptions::default()
        };
        sweep_resumable(&pl, &delays, &vecs, dir.path(), &opts).unwrap();
        let resume = ResumableOptions {
            resume: true,
            ..opts.clone()
        };
        // Different vectors, same count -> stream digest.
        let other = test_vectors(8, 0x33);
        match sweep_resumable(&pl, &delays, &other, dir.path(), &resume) {
            Err(SimError::ResumeMismatch { field, .. }) => {
                assert_eq!(field, "vector stream digest");
            }
            other => panic!("expected a resume mismatch, got {other:?}"),
        }
        // Different window size.
        match sweep_resumable(
            &pl,
            &delays,
            &vecs,
            dir.path(),
            &ResumableOptions {
                window: 3,
                ..resume.clone()
            },
        ) {
            Err(SimError::ResumeMismatch { field, .. }) => assert_eq!(field, "window size"),
            other => panic!("expected a resume mismatch, got {other:?}"),
        }
        // Different delay model.
        match sweep_resumable(&pl, &delays.scaled(2.0), &vecs, dir.path(), &resume) {
            Err(SimError::ResumeMismatch { field, .. }) => {
                assert_eq!(field, "delay model digest");
            }
            other => panic!("expected a resume mismatch, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_meta_is_a_fatal_typed_error() {
        let pl = mixed_netlist();
        let delays = DelayModel::default();
        let vecs = test_vectors(8, 0x44);
        let dir = TempDir::new("corrupt_meta");
        let opts = ResumableOptions {
            window: 2,
            jobs: 2,
            ..ResumableOptions::default()
        };
        sweep_resumable(&pl, &delays, &vecs, dir.path(), &opts).unwrap();
        let resume = ResumableOptions {
            resume: true,
            ..opts
        };
        let meta = dir.path().join("sweep.meta");
        let pristine = fs::read(&meta).unwrap();
        // Truncation.
        fs::write(&meta, &pristine[..10]).unwrap();
        match sweep_resumable(&pl, &delays, &vecs, dir.path(), &resume) {
            Err(SimError::CheckpointTruncated { .. }) => {}
            other => panic!("expected a truncation error, got {other:?}"),
        }
        // A flipped payload byte past the version field.
        let mut flipped = pristine.clone();
        flipped[20] ^= 0x40;
        fs::write(&meta, &flipped).unwrap();
        match sweep_resumable(&pl, &delays, &vecs, dir.path(), &resume) {
            Err(SimError::CheckpointChecksum { section, .. }) => {
                assert_eq!(section, "sweep.meta");
            }
            other => panic!("expected a checksum error, got {other:?}"),
        }
        // Foreign magic.
        let mut alien = pristine.clone();
        alien[..8].copy_from_slice(b"NOTMETA!");
        fs::write(&meta, &alien).unwrap();
        match sweep_resumable(&pl, &delays, &vecs, dir.path(), &resume) {
            Err(SimError::CheckpointBadMagic { .. }) => {}
            other => panic!("expected a bad-magic error, got {other:?}"),
        }
        // Version skew (with the CRC repaired so only the version differs).
        let mut skew = pristine;
        skew[8..12].copy_from_slice(&2u32.to_le_bytes());
        let end = skew.len() - 4;
        let crc = crc32(&skew[..end]);
        skew[end..].copy_from_slice(&crc.to_le_bytes());
        fs::write(&meta, &skew).unwrap();
        match sweep_resumable(&pl, &delays, &vecs, dir.path(), &resume) {
            Err(SimError::CheckpointVersionSkew {
                found: 2,
                supported: META_VERSION,
            }) => {}
            other => panic!("expected version skew, got {other:?}"),
        }
    }

    #[test]
    fn empty_stream_completes_with_zero_windows() {
        let pl = mixed_netlist();
        let delays = DelayModel::default();
        let dir = TempDir::new("empty");
        let got =
            sweep_resumable(&pl, &delays, &[], dir.path(), &ResumableOptions::default()).unwrap();
        assert!(got.outcome.outputs.is_empty());
        assert_eq!(got.outcome.makespan, 0.0);
        assert_eq!(got.recovery.windows, 0);
        let expect = baseline(&pl, &[]);
        assert_eq!(got.outcome, expect);
    }

    #[test]
    fn recovery_display_is_human_readable() {
        let r = SweepRecovery {
            windows: 7,
            replayed_from_journal: 3,
            restart_window: 3,
            retried_windows: 1,
            worker_failures: vec![WindowFailure {
                window: 5,
                attempts: 3,
                message: "boom".into(),
            }],
            degraded_windows: 1,
            corrupt_files: vec!["x.ck: bad".into()],
        };
        let s = r.to_string();
        assert!(s.contains("7 windows"), "{s}");
        assert!(s.contains("1 degraded"), "{s}");
    }
}
