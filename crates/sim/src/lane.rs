//! Lane words: the value payload the engine is generic over.
//!
//! The simulator marches `L::LANES` independent Boolean input vectors in
//! lockstep through ONE event flow. What makes this sound is the Kahn
//! determinism of the marked graph: which round's token an arc carries is
//! decided by the token game alone (timing, readiness, acknowledges — all
//! value-independent bookkeeping shared by every lane), while the *value*
//! riding each token is a pure function of that round's input values, per
//! lane. So event **timing is lane-invariant** and only **values are
//! per-lane** — one shared schedule, `LANES` payloads per token.
//!
//! Two instantiations exist:
//!
//! * [`bool`] — the scalar engine (`LANES = 1`). Its storage and LUT
//!   lookup are exactly the pre-lane engine's (a `u8` pin-value bitset
//!   indexing the packed truth table by shift), so the 1-lane engine is
//!   pinned bit-identical to the pre-refactor scalar engine.
//! * [`u64`] — the batch engine (`LANES = 64`): 64 vectors per token,
//!   gate evaluation as a Shannon mux tree of bitwise ops over the packed
//!   truth table (≤ `2^k - 1` three-op muxes cover all 64 lanes at once).
//!
//! The one semantic knob the lane count turns: an early-evaluation master
//! takes its early path only when the trigger fired true **in every
//! lane** ([`LaneWord::all`]). Lanes whose trigger was false still get
//! the correct (forced-checked) value — they simply share the slower
//! all-lanes schedule. Values never change, only timing, which is exactly
//! the latitude the determinism contract leaves open.

/// One token payload: `LANES` independent Boolean values.
///
/// Implemented by `bool` (scalar) and `u64` (64-lane batch). The trait is
/// not intended for further implementation outside this crate: the
/// checkpoint wire format, the sweep helpers, and the equivalence suites
/// all enumerate exactly these two widths.
pub trait LaneWord: Copy + PartialEq + std::fmt::Debug + Send + Sync + 'static {
    /// Independent Boolean lanes packed in one word.
    const LANES: usize;
    /// Bytes of one word in the checkpoint wire encoding.
    const WIRE_BYTES: usize;
    /// Bytes of one gate's [`LaneWord::PinVals`] in the wire encoding.
    const PV_WIRE_BYTES: usize;

    /// Per-gate storage for the current input-pin token values. The
    /// scalar word keeps the pre-lane engine's `u8` bitset (one bit per
    /// pin — the partial LUT minterm index); the batch word keeps one
    /// lane word per pin.
    type PinVals: Copy + PartialEq + std::fmt::Debug + Send + Sync + 'static;

    /// The word with every lane set to `v`.
    fn splat(v: bool) -> Self;
    /// Lane `i`'s value.
    fn lane(self, i: usize) -> bool;
    /// True iff every lane is true — the early-trigger firing condition
    /// (the shared event flow takes the early path only when all lanes'
    /// triggers agree; see the module docs).
    fn all(self) -> bool;

    /// Empty pin-value storage for one gate.
    fn pv_empty() -> Self::PinVals;
    /// Records `value` as pin `pin`'s current token value.
    fn pv_set(pv: &mut Self::PinVals, pin: u8, value: Self);

    /// Evaluates the gate's packed truth table over its complete pins.
    /// `pin_tokens` marks the token-carrying pins (all data pins — the
    /// engine only evaluates when `data_ready`), `const_pin_mask` /
    /// `const_value_bits` the folded constant pins.
    fn eval(
        eval_bits: u64,
        pv: &Self::PinVals,
        pin_tokens: u8,
        const_pin_mask: u8,
        const_value_bits: u8,
    ) -> Self;

    /// The early-evaluation forced value: with only the pins in
    /// `pin_tokens` (plus constants) known, returns the output word iff
    /// every lane's output is already forced — i.e. all completions of
    /// the missing pins (`data_full_mask & !pin_tokens`) agree, lane by
    /// lane. `None` means at least one lane is not forced: the trigger
    /// that promised otherwise is unsound.
    fn forced(
        eval_bits: u64,
        pv: &Self::PinVals,
        pin_tokens: u8,
        data_full_mask: u8,
        const_pin_mask: u8,
        const_value_bits: u8,
    ) -> Option<Self>;

    /// Appends this word's wire encoding (exactly [`LaneWord::WIRE_BYTES`]
    /// bytes) — `bool` as one `0/1` byte (the v1 scalar layout), `u64` as
    /// eight little-endian bytes.
    fn to_wire(self, out: &mut Vec<u8>);
    /// Decodes one word from exactly [`LaneWord::WIRE_BYTES`] bytes;
    /// `None` if the bytes are outside the word's domain (a non-0/1
    /// boolean).
    fn from_wire(bytes: &[u8]) -> Option<Self>;
    /// Appends one gate's pin-value wire encoding (exactly
    /// [`LaneWord::PV_WIRE_BYTES`] bytes).
    fn pv_to_wire(pv: &Self::PinVals, out: &mut Vec<u8>);
    /// Decodes one gate's pin values from [`LaneWord::PV_WIRE_BYTES`]
    /// bytes.
    fn pv_from_wire(bytes: &[u8]) -> Option<Self::PinVals>;
}

impl LaneWord for bool {
    const LANES: usize = 1;
    const WIRE_BYTES: usize = 1;
    const PV_WIRE_BYTES: usize = 1;

    type PinVals = u8;

    #[inline]
    fn splat(v: bool) -> Self {
        v
    }

    #[inline]
    fn lane(self, i: usize) -> bool {
        debug_assert_eq!(i, 0, "the scalar word has one lane");
        self
    }

    #[inline]
    fn all(self) -> bool {
        self
    }

    #[inline]
    fn pv_empty() -> u8 {
        0
    }

    #[inline]
    fn pv_set(pv: &mut u8, pin: u8, value: bool) {
        let bit = 1u8 << pin;
        if value {
            *pv |= bit;
        } else {
            *pv &= !bit;
        }
    }

    #[inline]
    fn eval(
        eval_bits: u64,
        pv: &u8,
        pin_tokens: u8,
        _const_pin_mask: u8,
        const_value_bits: u8,
    ) -> bool {
        // The pre-lane engine's lookup, verbatim: the minterm index is the
        // pin-value bitset (masked to live tokens) plus folded constants.
        let m = pv & pin_tokens | const_value_bits;
        (eval_bits >> m) & 1 == 1
    }

    fn forced(
        eval_bits: u64,
        pv: &u8,
        pin_tokens: u8,
        data_full_mask: u8,
        _const_pin_mask: u8,
        const_value_bits: u8,
    ) -> Option<bool> {
        let known = (pv & pin_tokens) | const_value_bits;
        let missing = data_full_mask & !pin_tokens;
        // Enumerate every completion of the missing pins (subsets of
        // `missing`, including the empty one); forced iff all rows agree.
        let (mut acc_and, mut acc_or) = (true, false);
        let mut sub = missing;
        loop {
            let v = (eval_bits >> (known | sub)) & 1 == 1;
            acc_and &= v;
            acc_or |= v;
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & missing;
        }
        (acc_and == acc_or).then_some(acc_and)
    }

    #[inline]
    fn to_wire(self, out: &mut Vec<u8>) {
        out.push(u8::from(self));
    }

    #[inline]
    fn from_wire(bytes: &[u8]) -> Option<bool> {
        match bytes {
            [0] => Some(false),
            [1] => Some(true),
            _ => None,
        }
    }

    #[inline]
    fn pv_to_wire(pv: &u8, out: &mut Vec<u8>) {
        out.push(*pv);
    }

    #[inline]
    fn pv_from_wire(bytes: &[u8]) -> Option<u8> {
        Some(bytes[0])
    }
}

impl LaneWord for u64 {
    const LANES: usize = 64;
    const WIRE_BYTES: usize = 8;
    const PV_WIRE_BYTES: usize = 64;

    type PinVals = [u64; 8];

    #[inline]
    fn splat(v: bool) -> Self {
        if v {
            !0
        } else {
            0
        }
    }

    #[inline]
    fn lane(self, i: usize) -> bool {
        debug_assert!(i < 64, "lane index out of range");
        (self >> i) & 1 == 1
    }

    #[inline]
    fn all(self) -> bool {
        self == !0
    }

    #[inline]
    fn pv_empty() -> [u64; 8] {
        [0; 8]
    }

    #[inline]
    fn pv_set(pv: &mut [u64; 8], pin: u8, value: u64) {
        pv[pin as usize] = value;
    }

    #[inline]
    fn eval(
        eval_bits: u64,
        pv: &[u64; 8],
        pin_tokens: u8,
        const_pin_mask: u8,
        const_value_bits: u8,
    ) -> u64 {
        eval_lanes(eval_bits, pin_tokens | const_pin_mask, &|p| {
            if const_pin_mask >> p & 1 == 1 {
                u64::splat(const_value_bits >> p & 1 == 1)
            } else {
                pv[p as usize]
            }
        })
    }

    fn forced(
        eval_bits: u64,
        pv: &[u64; 8],
        pin_tokens: u8,
        data_full_mask: u8,
        const_pin_mask: u8,
        const_value_bits: u8,
    ) -> Option<u64> {
        let missing = data_full_mask & !pin_tokens;
        let pins = data_full_mask | const_pin_mask;
        // Same subset enumeration as the scalar word, but each completion
        // is evaluated for all 64 lanes at once; a lane is forced iff its
        // bit agrees across every completion.
        let (mut acc_and, mut acc_or) = (!0u64, 0u64);
        let mut sub = missing;
        loop {
            let s = sub;
            let w = eval_lanes(eval_bits, pins, &|p| {
                let bit = 1u8 << p;
                if missing & bit != 0 {
                    u64::splat(s & bit != 0)
                } else if const_pin_mask & bit != 0 {
                    u64::splat(const_value_bits & bit != 0)
                } else {
                    pv[p as usize]
                }
            });
            acc_and &= w;
            acc_or |= w;
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & missing;
        }
        (acc_and == acc_or).then_some(acc_and)
    }

    #[inline]
    fn to_wire(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    #[inline]
    fn from_wire(bytes: &[u8]) -> Option<u64> {
        Some(u64::from_le_bytes(bytes.try_into().ok()?))
    }

    fn pv_to_wire(pv: &[u64; 8], out: &mut Vec<u8>) {
        for w in pv {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    fn pv_from_wire(bytes: &[u8]) -> Option<[u64; 8]> {
        let mut pv = [0u64; 8];
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            pv[i] = u64::from_le_bytes(chunk.try_into().ok()?);
        }
        Some(pv)
    }
}

/// Indices of a packed ≤6-var truth table whose variable `p` is 0: the
/// cofactor masks the word-parallel evaluator splits on.
const VAR0_MASK: [u64; 6] = [
    0x5555_5555_5555_5555,
    0x3333_3333_3333_3333,
    0x0F0F_0F0F_0F0F_0F0F,
    0x00FF_00FF_00FF_00FF,
    0x0000_FFFF_0000_FFFF,
    0x0000_0000_FFFF_FFFF,
];

/// Evaluates a packed truth table for 64 lanes at once: Shannon-expands
/// `eval_bits` over the pins in `pins` (lowest first), with `word_of(p)`
/// supplying pin `p`'s 64-lane input word. Each expansion step is one
/// 3-op mux over lane words, so a k-pin table costs `2^k - 1` muxes for
/// all 64 lanes together.
fn eval_lanes<F: Fn(u8) -> u64>(eval_bits: u64, pins: u8, word_of: &F) -> u64 {
    if pins == 0 {
        return u64::splat(eval_bits & 1 == 1);
    }
    let p = pins.trailing_zeros() as usize;
    let rest = pins & (pins - 1);
    debug_assert!(p < 6, "a packed u64 table holds at most 6 variables");
    if p >= 6 {
        // A pin beyond the table's 6-var capacity cannot affect it.
        return eval_lanes(eval_bits, rest, word_of);
    }
    // Cofactors kept in the full index space: t0/t1 are the table with
    // pin p forced to 0/1 (so recursion needs no index re-packing).
    let m0 = VAR0_MASK[p];
    let sh = 1u32 << p;
    let b0 = eval_bits & m0;
    let t0 = b0 | (b0 << sh);
    let b1 = eval_bits & !m0;
    let t1 = b1 | (b1 >> sh);
    let w = word_of(p as u8);
    let hi = eval_lanes(t1, rest, word_of);
    let lo = eval_lanes(t0, rest, word_of);
    (w & hi) | (!w & lo)
}

/// Packs per-lane Boolean values into lane words: `vals[l]` becomes lane
/// `l` of the result. Missing lanes (`vals.len() < 64`) are false.
#[must_use]
pub fn pack_lanes(vals: &[bool]) -> u64 {
    debug_assert!(vals.len() <= 64);
    vals.iter()
        .enumerate()
        .fold(0u64, |w, (l, &v)| w | (u64::from(v) << l))
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    /// The wide evaluator must agree with the scalar shift-lookup on every
    /// lane, for random tables, pin subsets, and lane words.
    #[test]
    fn wide_eval_matches_scalar_lookup_per_lane() {
        let mut rng = Lcg(0x1A4E_0001);
        for _ in 0..200 {
            let bits = rng.next();
            // Random pin partition over 6 pins: tokens vs constants.
            let pins = (rng.next() & 0x3F) as u8;
            let const_pins = (rng.next() & 0x3F) as u8 & !pins;
            let const_vals = (rng.next() as u8) & const_pins;
            let mut pv = [0u64; 8];
            for (p, w) in pv.iter_mut().enumerate().take(6) {
                if pins >> p & 1 == 1 {
                    *w = rng.next();
                }
            }
            let wide = <u64 as LaneWord>::eval(bits, &pv, pins, const_pins, const_vals);
            for lane in 0..64 {
                let mut spv = 0u8;
                for p in 0..6u8 {
                    if pins >> p & 1 == 1 && pv[p as usize].lane(lane) {
                        spv |= 1 << p;
                    }
                }
                let scalar = <bool as LaneWord>::eval(bits, &spv, pins, const_pins, const_vals);
                assert_eq!(
                    wide.lane(lane),
                    scalar,
                    "lane {lane} diverged: bits {bits:#x}, pins {pins:#04x}"
                );
            }
        }
    }

    /// The wide forced-value must be Some exactly when every lane's scalar
    /// forced-value is Some, and agree per lane.
    #[test]
    fn wide_forced_matches_scalar_forced_per_lane() {
        let mut rng = Lcg(0x1A4E_0002);
        for _ in 0..200 {
            let bits = rng.next();
            let full = (rng.next() & 0x3F).max(1) as u8;
            let tokens = (rng.next() as u8) & full;
            let const_pins = (rng.next() & 0x3F & !u64::from(full)) as u8;
            let const_vals = (rng.next() as u8) & const_pins;
            let mut pv = [0u64; 8];
            for (p, w) in pv.iter_mut().enumerate().take(6) {
                if tokens >> p & 1 == 1 {
                    *w = rng.next();
                }
            }
            let wide = <u64 as LaneWord>::forced(bits, &pv, tokens, full, const_pins, const_vals);
            let mut scalar = Vec::with_capacity(64);
            for lane in 0..64 {
                let mut spv = 0u8;
                for p in 0..6u8 {
                    if tokens >> p & 1 == 1 && pv[p as usize].lane(lane) {
                        spv |= 1 << p;
                    }
                }
                scalar.push(<bool as LaneWord>::forced(
                    bits, &spv, tokens, full, const_pins, const_vals,
                ));
            }
            match wide {
                Some(w) => {
                    for (lane, s) in scalar.iter().enumerate() {
                        assert_eq!(Some(w.lane(lane)), *s, "lane {lane} diverged");
                    }
                }
                None => assert!(
                    scalar.iter().any(Option::is_none),
                    "wide said unforced but every lane was forced"
                ),
            }
        }
    }

    #[test]
    fn wire_round_trips() {
        for v in [false, true] {
            let mut buf = Vec::new();
            v.to_wire(&mut buf);
            assert_eq!(buf.len(), <bool as LaneWord>::WIRE_BYTES);
            assert_eq!(<bool as LaneWord>::from_wire(&buf), Some(v));
        }
        assert_eq!(<bool as LaneWord>::from_wire(&[2]), None);
        for w in [0u64, 1, !0, 0xDEAD_BEEF_0BAD_CAFE] {
            let mut buf = Vec::new();
            w.to_wire(&mut buf);
            assert_eq!(buf.len(), <u64 as LaneWord>::WIRE_BYTES);
            assert_eq!(<u64 as LaneWord>::from_wire(&buf), Some(w));
        }
        let pv = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let mut buf = Vec::new();
        <u64 as LaneWord>::pv_to_wire(&pv, &mut buf);
        assert_eq!(buf.len(), <u64 as LaneWord>::PV_WIRE_BYTES);
        assert_eq!(<u64 as LaneWord>::pv_from_wire(&buf), Some(pv));
    }

    #[test]
    fn pack_lanes_places_bits() {
        assert_eq!(pack_lanes(&[]), 0);
        assert_eq!(pack_lanes(&[true]), 1);
        assert_eq!(pack_lanes(&[false, true, true]), 0b110);
        assert!(pack_lanes(&[true; 64]).all());
    }
}
