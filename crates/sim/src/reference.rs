//! The **pre-refactor** discrete-event simulator, retained verbatim as a
//! differential baseline.
//!
//! This is the original `f64`-time, allocation-per-firing engine that the
//! integer-tick engine in [`crate::engine`] replaced. It is kept for two
//! purposes:
//!
//! 1. **Equivalence testing** — `tests/engine_equivalence.rs` and the
//!    in-crate tests drive both engines over the same vectors and assert
//!    bit-identical outputs (and latencies equal to within the femtosecond
//!    quantization of the new engine's clock).
//! 2. **Speedup accounting** — the `simulation` Criterion bench and the
//!    `bench_report` binary measure events/sec against this baseline and
//!    record the ratio in `BENCH_sim.json`.
//!
//! Do not extend this module; new simulator features belong in
//! [`crate::engine`].

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use pl_core::{PlArcId, PlArcKind, PlGateId, PlGateKind, PlNetlist};

use crate::delay::DelayModel;
use crate::engine::{StreamOutcome, VectorOutcome};
use crate::error::SimError;

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    Deliver {
        arc: u32,
        value: bool,
    },
    Fire {
        gate: u32,
    },
    /// EE-master output production (either path). `gen` guards against
    /// stale events from a previous round.
    Produce {
        gate: u32,
        gen: u64,
    },
    /// EE-master token cleanup rendezvous.
    Cleanup {
        gate: u32,
        gen: u64,
    },
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Event-driven simulator over a [`PlNetlist`].
///
/// See the [crate documentation](crate) for an example. Time is continuous
/// across vectors: [`ReferenceSimulator::run_vector`] injects a vector at the
/// current time and runs until the output word is stable.
#[derive(Debug, Clone)]
pub struct ReferenceSimulator<'a> {
    pl: &'a PlNetlist,
    delays: DelayModel,
    time: f64,
    seq: u64,
    queue: BinaryHeap<Event>,
    tokens: Vec<u8>,
    values: Vec<bool>,
    pending_input: Vec<Option<bool>>,
    produced: Vec<bool>,
    fire_scheduled: Vec<bool>,
    /// EE masters: a normal-path Produce is in flight this round.
    normal_scheduled: Vec<bool>,
    /// EE masters: an early-path Produce is in flight this round.
    early_scheduled: Vec<bool>,
    /// EE masters: per-gate round generation (stale-event guard).
    gen: Vec<u64>,
    records: Vec<VecDeque<(bool, f64)>>,
    rounds: u64,
    events: u64,
    trace: Option<Vec<crate::trace::TraceEvent>>,
}

impl<'a> ReferenceSimulator<'a> {
    /// Prepares a simulator: checks structural liveness and places the
    /// initial marking.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Structural`] if the netlist is not live.
    pub fn new(pl: &'a PlNetlist, delays: DelayModel) -> Result<Self, SimError> {
        pl.check_pins()?;
        pl_core::marked::check_liveness(pl)?;
        let mut sim = Self {
            pl,
            delays,
            time: 0.0,
            seq: 0,
            queue: BinaryHeap::new(),
            tokens: pl.arcs().iter().map(pl_core::PlArc::init_tokens).collect(),
            values: pl.arcs().iter().map(pl_core::PlArc::init_value).collect(),
            pending_input: vec![None; pl.gates().len()],
            produced: vec![false; pl.gates().len()],
            fire_scheduled: vec![false; pl.gates().len()],
            normal_scheduled: vec![false; pl.gates().len()],
            early_scheduled: vec![false; pl.gates().len()],
            gen: vec![0; pl.gates().len()],
            records: vec![VecDeque::new(); pl.output_gates().len()],
            rounds: 0,
            events: 0,
            trace: None,
        };
        // Gates fed entirely by initial tokens (e.g. autonomous next-state
        // logic) may fire right away.
        for g in 0..pl.gates().len() {
            sim.try_schedule(g);
        }
        Ok(sim)
    }

    /// Current simulation time (ns).
    #[must_use]
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Number of completed vectors.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Number of events dispatched so far (for events/sec accounting
    /// against the rewritten engine).
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Starts recording token deliveries for [`crate::trace::to_vcd`].
    pub fn enable_tracing(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// The recorded trace (empty unless tracing was enabled).
    #[must_use]
    pub fn trace(&self) -> &[crate::trace::TraceEvent] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Applies one input vector (input-port order) and runs until every
    /// output has produced its token for this round.
    ///
    /// # Errors
    ///
    /// [`SimError::InputArityMismatch`] for a wrong-size vector;
    /// [`SimError::Deadlock`] if the token game stalls;
    /// [`SimError::SafetyViolation`] / [`SimError::UnsoundTrigger`] indicate
    /// internal invariant breaches.
    pub fn run_vector(&mut self, inputs: &[bool]) -> Result<VectorOutcome, SimError> {
        let ports = self.pl.input_gates();
        if inputs.len() != ports.len() {
            return Err(SimError::InputArityMismatch {
                got: inputs.len(),
                expected: ports.len(),
            });
        }
        // If a previous vector was never consumed (outputs independent of
        // that input), let the wave drain first.
        self.drain_pending_inputs()?;
        let start = self.time;
        for (k, &g) in ports.iter().enumerate() {
            self.pending_input[g.index()] = Some(inputs[k]);
            self.try_schedule(g.index());
        }
        // Outputs tied to constants produce their value immediately.
        for (slot, (_, og)) in self.pl.output_gates().iter().enumerate() {
            let gate = &self.pl.gates()[og.index()];
            if gate.data_in().is_empty() {
                if let Some(v) = gate.const_pin(0) {
                    self.records[slot].push_back((v, self.time));
                }
            }
        }
        // Run until each output's record queue has an entry for this round.
        while !self.round_complete() {
            let Some(ev) = self.queue.pop() else {
                return Err(SimError::Deadlock {
                    at_time: self.time,
                    missing_outputs: self.missing_outputs(),
                });
            };
            self.time = ev.time;
            self.dispatch(ev.kind)?;
        }
        let mut outputs = Vec::with_capacity(self.records.len());
        let mut completed_at = start;
        for q in &mut self.records {
            let (v, t) = q.pop_front().expect("round_complete guarantees a record");
            outputs.push(v);
            completed_at = completed_at.max(t);
        }
        self.rounds += 1;
        Ok(VectorOutcome {
            outputs,
            latency: (completed_at - start).max(0.0),
            completed_at,
        })
    }

    /// Streams vectors through the netlist *pipelined*: each vector is
    /// injected as soon as the environment's input gates are re-armed,
    /// without waiting for the previous output word — measuring sustained
    /// throughput rather than per-vector latency (the paper's framing of
    /// early evaluation as a *throughput* optimization, §1).
    ///
    /// Returns the outputs per vector plus the makespan from the first
    /// injection to the last output token.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReferenceSimulator::run_vector`].
    pub fn run_stream(&mut self, vectors: &[Vec<bool>]) -> Result<StreamOutcome, SimError> {
        let ports = self.pl.input_gates();
        let start = self.time;
        let mut completed = 0usize;
        for (k, v) in vectors.iter().enumerate() {
            if v.len() != ports.len() {
                return Err(SimError::InputArityMismatch {
                    got: v.len(),
                    expected: ports.len(),
                });
            }
            // Wait only for the *input* queue to free, not for outputs.
            self.drain_pending_inputs()?;
            for (i, &g) in ports.iter().enumerate() {
                self.pending_input[g.index()] = Some(v[i]);
                self.try_schedule(g.index());
            }
            for (slot, (_, og)) in self.pl.output_gates().iter().enumerate() {
                let gate = &self.pl.gates()[og.index()];
                if gate.data_in().is_empty() {
                    if let Some(cv) = gate.const_pin(0) {
                        self.records[slot].push_back((cv, self.time));
                    }
                }
            }
            let _ = k;
        }
        // Run to completion of every vector's output word.
        let mut outputs = Vec::with_capacity(vectors.len());
        let mut last = start;
        while completed < vectors.len() {
            while !self.round_complete() {
                let Some(ev) = self.queue.pop() else {
                    return Err(SimError::Deadlock {
                        at_time: self.time,
                        missing_outputs: self.missing_outputs(),
                    });
                };
                self.time = ev.time;
                self.dispatch(ev.kind)?;
            }
            let mut word = Vec::with_capacity(self.records.len());
            for q in &mut self.records {
                let (v, t) = q.pop_front().expect("round complete");
                word.push(v);
                last = last.max(t);
            }
            outputs.push(word);
            completed += 1;
            self.rounds += 1;
        }
        let makespan = (last - start).max(0.0);
        Ok(StreamOutcome {
            outputs,
            makespan,
            throughput: if makespan > 0.0 {
                vectors.len() as f64 / makespan
            } else {
                f64::INFINITY
            },
        })
    }

    fn round_complete(&self) -> bool {
        self.records.iter().all(|q| !q.is_empty())
    }

    fn missing_outputs(&self) -> Vec<String> {
        self.pl
            .output_gates()
            .iter()
            .zip(&self.records)
            .filter(|(_, q)| q.is_empty())
            .map(|((name, _), _)| name.clone())
            .collect()
    }

    fn drain_pending_inputs(&mut self) -> Result<(), SimError> {
        while self.pending_input.iter().any(Option::is_some) {
            let Some(ev) = self.queue.pop() else {
                return Err(SimError::Deadlock {
                    at_time: self.time,
                    missing_outputs: vec!["<pending input never consumed>".into()],
                });
            };
            self.time = ev.time;
            self.dispatch(ev.kind)?;
        }
        Ok(())
    }

    // ---- event machinery -------------------------------------------------

    fn post(&mut self, delay: f64, kind: EventKind) {
        let ev = Event {
            time: self.time + delay,
            seq: self.seq,
            kind,
        };
        self.seq += 1;
        self.queue.push(ev);
    }

    fn dispatch(&mut self, kind: EventKind) -> Result<(), SimError> {
        self.events += 1;
        match kind {
            EventKind::Deliver { arc, value } => self.deliver(arc as usize, value),
            EventKind::Fire { gate } => self.fire(gate as usize),
            EventKind::Produce { gate, gen } => self.ee_produce(gate as usize, gen),
            EventKind::Cleanup { gate, gen } => self.ee_cleanup(gate as usize, gen),
        }
    }

    fn deliver(&mut self, arc: usize, value: bool) -> Result<(), SimError> {
        if self.tokens[arc] >= 1 {
            return Err(SimError::SafetyViolation {
                arc: PlArcId::from_index(arc),
                producer: self.pl.arcs()[arc].src(),
            });
        }
        self.tokens[arc] = 1;
        self.values[arc] = value;
        if let Some(trace) = &mut self.trace {
            if self.pl.arcs()[arc].kind() != pl_core::PlArcKind::Ack {
                trace.push(crate::trace::TraceEvent {
                    time: self.time,
                    arc,
                    value,
                });
            }
        }
        self.try_schedule(self.pl.arcs()[arc].dst().index());
        Ok(())
    }

    /// Checks a gate's firing conditions and posts Fire/EarlyProduce events.
    fn try_schedule(&mut self, g: usize) {
        let gate = &self.pl.gates()[g];
        match gate.kind() {
            PlGateKind::Constant { .. } => {}
            PlGateKind::Input { .. } => {
                if !self.fire_scheduled[g]
                    && self.pending_input[g].is_some()
                    && self.all_marked(gate.control_in())
                {
                    self.fire_scheduled[g] = true;
                    self.post(0.0, EventKind::Fire { gate: g as u32 });
                }
            }
            PlGateKind::Output { .. } => {
                // Constant-driven outputs have no token traffic; run_vector
                // records them directly.
                if !gate.data_in().is_empty() && !self.fire_scheduled[g] && self.data_ready(g) {
                    self.fire_scheduled[g] = true;
                    self.post(self.delays.c_element, EventKind::Fire { gate: g as u32 });
                }
            }
            PlGateKind::Compute { .. } | PlGateKind::Register { .. } => {
                if let Some(ee) = gate.ee() {
                    let efire = ee.efire_arc.index();
                    let efire_ready = self.tokens[efire] == 1;
                    let acks_ready = gate
                        .control_in()
                        .iter()
                        .all(|a| a.index() == efire || self.tokens[a.index()] == 1);
                    let gen = self.gen[g];
                    // Normal production: all data inputs present. The extra
                    // EE C-element costs `ee_overhead` on this path, but the
                    // trigger is NOT waited for (its token is collected at
                    // cleanup) — the paper's "slight degradation" only.
                    if !self.produced[g]
                        && !self.normal_scheduled[g]
                        && self.data_ready(g)
                        && acks_ready
                    {
                        self.normal_scheduled[g] = true;
                        self.post(
                            self.delays.ee_master_delay(),
                            EventKind::Produce {
                                gate: g as u32,
                                gen,
                            },
                        );
                    }
                    // Early production: trigger fired true, fast pins here.
                    if !self.produced[g]
                        && !self.early_scheduled[g]
                        && efire_ready
                        && self.values[efire]
                        && self.subset_ready(g)
                        && acks_ready
                    {
                        self.early_scheduled[g] = true;
                        self.post(
                            self.delays.ee_early_delay(),
                            EventKind::Produce {
                                gate: g as u32,
                                gen,
                            },
                        );
                    }
                    // Cleanup rendezvous: output gone, every token here.
                    if self.produced[g]
                        && !self.fire_scheduled[g]
                        && self.data_ready(g)
                        && efire_ready
                    {
                        self.fire_scheduled[g] = true;
                        self.post(
                            self.delays.c_element,
                            EventKind::Cleanup {
                                gate: g as u32,
                                gen,
                            },
                        );
                    }
                } else if !self.fire_scheduled[g]
                    && self.data_ready(g)
                    && self.all_marked(gate.control_in())
                {
                    self.fire_scheduled[g] = true;
                    self.post(self.delays.gate_delay(), EventKind::Fire { gate: g as u32 });
                }
            }
        }
    }

    fn all_marked(&self, arcs: &[PlArcId]) -> bool {
        arcs.iter().all(|a| self.tokens[a.index()] == 1)
    }

    fn data_ready(&self, g: usize) -> bool {
        self.all_marked(self.pl.gates()[g].data_in())
    }

    fn subset_ready(&self, g: usize) -> bool {
        let gate = &self.pl.gates()[g];
        let ee = gate.ee().expect("subset_ready only called for EE masters");
        gate.data_in().iter().all(|a| {
            let arc = &self.pl.arcs()[a.index()];
            match arc.dst_pin() {
                Some(p) if ee.subset_pins.contains(&p) => self.tokens[a.index()] == 1,
                _ => true,
            }
        })
    }

    /// Value on the gate's pin `pin` (token value or constant tie-off).
    fn pin_value(&self, g: usize, pin: u8) -> Option<bool> {
        let gate = &self.pl.gates()[g];
        if let Some(v) = gate.const_pin(pin as usize) {
            return Some(v);
        }
        gate.data_in()
            .iter()
            .find(|a| self.pl.arcs()[a.index()].dst_pin() == Some(pin))
            .and_then(|a| (self.tokens[a.index()] == 1).then(|| self.values[a.index()]))
    }

    /// Evaluates the gate's function from its (complete) pins.
    fn evaluate(&self, g: usize) -> bool {
        let gate = &self.pl.gates()[g];
        match gate.kind() {
            PlGateKind::Register { .. } => self.pin_value(g, 0).expect("register pin ready"),
            PlGateKind::Compute { table } => {
                let mut m = 0u32;
                for pin in 0..table.num_vars() {
                    if self
                        .pin_value(g, pin as u8)
                        .expect("all pins ready at fire")
                    {
                        m |= 1 << pin;
                    }
                }
                table.eval(m)
            }
            _ => unreachable!("evaluate called on logic gates only"),
        }
    }

    fn consume(&mut self, arcs: &[PlArcId]) {
        for a in arcs {
            debug_assert_eq!(self.tokens[a.index()], 1, "consuming an unmarked arc");
            self.tokens[a.index()] = 0;
        }
    }

    /// Sends tokens on out-arcs; `data_value` is placed on data arcs, acks
    /// carry pure timing tokens.
    fn produce(&mut self, g: usize, data_value: bool, include_data: bool, include_acks: bool) {
        let out: Vec<PlArcId> = self.pl.gates()[g].out_arcs().to_vec();
        for a in out {
            let arc = &self.pl.arcs()[a.index()];
            let is_data = matches!(arc.kind(), PlArcKind::Data | PlArcKind::Efire);
            if (is_data && include_data) || (!is_data && include_acks) {
                self.post(
                    self.delays.wire,
                    EventKind::Deliver {
                        arc: a.index() as u32,
                        value: data_value,
                    },
                );
            }
        }
    }

    fn fire(&mut self, g: usize) -> Result<(), SimError> {
        self.fire_scheduled[g] = false;
        let gate = &self.pl.gates()[g];
        match gate.kind().clone() {
            PlGateKind::Input { .. } => {
                let control: Vec<PlArcId> = gate.control_in().to_vec();
                self.consume(&control);
                let v = self.pending_input[g]
                    .take()
                    .expect("input armed before firing");
                self.produce(g, v, true, true);
            }
            PlGateKind::Output { name: _ } => {
                let data: Vec<PlArcId> = gate.data_in().to_vec();
                let v = self.values[data[0].index()];
                self.consume(&data);
                let slot = self
                    .pl
                    .output_gates()
                    .iter()
                    .position(|(_, og)| og.index() == g)
                    .expect("output gate is registered");
                self.records[slot].push_back((v, self.time));
                self.produce(g, v, true, true);
            }
            PlGateKind::Compute { .. } | PlGateKind::Register { .. } => {
                debug_assert!(
                    gate.ee().is_none(),
                    "EE masters use Produce/Cleanup events, not Fire"
                );
                let data: Vec<PlArcId> = gate.data_in().to_vec();
                let control: Vec<PlArcId> = gate.control_in().to_vec();
                let v = self.evaluate(g);
                self.consume(&data);
                self.consume(&control);
                self.produce(g, v, true, true);
            }
            PlGateKind::Constant { .. } => unreachable!("constants never fire"),
        }
        // Consuming in-arcs can re-enable this gate only via future
        // deliveries, but producers of freshly-acked arcs may now be ready.
        // (Those are woken by the Deliver events posted above.)
        self.try_schedule(g);
        Ok(())
    }

    /// EE-master output production — normal or early path, whichever event
    /// lands first this round wins; the loser aborts on the `produced` flag.
    fn ee_produce(&mut self, g: usize, gen: u64) -> Result<(), SimError> {
        if gen != self.gen[g] || self.produced[g] {
            return Ok(()); // stale event or the other path already produced
        }
        let gate = &self.pl.gates()[g];
        let ee = gate
            .ee()
            .cloned()
            .expect("Produce events target EE masters");
        let efire = ee.efire_arc.index();
        let acks: Vec<PlArcId> = gate
            .control_in()
            .iter()
            .copied()
            .filter(|a| a.index() != efire)
            .collect();
        debug_assert!(self.all_marked(&acks), "acks were ready at scheduling");

        let v = if self.data_ready(g) {
            // Normal path (or early with everything present anyway).
            self.evaluate(g)
        } else {
            // Early path: the trigger promised the known pins force the
            // output; verify that promise.
            let table = gate.table().expect("EE masters are logic gates");
            let mut vars: u8 = 0;
            let mut asg: u32 = 0;
            let mut k = 0;
            for pin in 0..table.num_vars() {
                if let Some(val) = self.pin_value(g, pin as u8) {
                    vars |= 1 << pin;
                    if val {
                        asg |= 1 << k;
                    }
                    k += 1;
                }
            }
            let Some(v) = table.forced_value(vars, asg) else {
                return Err(SimError::UnsoundTrigger {
                    master: PlGateId::from_index(g),
                });
            };
            v
        };
        self.consume(&acks);
        self.produced[g] = true;
        self.produce(g, v, true, false);
        // The cleanup rendezvous may already be satisfiable.
        self.try_schedule(g);
        Ok(())
    }

    /// EE-master cleanup: all data tokens and the efire token are consumed,
    /// source acknowledges go out, and the round generation advances.
    fn ee_cleanup(&mut self, g: usize, gen: u64) -> Result<(), SimError> {
        if gen != self.gen[g] {
            return Ok(());
        }
        debug_assert!(self.produced[g], "cleanup only scheduled after production");
        let gate = &self.pl.gates()[g];
        let ee = gate
            .ee()
            .cloned()
            .expect("Cleanup events target EE masters");
        let data: Vec<PlArcId> = gate.data_in().to_vec();
        self.consume(&data);
        self.consume(&[ee.efire_arc]);
        self.produced[g] = false;
        self.fire_scheduled[g] = false;
        self.normal_scheduled[g] = false;
        self.early_scheduled[g] = false;
        self.gen[g] += 1;
        self.produce(g, false, false, true);
        self.try_schedule(g);
        Ok(())
    }
}
