//! Synchronous reference simulation and PL equivalence checking.

use pl_core::PlNetlist;
use pl_netlist::{eval::Evaluator, Netlist};

use crate::delay::DelayModel;
use crate::engine::PlSimulator;
use crate::error::SimError;

/// Cycle-accurate synchronous simulator (thin wrapper over the netlist
/// evaluator, mirroring [`PlSimulator`]'s vector-at-a-time interface).
#[derive(Debug, Clone)]
pub struct SyncSimulator<'a> {
    eval: Evaluator<'a>,
}

impl<'a> SyncSimulator<'a> {
    /// Prepares a simulator over a validated netlist.
    ///
    /// # Errors
    ///
    /// Propagates netlist validation failures.
    pub fn new(netlist: &'a Netlist) -> Result<Self, pl_netlist::NetlistError> {
        Ok(Self {
            eval: Evaluator::new(netlist)?,
        })
    }

    /// Runs one clock cycle, returning the primary outputs.
    ///
    /// # Errors
    ///
    /// Propagates evaluator errors (wrong input arity).
    pub fn step(&mut self, inputs: &[bool]) -> Result<Vec<bool>, pl_netlist::NetlistError> {
        self.eval.step(inputs)
    }

    /// Completed cycles.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.eval.cycles()
    }
}

/// The first divergence found by [`verify_equivalence`].
#[derive(Debug, Clone, PartialEq)]
pub struct Mismatch {
    /// Zero-based vector index at which the divergence occurred.
    pub vector: usize,
    /// Synchronous reference outputs.
    pub sync_outputs: Vec<bool>,
    /// Phased-logic outputs.
    pub pl_outputs: Vec<bool>,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "outputs diverged at vector {}: sync {:?} vs pl {:?}",
            self.vector, self.sync_outputs, self.pl_outputs
        )
    }
}

/// Verifies that a phased-logic netlist produces, vector for vector, the
/// same output stream as its synchronous source — the core correctness
/// property of the PL mapping and of early evaluation (which must change
/// *when* outputs appear, never *what* they are).
///
/// # Errors
///
/// Returns the first [`Mismatch`] wrapped in `Ok(Err(..))`-style result:
/// the outer error covers simulator failures (deadlock, arity).
///
/// # Panics
///
/// Panics if `sync` fails validation (programming error in the caller).
pub fn verify_equivalence(
    sync: &Netlist,
    pl: &PlNetlist,
    delays: &DelayModel,
    vectors: &[Vec<bool>],
) -> Result<Result<(), Mismatch>, SimError> {
    let mut ssim = SyncSimulator::new(sync).expect("sync netlist must validate");
    let mut psim = PlSimulator::new(pl, delays.clone())?;
    // The PL word is compared and discarded every iteration — one scratch
    // buffer serves the whole sweep instead of a fresh Vec per vector.
    let mut po = Vec::new();
    for (i, v) in vectors.iter().enumerate() {
        let so = ssim.step(v).map_err(|_| SimError::InputArityMismatch {
            got: v.len(),
            expected: sync.inputs().len(),
        })?;
        psim.run_vector_into(v, &mut po)?;
        if so != po {
            return Ok(Err(Mismatch {
                vector: i,
                sync_outputs: so,
                pl_outputs: po,
            }));
        }
    }
    Ok(Ok(()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_core::ee::EeOptions;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_vectors(n_inputs: usize, count: usize, seed: u64) -> Vec<Vec<bool>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| (0..n_inputs).map(|_| rng.gen()).collect())
            .collect()
    }

    #[test]
    fn sequential_design_equivalence_with_and_without_ee() {
        // A small datapath+FSM mix.
        let mut m = pl_rtl::Module::new("mix");
        let x = m.input_word("x", 4);
        let en = m.input_bit("en");
        let acc = m.reg_word("acc", 4, 5);
        let sum = m.add(&acc.q(), &x);
        let top = m.lt_u(&acc.q(), &x);
        let sel = m.mux_w(top, &sum, &x);
        m.next_when(&acc, en, &sel);
        m.output_word("acc", &acc.q());
        m.output_bit("top", top);
        let gates = m.elaborate().unwrap();
        let mapped = pl_techmap::map_to_lut4(&gates, &pl_techmap::MapOptions::default()).unwrap();
        let vectors = random_vectors(mapped.inputs().len(), 60, 7);

        let plain = PlNetlist::from_sync(&mapped).unwrap();
        verify_equivalence(&mapped, &plain, &DelayModel::default(), &vectors)
            .unwrap()
            .unwrap();

        let ee = PlNetlist::from_sync(&mapped)
            .unwrap()
            .with_early_evaluation(&EeOptions::default())
            .into_netlist();
        verify_equivalence(&mapped, &ee, &DelayModel::default(), &vectors)
            .unwrap()
            .unwrap();
    }

    #[test]
    fn mismatch_displays() {
        let m = Mismatch {
            vector: 3,
            sync_outputs: vec![true],
            pl_outputs: vec![false],
        };
        assert!(m.to_string().contains("vector 3"));
    }
}
