//! The discrete-event marked-graph simulator (integer-tick core).
//!
//! Gates are marked-graph transitions; arcs hold at most one token. A gate
//! *fires* by consuming one token from every in-arc and producing one on
//! every out-arc after its component delays. Early-evaluation masters split
//! this atomic firing into *production* (possibly early, when the trigger
//! says the output is forced) and *cleanup* (when the late tokens arrive),
//! exactly as the extra Muller C-elements of the paper's Figure 2 do in
//! hardware.
//!
//! # Engine architecture
//!
//! This is the allocation-free rewrite of the original engine (which is
//! retained verbatim in [`crate::reference`] as a differential baseline):
//!
//! * **Integer time** — events are keyed on `u64` femtosecond ticks
//!   ([`crate::delay::TICKS_PER_NS`]) quantized once from the [`DelayModel`]
//!   via [`DelayModel::to_ticks`]. Tick keys compare exactly; there is no
//!   `f64::total_cmp` heap ordering and no accumulated rounding drift.
//! * **Pluggable event queue** — pending events live in a
//!   [`crate::queue::EventQueue`] over packed `(tick, seq)` keys (`seq`
//!   makes the order total and deterministic), enum-dispatched over two
//!   backends selected at construction
//!   ([`PlSimulator::with_queue`] / [`crate::queue::QueueKind`]):
//!
//!   * `Heap` (the default) — a flat `Vec`-backed binary min-heap,
//!     O(log n) per operation, fully general, and free of steady-state
//!     allocation (capacity is retained across rounds; the ladder trades
//!     that for small per-bucket allocations).
//!   * `Ladder` — a calendar/ladder queue bucketed by integer tick with
//!     FIFO (`seq`) order inside buckets and automatic refinement /
//!     resize rungs. Amortized O(1) push/pop. It wins when the pending
//!     set is large and the tick distribution is dense and
//!     near-monotonic — exactly what this engine produces, since every
//!     scheduled event lies at most one maximum component delay
//!     (~3.1 ns on the default model) ahead of the current time, and
//!     the larger ITC'99 designs keep hundreds of events in flight. For
//!     tiny designs (tens of events pending) the heap's lower constant
//!     factor wins instead; `BENCH_queue.json` tracks the measured
//!     crossover on streamed b14/b15.
//!
//!   The backend is an implementation detail, never semantics: both pop
//!   in exactly ascending `(tick, seq)` order, results are bit-identical
//!   (differentially pinned across the whole equivalence suite), and
//!   [`crate::SimCheckpoint`]s canonicalize the in-flight queue to a
//!   sorted event list, so a checkpoint taken on one backend resumes on
//!   the other.
//! * **CSR adjacency** — all topology questions go through
//!   [`pl_core::PlAdjacency`]: per-gate contiguous slices of pin-indexed
//!   data-in arcs, ack in-arcs, and out-arcs pre-split into value-carrying
//!   and acknowledge lists. Firing never scans arc `Vec`s or allocates.
//! * **Incremental readiness** — per-gate bitsets (`pin_tokens`, one bit
//!   per LUT pin) and an `ack_missing` counter are updated on every
//!   deliver/consume, so the firing checks in `try_schedule` are O(1)
//!   mask compares instead of arc re-scans.
//!
//! # The lane model
//!
//! The simulator is generic over a [`LaneWord`] `L` — the value payload
//! riding each token. [`PlSimulator`] is the 1-lane (`L = bool`)
//! instantiation; [`BatchSimulator`] (`L = u64`) marches **64 independent
//! input vectors in lockstep through one event flow**, each gate
//! evaluation computing all 64 lanes with bitwise ops over the packed
//! truth table.
//!
//! What is shared and what is per-lane:
//!
//! * **Shared (lane-invariant):** the whole token game — arc token
//!   presence (`tokens`), per-gate readiness (`pin_tokens`,
//!   `ack_missing`), scheduling flags, round generations, the event
//!   queue, and therefore simulated time itself. The marked graph is a
//!   Kahn network: *which* round's token an arc carries is decided by
//!   token availability alone, never by token values, so 64 lanes fed in
//!   lockstep always agree on the schedule.
//! * **Per-lane:** token *values* — `values`, `pin_vals`,
//!   `pending_input`, and the recorded output words. Each lane's value
//!   stream is exactly what a scalar run fed that lane's vectors would
//!   produce: per-round output values are a pure function of per-round
//!   input values (Kahn determinism again), so the batch engine is
//!   pinned bit-identical, lane by lane, to 64 sequential scalar runs
//!   (`tests/engine_equivalence.rs`).
//!
//! The one lane-sensitive decision is early evaluation: the early path
//! fires only when the trigger is true **in every lane**
//! ([`LaneWord::all`]), so event *timing* in a batch run follows the
//! worst lane of the block. Values are unaffected — any lane whose
//! trigger fired true has a forced output no matter which path produces
//! it — which is exactly the latitude the determinism contract leaves
//! open (values bit-identical; makespans may differ from scalar runs).
//!
//! Observable semantics (output streams, event ordering, latencies up to
//! the femtosecond quantization of the clock) are identical to the
//! reference engine; `tests/engine_equivalence.rs` enforces this
//! differentially on the ITC'99 suite and on randomized netlists.

use std::collections::VecDeque;

use pl_core::adjacency::{GateClass, NO_ARC};
use pl_core::{PlAdjacency, PlArcId, PlArcKind, PlGateId, PlNetlist};

use crate::delay::{ticks_to_ns, DelayModel, TickDelays};
use crate::error::SimError;
use crate::lane::LaneWord;
use crate::queue::{EventQueue, QueueKind};

/// Result of simulating one input vector to a stable output word.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorOutcome<L: LaneWord = bool> {
    /// Output values, in output-port order (one lane word per output).
    pub outputs: Vec<L>,
    /// Delay from vector application to the last output token (ns).
    pub latency: f64,
    /// Absolute simulation time at which the output word was complete.
    pub completed_at: f64,
}

/// Result of a pipelined [`PlSimulator::run_stream`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamOutcome<L: LaneWord = bool> {
    /// Output words, one per injected vector, in injection order.
    pub outputs: Vec<Vec<L>>,
    /// Time from the first injection to the last output token (ns).
    pub makespan: f64,
    /// Sustained rate, vectors per nanosecond.
    pub throughput: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum EventKind<L: LaneWord = bool> {
    /// Batched token delivery: every out-arc of `gate`'s firing shares the
    /// same wire delay, so all its deliveries land as ONE queue event
    /// (heap traffic per firing is O(1) instead of O(fanout)). Dispatch
    /// order is identical to per-arc events: the per-arc events carried
    /// consecutive `seq`s, so nothing could interleave between them.
    Tokens {
        gate: u32,
        value: L,
        data: bool,
        acks: bool,
    },
    Fire {
        gate: u32,
    },
    /// EE-master output production (either path). `gen` guards against
    /// stale events from a previous round.
    Produce {
        gate: u32,
        gen: u64,
    },
    /// EE-master token cleanup rendezvous.
    Cleanup {
        gate: u32,
        gen: u64,
    },
}

/// One canonicalized in-flight event as a checkpoint stores it. The live
/// queue itself is a [`crate::queue::EventQueue`] over `(key, kind)`
/// pairs; this struct only exists so [`crate::SimCheckpoint`] can carry a
/// queue-kind-portable sorted event list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Event<L: LaneWord = bool> {
    /// `(tick << 64) | seq` — a strict total order (seq is unique).
    pub(crate) key: u128,
    pub(crate) kind: EventKind<L>,
}

// Per-gate scheduling flags (round-trip state of the firing automaton).
const F_FIRE_SCHED: u8 = 1 << 0;
const F_PRODUCED: u8 = 1 << 1;
const F_NORMAL_SCHED: u8 = 1 << 2;
const F_EARLY_SCHED: u8 = 1 << 3;

/// Event-driven simulator over a [`PlNetlist`], generic over the
/// [`LaneWord`] its token payloads carry (see the
/// [module docs](self#the-lane-model)).
///
/// Use the [`PlSimulator`] alias for ordinary scalar simulation and
/// [`BatchSimulator`] for the 64-lane batch engine; the generic name only
/// appears when writing code that works at either width.
#[derive(Debug, Clone)]
pub struct LaneSimulator<'a, L: LaneWord = bool> {
    pub(crate) pl: &'a PlNetlist,
    adj: PlAdjacency,
    delays: DelayModel,
    ticks: TickDelays,
    /// The netlist's design fingerprint
    /// ([`crate::checkpoint::netlist_fingerprint`]), computed once here so
    /// per-window snapshot/restore never re-walks the netlist.
    pub(crate) fingerprint: u64,
    pub(crate) now: u64,
    pub(crate) seq: u64,
    pub(crate) events: u64,
    pub(crate) queue: EventQueue<EventKind<L>>,
    /// Per-arc token presence (0/1) — shared by all lanes.
    pub(crate) tokens: Vec<u8>,
    /// Per-arc token value (data/efire arcs), one lane word per arc.
    pub(crate) values: Vec<L>,
    /// Per-gate bit-per-pin token presence (incremental `data_ready`) —
    /// shared by all lanes.
    pub(crate) pin_tokens: Vec<u8>,
    /// Per-gate per-lane token values on the input pins (for the scalar
    /// word this is the partial LUT minterm index, as before).
    pub(crate) pin_vals: Vec<L::PinVals>,
    /// Per-gate count of unmarked acknowledge in-arcs (efire excluded).
    pub(crate) ack_missing: Vec<u32>,
    pub(crate) pending_input: Vec<Option<L>>,
    pub(crate) flags: Vec<u8>,
    /// EE masters: per-gate round generation (stale-event guard).
    pub(crate) gen: Vec<u64>,
    pub(crate) records: Vec<VecDeque<(L, u64)>>,
    pub(crate) rounds: u64,
    pub(crate) trace: Option<Vec<crate::trace::TraceEvent>>,
    /// The pipelined sweep's leader diet: an output firing whose round
    /// index is below this horizon (and whose record queue holds no
    /// later round) is counted into `records_skipped` instead of being
    /// pushed onto `records` — record queues are write-only to the event
    /// schedule, so this changes memory traffic, never simulation
    /// results. `0` (the default) records everything. Leader-local
    /// bookkeeping: deliberately NOT part of [`crate::SimCheckpoint`]
    /// (the skip counts are folded into the window `base` offsets by
    /// [`PlSimulator::prune_records`] before every snapshot).
    pub(crate) record_horizon: usize,
    /// Per-output count of rounds skipped under the `record_horizon`
    /// diet, pending their fold into a pruning `base`.
    pub(crate) records_skipped: Vec<usize>,
    /// Per-output count of rounds recorded *or* skipped since
    /// construction — each output's next absolute round index, which the
    /// `record_horizon` diet compares against. Only the never-restored
    /// diet leader reads it (reset alongside the skip counts on
    /// restore).
    pub(crate) fired_rounds: Vec<usize>,
}

/// The scalar (1-lane) simulator — the engine every existing caller uses,
/// pinned bit-identical to the pre-lane engine and to
/// [`crate::reference`].
pub type PlSimulator<'a> = LaneSimulator<'a, bool>;

/// The 64-lane batch simulator: token payloads are `u64` words carrying
/// 64 independent vectors through one event flow. See
/// [`BatchSimulator::run_lanes`] for the packing front end and the
/// [module docs](self#the-lane-model) for the determinism contract.
pub type BatchSimulator<'a> = LaneSimulator<'a, u64>;

impl<'a, L: LaneWord> LaneSimulator<'a, L> {
    /// Prepares a simulator: checks structural liveness, freezes the flat
    /// adjacency, and places the initial marking. Events schedule through
    /// the default [`QueueKind::Heap`] backend; use
    /// [`PlSimulator::with_queue`] to select another.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Structural`] if the netlist is not live.
    pub fn new(pl: &'a PlNetlist, delays: DelayModel) -> Result<Self, SimError> {
        Self::with_queue(pl, delays, QueueKind::default())
    }

    /// [`PlSimulator::new`] with an explicit event-queue backend. The
    /// backend is a pure implementation choice — simulation results are
    /// bit-identical across kinds (see [`crate::queue`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Structural`] if the netlist is not live.
    pub fn with_queue(
        pl: &'a PlNetlist,
        delays: DelayModel,
        queue: QueueKind,
    ) -> Result<Self, SimError> {
        pl.check_pins()?;
        pl_core::marked::check_liveness(pl)?;
        let adj = pl.adjacency();
        let n = pl.gates().len();
        let ticks = delays.to_ticks();
        let mut sim = Self {
            pl,
            delays,
            ticks,
            fingerprint: crate::checkpoint::netlist_fingerprint(pl),
            now: 0,
            seq: 0,
            events: 0,
            queue: EventQueue::new(queue),
            tokens: pl.arcs().iter().map(pl_core::PlArc::init_tokens).collect(),
            values: pl.arcs().iter().map(|a| L::splat(a.init_value())).collect(),
            pin_tokens: vec![0; n],
            pin_vals: vec![L::pv_empty(); n],
            ack_missing: vec![0; n],
            pending_input: vec![None; n],
            flags: vec![0; n],
            gen: vec![0; n],
            records: vec![VecDeque::new(); pl.output_gates().len()],
            rounds: 0,
            trace: None,
            record_horizon: 0,
            records_skipped: vec![0; pl.output_gates().len()],
            fired_rounds: vec![0; pl.output_gates().len()],
            adj,
        };
        // Derive the incremental readiness state from the initial marking.
        for g in 0..n {
            sim.ack_missing[g] = sim
                .adj
                .ack_in_arcs(g)
                .iter()
                .filter(|&&a| sim.tokens[a as usize] == 0)
                .count() as u32;
            for (pin, &a) in sim.adj.pin_arcs(g).iter().enumerate() {
                if a != NO_ARC && sim.tokens[a as usize] == 1 {
                    sim.pin_tokens[g] |= 1 << pin;
                    let v = sim.values[a as usize];
                    L::pv_set(&mut sim.pin_vals[g], pin as u8, v);
                }
            }
        }
        // Gates fed entirely by initial tokens (e.g. autonomous next-state
        // logic) may fire right away.
        for g in 0..n {
            sim.try_schedule(g);
        }
        Ok(sim)
    }

    /// Current simulation time (ns).
    #[must_use]
    pub fn time(&self) -> f64 {
        ticks_to_ns(self.now)
    }

    /// Current simulation time in integer ticks (femtoseconds).
    #[must_use]
    pub fn time_ticks(&self) -> u64 {
        self.now
    }

    /// The delay model this simulator was built with (the engine runs on
    /// its [`DelayModel::to_ticks`] quantization).
    #[must_use]
    pub fn delay_model(&self) -> &DelayModel {
        &self.delays
    }

    /// The event-queue backend this simulator schedules through.
    #[must_use]
    pub fn queue_kind(&self) -> QueueKind {
        self.queue.kind()
    }

    /// Number of completed vectors.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Number of events dispatched so far (the engine-throughput unit
    /// reported as events/sec by the benchmark harness).
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Raises the record-skip horizon — the advance-only leader pass of
    /// [`crate::parallel::sweep_pipelined`] sets it to the end of the
    /// window just dispatched before feeding that window's vectors, so
    /// output words for already-dispatched rounds are counted (per
    /// output) instead of stored and the leader's memory and per-round
    /// work stop scaling with window contents. The horizon compares
    /// against each output's absolute round index, so an output that
    /// *outruns* the fed vectors (one whose data cone contains no
    /// primary input — a free-running DFF ring — can fire for rounds the
    /// environment has not paced yet) keeps its beyond-horizon records;
    /// skips therefore always form a contiguous prefix of dispatched
    /// rounds, which is what lets [`PlSimulator::prune_records`] fold
    /// the counts into the window `base` exactly. The collection entry
    /// points ([`PlSimulator::run_vector`] / [`PlSimulator::run_stream`]
    /// / window replay) require the horizon to be 0.
    pub(crate) fn set_record_horizon(&mut self, horizon: usize) {
        debug_assert!(horizon >= self.record_horizon, "horizon only advances");
        self.record_horizon = horizon;
    }

    /// Routes one output firing to the record queue, or counts it as
    /// skipped under the `record_horizon` diet. Skipping requires an
    /// empty queue so skipped rounds never interleave behind kept ones
    /// (an outrun record beyond the horizon blocks skipping until a
    /// prune pops it).
    fn record_output(&mut self, slot: usize, value: L) {
        let round = self.fired_rounds[slot];
        self.fired_rounds[slot] += 1;
        if round < self.record_horizon && self.records[slot].is_empty() {
            self.records_skipped[slot] += 1;
        } else {
            self.records[slot].push_back((value, self.now));
        }
    }

    /// Starts recording token deliveries for [`crate::trace::to_vcd`].
    /// In a batch simulator only lane 0 is traced.
    pub fn enable_tracing(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// The recorded trace (empty unless tracing was enabled).
    #[must_use]
    pub fn trace(&self) -> &[crate::trace::TraceEvent] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Applies one input vector (input-port order) and runs until every
    /// output has produced its token for this round.
    ///
    /// # Errors
    ///
    /// [`SimError::InputArityMismatch`] for a wrong-size vector;
    /// [`SimError::Deadlock`] if the token game stalls;
    /// [`SimError::SafetyViolation`] / [`SimError::UnsoundTrigger`] indicate
    /// internal invariant breaches.
    pub fn run_vector(&mut self, inputs: &[L]) -> Result<VectorOutcome<L>, SimError> {
        let mut outputs = Vec::new();
        let (latency, completed_at) = self.run_vector_into(inputs, &mut outputs)?;
        Ok(VectorOutcome {
            outputs,
            latency,
            completed_at,
        })
    }

    /// [`PlSimulator::run_vector`] writing the output word into a
    /// caller-owned scratch buffer instead of allocating one — the
    /// hot-loop primitive for digest/compare passes that run millions of
    /// vectors and never keep the words. `out` is cleared first; its
    /// capacity is reused across calls. Returns `(latency, completed_at)`
    /// in ns, exactly the timing fields of [`VectorOutcome`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`PlSimulator::run_vector`].
    pub fn run_vector_into(
        &mut self,
        inputs: &[L],
        out: &mut Vec<L>,
    ) -> Result<(f64, f64), SimError> {
        debug_assert_eq!(self.record_horizon, 0, "run_vector collects records");
        let ports = self.pl.input_gates();
        if inputs.len() != ports.len() {
            return Err(SimError::InputArityMismatch {
                got: inputs.len(),
                expected: ports.len(),
            });
        }
        // If a previous vector was never consumed (outputs independent of
        // that input), let the wave drain first.
        self.drain_pending_inputs()?;
        let start = self.now;
        for (k, &g) in ports.iter().enumerate() {
            self.pending_input[g.index()] = Some(inputs[k]);
            self.try_schedule(g.index());
        }
        self.record_constant_outputs();
        // Run until each output's record queue has an entry for this round.
        while !self.round_complete() {
            let Some((key, kind)) = self.queue.pop() else {
                return Err(SimError::Deadlock {
                    at_time: self.time(),
                    missing_outputs: self.missing_outputs(),
                });
            };
            self.now = crate::queue::tick_of(key);
            self.dispatch(kind)?;
        }
        out.clear();
        out.reserve(self.records.len());
        let mut completed_at = start;
        for q in &mut self.records {
            let (v, t) = q.pop_front().expect("round_complete guarantees a record");
            out.push(v);
            completed_at = completed_at.max(t);
        }
        self.rounds += 1;
        Ok((ticks_to_ns(completed_at - start), ticks_to_ns(completed_at)))
    }

    /// Streams vectors through the netlist *pipelined*: each vector is
    /// injected as soon as the environment's input gates are re-armed,
    /// without waiting for the previous output word — measuring sustained
    /// throughput rather than per-vector latency (the paper's framing of
    /// early evaluation as a *throughput* optimization, §1).
    ///
    /// Returns the outputs per vector plus the makespan from the first
    /// injection to the last output token.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PlSimulator::run_vector`].
    pub fn run_stream(&mut self, vectors: &[Vec<L>]) -> Result<StreamOutcome<L>, SimError> {
        debug_assert_eq!(self.record_horizon, 0, "run_stream collects records");
        let start = self.now;
        let mut completed = 0usize;
        for v in vectors {
            self.feed_vector(v)?;
        }
        // Run to completion of every vector's output word.
        let mut outputs = Vec::with_capacity(vectors.len());
        let mut last = start;
        while completed < vectors.len() {
            while !self.round_complete() {
                let Some((key, kind)) = self.queue.pop() else {
                    return Err(SimError::Deadlock {
                        at_time: self.time(),
                        missing_outputs: self.missing_outputs(),
                    });
                };
                self.now = crate::queue::tick_of(key);
                self.dispatch(kind)?;
            }
            let mut word = Vec::with_capacity(self.records.len());
            for q in &mut self.records {
                let (v, t) = q.pop_front().expect("round complete");
                word.push(v);
                last = last.max(t);
            }
            outputs.push(word);
            completed += 1;
            self.rounds += 1;
        }
        let makespan = ticks_to_ns(last - start);
        Ok(StreamOutcome {
            outputs,
            makespan,
            throughput: if makespan > 0.0 {
                vectors.len() as f64 / makespan
            } else {
                f64::INFINITY
            },
        })
    }

    /// Queues one vector into a pipelined stream: waits (in simulated time)
    /// only for the environment's input gates to be re-armed, applies the
    /// vector, and returns **without waiting for any output word** — exactly
    /// one injection step of [`PlSimulator::run_stream`]. Output words
    /// accumulate in the per-output record queues and are collected by
    /// `run_stream`'s completion loop (or by the window-replay machinery of
    /// [`crate::parallel::sweep_pipelined`]). This is the cheap
    /// state-advancing primitive the pipelined sweep's leader pass runs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PlSimulator::run_vector`].
    pub fn feed_vector(&mut self, inputs: &[L]) -> Result<(), SimError> {
        let ports = self.pl.input_gates();
        if inputs.len() != ports.len() {
            return Err(SimError::InputArityMismatch {
                got: inputs.len(),
                expected: ports.len(),
            });
        }
        // Wait only for the *input* queue to free, not for outputs.
        self.drain_pending_inputs()?;
        for (i, &g) in ports.iter().enumerate() {
            self.pending_input[g.index()] = Some(inputs[i]);
            self.try_schedule(g.index());
        }
        self.record_constant_outputs();
        Ok(())
    }

    /// Drops recorded output words for rounds below `upto_round` from the
    /// front of each record queue, adding the per-queue drop counts to
    /// `base` (queue `o`'s entries are rounds `[base[o], base[o] +
    /// records[o].len())`). Records are write-only to the simulation
    /// itself — nothing in event dispatch ever reads them — so pruning
    /// never changes the event schedule, only the queue indexing, which
    /// callers must offset by `base`. This is what keeps the pipelined
    /// sweep's leader (and hence its checkpoints) at O(in-flight rounds)
    /// memory instead of O(stream).
    pub(crate) fn prune_records(&mut self, upto_round: usize, base: &mut [usize]) {
        debug_assert_eq!(base.len(), self.records.len());
        // Rounds skipped under the leader diet (`set_record_horizon`)
        // were "pruned" the moment they were produced; fold their counts
        // into the base first. A round is only ever skipped below the
        // horizon, and the sweep prunes exactly at the previous horizon,
        // so this never advances the base past `upto_round`.
        for (skip, b) in self.records_skipped.iter_mut().zip(base.iter_mut()) {
            *b += std::mem::take(skip);
            debug_assert!(*b <= upto_round, "skipped a round past the boundary");
        }
        for (q, b) in self.records.iter_mut().zip(base.iter_mut()) {
            while *b < upto_round && q.pop_front().is_some() {
                *b += 1;
            }
        }
    }

    /// Replays one window of a pipelined stream: feeds `vecs`, runs until
    /// every output's record queue covers rounds `[base[o], start_round +
    /// vecs.len())`, and returns the output words of rounds `[start_round,
    /// start_round + vecs.len())` plus the latest record tick among them.
    ///
    /// Precondition: the simulator state must stem from a stream driven by
    /// [`PlSimulator::feed_vector`] alone, with record queues popped only
    /// through [`PlSimulator::prune_records`] whose accumulated per-queue
    /// drop counts are `base` (so queue `o`'s index for round `r` is
    /// `r - base[o]`, and `base[o] <= start_round`). That is exactly the
    /// state [`PlSimulator::snapshot`] captures on the pipelined sweep's
    /// leader, which is this helper's only caller (via
    /// [`crate::parallel::sweep_pipelined`]).
    pub(crate) fn replay_window(
        &mut self,
        vecs: &[Vec<L>],
        start_round: usize,
        base: &[usize],
    ) -> Result<(Vec<Vec<L>>, u64), SimError> {
        debug_assert_eq!(self.record_horizon, 0, "window replay collects records");
        debug_assert_eq!(base.len(), self.records.len());
        debug_assert!(base.iter().all(|&b| b <= start_round));
        for v in vecs {
            self.feed_vector(v)?;
        }
        let target = start_round + vecs.len();
        let incomplete = |(q, &b): (&VecDeque<(L, u64)>, &usize)| b + q.len() < target;
        while self.records.iter().zip(base).any(incomplete) {
            let Some((key, kind)) = self.queue.pop() else {
                return Err(SimError::Deadlock {
                    at_time: self.time(),
                    missing_outputs: self
                        .pl
                        .output_gates()
                        .iter()
                        .zip(self.records.iter().zip(base))
                        .filter(|(_, pair)| incomplete(*pair))
                        .map(|((name, _), _)| name.clone())
                        .collect(),
                });
            };
            self.now = crate::queue::tick_of(key);
            self.dispatch(kind)?;
        }
        let mut words = Vec::with_capacity(vecs.len());
        let mut last = 0u64;
        for round in start_round..target {
            let mut word = Vec::with_capacity(self.records.len());
            for (q, &b) in self.records.iter().zip(base) {
                let (v, t) = q[round - b];
                word.push(v);
                last = last.max(t);
            }
            words.push(word);
        }
        Ok((words, last))
    }

    /// Outputs tied to constants have no token traffic; record their value
    /// for the round directly.
    fn record_constant_outputs(&mut self) {
        for (slot, (_, og)) in self.pl.output_gates().iter().enumerate() {
            let gate = &self.pl.gates()[og.index()];
            if gate.data_in().is_empty() {
                if let Some(v) = gate.const_pin(0) {
                    self.record_output(slot, L::splat(v));
                }
            }
        }
    }

    fn round_complete(&self) -> bool {
        self.records.iter().all(|q| !q.is_empty())
    }

    fn missing_outputs(&self) -> Vec<String> {
        self.pl
            .output_gates()
            .iter()
            .zip(&self.records)
            .filter(|(_, q)| q.is_empty())
            .map(|((name, _), _)| name.clone())
            .collect()
    }

    fn drain_pending_inputs(&mut self) -> Result<(), SimError> {
        while self.pending_input.iter().any(Option::is_some) {
            let Some((key, kind)) = self.queue.pop() else {
                return Err(SimError::Deadlock {
                    at_time: self.time(),
                    missing_outputs: vec!["<pending input never consumed>".into()],
                });
            };
            self.now = crate::queue::tick_of(key);
            self.dispatch(kind)?;
        }
        Ok(())
    }

    // ---- event machinery -------------------------------------------------

    fn post(&mut self, delay: u64, kind: EventKind<L>) {
        let key = crate::queue::pack_key(self.now + delay, self.seq);
        self.seq += 1;
        self.queue.push(key, kind);
    }

    fn dispatch(&mut self, kind: EventKind<L>) -> Result<(), SimError> {
        match kind {
            EventKind::Tokens {
                gate,
                value,
                data,
                acks,
            } => self.deliver_all(gate as usize, value, data, acks),
            EventKind::Fire { gate } => {
                self.events += 1;
                self.fire(gate as usize)
            }
            EventKind::Produce { gate, gen } => {
                self.events += 1;
                self.ee_produce(gate as usize, gen)
            }
            EventKind::Cleanup { gate, gen } => {
                self.events += 1;
                self.ee_cleanup(gate as usize, gen)
            }
        }
    }

    /// Delivers one firing's batched tokens (value-carrying and/or ack
    /// out-arcs of `g`). Each delivered token counts as one event.
    fn deliver_all(&mut self, g: usize, value: L, data: bool, acks: bool) -> Result<(), SimError> {
        if data {
            for k in 0..self.adj.out_value_arcs(g).len() {
                let arc = self.adj.out_value_arcs(g)[k];
                self.deliver(arc as usize, value)?;
            }
        }
        if acks {
            for k in 0..self.adj.out_ack_arcs(g).len() {
                let arc = self.adj.out_ack_arcs(g)[k];
                self.deliver(arc as usize, value)?;
            }
        }
        Ok(())
    }

    fn deliver(&mut self, arc: usize, value: L) -> Result<(), SimError> {
        self.events += 1;
        if self.tokens[arc] >= 1 {
            return Err(SimError::SafetyViolation {
                arc: PlArcId::from_index(arc),
                producer: PlGateId::from_index(self.adj.arc_src(arc) as usize),
            });
        }
        self.tokens[arc] = 1;
        self.values[arc] = value;
        let dst = self.adj.arc_dst(arc) as usize;
        match self.adj.arc_kind(arc) {
            PlArcKind::Data => {
                let pin = self.adj.arc_dst_pin(arc);
                self.pin_tokens[dst] |= 1u8 << pin;
                L::pv_set(&mut self.pin_vals[dst], pin, value);
            }
            PlArcKind::Ack => self.ack_missing[dst] -= 1,
            PlArcKind::Efire => {}
        }
        if let Some(trace) = &mut self.trace {
            if self.adj.arc_kind(arc) != PlArcKind::Ack {
                trace.push(crate::trace::TraceEvent {
                    time: ticks_to_ns(self.now),
                    arc,
                    value: value.lane(0),
                });
            }
        }
        self.try_schedule(dst);
        Ok(())
    }

    /// Checks a gate's firing conditions and posts Fire/Produce events.
    /// All checks are O(1) against the incrementally maintained masks.
    fn try_schedule(&mut self, g: usize) {
        match self.adj.gate_class(g) {
            GateClass::Constant => {}
            GateClass::Input => {
                if self.flags[g] & F_FIRE_SCHED == 0
                    && self.pending_input[g].is_some()
                    && self.ack_missing[g] == 0
                {
                    self.flags[g] |= F_FIRE_SCHED;
                    self.post(0, EventKind::Fire { gate: g as u32 });
                }
            }
            GateClass::Output => {
                // Constant-driven outputs have no token traffic; run_vector
                // records them directly.
                if self.adj.data_full_mask(g) != 0
                    && self.flags[g] & F_FIRE_SCHED == 0
                    && self.data_ready(g)
                {
                    self.flags[g] |= F_FIRE_SCHED;
                    self.post(self.ticks.c_element, EventKind::Fire { gate: g as u32 });
                }
            }
            GateClass::Logic => {
                let efire = self.adj.efire_arc(g);
                if efire != NO_ARC {
                    let efire = efire as usize;
                    let efire_ready = self.tokens[efire] == 1;
                    let acks_ready = self.ack_missing[g] == 0;
                    let gen = self.gen[g];
                    let flags = self.flags[g];
                    // Normal production: all data inputs present. The extra
                    // EE C-element costs `ee_overhead` on this path, but the
                    // trigger is NOT waited for (its token is collected at
                    // cleanup) — the paper's "slight degradation" only.
                    if flags & (F_PRODUCED | F_NORMAL_SCHED) == 0
                        && self.data_ready(g)
                        && acks_ready
                    {
                        self.flags[g] |= F_NORMAL_SCHED;
                        self.post(
                            self.ticks.ee_master,
                            EventKind::Produce {
                                gate: g as u32,
                                gen,
                            },
                        );
                    }
                    // Early production: trigger fired true (in EVERY lane —
                    // the shared event flow can only commit to the early
                    // path when all lanes' outputs are forced), fast pins
                    // here.
                    if self.flags[g] & (F_PRODUCED | F_EARLY_SCHED) == 0
                        && efire_ready
                        && self.values[efire].all()
                        && self.subset_ready(g)
                        && acks_ready
                    {
                        self.flags[g] |= F_EARLY_SCHED;
                        self.post(
                            self.ticks.ee_early,
                            EventKind::Produce {
                                gate: g as u32,
                                gen,
                            },
                        );
                    }
                    // Cleanup rendezvous: output gone, every token here.
                    if self.flags[g] & F_PRODUCED != 0
                        && self.flags[g] & F_FIRE_SCHED == 0
                        && self.data_ready(g)
                        && efire_ready
                    {
                        self.flags[g] |= F_FIRE_SCHED;
                        self.post(
                            self.ticks.c_element,
                            EventKind::Cleanup {
                                gate: g as u32,
                                gen,
                            },
                        );
                    }
                } else if self.flags[g] & F_FIRE_SCHED == 0
                    && self.data_ready(g)
                    && self.ack_missing[g] == 0
                {
                    self.flags[g] |= F_FIRE_SCHED;
                    self.post(self.ticks.gate, EventKind::Fire { gate: g as u32 });
                }
            }
        }
    }

    fn data_ready(&self, g: usize) -> bool {
        self.pin_tokens[g] == self.adj.data_full_mask(g)
    }

    fn subset_ready(&self, g: usize) -> bool {
        let m = self.adj.subset_mask(g);
        self.pin_tokens[g] & m == m
    }

    /// Evaluates the gate's function from its (complete) pins for every
    /// lane at once — for the scalar word this is the LUT shift-lookup of
    /// the pre-lane engine, verbatim.
    fn evaluate(&self, g: usize) -> L {
        debug_assert!(self.data_ready(g), "evaluate needs every pin token");
        L::eval(
            self.adj.eval_bits(g),
            &self.pin_vals[g],
            self.pin_tokens[g],
            self.adj.const_pin_mask(g),
            self.adj.const_value_bits(g),
        )
    }

    /// Consumes gate `g`'s data in-arcs (clearing its pin-token bits).
    fn consume_data(&mut self, g: usize) {
        for k in 0..self.adj.pin_arcs(g).len() {
            let a = self.adj.pin_arcs(g)[k];
            if a != NO_ARC {
                debug_assert_eq!(self.tokens[a as usize], 1, "consuming an unmarked arc");
                self.tokens[a as usize] = 0;
            }
        }
        self.pin_tokens[g] = 0;
    }

    /// Consumes gate `g`'s acknowledge in-arcs.
    fn consume_acks(&mut self, g: usize) {
        let mut consumed = 0;
        for k in 0..self.adj.ack_in_arcs(g).len() {
            let a = self.adj.ack_in_arcs(g)[k];
            debug_assert_eq!(self.tokens[a as usize], 1, "consuming an unmarked ack");
            self.tokens[a as usize] = 0;
            consumed += 1;
        }
        self.ack_missing[g] += consumed;
    }

    /// Sends tokens on out-arcs; `data_value` is placed on value-carrying
    /// (data + efire) arcs, acks carry pure timing tokens. One batched
    /// queue event covers the whole firing (all arcs share the wire delay).
    fn produce(&mut self, g: usize, data_value: L, include_data: bool, include_acks: bool) {
        self.post(
            self.ticks.wire,
            EventKind::Tokens {
                gate: g as u32,
                value: data_value,
                data: include_data,
                acks: include_acks,
            },
        );
    }

    fn fire(&mut self, g: usize) -> Result<(), SimError> {
        self.flags[g] &= !F_FIRE_SCHED;
        match self.adj.gate_class(g) {
            GateClass::Input => {
                self.consume_acks(g);
                let v = self.pending_input[g]
                    .take()
                    .expect("input armed before firing");
                self.produce(g, v, true, true);
            }
            GateClass::Output => {
                let arc = self.adj.pin_arc(g, 0);
                debug_assert_ne!(arc, NO_ARC, "token-driven outputs have a pin-0 arc");
                let v = self.values[arc as usize];
                self.consume_data(g);
                let slot = self.adj.output_slot(g);
                debug_assert_ne!(slot, NO_ARC, "output gate is registered");
                self.record_output(slot as usize, v);
                self.produce(g, v, true, true);
            }
            GateClass::Logic => {
                debug_assert_eq!(
                    self.adj.efire_arc(g),
                    NO_ARC,
                    "EE masters use Produce/Cleanup events, not Fire"
                );
                let v = self.evaluate(g);
                self.consume_data(g);
                self.consume_acks(g);
                self.produce(g, v, true, true);
            }
            GateClass::Constant => unreachable!("constants never fire"),
        }
        // Consuming in-arcs can re-enable this gate only via future
        // deliveries, but producers of freshly-acked arcs may now be ready.
        // (Those are woken by the Deliver events posted above.)
        self.try_schedule(g);
        Ok(())
    }

    /// EE-master output production — normal or early path, whichever event
    /// lands first this round wins; the loser aborts on the `produced` flag.
    fn ee_produce(&mut self, g: usize, gen: u64) -> Result<(), SimError> {
        if gen != self.gen[g] || self.flags[g] & F_PRODUCED != 0 {
            return Ok(()); // stale event or the other path already produced
        }
        debug_assert_eq!(self.ack_missing[g], 0, "acks were ready at scheduling");
        let v = if self.data_ready(g) {
            // Normal path (or early with everything present anyway).
            self.evaluate(g)
        } else {
            // Early path: the trigger promised the known pins force the
            // output (in every lane); verify that promise by enumerating
            // the completions of the missing pins.
            let Some(v) = L::forced(
                self.adj.eval_bits(g),
                &self.pin_vals[g],
                self.pin_tokens[g],
                self.adj.data_full_mask(g),
                self.adj.const_pin_mask(g),
                self.adj.const_value_bits(g),
            ) else {
                return Err(SimError::UnsoundTrigger {
                    master: PlGateId::from_index(g),
                });
            };
            v
        };
        self.consume_acks(g);
        self.flags[g] |= F_PRODUCED;
        self.produce(g, v, true, false);
        // The cleanup rendezvous may already be satisfiable.
        self.try_schedule(g);
        Ok(())
    }

    /// EE-master cleanup: all data tokens and the efire token are consumed,
    /// source acknowledges go out, and the round generation advances.
    fn ee_cleanup(&mut self, g: usize, gen: u64) -> Result<(), SimError> {
        if gen != self.gen[g] {
            return Ok(());
        }
        debug_assert!(
            self.flags[g] & F_PRODUCED != 0,
            "cleanup only scheduled after production"
        );
        self.consume_data(g);
        let efire = self.adj.efire_arc(g) as usize;
        debug_assert_eq!(self.tokens[efire], 1, "cleanup consumes the efire token");
        self.tokens[efire] = 0;
        self.flags[g] = 0;
        self.gen[g] += 1;
        self.produce(g, L::splat(false), false, true);
        self.try_schedule(g);
        Ok(())
    }
}

impl<'a> BatchSimulator<'a> {
    /// Runs up to 64 independent vector streams in lockstep through this
    /// one engine: stream `l` becomes lane `l`, round `r` of the shared
    /// event flow carries round `r` of every stream, and each stream's
    /// outputs come back as plain `bool` words, truncated to its own
    /// length (streams may be ragged; exhausted lanes are padded with
    /// all-false vectors, which never perturbs other lanes' values).
    ///
    /// Each returned [`StreamOutcome`]'s output words are bit-identical
    /// to a scalar [`PlSimulator::run_stream`] over the same stream. The
    /// timing fields describe the *shared* block schedule (one makespan
    /// for the whole block; per-stream throughput is the stream's own
    /// length over that makespan), which can differ from a scalar run's
    /// timing — see the [module docs](self#the-lane-model).
    ///
    /// # Panics
    ///
    /// Panics if `streams` is empty or holds more than 64 streams.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PlSimulator::run_stream`];
    /// [`SimError::InputArityMismatch`] if any vector of any stream has
    /// the wrong arity.
    pub fn run_lanes(&mut self, streams: &[&[Vec<bool>]]) -> Result<Vec<StreamOutcome>, SimError> {
        assert!(
            !streams.is_empty() && streams.len() <= 64,
            "a batch runs 1..=64 streams, got {}",
            streams.len()
        );
        let n_in = self.pl.input_gates().len();
        let rounds = streams.iter().map(|s| s.len()).max().unwrap_or(0);
        let mut packed = Vec::with_capacity(rounds);
        for r in 0..rounds {
            let mut word = vec![0u64; n_in];
            for (l, s) in streams.iter().enumerate() {
                if r >= s.len() {
                    continue; // exhausted lane: all-false padding
                }
                if s[r].len() != n_in {
                    return Err(SimError::InputArityMismatch {
                        got: s[r].len(),
                        expected: n_in,
                    });
                }
                for (p, &bit) in s[r].iter().enumerate() {
                    word[p] |= u64::from(bit) << l;
                }
            }
            packed.push(word);
        }
        let wide = self.run_stream(&packed)?;
        Ok(streams
            .iter()
            .enumerate()
            .map(|(l, s)| {
                let outputs = wide.outputs[..s.len()]
                    .iter()
                    .map(|word| word.iter().map(|&w| w.lane(l)).collect())
                    .collect();
                StreamOutcome {
                    outputs,
                    makespan: wide.makespan,
                    throughput: if wide.makespan > 0.0 {
                        s.len() as f64 / wide.makespan
                    } else {
                        f64::INFINITY
                    },
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ReferenceSimulator;
    use pl_boolfn::TruthTable;
    use pl_core::ee::EeOptions;
    use pl_netlist::Netlist;

    fn and_gate() -> PlNetlist {
        let mut n = Netlist::new("and");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_and2(a, b).unwrap();
        n.set_output("y", g);
        PlNetlist::from_sync(&n).unwrap()
    }

    #[test]
    fn and_gate_values_and_timing() {
        let pl = and_gate();
        let mut sim = PlSimulator::new(&pl, DelayModel::default()).unwrap();
        let r = sim.run_vector(&[true, true]).unwrap();
        assert_eq!(r.outputs, vec![true]);
        // wire + gate + wire + output C-element = 0.3 + 2.4 + 0.3 + 0.6
        assert!((r.latency - 3.6).abs() < 1e-9, "latency {}", r.latency);
        let r = sim.run_vector(&[true, false]).unwrap();
        assert_eq!(r.outputs, vec![false]);
        assert_eq!(sim.rounds(), 2);
        assert!(sim.events_processed() > 0);
    }

    #[test]
    fn counter_free_runs() {
        let mut n = Netlist::new("cnt");
        let q0 = n.add_dff(false);
        let q1 = n.add_dff(false);
        let n0 = n.add_not(q0).unwrap();
        let t1 = n.add_xor2(q1, q0).unwrap();
        n.set_dff_input(q0, n0).unwrap();
        n.set_dff_input(q1, t1).unwrap();
        n.set_output("q0", q0);
        n.set_output("q1", q1);
        let pl = PlNetlist::from_sync(&n).unwrap();
        let mut sim = PlSimulator::new(&pl, DelayModel::default()).unwrap();
        let mut seq = Vec::new();
        for _ in 0..4 {
            let r = sim.run_vector(&[]).unwrap();
            seq.push((u8::from(r.outputs[1]) << 1) | u8::from(r.outputs[0]));
        }
        assert_eq!(seq, vec![0, 1, 2, 3]);
    }

    #[test]
    fn zero_delay_model_still_orders_correctly() {
        let pl = and_gate();
        let mut sim = PlSimulator::new(&pl, DelayModel::zero()).unwrap();
        let r = sim.run_vector(&[true, true]).unwrap();
        assert_eq!(r.outputs, vec![true]);
        assert_eq!(r.latency, 0.0);
    }

    /// Ripple-carry adder cells: EE should cut latency when trigger hits.
    fn ripple(bits: usize) -> Netlist {
        let mut n = Netlist::new("rca");
        let a: Vec<_> = (0..bits).map(|i| n.add_input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..bits).map(|i| n.add_input(format!("b{i}"))).collect();
        let mut carry = n.add_const(false);
        for i in 0..bits {
            let sum_t = TruthTable::from_fn(3, |m| m.count_ones() % 2 == 1);
            let cry_t = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
            let s = n.add_lut(sum_t, vec![a[i], b[i], carry]).unwrap();
            let c = n.add_lut(cry_t, vec![a[i], b[i], carry]).unwrap();
            n.set_output(format!("s{i}"), s);
            carry = c;
        }
        n.set_output("cout", carry);
        n
    }

    fn adder_vectors(bits: usize) -> Vec<Vec<bool>> {
        // kill/generate-rich patterns so triggers fire often
        let mut v = Vec::new();
        let mut x: u64 = 99;
        for _ in 0..24 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = x & ((1 << bits) - 1);
            let b = (x >> 17) & ((1 << bits) - 1);
            let mut ins = Vec::new();
            for i in 0..bits {
                ins.push((a >> i) & 1 == 1);
            }
            for i in 0..bits {
                ins.push((b >> i) & 1 == 1);
            }
            v.push(ins);
        }
        v
    }

    #[test]
    fn adder_ee_is_functionally_identical_and_faster_on_average() {
        let bits = 6;
        let sync = ripple(bits);
        let plain = PlNetlist::from_sync(&sync).unwrap();
        let ee = PlNetlist::from_sync(&sync)
            .unwrap()
            .with_early_evaluation(&EeOptions::default())
            .into_netlist();
        let mut s_plain = PlSimulator::new(&plain, DelayModel::default()).unwrap();
        let mut s_ee = PlSimulator::new(&ee, DelayModel::default()).unwrap();
        let (mut sum_p, mut sum_e) = (0.0, 0.0);
        for ins in adder_vectors(bits) {
            let rp = s_plain.run_vector(&ins).unwrap();
            let re = s_ee.run_vector(&ins).unwrap();
            assert_eq!(rp.outputs, re.outputs, "EE changed functionality");
            sum_p += rp.latency;
            sum_e += re.latency;
        }
        assert!(
            sum_e < sum_p,
            "EE should speed up the ripple adder: {sum_e} vs {sum_p}"
        );
    }

    #[test]
    fn streaming_matches_serialized_outputs_and_is_no_slower() {
        let sync = ripple(5);
        let pl = PlNetlist::from_sync(&sync).unwrap();
        let vectors = adder_vectors(5);

        // Serialized reference.
        let mut serial = PlSimulator::new(&pl, DelayModel::default()).unwrap();
        let mut serial_outputs = Vec::new();
        for v in &vectors {
            serial_outputs.push(serial.run_vector(v).unwrap().outputs);
        }
        let serial_makespan = serial.time();

        // Pipelined stream.
        let mut stream = PlSimulator::new(&pl, DelayModel::default()).unwrap();
        let out = stream.run_stream(&vectors).unwrap();
        assert_eq!(
            out.outputs, serial_outputs,
            "pipelining must not reorder results"
        );
        assert!(
            out.makespan <= serial_makespan + 1e-9,
            "pipelined makespan {} must not exceed serialized {serial_makespan}",
            out.makespan
        );
        assert!(out.throughput > 0.0);
    }

    #[test]
    fn streaming_with_ee_keeps_results() {
        let sync = ripple(4);
        let plain = PlNetlist::from_sync(&sync).unwrap();
        let ee = PlNetlist::from_sync(&sync)
            .unwrap()
            .with_early_evaluation(&EeOptions::default())
            .into_netlist();
        let vectors = adder_vectors(4);
        let mut a = PlSimulator::new(&plain, DelayModel::default()).unwrap();
        let mut b = PlSimulator::new(&ee, DelayModel::default()).unwrap();
        let ra = a.run_stream(&vectors).unwrap();
        let rb = b.run_stream(&vectors).unwrap();
        assert_eq!(
            ra.outputs, rb.outputs,
            "EE must not change streamed results"
        );
    }

    #[test]
    fn wrong_arity_reported() {
        let pl = and_gate();
        let mut sim = PlSimulator::new(&pl, DelayModel::default()).unwrap();
        assert!(matches!(
            sim.run_vector(&[true]),
            Err(SimError::InputArityMismatch {
                got: 1,
                expected: 2
            })
        ));
    }

    #[test]
    fn deterministic_replay() {
        let sync = ripple(4);
        let pl = PlNetlist::from_sync(&sync).unwrap();
        let run = || {
            let mut sim = PlSimulator::new(&pl, DelayModel::default()).unwrap();
            adder_vectors(4)
                .iter()
                .map(|v| {
                    let r = sim.run_vector(v).unwrap();
                    (r.outputs.clone(), r.latency.to_bits())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn constant_output_circuit() {
        let mut n = Netlist::new("konst");
        let a = n.add_input("a");
        let k = n.add_const(true);
        let g = n.add_and2(a, k).unwrap();
        n.set_output("y", g);
        let pl = PlNetlist::from_sync(&n).unwrap();
        let mut sim = PlSimulator::new(&pl, DelayModel::default()).unwrap();
        assert_eq!(sim.run_vector(&[false]).unwrap().outputs, vec![false]);
        assert_eq!(sim.run_vector(&[true]).unwrap().outputs, vec![true]);
    }

    #[test]
    fn run_vector_into_reuses_buffer_and_matches_run_vector() {
        let pl = and_gate();
        let mut sim_a = PlSimulator::new(&pl, DelayModel::default()).unwrap();
        let mut sim_b = PlSimulator::new(&pl, DelayModel::default()).unwrap();
        let mut scratch = Vec::new();
        for ins in [[true, true], [true, false], [false, true], [true, true]] {
            let r = sim_a.run_vector(&ins).unwrap();
            let (latency, completed_at) = sim_b.run_vector_into(&ins, &mut scratch).unwrap();
            assert_eq!(scratch, r.outputs);
            assert_eq!(latency.to_bits(), r.latency.to_bits());
            assert_eq!(completed_at.to_bits(), r.completed_at.to_bits());
        }
    }

    /// Differential: new engine vs the retained pre-refactor baseline, with
    /// and without EE, per-vector and streamed.
    #[test]
    fn matches_reference_engine_on_adder() {
        let sync = ripple(5);
        let vectors = adder_vectors(5);
        for netlist in [
            PlNetlist::from_sync(&sync).unwrap(),
            PlNetlist::from_sync(&sync)
                .unwrap()
                .with_early_evaluation(&EeOptions::default())
                .into_netlist(),
        ] {
            let mut new_sim = PlSimulator::new(&netlist, DelayModel::default()).unwrap();
            let mut ref_sim = ReferenceSimulator::new(&netlist, DelayModel::default()).unwrap();
            for v in &vectors {
                let rn = new_sim.run_vector(v).unwrap();
                let rr = ref_sim.run_vector(v).unwrap();
                assert_eq!(rn.outputs, rr.outputs, "outputs diverged");
                assert!(
                    (rn.latency - rr.latency).abs() < 1e-6,
                    "latency diverged: {} vs {}",
                    rn.latency,
                    rr.latency
                );
            }
            let mut new_sim = PlSimulator::new(&netlist, DelayModel::default()).unwrap();
            let mut ref_sim = ReferenceSimulator::new(&netlist, DelayModel::default()).unwrap();
            let sn = new_sim.run_stream(&vectors).unwrap();
            let sr = ref_sim.run_stream(&vectors).unwrap();
            assert_eq!(sn.outputs, sr.outputs, "streamed outputs diverged");
            assert!((sn.makespan - sr.makespan).abs() < 1e-6);
        }
    }

    /// The 64-lane batch engine vs sequential scalar runs on the ripple
    /// adder, plain and EE, with ragged stream lengths.
    #[test]
    fn batch_lanes_match_sequential_scalar_on_adder() {
        let bits = 5;
        let sync = ripple(bits);
        for netlist in [
            PlNetlist::from_sync(&sync).unwrap(),
            PlNetlist::from_sync(&sync)
                .unwrap()
                .with_early_evaluation(&EeOptions::default())
                .into_netlist(),
        ] {
            let all = adder_vectors(bits);
            // Ragged: stream l gets a different prefix length.
            let streams: Vec<&[Vec<bool>]> =
                (0..7).map(|l| &all[..all.len() - 2 * (l % 4)]).collect();
            let mut batch = BatchSimulator::new(&netlist, DelayModel::default()).unwrap();
            let got = batch.run_lanes(&streams).unwrap();
            assert_eq!(got.len(), streams.len());
            for (s, out) in streams.iter().zip(&got) {
                let mut scalar = PlSimulator::new(&netlist, DelayModel::default()).unwrap();
                let want = scalar.run_stream(s).unwrap();
                assert_eq!(out.outputs, want.outputs, "a lane diverged from scalar");
            }
        }
    }

    #[test]
    fn batch_counter_shares_the_schedule() {
        // A pure-DFF free-runner has no inputs: every lane must see the
        // identical count sequence.
        let mut n = Netlist::new("cnt");
        let q0 = n.add_dff(false);
        let n0 = n.add_not(q0).unwrap();
        n.set_dff_input(q0, n0).unwrap();
        n.set_output("q0", q0);
        let pl = PlNetlist::from_sync(&n).unwrap();
        let mut sim = BatchSimulator::new(&pl, DelayModel::default()).unwrap();
        let stream: Vec<Vec<bool>> = vec![vec![]; 4];
        let got = sim.run_lanes(&[&stream, &stream, &stream]).unwrap();
        for out in &got {
            let flat: Vec<bool> = out.outputs.iter().map(|w| w[0]).collect();
            assert_eq!(flat, vec![false, true, false, true]);
        }
    }
}
