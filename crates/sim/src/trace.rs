//! VCD waveform export from simulation traces.
//!
//! With [`crate::PlSimulator::enable_tracing`], every data/efire token
//! delivery is recorded and can be rendered as a Value Change Dump file
//! for GTKWave-style inspection of the self-timed token flow — including
//! watching an early-evaluation master's output settle *before* its slow
//! inputs arrive.

use pl_core::{PlArcKind, PlNetlist};

/// One recorded token delivery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Simulation time (ns).
    pub time: f64,
    /// Arc index the token landed on.
    pub arc: usize,
    /// The token's data value.
    pub value: bool,
}

/// Renders recorded events as a VCD document.
///
/// Each traced arc becomes a 1-bit wire named `src→dst` (with pin and kind
/// annotations); times are emitted in picoseconds.
#[must_use]
pub fn to_vcd(pl: &PlNetlist, events: &[TraceEvent], design: &str) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    writeln!(s, "$date reproduction run $end").expect("write");
    writeln!(s, "$version phased-logic-ee pl-sim $end").expect("write");
    writeln!(s, "$timescale 1ps $end").expect("write");
    writeln!(s, "$scope module {design} $end").expect("write");

    // Stable identifier codes for every arc that appears in the trace.
    let mut traced: Vec<usize> = events.iter().map(|e| e.arc).collect();
    traced.sort_unstable();
    traced.dedup();
    let code = |k: usize| -> String {
        // VCD id codes: printable chars 33..=126.
        let mut n = k;
        let mut out = String::new();
        loop {
            out.push((33 + (n % 94)) as u8 as char);
            n /= 94;
            if n == 0 {
                break;
            }
        }
        out
    };
    for (k, &a) in traced.iter().enumerate() {
        let arc = &pl.arcs()[a];
        let kind = match arc.kind() {
            PlArcKind::Data => "data",
            PlArcKind::Ack => "ack",
            PlArcKind::Efire => "efire",
        };
        let pin = arc.dst_pin().map_or(String::new(), |p| format!("_p{p}"));
        writeln!(
            s,
            "$var wire 1 {} {}_{}_to_{}{} $end",
            code(k),
            kind,
            arc.src(),
            arc.dst(),
            pin
        )
        .expect("write");
    }
    writeln!(s, "$upscope $end").expect("write");
    writeln!(s, "$enddefinitions $end").expect("write");
    writeln!(s, "$dumpvars").expect("write");

    let idx_of = |arc: usize| traced.binary_search(&arc).expect("arc was collected");
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by(|a, b| a.time.total_cmp(&b.time));
    let mut last_time = None;
    for ev in sorted {
        let t_ps = (ev.time * 1000.0).round() as u64;
        if last_time != Some(t_ps) {
            writeln!(s, "#{t_ps}").expect("write");
            last_time = Some(t_ps);
        }
        writeln!(s, "{}{}", u8::from(ev.value), code(idx_of(ev.arc))).expect("write");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DelayModel, PlSimulator};
    use pl_netlist::Netlist;

    #[test]
    fn vcd_contains_definitions_and_changes() {
        let mut n = Netlist::new("trace_demo");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_xor2(a, b).unwrap();
        n.set_output("y", g);
        let pl = pl_core::PlNetlist::from_sync(&n).unwrap();
        let mut sim = PlSimulator::new(&pl, DelayModel::default()).unwrap();
        sim.enable_tracing();
        sim.run_vector(&[true, false]).unwrap();
        sim.run_vector(&[true, true]).unwrap();
        let vcd = to_vcd(&pl, sim.trace(), "trace_demo");
        assert!(vcd.contains("$timescale 1ps $end"));
        assert!(vcd.contains("$var wire 1"));
        assert!(vcd.contains("$enddefinitions $end"));
        // at least one timestamped change per vector
        assert!(vcd.matches('#').count() >= 2, "{vcd}");
        // tokens for both values appear
        assert!(vcd.lines().any(|l| l.starts_with('1')));
        assert!(vcd.lines().any(|l| l.starts_with('0')));
    }

    #[test]
    fn tracing_off_records_nothing() {
        let mut n = Netlist::new("quiet");
        let a = n.add_input("a");
        let g = n.add_not(a).unwrap();
        n.set_output("y", g);
        let pl = pl_core::PlNetlist::from_sync(&n).unwrap();
        let mut sim = PlSimulator::new(&pl, DelayModel::default()).unwrap();
        sim.run_vector(&[true]).unwrap();
        assert!(sim.trace().is_empty());
    }

    #[test]
    fn id_codes_are_unique_for_many_arcs() {
        let events: Vec<TraceEvent> = (0..200)
            .map(|i| TraceEvent {
                time: i as f64,
                arc: i % 7,
                value: i % 2 == 0,
            })
            .collect();
        let mut n = Netlist::new("codes");
        let a = n.add_input("a");
        let mut cur = a;
        for _ in 0..7 {
            cur = n.add_not(cur).unwrap();
        }
        n.set_output("y", cur);
        let pl = pl_core::PlNetlist::from_sync(&n).unwrap();
        let vcd = to_vcd(&pl, &events, "codes");
        let vars = vcd.lines().filter(|l| l.starts_with("$var")).count();
        assert_eq!(vars, 7);
    }
}
