//! Versioned, checksummed byte serialization for [`SimCheckpoint`] —
//! the on-disk/wire form behind crash-resumable sweeps
//! ([`crate::parallel::sweep_resumable`]).
//!
//! Hand-rolled (no serde, per the workspace's no-registry-dependency
//! constraint) and **paranoid by construction**: decoding untrusted bytes
//! returns a typed [`SimError`] for every corruption class — truncation,
//! bad magic, version skew, digest mismatch, checksum failure,
//! out-of-range indices — and never panics or silently misdecodes.
//!
//! # Format layout (version 1)
//!
//! All integers are little-endian. The file is:
//!
//! | bytes | field |
//! |---|---|
//! | 8 | magic `b"PLSIMCK\0"` |
//! | 4 | format version (`u32`, currently 1) |
//! | … | sections (below), in fixed order |
//! | 4 | trailer CRC32 over **every preceding byte** |
//!
//! Each section is framed as `tag: u8`, `len: u64` (payload bytes),
//! payload, `crc32(payload): u32`. Sections, in order:
//!
//! | tag | section | payload |
//! |---|---|---|
//! | 1 | `HEADER` | netlist fingerprint `u64`, delay-model digest `u64`, gate/arc/output counts `u64`×3 |
//! | 2 | `STATE` | `now`, `seq`, `events`, `rounds` (`u64`×4) |
//! | 3 | `QUEUE` | event count `u64`, then per event: key `u128`, kind tag `u8` (0 = Tokens, 1 = Fire, 2 = Produce, 3 = Cleanup), kind fields |
//! | 4 | `ARCS` | per-arc token bytes (0/1) ×arcs, per-arc value bytes (0/1) ×arcs |
//! | 5 | `GATES` | `pin_tokens` ×gates, `pin_vals` ×gates, `ack_missing u32` ×gates, `pending_input` (0 = none, 1 = false, 2 = true) ×gates, `flags` (≤ 0x0F) ×gates, `gen u64` ×gates |
//! | 6 | `RECORDS` | queue count `u64` (must equal outputs), then per queue: entry count `u64`, entries (`value u8` 0/1, `tick u64`) |
//!
//! The trailer CRC32 covers the whole file, so **any** single byte flip
//! (a burst error of ≤ 32 bits) is guaranteed to be rejected; the
//! per-section CRCs localize the diagnosis. Semantic validation happens
//! after the checksums: the header digests bind the bytes to one specific
//! netlist (arc-topology fingerprint) and delay model, every gate index
//! is range-checked, queue keys must be strictly ascending with in-range
//! sequence numbers, and boolean/flag bytes must be in-domain.
//!
//! # Lane widths (version 2)
//!
//! The checkpoint is generic over the simulator's [`LaneWord`], and the
//! wire version IS the lane width's name: scalar (`bool`) checkpoints
//! encode exactly the version-1 layout above, byte for byte, so every
//! pre-batch checkpoint still decodes unchanged. 64-lane (`u64`)
//! checkpoints encode version 2 ([`VERSION_BATCH`]), which differs only
//! where per-lane values live:
//!
//! * `HEADER` gains a trailing `lanes: u64` field (64);
//! * arc values, queue `Tokens` values, and record values are 8-byte
//!   little-endian lane words instead of 0/1 bytes;
//! * `pin_vals` is 64 bytes per gate (8 little-endian lane words, one
//!   per pin) instead of one bitset byte;
//! * `pending_input` is a tag byte (0 = none, 1 = present) followed by a
//!   lane word when present, instead of the packed 0/1/2 byte.
//!
//! A decode at the wrong width — a v1 file into a 64-lane simulator or a
//! v2 file into a scalar one — is rejected with
//! [`SimError::CheckpointLaneMismatch`] (the version field names the
//! width before any structure is parsed).
//!
//! # Version-evolution rules
//!
//! * The magic never changes; the version integer is bumped for **any**
//!   layout change (new/removed/reordered sections or fields, changed
//!   widths or tag values). There are no minor versions and no in-place
//!   extension points — checkpoints are short-lived operational state,
//!   not archives, so decoders support exactly one version per lane
//!   width and reject everything else with
//!   [`SimError::CheckpointVersionSkew`].
//! * A reader that wants to migrate old checkpoints does so by matching
//!   on the version **before** the section walk and dispatching to a
//!   frozen copy of the old decoder; the current decoder never grows
//!   conditional paths. (The scalar/batch split is not such a migration:
//!   one generic walk reads both, with the lane width fixed at the
//!   decoder's type, not by the input bytes.)
//! * Section tags are never reused for different content across versions,
//!   so a misversioned decode attempt fails structurally even if the
//!   version field itself was the corrupted byte (the trailer CRC catches
//!   that case first anyway).

use std::collections::VecDeque;

use pl_core::PlNetlist;

use crate::checkpoint::{netlist_fingerprint, Fnv64, SimCheckpoint};
use crate::delay::DelayModel;
use crate::engine::{Event, EventKind};
use crate::error::SimError;
use crate::lane::LaneWord;

/// First eight bytes of every serialized checkpoint.
pub const MAGIC: [u8; 8] = *b"PLSIMCK\0";

/// The wire-format version for scalar (1-lane) checkpoints — the original
/// layout, unchanged.
pub const VERSION: u32 = 1;

/// The wire-format version for 64-lane batch checkpoints (see the
/// [module docs](self#lane-widths-version-2)).
pub const VERSION_BATCH: u32 = 2;

// Section tags (never reused across versions).
const SEC_HEADER: (u8, &str) = (1, "HEADER");
const SEC_STATE: (u8, &str) = (2, "STATE");
const SEC_QUEUE: (u8, &str) = (3, "QUEUE");
const SEC_ARCS: (u8, &str) = (4, "ARCS");
const SEC_GATES: (u8, &str) = (5, "GATES");
const SEC_RECORDS: (u8, &str) = (6, "RECORDS");

/// CRC32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the checksum
/// of every section and of the whole file. Detects all burst errors of
/// ≤ 32 bits, hence every single-byte corruption.
#[must_use]
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut k = 0;
            while k < 8 {
                crc = if crc & 1 == 1 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                k += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    };
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// FNV-1a digest of a [`DelayModel`] (the bit patterns of its five
/// components) — binds a checkpoint to the exact delay model, since the
/// quantized tick values baked into every queued event depend on it.
#[must_use]
pub(crate) fn delay_digest(delays: &DelayModel) -> u64 {
    let mut h = Fnv64::new();
    for x in [
        delays.c_element,
        delays.lut,
        delays.latch,
        delays.wire,
        delays.ee_overhead,
    ] {
        h.mix(x.to_bits());
    }
    h.finish()
}

/// A bounds-checked cursor over untrusted bytes: every read states what
/// it was reading so truncation errors are self-describing.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], SimError> {
        if n > self.remaining() {
            return Err(SimError::CheckpointTruncated {
                context,
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self, context: &'static str) -> Result<u8, SimError> {
        Ok(self.take(1, context)?[0])
    }

    pub(crate) fn u32(&mut self, context: &'static str) -> Result<u32, SimError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().expect("4 bytes"),
        ))
    }

    pub(crate) fn u64(&mut self, context: &'static str) -> Result<u64, SimError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().expect("8 bytes"),
        ))
    }

    pub(crate) fn u128(&mut self, context: &'static str) -> Result<u128, SimError> {
        Ok(u128::from_le_bytes(
            self.take(16, context)?.try_into().expect("16 bytes"),
        ))
    }

    /// A length/count field about to drive reads or allocation: bounds it
    /// by the bytes actually remaining (assuming `min_item_bytes` per
    /// item) so a corrupted count can neither over-allocate nor walk past
    /// the buffer.
    pub(crate) fn count(
        &mut self,
        min_item_bytes: usize,
        field: &'static str,
    ) -> Result<usize, SimError> {
        let raw = self.u64(field)?;
        let limit = (self.remaining() / min_item_bytes.max(1)) as u64;
        if raw > limit {
            return Err(SimError::CheckpointOutOfRange {
                field,
                value: raw,
                limit,
            });
        }
        // `raw <= limit <= remaining()` so this cannot fail on any
        // target, but keep the conversion checked rather than a bare
        // `as` cast: on a 32-bit usize a future bound change must fail
        // typed, never truncate.
        usize::try_from(raw).map_err(|_| SimError::CheckpointOutOfRange {
            field,
            value: raw,
            limit,
        })
    }

    pub(crate) fn expect_end(&self, field: &'static str) -> Result<(), SimError> {
        if self.remaining() != 0 {
            return Err(SimError::CheckpointOutOfRange {
                field,
                value: self.remaining() as u64,
                limit: 0,
            });
        }
        Ok(())
    }
}

/// Frames `payload` as a section: tag, length, payload, payload CRC32.
pub(crate) fn push_section(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// Reads one section frame, checks its tag and CRC, returns the payload.
pub(crate) fn read_section<'a>(
    r: &mut Reader<'a>,
    (tag, name): (u8, &'static str),
) -> Result<&'a [u8], SimError> {
    let found = r.u8(name)?;
    if found != tag {
        return Err(SimError::CheckpointOutOfRange {
            field: "section tag",
            value: u64::from(found),
            limit: u64::from(tag),
        });
    }
    // The length is bounded by the remaining bytes minus the 4-byte CRC
    // *in u64 space*: narrowing to usize first would truncate lengths
    // like `1 << 32` to 0 on 32-bit targets and sail past this check.
    let len = r.u64(name)?;
    let avail = r.remaining().saturating_sub(4) as u64;
    if len > avail {
        return Err(SimError::CheckpointTruncated {
            context: name,
            needed: usize::try_from(len).map_or(usize::MAX, |l| l.saturating_add(4)),
            available: r.remaining(),
        });
    }
    // Bounded by `remaining()` (a usize), so the narrowing is exact.
    let len = len as usize;
    let payload = r.take(len, name)?;
    let stored = r.u32(name)?;
    let computed = crc32(payload);
    if stored != computed {
        return Err(SimError::CheckpointChecksum {
            section: name,
            stored,
            computed,
        });
    }
    Ok(payload)
}

fn push_bool(out: &mut Vec<u8>, b: bool) {
    out.push(u8::from(b));
}

fn read_bool(r: &mut Reader<'_>, field: &'static str) -> Result<bool, SimError> {
    match r.u8(field)? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(SimError::CheckpointOutOfRange {
            field,
            value: u64::from(other),
            limit: 1,
        }),
    }
}

fn check_gate(gate: u32, gates: usize, field: &'static str) -> Result<(), SimError> {
    if (gate as usize) < gates {
        Ok(())
    } else {
        Err(SimError::CheckpointOutOfRange {
            field,
            value: u64::from(gate),
            limit: gates as u64,
        })
    }
}

/// Reads one lane word at the checkpoint's width. For the scalar word
/// this is exactly the old 0/1-byte boolean read (with the same
/// out-of-range error on other bytes); wider words cannot be out of
/// domain.
fn read_word<L: LaneWord>(r: &mut Reader<'_>, field: &'static str) -> Result<L, SimError> {
    let bytes = r.take(L::WIRE_BYTES, field)?;
    L::from_wire(bytes).ok_or(SimError::CheckpointOutOfRange {
        field,
        value: u64::from(bytes[0]),
        limit: 1,
    })
}

impl<L: LaneWord> SimCheckpoint<L> {
    /// The wire version this lane width encodes and expects: the version
    /// field names the width, so a cross-width decode fails before any
    /// structure is parsed.
    fn wire_version() -> u32 {
        if L::LANES == 1 {
            VERSION
        } else {
            VERSION_BATCH
        }
    }
    /// Serializes this checkpoint to the versioned, CRC-protected wire
    /// format described in the [module docs](self). `delays` must be the
    /// delay model the snapshotted simulator ran with — its digest is
    /// embedded so [`SimCheckpoint::from_bytes`] can refuse to resume
    /// under a different model (the quantized ticks inside the event
    /// queue would silently disagree otherwise).
    #[must_use]
    pub fn to_bytes(&self, delays: &DelayModel) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            64 + self.queue.len() * (26 + L::WIRE_BYTES)
                + self.arcs * (1 + L::WIRE_BYTES)
                + self.gates * (15 + L::PV_WIRE_BYTES + L::WIRE_BYTES)
                + self.outputs * 16,
        );
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&Self::wire_version().to_le_bytes());

        let mut p = Vec::with_capacity(48);
        p.extend_from_slice(&self.fingerprint.to_le_bytes());
        p.extend_from_slice(&delay_digest(delays).to_le_bytes());
        p.extend_from_slice(&(self.gates as u64).to_le_bytes());
        p.extend_from_slice(&(self.arcs as u64).to_le_bytes());
        p.extend_from_slice(&(self.outputs as u64).to_le_bytes());
        if L::LANES != 1 {
            p.extend_from_slice(&(L::LANES as u64).to_le_bytes());
        }
        push_section(&mut out, SEC_HEADER.0, &p);

        p.clear();
        for x in [self.now, self.seq, self.events, self.rounds] {
            p.extend_from_slice(&x.to_le_bytes());
        }
        push_section(&mut out, SEC_STATE.0, &p);

        p.clear();
        p.extend_from_slice(&(self.queue.len() as u64).to_le_bytes());
        for e in &self.queue {
            p.extend_from_slice(&e.key.to_le_bytes());
            match e.kind {
                EventKind::Tokens {
                    gate,
                    value,
                    data,
                    acks,
                } => {
                    p.push(0);
                    p.extend_from_slice(&gate.to_le_bytes());
                    value.to_wire(&mut p);
                    push_bool(&mut p, data);
                    push_bool(&mut p, acks);
                }
                EventKind::Fire { gate } => {
                    p.push(1);
                    p.extend_from_slice(&gate.to_le_bytes());
                }
                EventKind::Produce { gate, gen } => {
                    p.push(2);
                    p.extend_from_slice(&gate.to_le_bytes());
                    p.extend_from_slice(&gen.to_le_bytes());
                }
                EventKind::Cleanup { gate, gen } => {
                    p.push(3);
                    p.extend_from_slice(&gate.to_le_bytes());
                    p.extend_from_slice(&gen.to_le_bytes());
                }
            }
        }
        push_section(&mut out, SEC_QUEUE.0, &p);

        p.clear();
        p.extend_from_slice(&self.tokens);
        for &v in &self.values {
            v.to_wire(&mut p);
        }
        push_section(&mut out, SEC_ARCS.0, &p);

        p.clear();
        p.extend_from_slice(&self.pin_tokens);
        for pv in &self.pin_vals {
            L::pv_to_wire(pv, &mut p);
        }
        for &a in &self.ack_missing {
            p.extend_from_slice(&a.to_le_bytes());
        }
        for &pi in &self.pending_input {
            if L::LANES == 1 {
                // The v1 packed byte: 0 = none, 1 = false, 2 = true.
                p.push(match pi {
                    None => 0,
                    Some(v) => 1 + u8::from(v.lane(0)),
                });
            } else {
                match pi {
                    None => p.push(0),
                    Some(v) => {
                        p.push(1);
                        v.to_wire(&mut p);
                    }
                }
            }
        }
        p.extend_from_slice(&self.flags);
        for &g in &self.gen {
            p.extend_from_slice(&g.to_le_bytes());
        }
        push_section(&mut out, SEC_GATES.0, &p);

        p.clear();
        p.extend_from_slice(&(self.records.len() as u64).to_le_bytes());
        for q in &self.records {
            p.extend_from_slice(&(q.len() as u64).to_le_bytes());
            for &(v, t) in q {
                v.to_wire(&mut p);
                p.extend_from_slice(&t.to_le_bytes());
            }
        }
        push_section(&mut out, SEC_RECORDS.0, &p);

        out.extend_from_slice(&crc32(&out).to_le_bytes());
        out
    }

    /// Decodes a checkpoint from `bytes`, validating it end to end
    /// against the netlist and delay model it will be resumed under.
    ///
    /// The checks run cheapest-and-most-global first: magic, version,
    /// whole-file CRC (so any single byte flip is rejected before any
    /// structure is trusted), then per-section CRCs, then the header
    /// digests binding the bytes to `pl` and `delays`, then field-level
    /// range validation. Decoding never panics and never allocates more
    /// than the byte length supports, whatever the input.
    ///
    /// # Errors
    ///
    /// [`SimError::CheckpointTruncated`], [`SimError::CheckpointBadMagic`],
    /// [`SimError::CheckpointVersionSkew`],
    /// [`SimError::CheckpointLaneMismatch`] (a checkpoint written at the
    /// other lane width — the version field names the width, so this is
    /// detected before any structure is parsed),
    /// [`SimError::CheckpointChecksum`],
    /// [`SimError::CheckpointDigestMismatch`] (wrong netlist, delay model,
    /// or shape counts), and [`SimError::CheckpointOutOfRange`] (indices
    /// or enum bytes outside their domain).
    pub fn from_bytes(bytes: &[u8], pl: &PlNetlist, delays: &DelayModel) -> Result<Self, SimError> {
        let mut r = Reader::new(bytes);
        let magic = r.take(8, "magic")?;
        if magic != MAGIC {
            return Err(SimError::CheckpointBadMagic {
                found: magic.try_into().expect("8 bytes"),
            });
        }
        let version = r.u32("version")?;
        if version != Self::wire_version() {
            // A known version at the wrong width is a lane mismatch, not
            // skew: the encoding is valid, it just belongs to the other
            // simulator width.
            return Err(if version == VERSION || version == VERSION_BATCH {
                SimError::CheckpointLaneMismatch {
                    found: if version == VERSION { 1 } else { 64 },
                    expected: L::LANES as u32,
                }
            } else {
                SimError::CheckpointVersionSkew {
                    found: version,
                    supported: Self::wire_version(),
                }
            });
        }
        // Whole-file CRC before trusting any structure: guarantees every
        // single-byte corruption is caught, including inside length
        // fields that would otherwise mis-slice the section walk.
        if r.remaining() < 4 {
            return Err(SimError::CheckpointTruncated {
                context: "file trailer",
                needed: 4,
                available: r.remaining(),
            });
        }
        let body_len = bytes.len() - 4;
        let stored = u32::from_le_bytes(bytes[body_len..].try_into().expect("4 bytes"));
        let computed = crc32(&bytes[..body_len]);
        if stored != computed {
            return Err(SimError::CheckpointChecksum {
                section: "file",
                stored,
                computed,
            });
        }
        let mut r = Reader::new(&bytes[12..body_len]);

        let mut h = Reader::new(read_section(&mut r, SEC_HEADER)?);
        let fingerprint = h.u64("header fingerprint")?;
        let delays_stored = h.u64("header delay digest")?;
        let gates = h.u64("header gate count")?;
        let arcs = h.u64("header arc count")?;
        let outputs = h.u64("header output count")?;
        if L::LANES != 1 {
            let lanes = h.u64("header lane count")?;
            if lanes != L::LANES as u64 {
                return Err(SimError::CheckpointLaneMismatch {
                    found: lanes as u32,
                    expected: L::LANES as u32,
                });
            }
        }
        h.expect_end("header size")?;
        let expected_fp = netlist_fingerprint(pl);
        if fingerprint != expected_fp {
            return Err(SimError::CheckpointDigestMismatch {
                what: "netlist fingerprint",
                stored: fingerprint,
                expected: expected_fp,
            });
        }
        let expected_dd = delay_digest(delays);
        if delays_stored != expected_dd {
            return Err(SimError::CheckpointDigestMismatch {
                what: "delay model",
                stored: delays_stored,
                expected: expected_dd,
            });
        }
        for (what, stored, expected) in [
            ("gate count", gates, pl.gates().len() as u64),
            ("arc count", arcs, pl.arcs().len() as u64),
            ("output count", outputs, pl.output_gates().len() as u64),
        ] {
            if stored != expected {
                return Err(SimError::CheckpointDigestMismatch {
                    what,
                    stored,
                    expected,
                });
            }
        }
        let (gates, arcs, outputs) = (gates as usize, arcs as usize, outputs as usize);

        let mut s = Reader::new(read_section(&mut r, SEC_STATE)?);
        let now = s.u64("state now")?;
        let seq = s.u64("state seq")?;
        let events = s.u64("state events")?;
        let rounds = s.u64("state rounds")?;
        s.expect_end("state size")?;

        let mut q = Reader::new(read_section(&mut r, SEC_QUEUE)?);
        // Smallest event encoding: key (16) + tag (1) + gate (4).
        let n_events = q.count(21, "queue event count")?;
        let mut queue = Vec::with_capacity(n_events);
        let mut prev_key = None;
        for _ in 0..n_events {
            let key = q.u128("queue event key")?;
            if prev_key.is_some_and(|p| p >= key) {
                return Err(SimError::CheckpointOutOfRange {
                    field: "queue key order",
                    value: queue.len() as u64,
                    limit: n_events as u64,
                });
            }
            prev_key = Some(key);
            let event_seq = key as u64;
            if event_seq >= seq {
                return Err(SimError::CheckpointOutOfRange {
                    field: "queue event seq",
                    value: event_seq,
                    limit: seq,
                });
            }
            let kind = match q.u8("queue event tag")? {
                0 => {
                    let gate = q.u32("queue event gate")?;
                    check_gate(gate, gates, "queue event gate")?;
                    EventKind::Tokens {
                        gate,
                        value: read_word::<L>(&mut q, "queue event value")?,
                        data: read_bool(&mut q, "queue event data")?,
                        acks: read_bool(&mut q, "queue event acks")?,
                    }
                }
                1 => {
                    let gate = q.u32("queue event gate")?;
                    check_gate(gate, gates, "queue event gate")?;
                    EventKind::Fire { gate }
                }
                tag @ (2 | 3) => {
                    let gate = q.u32("queue event gate")?;
                    check_gate(gate, gates, "queue event gate")?;
                    let gen = q.u64("queue event gen")?;
                    if tag == 2 {
                        EventKind::Produce { gate, gen }
                    } else {
                        EventKind::Cleanup { gate, gen }
                    }
                }
                other => {
                    return Err(SimError::CheckpointOutOfRange {
                        field: "queue event tag",
                        value: u64::from(other),
                        limit: 3,
                    })
                }
            };
            queue.push(Event { key, kind });
        }
        q.expect_end("queue section size")?;

        let mut a = Reader::new(read_section(&mut r, SEC_ARCS)?);
        let mut tokens = Vec::with_capacity(arcs);
        for _ in 0..arcs {
            tokens.push(u8::from(read_bool(&mut a, "arc token")?));
        }
        let mut values = Vec::with_capacity(arcs);
        for _ in 0..arcs {
            values.push(read_word::<L>(&mut a, "arc value")?);
        }
        a.expect_end("arcs section size")?;

        let mut g = Reader::new(read_section(&mut r, SEC_GATES)?);
        let pin_tokens = g.take(gates, "gate pin tokens")?.to_vec();
        let mut pin_vals = Vec::with_capacity(gates);
        for _ in 0..gates {
            let bytes = g.take(L::PV_WIRE_BYTES, "gate pin values")?;
            pin_vals.push(
                L::pv_from_wire(bytes).ok_or(SimError::CheckpointOutOfRange {
                    field: "gate pin values",
                    value: u64::from(bytes[0]),
                    limit: 1,
                })?,
            );
        }
        let mut ack_missing = Vec::with_capacity(gates);
        for _ in 0..gates {
            ack_missing.push(g.u32("gate ack counter")?);
        }
        let mut pending_input = Vec::with_capacity(gates);
        for _ in 0..gates {
            let tag = g.u8("gate pending input")?;
            pending_input.push(if L::LANES == 1 {
                // The v1 packed byte: 0 = none, 1 = false, 2 = true.
                match tag {
                    0 => None,
                    1 => Some(L::splat(false)),
                    2 => Some(L::splat(true)),
                    other => {
                        return Err(SimError::CheckpointOutOfRange {
                            field: "gate pending input",
                            value: u64::from(other),
                            limit: 2,
                        })
                    }
                }
            } else {
                match tag {
                    0 => None,
                    1 => Some(read_word::<L>(&mut g, "gate pending input")?),
                    other => {
                        return Err(SimError::CheckpointOutOfRange {
                            field: "gate pending input",
                            value: u64::from(other),
                            limit: 1,
                        })
                    }
                }
            });
        }
        let mut flags = Vec::with_capacity(gates);
        for _ in 0..gates {
            let f = g.u8("gate flags")?;
            if f > 0x0F {
                return Err(SimError::CheckpointOutOfRange {
                    field: "gate flags",
                    value: u64::from(f),
                    limit: 0x0F,
                });
            }
            flags.push(f);
        }
        let mut gen = Vec::with_capacity(gates);
        for _ in 0..gates {
            gen.push(g.u64("gate generation")?);
        }
        g.expect_end("gates section size")?;

        let mut rec = Reader::new(read_section(&mut r, SEC_RECORDS)?);
        let n_queues = rec.count(8, "record queue count")?;
        if n_queues != outputs {
            return Err(SimError::CheckpointOutOfRange {
                field: "record queue count",
                value: n_queues as u64,
                limit: outputs as u64,
            });
        }
        let mut records = Vec::with_capacity(outputs);
        for _ in 0..outputs {
            let n = rec.count(L::WIRE_BYTES + 8, "record entry count")?;
            let mut queue = VecDeque::with_capacity(n);
            for _ in 0..n {
                let v = read_word::<L>(&mut rec, "record value")?;
                let t = rec.u64("record tick")?;
                queue.push_back((v, t));
            }
            records.push(queue);
        }
        rec.expect_end("records section size")?;
        r.expect_end("trailing bytes")?;

        Ok(SimCheckpoint {
            gates,
            arcs,
            outputs,
            fingerprint,
            now,
            seq,
            events,
            rounds,
            queue,
            tokens,
            values,
            pin_tokens,
            pin_vals,
            ack_missing,
            pending_input,
            flags,
            gen,
            records,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{BatchSimulator, PlSimulator};
    use pl_netlist::Netlist;

    fn counter() -> PlNetlist {
        let mut n = Netlist::new("cnt");
        let q0 = n.add_dff(false);
        let q1 = n.add_dff(false);
        let n0 = n.add_not(q0).unwrap();
        let t1 = n.add_xor2(q1, q0).unwrap();
        n.set_dff_input(q0, n0).unwrap();
        n.set_dff_input(q1, t1).unwrap();
        n.set_output("q0", q0);
        n.set_output("q1", q1);
        PlNetlist::from_sync(&n).unwrap()
    }

    /// A mid-stream checkpoint of a free-running counter: non-empty event
    /// queue, non-trivial records, every section populated.
    fn mid_stream_checkpoint(pl: &PlNetlist) -> SimCheckpoint {
        let mut sim = PlSimulator::new(pl, DelayModel::default()).unwrap();
        for _ in 0..3 {
            sim.run_vector(&[]).unwrap();
        }
        sim.feed_vector(&[]).unwrap();
        let ck = sim.snapshot();
        assert!(ck.queued_events() > 0, "the counter free-runs");
        ck
    }

    /// The 64-lane analogue of [`mid_stream_checkpoint`].
    fn mid_stream_batch_checkpoint(pl: &PlNetlist) -> SimCheckpoint<u64> {
        let mut sim = BatchSimulator::new(pl, DelayModel::default()).unwrap();
        for _ in 0..3 {
            sim.run_vector(&[]).unwrap();
        }
        sim.feed_vector(&[]).unwrap();
        let ck = sim.snapshot();
        assert!(ck.queued_events() > 0, "the counter free-runs");
        ck
    }

    /// Recomputes every section CRC and the trailer after a deliberate
    /// payload mutation, so tests can exercise the semantic validators
    /// behind the checksums.
    fn fix_crcs(bytes: &mut [u8]) {
        let end = bytes.len() - 4;
        let mut pos = 12;
        while pos + 9 <= end {
            let len = u64::from_le_bytes(bytes[pos + 1..pos + 9].try_into().unwrap()) as usize;
            let p = pos + 9;
            let crc = crc32(&bytes[p..p + len]);
            bytes[p + len..p + len + 4].copy_from_slice(&crc.to_le_bytes());
            pos = p + len + 4;
        }
        let trailer = crc32(&bytes[..end]);
        bytes[end..].copy_from_slice(&trailer.to_le_bytes());
    }

    /// Byte offset of section `index`'s payload (0-based, file order).
    fn payload_offset(bytes: &[u8], index: usize) -> usize {
        let mut pos = 12;
        for _ in 0..index {
            let len = u64::from_le_bytes(bytes[pos + 1..pos + 9].try_into().unwrap()) as usize;
            pos += 9 + len + 4;
        }
        pos + 9
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip_is_identity_mid_stream() {
        let pl = counter();
        let delays = DelayModel::default();
        let ck = mid_stream_checkpoint(&pl);
        let bytes = ck.to_bytes(&delays);
        let back = SimCheckpoint::from_bytes(&bytes, &pl, &delays).unwrap();
        assert_eq!(back, ck);
    }

    #[test]
    fn round_trip_resumes_bit_identically() {
        let pl = counter();
        let delays = DelayModel::default();
        let mut reference = PlSimulator::new(&pl, delays.clone()).unwrap();
        let expected: Vec<_> = (0..8).map(|_| reference.run_vector(&[]).unwrap()).collect();

        let mut first = PlSimulator::new(&pl, delays.clone()).unwrap();
        for e in &expected[..4] {
            assert_eq!(&first.run_vector(&[]).unwrap(), e);
        }
        let bytes = first.snapshot().to_bytes(&delays);
        let ck = SimCheckpoint::from_bytes(&bytes, &pl, &delays).unwrap();
        let mut resumed = PlSimulator::resume_from(&pl, delays, &ck).unwrap();
        for e in &expected[4..] {
            assert_eq!(&resumed.run_vector(&[]).unwrap(), e);
        }
    }

    #[test]
    fn initial_state_round_trips() {
        let pl = counter();
        let delays = DelayModel::default();
        let ck = PlSimulator::new(&pl, delays.clone()).unwrap().snapshot();
        let bytes = ck.to_bytes(&delays);
        assert_eq!(SimCheckpoint::from_bytes(&bytes, &pl, &delays).unwrap(), ck);
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let pl = counter();
        let delays = DelayModel::default();
        let bytes = mid_stream_checkpoint(&pl).to_bytes(&delays);
        for len in 0..bytes.len() {
            let err = SimCheckpoint::<bool>::from_bytes(&bytes[..len], &pl, &delays)
                .expect_err("truncated input must not decode");
            // Any typed error is acceptable; none may panic.
            let _ = err.to_string();
        }
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let pl = counter();
        let delays = DelayModel::default();
        let bytes = mid_stream_checkpoint(&pl).to_bytes(&delays);
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0xA5;
            let err = SimCheckpoint::<bool>::from_bytes(&corrupt, &pl, &delays)
                .expect_err("flipped byte must not decode");
            let _ = err.to_string();
        }
    }

    #[test]
    fn bad_magic_is_named() {
        let pl = counter();
        let delays = DelayModel::default();
        let mut bytes = mid_stream_checkpoint(&pl).to_bytes(&delays);
        bytes[0] = b'X';
        match SimCheckpoint::<bool>::from_bytes(&bytes, &pl, &delays) {
            Err(SimError::CheckpointBadMagic { found }) => assert_eq!(found[0], b'X'),
            other => panic!("expected CheckpointBadMagic, got {other:?}"),
        }
    }

    #[test]
    fn version_skew_is_named() {
        let pl = counter();
        let delays = DelayModel::default();
        let mut bytes = mid_stream_checkpoint(&pl).to_bytes(&delays);
        bytes[8..12].copy_from_slice(&3u32.to_le_bytes());
        // A future-version file would carry valid CRCs; only the version
        // differs.
        fix_crcs(&mut bytes);
        match SimCheckpoint::<bool>::from_bytes(&bytes, &pl, &delays) {
            Err(SimError::CheckpointVersionSkew {
                found: 3,
                supported: VERSION,
            }) => {}
            other => panic!("expected CheckpointVersionSkew, got {other:?}"),
        }
    }

    #[test]
    fn lane_mismatch_is_named_in_both_directions() {
        let pl = counter();
        let delays = DelayModel::default();
        // A scalar (v1) file into a 64-lane decoder...
        let scalar_bytes = mid_stream_checkpoint(&pl).to_bytes(&delays);
        match SimCheckpoint::<u64>::from_bytes(&scalar_bytes, &pl, &delays) {
            Err(SimError::CheckpointLaneMismatch {
                found: 1,
                expected: 64,
            }) => {}
            other => panic!("expected CheckpointLaneMismatch, got {other:?}"),
        }
        // ...and a 64-lane (v2) file into a scalar decoder.
        let batch_bytes = mid_stream_batch_checkpoint(&pl).to_bytes(&delays);
        match SimCheckpoint::<bool>::from_bytes(&batch_bytes, &pl, &delays) {
            Err(SimError::CheckpointLaneMismatch {
                found: 64,
                expected: 1,
            }) => {}
            other => panic!("expected CheckpointLaneMismatch, got {other:?}"),
        }
    }

    #[test]
    fn wrong_netlist_is_a_digest_mismatch() {
        let pl = counter();
        let delays = DelayModel::default();
        let bytes = mid_stream_checkpoint(&pl).to_bytes(&delays);
        let mut n = Netlist::new("xor");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_xor2(a, b).unwrap();
        n.set_output("y", g);
        let other = PlNetlist::from_sync(&n).unwrap();
        match SimCheckpoint::<bool>::from_bytes(&bytes, &other, &delays) {
            Err(SimError::CheckpointDigestMismatch {
                what: "netlist fingerprint",
                ..
            }) => {}
            other => panic!("expected a fingerprint mismatch, got {other:?}"),
        }
    }

    #[test]
    fn wrong_delay_model_is_a_digest_mismatch() {
        let pl = counter();
        let delays = DelayModel::default();
        let bytes = mid_stream_checkpoint(&pl).to_bytes(&delays);
        let scaled = delays.scaled(2.0);
        match SimCheckpoint::<bool>::from_bytes(&bytes, &pl, &scaled) {
            Err(SimError::CheckpointDigestMismatch {
                what: "delay model",
                ..
            }) => {}
            other => panic!("expected a delay-model mismatch, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_gate_index_is_rejected_despite_valid_checksums() {
        let pl = counter();
        let delays = DelayModel::default();
        let ck = mid_stream_checkpoint(&pl);
        let mut bytes = ck.to_bytes(&delays);
        // QUEUE is the third section; its payload starts with the event
        // count (8 bytes), then key (16) + tag (1) + gate (4).
        let gate_at = payload_offset(&bytes, 2) + 8 + 16 + 1;
        bytes[gate_at..gate_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        fix_crcs(&mut bytes);
        match SimCheckpoint::<bool>::from_bytes(&bytes, &pl, &delays) {
            Err(SimError::CheckpointOutOfRange {
                field: "queue event gate",
                ..
            }) => {}
            other => panic!("expected an out-of-range gate, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_section_names_itself() {
        let pl = counter();
        let delays = DelayModel::default();
        let mut bytes = mid_stream_checkpoint(&pl).to_bytes(&delays);
        // Flip one payload byte inside STATE (section 2) and repair only
        // the trailer, leaving the section CRC stale: the decoder must
        // name the section.
        let state_at = payload_offset(&bytes, 1);
        bytes[state_at] ^= 0xFF;
        let end = bytes.len() - 4;
        let trailer = crc32(&bytes[..end]);
        bytes[end..].copy_from_slice(&trailer.to_le_bytes());
        match SimCheckpoint::<bool>::from_bytes(&bytes, &pl, &delays) {
            Err(SimError::CheckpointChecksum {
                section: "STATE", ..
            }) => {}
            other => panic!("expected the STATE checksum to fail, got {other:?}"),
        }
    }

    #[test]
    fn batch_round_trip_is_identity_mid_stream() {
        let pl = counter();
        let delays = DelayModel::default();
        let ck = mid_stream_batch_checkpoint(&pl);
        let bytes = ck.to_bytes(&delays);
        let back = SimCheckpoint::<u64>::from_bytes(&bytes, &pl, &delays).unwrap();
        assert_eq!(back, ck);
    }

    #[test]
    fn batch_round_trip_resumes_bit_identically() {
        let pl = counter();
        let delays = DelayModel::default();
        let mut reference = BatchSimulator::new(&pl, delays.clone()).unwrap();
        let expected: Vec<_> = (0..8).map(|_| reference.run_vector(&[]).unwrap()).collect();

        let mut first = BatchSimulator::new(&pl, delays.clone()).unwrap();
        for e in &expected[..4] {
            assert_eq!(&first.run_vector(&[]).unwrap(), e);
        }
        let bytes = first.snapshot().to_bytes(&delays);
        let ck = SimCheckpoint::<u64>::from_bytes(&bytes, &pl, &delays).unwrap();
        let mut resumed = BatchSimulator::resume_from(&pl, delays, &ck).unwrap();
        for e in &expected[4..] {
            assert_eq!(&resumed.run_vector(&[]).unwrap(), e);
        }
    }

    #[test]
    fn batch_every_truncation_is_a_typed_error() {
        let pl = counter();
        let delays = DelayModel::default();
        let bytes = mid_stream_batch_checkpoint(&pl).to_bytes(&delays);
        for len in 0..bytes.len() {
            let err = SimCheckpoint::<u64>::from_bytes(&bytes[..len], &pl, &delays)
                .expect_err("truncated input must not decode");
            let _ = err.to_string();
        }
    }

    #[test]
    fn batch_every_single_byte_flip_is_rejected() {
        let pl = counter();
        let delays = DelayModel::default();
        let bytes = mid_stream_batch_checkpoint(&pl).to_bytes(&delays);
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0xA5;
            let err = SimCheckpoint::<u64>::from_bytes(&corrupt, &pl, &delays)
                .expect_err("flipped byte must not decode");
            let _ = err.to_string();
        }
    }

    #[test]
    fn delay_digest_distinguishes_components() {
        let d = DelayModel::default();
        assert_ne!(delay_digest(&d), delay_digest(&d.scaled(2.0)));
        // Swapping two component values must change the digest (FNV-1a
        // mixing is order-sensitive).
        let swapped = DelayModel {
            c_element: d.lut,
            lut: d.c_element,
            ..d.clone()
        };
        assert_ne!(delay_digest(&d), delay_digest(&swapped));
    }
}
