//! The synchronous-netlist pass: structural and hazard lints over
//! [`pl_netlist::Netlist`], run between ingestion and optimization.

use std::collections::HashMap;

use pl_netlist::blif::BlifNote;
use pl_netlist::scc;
use pl_netlist::{Netlist, NodeId, NodeKind};
use pl_sim::DelayModel;

use crate::diag::{Code, Collector, LintOptions, LintReport};

/// How many node labels an aggregated diagnostic (PL0006) spells out before
/// eliding the rest.
const MAX_LISTED: usize = 8;

/// Filters ingest-time BLIF notes against the *current* netlist: a note
/// about an undriven signal is only still live while no node carries that
/// signal's name. ECO edits re-derive notes through this filter rather than
/// carrying stale ones — an edit that splices in (and names) a driver for a
/// previously undriven net silences its PL0009, and removing that driver
/// again resurfaces it.
#[must_use]
pub fn active_blif_notes<'a>(netlist: &Netlist, notes: &'a [BlifNote]) -> Vec<&'a BlifNote> {
    notes
        .iter()
        .filter(|note| {
            !netlist
                .iter()
                .any(|(_, node)| node.name() == Some(note.signal.as_str()))
        })
        .collect()
}

/// Runs every netlist-level check and returns the findings.
///
/// `notes` are ingest-time observations (e.g. from
/// [`pl_netlist::blif::from_blif_with_notes`]) surfaced as PL0009; pass an
/// empty slice for programmatically-built netlists. `delays` is the active
/// delay model, used by the zero-delay-feedback hazard check (PL0103).
#[must_use]
pub fn lint_netlist(
    netlist: &Netlist,
    notes: &[BlifNote],
    delays: &DelayModel,
    opts: &LintOptions,
) -> LintReport {
    let mut c = Collector::new("netlist", opts);
    let n = netlist.len();
    let label = |id: NodeId| -> String {
        netlist
            .get(id)
            .and_then(|node| node.name())
            .map_or_else(|| id.to_string(), str::to_string)
    };

    // PL0009: ingest notes (undriven nets referenced by the source text).
    for note in active_blif_notes(netlist, notes) {
        c.push(
            Code::new(9),
            vec![note.signal.clone()],
            format!("line {}: {}", note.line, note.message),
        );
    }

    // PL0004: LUT table arity vs fanin count.
    for (id, node) in netlist.iter() {
        if let NodeKind::Lut { table, inputs } = node.kind() {
            if table.num_vars() != inputs.len() {
                c.push(
                    Code::new(4),
                    vec![label(id)],
                    format!(
                        "LUT '{}' has a {}-variable table but {} fanins",
                        label(id),
                        table.num_vars(),
                        inputs.len()
                    ),
                );
            }
        }
    }

    // PL0002: undriven flip-flops.
    for &dff in netlist.dffs() {
        if let NodeKind::Dff { d: None, .. } = netlist.node(dff).kind() {
            c.push(
                Code::new(2),
                vec![label(dff)],
                format!("flip-flop '{}' has no driver on its d pin", label(dff)),
            );
        }
    }

    // PL0003 / PL0005: output sanity.
    let mut by_name: HashMap<&str, Vec<NodeId>> = HashMap::new();
    for (name, id) in netlist.outputs() {
        if netlist.get(*id).is_none() {
            c.push(
                Code::new(3),
                vec![id.to_string()],
                format!("output '{name}' references missing node {id}"),
            );
        }
        by_name.entry(name.as_str()).or_default().push(*id);
    }
    for (name, ids) in by_name {
        if ids.len() > 1 {
            c.push(
                Code::new(5),
                ids.iter().map(|&id| label(id)).collect(),
                format!("output name '{}' is declared {} times", name, ids.len()),
            );
        }
    }

    // The combinational dependency graph: LUT fanin -> LUT, flip-flop
    // boundaries cut (their d edge is sequential).
    let mut comb: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (id, node) in netlist.iter() {
        if let NodeKind::Lut { inputs, .. } = node.kind() {
            for src in inputs {
                comb[src.index()].push(id.index());
            }
        }
    }

    // PL0001: combinational cycles, one finding per cyclic SCC, with the
    // concrete cycle path named. Shares the walk used by comb_topo_order so
    // the lint and the hard error describe the same cycle.
    let comps = scc::tarjan_sccs(n, &comb);
    let mut cyclic = false;
    for comp in &comps {
        if scc::component_is_cyclic(&comb, comp) {
            cyclic = true;
            let path: Vec<String> = scc::cycle_in_component(&comb, comp)
                .into_iter()
                .map(|i| label(NodeId::from_index(i)))
                .collect();
            let mut rendered = path.join(" -> ");
            rendered.push_str(" -> ");
            rendered.push_str(&path[0]);
            c.push(
                Code::new(1),
                path,
                format!("combinational cycle: {rendered}"),
            );
        }
    }

    // PL0006: dead cones. Walk fanins backwards from every (existing) output
    // node, through flip-flop d edges; anything never reached that is not a
    // primary input is dead logic. One aggregated finding keeps large dead
    // regions from flooding the report.
    let mut live = vec![false; n];
    let mut stack: Vec<usize> = netlist
        .outputs()
        .iter()
        .filter_map(|(_, id)| netlist.get(*id).map(|_| id.index()))
        .collect();
    while let Some(i) = stack.pop() {
        if std::mem::replace(&mut live[i], true) {
            continue;
        }
        for src in netlist.node(NodeId::from_index(i)).fanins() {
            stack.push(src.index());
        }
    }
    let dead: Vec<NodeId> = netlist
        .iter()
        .filter(|(id, node)| !live[id.index()] && !node.is_input())
        .map(|(id, _)| id)
        .collect();
    if !dead.is_empty() {
        let mut labels: Vec<String> = dead.iter().map(|&id| label(id)).collect();
        labels.sort();
        let shown = labels
            .iter()
            .take(MAX_LISTED)
            .cloned()
            .collect::<Vec<_>>()
            .join(", ");
        let elided = if labels.len() > MAX_LISTED {
            format!(" … and {} more", labels.len() - MAX_LISTED)
        } else {
            String::new()
        };
        c.push(
            Code::new(6),
            labels.clone(),
            format!(
                "{} node(s) unreachable from any primary output: {shown}{elided}",
                labels.len()
            ),
        );
    }

    // PL0007 / PL0008: degenerate LUT functions.
    for (id, node) in netlist.iter() {
        let NodeKind::Lut { table, inputs } = node.kind() else {
            continue;
        };
        if table.num_vars() != inputs.len() {
            continue; // already a PL0004; support analysis would mislabel pins
        }
        if table.is_constant() {
            c.push(
                Code::new(7),
                vec![label(id)],
                format!(
                    "LUT '{}' computes constant {}",
                    label(id),
                    u8::from(table.is_ones())
                ),
            );
            continue; // a constant table has no support; skip PL0008
        }
        for (pin, &src) in inputs.iter().enumerate() {
            if !table.depends_on(pin) {
                c.push(
                    Code::new(8),
                    vec![label(id), label(src)],
                    format!(
                        "LUT '{}' pin {pin} ('{}') is outside the table's functional support",
                        label(id),
                        label(src)
                    ),
                );
            }
        }
    }

    // PL0101: fanout envelope (combinational readers plus flip-flop d pins).
    let mut fanout = vec![0usize; n];
    for (_, node) in netlist.iter() {
        for src in node.fanins() {
            fanout[src.index()] += 1;
        }
    }
    for (i, &fo) in fanout.iter().enumerate() {
        if fo > opts.max_fanout {
            let id = NodeId::from_index(i);
            c.push(
                Code::new(101),
                vec![label(id)],
                format!(
                    "node '{}' has fanout {fo} (envelope {})",
                    label(id),
                    opts.max_fanout
                ),
            );
        }
    }

    // PL0102: depth envelope. Only meaningful when the combinational graph
    // is acyclic (a cycle is already a PL0001 and has no finite depth).
    if !cyclic {
        if let Ok(levels) = pl_netlist::analyze::levels(netlist) {
            if let Some((deepest, &depth)) = levels
                .iter()
                .enumerate()
                .max_by_key(|&(i, lv)| (lv, std::cmp::Reverse(i)))
            {
                if depth > opts.max_depth {
                    let id = NodeId::from_index(deepest);
                    c.push(
                        Code::new(102),
                        vec![label(id)],
                        format!(
                            "combinational depth {depth} exceeds envelope {} (deepest node '{}')",
                            opts.max_depth,
                            label(id)
                        ),
                    );
                }
            }
        }
    }

    // PL0103: zero-delay feedback. With a degenerate delay model every
    // event in a feedback loop (combinational or through flip-flops) is
    // scheduled at the current instant and simulation would livelock, so
    // flag each cyclic component of the *full* dependency graph.
    if delays.gate_delay() + delays.wire <= 0.0 {
        let mut full = comb;
        for (id, node) in netlist.iter() {
            if let NodeKind::Dff { d: Some(src), .. } = node.kind() {
                full[src.index()].push(id.index());
            }
        }
        for comp in scc::tarjan_sccs(n, &full) {
            if scc::component_is_cyclic(&full, &comp) {
                let path: Vec<String> = scc::cycle_in_component(&full, &comp)
                    .into_iter()
                    .map(|i| label(NodeId::from_index(i)))
                    .collect();
                let mut rendered = path.join(" -> ");
                rendered.push_str(" -> ");
                rendered.push_str(&path[0]);
                c.push(
                    Code::new(103),
                    path,
                    format!("zero-delay model would oscillate through: {rendered}"),
                );
            }
        }
    }

    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use pl_boolfn::TruthTable;

    fn run(netlist: &Netlist) -> LintReport {
        lint_netlist(
            netlist,
            &[],
            &DelayModel::default(),
            &LintOptions::default(),
        )
    }

    fn codes(report: &LintReport) -> Vec<u16> {
        report
            .diagnostics()
            .iter()
            .map(|d| d.code.number())
            .collect()
    }

    #[test]
    fn clean_netlist_is_clean() {
        let mut nl = Netlist::new("clean");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_and2(a, b).unwrap();
        nl.set_output("y", g);
        assert!(run(&nl).is_empty());
    }

    #[test]
    fn empty_netlist_is_clean() {
        assert!(run(&Netlist::new("empty")).is_empty());
    }

    #[test]
    fn const_only_output_is_clean() {
        let mut nl = Netlist::new("konst");
        let k = nl.add_const(true);
        nl.set_output("y", k);
        assert!(run(&nl).is_empty());
    }

    #[test]
    fn combinational_cycle_names_the_path() {
        let mut nl = Netlist::new("cyc");
        let a = nl.add_input("a");
        let x = nl.add_and2(a, a).unwrap();
        let y = nl.add_and2(x, a).unwrap();
        nl.set_name(x, "x").unwrap();
        nl.set_name(y, "y").unwrap();
        nl.set_output("o", y);
        nl.rewire_lut_input(x, 1, y).unwrap();
        let report = run(&nl);
        assert!(report.has_deny());
        let d = &report.diagnostics()[0];
        assert_eq!(d.code, Code::new(1));
        assert_eq!(d.nodes, vec!["x", "y"]);
        assert_eq!(d.message, "combinational cycle: x -> y -> x");
    }

    #[test]
    fn self_loop_is_a_cycle_and_depth_is_skipped() {
        let mut nl = Netlist::new("selfloop");
        let a = nl.add_input("a");
        let x = nl.add_and2(a, a).unwrap();
        nl.set_output("o", x);
        nl.rewire_lut_input(x, 0, x).unwrap();
        let report = run(&nl);
        assert_eq!(codes(&report), vec![1]);
    }

    #[test]
    fn undriven_dff_and_missing_output_are_denied() {
        let mut nl = Netlist::new("broken");
        let d = nl.add_dff(false);
        nl.set_output("q", d);
        nl.set_output("ghost", NodeId::from_index(99));
        let report = run(&nl);
        assert_eq!(codes(&report), vec![2, 3]);
        assert!(report.has_deny());
    }

    #[test]
    fn duplicate_output_names_warn() {
        let mut nl = Netlist::new("dup");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        nl.set_output("y", a);
        nl.set_output("y", b);
        let report = run(&nl);
        assert_eq!(codes(&report), vec![5]);
        assert_eq!(report.diagnostics()[0].severity, Severity::Warn);
        assert_eq!(report.diagnostics()[0].nodes, vec!["a", "b"]);
    }

    #[test]
    fn dead_cone_is_one_aggregated_warning() {
        let mut nl = Netlist::new("dead");
        let a = nl.add_input("a");
        let live = nl.add_not(a).unwrap();
        let dead1 = nl.add_not(a).unwrap();
        let _dead2 = nl.add_not(dead1).unwrap();
        nl.set_output("y", live);
        let report = run(&nl);
        assert_eq!(codes(&report), vec![6]);
        assert_eq!(report.diagnostics()[0].nodes.len(), 2);
        assert!(report.diagnostics()[0].message.contains("2 node(s)"));
    }

    #[test]
    fn constant_and_vacuous_luts_warn() {
        let mut nl = Netlist::new("degenerate");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        // Table ignores variable 1 entirely: f(a, b) = a.
        let vacuous = nl
            .add_lut(TruthTable::from_bits(2, 0b1010), vec![a, b])
            .unwrap();
        // Constant-1 table.
        let konst = nl
            .add_lut(TruthTable::from_bits(2, 0b1111), vec![a, b])
            .unwrap();
        nl.set_name(vacuous, "vac").unwrap();
        nl.set_name(konst, "k1").unwrap();
        nl.set_output("v", vacuous);
        nl.set_output("k", konst);
        let report = run(&nl);
        assert_eq!(codes(&report), vec![7, 8]);
        assert!(report.diagnostics()[0].message.contains("constant 1"));
        assert!(report.diagnostics()[1].message.contains("pin 1"));
    }

    #[test]
    fn arity_mismatch_is_denied_and_suppresses_support_checks() {
        let mut nl = Netlist::new("inject");
        let a = nl.add_input("a");
        let g = nl.add_not(a).unwrap();
        nl.set_output("y", g);
        nl.inject_lut_table(g, TruthTable::from_bits(2, 0b0110));
        let report = run(&nl);
        assert_eq!(codes(&report), vec![4]);
        assert!(report.has_deny());
    }

    #[test]
    fn fanout_and_depth_envelopes() {
        let mut nl = Netlist::new("envelopes");
        let a = nl.add_input("a");
        let mut cur = a;
        for _ in 0..4 {
            cur = nl.add_not(cur).unwrap();
        }
        let b0 = nl.add_not(a).unwrap();
        let b1 = nl.add_not(a).unwrap();
        nl.set_output("y", cur);
        nl.set_output("b0", b0);
        nl.set_output("b1", b1);
        let opts = LintOptions {
            max_fanout: 2,
            max_depth: 3,
            ..LintOptions::default()
        };
        let report = lint_netlist(&nl, &[], &DelayModel::default(), &opts);
        assert_eq!(codes(&report), vec![101, 102]);
        assert!(report.diagnostics()[0].message.contains("fanout 3"));
        assert!(report.diagnostics()[1].message.contains("depth 4"));
    }

    #[test]
    fn zero_delay_feedback_fires_only_under_a_zero_model() {
        let mut nl = Netlist::new("feedback");
        let d = nl.add_dff(false);
        let inv = nl.add_not(d).unwrap();
        nl.set_dff_input(d, inv).unwrap();
        nl.set_output("q", d);
        assert!(run(&nl).is_empty());
        let report = lint_netlist(&nl, &[], &DelayModel::zero(), &LintOptions::default());
        assert_eq!(codes(&report), vec![103]);
        assert!(report.diagnostics()[0].message.contains("oscillate"));
    }

    #[test]
    fn blif_notes_surface_as_pl0009() {
        let nl = Netlist::new("noted");
        let notes = vec![BlifNote {
            line: 7,
            signal: "gclk".into(),
            message: "latch control references undriven net 'gclk'".into(),
        }];
        let report = lint_netlist(&nl, &notes, &DelayModel::default(), &LintOptions::default());
        assert_eq!(codes(&report), vec![9]);
        assert_eq!(report.diagnostics()[0].nodes, vec!["gclk"]);
        assert!(report.diagnostics()[0].message.starts_with("line 7:"));
    }

    #[test]
    fn reports_are_byte_identical_across_runs() {
        let mut nl = Netlist::new("stable");
        let a = nl.add_input("a");
        let dead = nl.add_not(a).unwrap();
        let _dead2 = nl.add_not(dead).unwrap();
        let live = nl.add_not(a).unwrap();
        nl.set_output("y", live);
        nl.set_output("y", live);
        let first = run(&nl);
        for _ in 0..10 {
            let again = run(&nl);
            assert_eq!(again, first);
            assert_eq!(again.to_text(), first.to_text());
            assert_eq!(again.to_json_lines(), first.to_json_lines());
        }
    }
}
