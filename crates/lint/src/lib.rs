//! Static netlist diagnostics (`pl-lint`): whole-netlist analysis with
//! stable, golden-pinnable `PL####` codes.
//!
//! Two passes share one diagnostic vocabulary:
//!
//! * [`lint_netlist`] runs on the synchronous [`pl_netlist::Netlist`]
//!   between ingestion and optimization — structure that is broken here
//!   (cycles, undriven state, dangling outputs) would otherwise surface as
//!   a panic or a wrong answer several stages later.
//! * [`lint_pl`] runs on the mapped [`pl_core::PlNetlist`] after
//!   technology mapping, where pin wiring and the token topology exist.
//!
//! Reports are deterministic: findings are sorted by `(code, nodes,
//! message)` and both renderers ([`LintReport::to_text`],
//! [`LintReport::to_json_lines`]) are byte-stable, so CI can diff them
//! against checked-in goldens.
//!
//! # Lint catalog
//!
//! | Code | Default | Finds |
//! |------|---------|-------|
//! | `PL0001` | deny | combinational cycle through LUTs (cycle path named) |
//! | `PL0002` | deny | flip-flop with no driver on its `d` pin |
//! | `PL0003` | deny | primary output referencing a missing node |
//! | `PL0004` | deny | LUT truth-table arity differs from its fanin count |
//! | `PL0005` | warn | duplicate primary-output name |
//! | `PL0006` | warn | dead cone: logic unreachable from any primary output |
//! | `PL0007` | warn | trivially-constant LUT |
//! | `PL0008` | warn | LUT fanin outside the table's functional support |
//! | `PL0009` | warn | source text referenced an undriven net (ingest note) |
//! | `PL0101` | warn | node fanout exceeds the envelope (`--max-fanout`) |
//! | `PL0102` | warn | combinational depth exceeds the envelope (`--max-depth`) |
//! | `PL0103` | warn | feedback loop with a zero-delay model (would oscillate) |
//! | `PL0201` | deny | phased-logic gate pin with no data arc or constant tie |
//! | `PL0202` | deny | phased-logic gate pin with conflicting drivers |
//! | `PL0203` | warn | phased-logic gate with no data path to any output |
//! | `PL0204` | warn | phased-logic data fanout exceeds the envelope |
//!
//! Codes are append-only; numbers are never reused. Severities can be
//! overridden per code via [`LintOptions::overrides`] (`allow` drops a
//! finding, `deny` makes the flow's lint stage fail).
//!
//! # Example
//!
//! ```
//! use pl_lint::{lint_netlist, LintOptions};
//! use pl_netlist::Netlist;
//! use pl_sim::DelayModel;
//!
//! let mut nl = Netlist::new("demo");
//! let a = nl.add_input("a");
//! let dead = nl.add_not(a).unwrap();
//! let live = nl.add_not(a).unwrap();
//! nl.set_output("y", live);
//!
//! let report = lint_netlist(&nl, &[], &DelayModel::default(), &LintOptions::default());
//! assert_eq!(report.len(), 1); // the dead inverter
//! assert!(report.to_text().starts_with("PL0006 warn"));
//! # let _ = dead;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod netlist;
pub mod pl;

pub use diag::{
    catalog, escape_json, parse_json_line, CatalogEntry, Code, Diagnostic, LintOptions, LintReport,
    Severity,
};
pub use netlist::{active_blif_notes, lint_netlist};
pub use pl::lint_pl;
