//! Diagnostic primitives: codes, severities, reports and renderers.

use std::fmt;
use std::str::FromStr;

/// How seriously a finding is treated.
///
/// The default severity of each code comes from [`catalog`]; callers can
/// override it per code through [`LintOptions::overrides`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suppress the finding entirely.
    Allow,
    /// Report the finding but keep going.
    Warn,
    /// Report the finding and make the lint stage fail.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

impl FromStr for Severity {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "allow" => Ok(Severity::Allow),
            "warn" => Ok(Severity::Warn),
            "deny" => Ok(Severity::Deny),
            other => Err(format!(
                "unknown severity '{other}' (expected allow, warn or deny)"
            )),
        }
    }
}

/// A stable lint code, rendered `PL####`.
///
/// Codes are append-only: once published in the [`catalog`] a number is
/// never reused for a different check, so golden files and CI greps stay
/// meaningful across versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Code(u16);

impl Code {
    /// Builds a code from its number (`1` ⇔ `PL0001`).
    #[must_use]
    pub const fn new(number: u16) -> Self {
        Code(number)
    }

    /// The numeric part of the code.
    #[must_use]
    pub const fn number(self) -> u16 {
        self.0
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PL{:04}", self.0)
    }
}

impl FromStr for Code {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s
            .strip_prefix("PL")
            .or_else(|| s.strip_prefix("pl"))
            .unwrap_or(s);
        match digits.parse::<u16>() {
            Ok(n) if catalog().iter().any(|e| e.code.0 == n) => Ok(Code(n)),
            Ok(n) => Err(format!("PL{n:04} is not a known lint code")),
            Err(_) => Err(format!("malformed lint code '{s}' (expected PL####)")),
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code identifying the check.
    pub code: Code,
    /// Effective severity after overrides.
    pub severity: Severity,
    /// Labels of the nodes or gates involved (names when available, ids
    /// otherwise), in check-specific order (e.g. cycle path order).
    pub nodes: Vec<String>,
    /// Self-contained human-readable description.
    pub message: String,
}

/// One row of the lint catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatalogEntry {
    /// The stable code.
    pub code: Code,
    /// Severity applied when no override is given.
    pub default_severity: Severity,
    /// One-line description of what the check finds.
    pub summary: &'static str,
}

/// The full lint catalog: every code, its default severity and a one-line
/// summary. Sorted by code.
#[must_use]
pub fn catalog() -> &'static [CatalogEntry] {
    const C: &[CatalogEntry] = &[
        CatalogEntry {
            code: Code::new(1),
            default_severity: Severity::Deny,
            summary: "combinational cycle through LUTs (cycle path named)",
        },
        CatalogEntry {
            code: Code::new(2),
            default_severity: Severity::Deny,
            summary: "flip-flop with no driver on its d pin",
        },
        CatalogEntry {
            code: Code::new(3),
            default_severity: Severity::Deny,
            summary: "primary output referencing a missing node",
        },
        CatalogEntry {
            code: Code::new(4),
            default_severity: Severity::Deny,
            summary: "LUT truth-table arity differs from its fanin count",
        },
        CatalogEntry {
            code: Code::new(5),
            default_severity: Severity::Warn,
            summary: "duplicate primary-output name",
        },
        CatalogEntry {
            code: Code::new(6),
            default_severity: Severity::Warn,
            summary: "dead cone: logic unreachable from any primary output",
        },
        CatalogEntry {
            code: Code::new(7),
            default_severity: Severity::Warn,
            summary: "trivially-constant LUT",
        },
        CatalogEntry {
            code: Code::new(8),
            default_severity: Severity::Warn,
            summary: "LUT fanin outside the table's functional support",
        },
        CatalogEntry {
            code: Code::new(9),
            default_severity: Severity::Warn,
            summary: "source text referenced an undriven net (ingest note)",
        },
        CatalogEntry {
            code: Code::new(101),
            default_severity: Severity::Warn,
            summary: "node fanout exceeds the envelope (--max-fanout)",
        },
        CatalogEntry {
            code: Code::new(102),
            default_severity: Severity::Warn,
            summary: "combinational depth exceeds the envelope (--max-depth)",
        },
        CatalogEntry {
            code: Code::new(103),
            default_severity: Severity::Warn,
            summary: "feedback loop with a zero-delay model (would oscillate)",
        },
        CatalogEntry {
            code: Code::new(201),
            default_severity: Severity::Deny,
            summary: "phased-logic gate pin with no data arc or constant tie",
        },
        CatalogEntry {
            code: Code::new(202),
            default_severity: Severity::Deny,
            summary: "phased-logic gate pin with conflicting drivers",
        },
        CatalogEntry {
            code: Code::new(203),
            default_severity: Severity::Warn,
            summary: "phased-logic gate with no data path to any output",
        },
        CatalogEntry {
            code: Code::new(204),
            default_severity: Severity::Warn,
            summary: "phased-logic data fanout exceeds the envelope",
        },
    ];
    C
}

/// Knobs for a lint run.
#[derive(Debug, Clone, PartialEq)]
pub struct LintOptions {
    /// Master switch; when false the pipeline skips the stage entirely.
    pub enabled: bool,
    /// Per-code severity overrides, applied in order (the last entry for a
    /// code wins).
    pub overrides: Vec<(Code, Severity)>,
    /// Fanout envelope for PL0101 / PL0204.
    pub max_fanout: usize,
    /// Depth envelope for PL0102.
    pub max_depth: u32,
}

impl Default for LintOptions {
    fn default() -> Self {
        Self {
            enabled: true,
            overrides: Vec::new(),
            max_fanout: 64,
            max_depth: 128,
        }
    }
}

impl LintOptions {
    /// The effective severity of a code under these options.
    #[must_use]
    pub fn severity_of(&self, code: Code) -> Severity {
        let mut sev = catalog()
            .iter()
            .find(|e| e.code == code)
            .map_or(Severity::Warn, |e| e.default_severity);
        for &(c, s) in &self.overrides {
            if c == code {
                sev = s;
            }
        }
        sev
    }
}

/// The outcome of one lint pass, deterministically ordered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    pass: &'static str,
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Which pass produced the report: `"netlist"` or `"pl"`.
    #[must_use]
    pub fn pass(&self) -> &'static str {
        self.pass
    }

    /// The findings, sorted by `(code, nodes, message)`.
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of findings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// Whether the report is clean.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether any finding is deny-level.
    #[must_use]
    pub fn has_deny(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Deny)
    }

    /// `(warnings, denials)` counts.
    #[must_use]
    pub fn counts(&self) -> (usize, usize) {
        let warns = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count();
        (warns, self.diagnostics.len() - warns)
    }

    /// One text line per finding (`CODE severity message`), or the empty
    /// string for a clean report.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{} {} {}\n", d.code, d.severity, d.message));
        }
        out
    }

    /// One JSON object per finding, newline-terminated. The field order is
    /// fixed (`pass`, `code`, `severity`, `nodes`, `message`) so output is
    /// byte-stable and diffable in CI.
    #[must_use]
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{{\"pass\":\"{}\",\"code\":\"{}\",\"severity\":\"{}\",\"nodes\":[",
                escape_json(self.pass),
                d.code,
                d.severity
            ));
            for (i, n) in d.nodes.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&escape_json(n));
                out.push('"');
            }
            out.push_str(&format!(
                "],\"message\":\"{}\"}}\n",
                escape_json(&d.message)
            ));
        }
        out
    }
}

/// JSON string escaping for [`LintReport::to_json_lines`].
#[must_use]
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses one line produced by [`LintReport::to_json_lines`] back into its
/// pass name and [`Diagnostic`]. Only understands that exact field order —
/// it exists so tests and CI can assert the format round-trips, not as a
/// general JSON parser.
#[must_use]
pub fn parse_json_line(line: &str) -> Option<(String, Diagnostic)> {
    let rest = line.trim_end().strip_prefix("{\"pass\":\"")?;
    let (pass, rest) = take_json_string(rest)?;
    let rest = rest.strip_prefix("\",\"code\":\"")?;
    let (code, rest) = take_json_string(rest)?;
    let rest = rest.strip_prefix("\",\"severity\":\"")?;
    let (severity, rest) = take_json_string(rest)?;
    let mut rest = rest.strip_prefix("\",\"nodes\":[")?;
    let mut nodes = Vec::new();
    if !rest.starts_with(']') {
        loop {
            let (node, r) = take_json_string(rest.strip_prefix('"')?)?;
            nodes.push(node);
            rest = r.strip_prefix('"')?;
            match rest.strip_prefix(',') {
                Some(r) => rest = r,
                None => break,
            }
        }
    }
    let rest = rest.strip_prefix("],\"message\":\"")?;
    let (message, rest) = take_json_string(rest)?;
    if rest != "\"}" {
        return None;
    }
    Some((
        pass,
        Diagnostic {
            code: code.parse().ok()?,
            severity: severity.parse().ok()?,
            nodes,
            message,
        },
    ))
}

/// Reads an escaped JSON string up to (but not consuming) its closing quote.
fn take_json_string(s: &str) -> Option<(String, &str)> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, &s[i..])),
            '\\' => match chars.next()?.1 {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let mut v = 0u32;
                    for _ in 0..4 {
                        v = v * 16 + chars.next()?.1.to_digit(16)?;
                    }
                    out.push(char::from_u32(v)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

/// Accumulates findings for one pass, applying severity overrides and
/// producing a canonically-ordered [`LintReport`].
pub(crate) struct Collector<'a> {
    pass: &'static str,
    opts: &'a LintOptions,
    diagnostics: Vec<Diagnostic>,
}

impl<'a> Collector<'a> {
    pub(crate) fn new(pass: &'static str, opts: &'a LintOptions) -> Self {
        Self {
            pass,
            opts,
            diagnostics: Vec::new(),
        }
    }

    /// Records a finding unless its effective severity is `allow`.
    pub(crate) fn push(&mut self, code: Code, nodes: Vec<String>, message: String) {
        let severity = self.opts.severity_of(code);
        if severity == Severity::Allow {
            return;
        }
        self.diagnostics.push(Diagnostic {
            code,
            severity,
            nodes,
            message,
        });
    }

    pub(crate) fn finish(mut self) -> LintReport {
        self.diagnostics
            .sort_by(|a, b| (a.code, &a.nodes, &a.message).cmp(&(b.code, &b.nodes, &b.message)));
        LintReport {
            pass: self.pass,
            diagnostics: self.diagnostics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_render_and_parse() {
        assert_eq!(Code::new(1).to_string(), "PL0001");
        assert_eq!(Code::new(204).to_string(), "PL0204");
        assert_eq!("PL0001".parse::<Code>().unwrap(), Code::new(1));
        assert_eq!("pl0101".parse::<Code>().unwrap(), Code::new(101));
        assert!("PL9999".parse::<Code>().is_err());
        assert!("bogus".parse::<Code>().is_err());
    }

    #[test]
    fn severities_round_trip() {
        for s in [Severity::Allow, Severity::Warn, Severity::Deny] {
            assert_eq!(s.to_string().parse::<Severity>().unwrap(), s);
        }
        assert!("fatal".parse::<Severity>().is_err());
    }

    #[test]
    fn catalog_is_sorted_and_unique() {
        let cat = catalog();
        for pair in cat.windows(2) {
            assert!(pair[0].code < pair[1].code, "catalog must be sorted");
        }
        assert!(cat.iter().all(|e| !e.summary.is_empty()));
    }

    #[test]
    fn overrides_apply_last_wins() {
        let mut opts = LintOptions::default();
        assert_eq!(opts.severity_of(Code::new(6)), Severity::Warn);
        opts.overrides.push((Code::new(6), Severity::Deny));
        opts.overrides.push((Code::new(6), Severity::Allow));
        assert_eq!(opts.severity_of(Code::new(6)), Severity::Allow);
    }

    #[test]
    fn collector_sorts_and_drops_allowed() {
        let mut opts = LintOptions::default();
        opts.overrides.push((Code::new(7), Severity::Allow));
        let mut c = Collector::new("netlist", &opts);
        c.push(Code::new(101), vec!["b".into()], "second".into());
        c.push(Code::new(7), vec!["x".into()], "dropped".into());
        c.push(Code::new(5), vec!["a".into()], "first".into());
        let report = c.finish();
        assert_eq!(report.len(), 2);
        assert_eq!(report.diagnostics()[0].code, Code::new(5));
        assert_eq!(report.diagnostics()[1].code, Code::new(101));
        assert_eq!(report.counts(), (2, 0));
        assert!(!report.has_deny());
    }

    #[test]
    fn json_lines_round_trip() {
        let opts = LintOptions::default();
        let mut c = Collector::new("netlist", &opts);
        c.push(
            Code::new(1),
            vec!["a\"b".into(), "n\\2".into()],
            "cycle: a\"b -> n\\2 -> a\"b\twith\ntabs".into(),
        );
        c.push(Code::new(5), Vec::new(), "no nodes".into());
        let report = c.finish();
        let json = report.to_json_lines();
        let parsed: Vec<_> = json.lines().map(|l| parse_json_line(l).unwrap()).collect();
        assert_eq!(parsed.len(), report.len());
        for ((pass, diag), original) in parsed.iter().zip(report.diagnostics()) {
            assert_eq!(pass, "netlist");
            assert_eq!(diag, original);
        }
    }

    #[test]
    fn text_rendering_is_one_line_per_finding() {
        let opts = LintOptions::default();
        let mut c = Collector::new("pl", &opts);
        c.push(
            Code::new(201),
            vec!["g1".into()],
            "gate g1 pin 0 floats".into(),
        );
        let report = c.finish();
        assert_eq!(report.to_text(), "PL0201 deny gate g1 pin 0 floats\n");
        assert!(report.has_deny());
        assert_eq!(report.counts(), (0, 1));
        assert_eq!(report.pass(), "pl");
    }
}
