//! The phased-logic pass: re-checks the mapped [`pl_core::PlNetlist`]
//! after technology mapping, where pin wiring and token topology exist.

use pl_core::{PlArcKind, PlGateId, PlGateKind, PlNetlist};

use crate::diag::{Code, Collector, LintOptions, LintReport};

/// How many gate labels the aggregated dead-gate diagnostic (PL0203) spells
/// out before eliding the rest.
const MAX_LISTED: usize = 8;

/// Runs every phased-logic check and returns the findings.
#[must_use]
pub fn lint_pl(pl: &PlNetlist, opts: &LintOptions) -> LintReport {
    let mut c = Collector::new("pl", opts);
    let n = pl.gates().len();
    let label = |id: PlGateId| -> String {
        pl.gate(id)
            .name()
            .map_or_else(|| id.to_string(), str::to_string)
    };

    // PL0201 / PL0202: every live pin must have exactly one driver — a
    // constant tie or a single data arc (mirrors PlNetlist::check_pins, but
    // reports every offender instead of the first).
    for (i, gate) in pl.gates().iter().enumerate() {
        let id = PlGateId::from_index(i);
        for (pin, cv) in gate.const_pins().iter().enumerate() {
            let arcs = gate
                .data_in()
                .iter()
                .filter(|a| pl.arc(**a).dst_pin() == Some(pin as u8))
                .count();
            let drivers = arcs + usize::from(cv.is_some());
            if drivers == 0 {
                c.push(
                    Code::new(201),
                    vec![label(id)],
                    format!(
                        "gate '{}' pin {pin} has no data arc or constant tie",
                        label(id)
                    ),
                );
            } else if drivers > 1 {
                c.push(
                    Code::new(202),
                    vec![label(id)],
                    format!("gate '{}' pin {pin} has {drivers} drivers", label(id)),
                );
            }
        }
    }

    // PL0203: dead gates. Walk data arcs backwards from every output gate;
    // compute/register gates never reached can fire forever without any
    // token reaching the environment. One aggregated finding.
    let mut live = vec![false; n];
    let mut stack: Vec<usize> = pl.output_gates().iter().map(|(_, id)| id.index()).collect();
    while let Some(i) = stack.pop() {
        if std::mem::replace(&mut live[i], true) {
            continue;
        }
        for &arc in pl.gate(PlGateId::from_index(i)).data_in() {
            let a = pl.arc(arc);
            if a.kind() == PlArcKind::Data {
                stack.push(a.src().index());
            }
        }
    }
    let dead: Vec<PlGateId> = (0..n)
        .map(PlGateId::from_index)
        .filter(|&id| !live[id.index()] && pl.gate(id).is_logic())
        .collect();
    if !dead.is_empty() {
        let mut labels: Vec<String> = dead.iter().map(|&id| label(id)).collect();
        labels.sort();
        let shown = labels
            .iter()
            .take(MAX_LISTED)
            .cloned()
            .collect::<Vec<_>>()
            .join(", ");
        let elided = if labels.len() > MAX_LISTED {
            format!(" … and {} more", labels.len() - MAX_LISTED)
        } else {
            String::new()
        };
        c.push(
            Code::new(203),
            labels.clone(),
            format!(
                "{} gate(s) with no data path to any output: {shown}{elided}",
                labels.len()
            ),
        );
    }

    // PL0204: data-fanout envelope. Every data fanout is one more consumer
    // whose acknowledge the producer must gather before it can fire again,
    // so wide fanout directly slows the token game.
    for (i, gate) in pl.gates().iter().enumerate() {
        let id = PlGateId::from_index(i);
        if matches!(pl.gate(id).kind(), PlGateKind::Constant { .. }) {
            continue; // constants are outside the token game
        }
        let fo = gate
            .out_arcs()
            .iter()
            .filter(|a| pl.arc(**a).kind() == PlArcKind::Data)
            .count();
        if fo > opts.max_fanout {
            c.push(
                Code::new(204),
                vec![label(id)],
                format!(
                    "gate '{}' has data fanout {fo} (envelope {})",
                    label(id),
                    opts.max_fanout
                ),
            );
        }
    }

    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_netlist::Netlist;

    fn mapped(netlist: &Netlist) -> PlNetlist {
        PlNetlist::from_sync(netlist).expect("valid netlist maps")
    }

    fn codes(report: &LintReport) -> Vec<u16> {
        report
            .diagnostics()
            .iter()
            .map(|d| d.code.number())
            .collect()
    }

    fn sample() -> Netlist {
        let mut nl = Netlist::new("sample");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_and2(a, b).unwrap();
        let d = nl.add_dff(false);
        nl.set_dff_input(d, g).unwrap();
        nl.set_output("q", d);
        nl
    }

    #[test]
    fn clean_mapping_is_clean() {
        let pl = mapped(&sample());
        assert!(lint_pl(&pl, &LintOptions::default()).is_empty());
    }

    #[test]
    fn removed_arc_floats_a_pin() {
        let mut pl = mapped(&sample());
        // Remove the first data arc feeding a logic gate; its pin floats.
        let victim = pl
            .arcs()
            .iter()
            .enumerate()
            .find(|(_, a)| a.kind() == PlArcKind::Data && pl.gate(a.dst()).is_logic())
            .map(|(i, _)| pl_core::PlArcId::from_index(i))
            .expect("mapped netlist has data arcs");
        pl.inject_remove_arc(victim);
        let report = lint_pl(&pl, &LintOptions::default());
        assert!(codes(&report).contains(&201));
        assert!(report.has_deny());
    }

    #[test]
    fn tight_fanout_envelope_fires() {
        let mut nl = Netlist::new("fan");
        let a = nl.add_input("a");
        for i in 0..3 {
            let g = nl.add_not(a).unwrap();
            nl.set_output(format!("y{i}"), g);
        }
        let pl = mapped(&nl);
        let opts = LintOptions {
            max_fanout: 2,
            ..LintOptions::default()
        };
        let report = lint_pl(&pl, &opts);
        assert_eq!(codes(&report), vec![204]);
        assert!(report.diagnostics()[0].message.contains("data fanout 3"));
    }

    #[test]
    fn reports_are_byte_identical_across_runs() {
        let pl = mapped(&sample());
        let first = lint_pl(&pl, &LintOptions::default());
        for _ in 0..10 {
            assert_eq!(lint_pl(&pl, &LintOptions::default()), first);
        }
    }
}
