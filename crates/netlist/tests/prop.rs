//! Property-based tests for the netlist IR: cleanup passes and the BLIF
//! round-trip must preserve sequential behaviour on arbitrary circuits.

use pl_boolfn::TruthTable;
use pl_netlist::{blif, eval::Evaluator, opt, Netlist, NodeId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Recipe {
    num_inputs: usize,
    num_dffs: usize,
    luts: Vec<(u64, Vec<usize>)>,
    consts: Vec<bool>,
    num_outputs: usize,
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    (
        1usize..5,
        0usize..4,
        proptest::collection::vec(
            (
                any::<u64>(),
                proptest::collection::vec(any::<usize>(), 1..5),
            ),
            1..20,
        ),
        proptest::collection::vec(any::<bool>(), 0..3),
        1usize..5,
    )
        .prop_map(|(num_inputs, num_dffs, luts, consts, num_outputs)| Recipe {
            num_inputs,
            num_dffs,
            luts,
            consts,
            num_outputs,
        })
}

fn build(r: &Recipe) -> Netlist {
    let mut n = Netlist::new("prop");
    let mut pool: Vec<NodeId> = Vec::new();
    for i in 0..r.num_inputs {
        pool.push(n.add_input(format!("i{i}")));
    }
    for &v in &r.consts {
        pool.push(n.add_const(v));
    }
    let dffs: Vec<NodeId> = (0..r.num_dffs).map(|k| n.add_dff(k % 3 == 0)).collect();
    pool.extend(&dffs);
    for (bits, fanins) in &r.luts {
        let srcs: Vec<NodeId> = fanins.iter().map(|&f| pool[f % pool.len()]).collect();
        let t = TruthTable::from_bits(srcs.len(), *bits);
        pool.push(n.add_lut(t, srcs).expect("arity matches"));
    }
    for (k, &d) in dffs.iter().enumerate() {
        n.set_dff_input(d, pool[(k * 5 + 1) % pool.len()])
            .expect("valid");
    }
    for k in 0..r.num_outputs {
        n.set_output(
            format!("o{k}"),
            pool[pool.len() - 1 - (k % pool.len().min(3))],
        );
    }
    n
}

fn behaviour(n: &Netlist, cycles: usize, seed: u64) -> Vec<Vec<bool>> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut sim = Evaluator::new(n).expect("validates");
    (0..cycles)
        .map(|_| {
            let ins: Vec<bool> = (0..n.inputs().len()).map(|_| rng.gen()).collect();
            sim.step(&ins).expect("in range")
        })
        .collect()
}

/// Rewrites serialized BLIF into the SIS/ABC dialect the parser must also
/// accept: every `.latch` is cycled through one of the four legal arities
/// (behaviour-preserving — the bare and `<type> <control>` forms are only
/// used when the init value is the default 0), and every line with at
/// least three tokens is alternately wrapped with a `\` continuation.
fn sisify(text: &str) -> String {
    let mut out = String::new();
    let mut latch_no = 0usize;
    for (i, line) in text.lines().enumerate() {
        let mut toks: Vec<String> = line.split_whitespace().map(str::to_string).collect();
        if toks.first().map(String::as_str) == Some(".latch") && toks.len() == 4 {
            let init = toks[3].clone();
            if init == "0" {
                // Default init: the 3-token and 5-token forms may omit it.
                toks.truncate(3);
                if latch_no % 2 == 1 {
                    toks.extend(["re".to_string(), "clk".to_string()]);
                }
            } else if latch_no % 2 == 1 {
                // Non-default init: 4-token form (unchanged) or 6-token.
                toks.truncate(3);
                toks.extend(["re".to_string(), "clk".to_string(), init]);
            }
            latch_no += 1;
        }
        if toks.len() >= 3 && i % 2 == 0 {
            out.push_str(&toks[0]);
            out.push_str(" \\\n    ");
            out.push_str(&toks[1..].join(" "));
        } else {
            out.push_str(&toks.join(" "));
        }
        out.push('\n');
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// cleanup() (const-prop + strash + DCE to fixpoint) is behaviour-
    /// preserving and never grows the netlist.
    #[test]
    fn cleanup_preserves_behaviour(recipe in arb_recipe()) {
        let n = build(&recipe);
        prop_assume!(n.validate().is_ok());
        let cleaned = opt::cleanup(&n).expect("cleanup succeeds");
        prop_assert!(cleaned.len() <= n.len());
        prop_assert_eq!(behaviour(&n, 24, 5), behaviour(&cleaned, 24, 5));
    }

    /// BLIF serialization round-trips behaviour exactly.
    #[test]
    fn blif_roundtrip(recipe in arb_recipe()) {
        let n = build(&recipe);
        prop_assume!(n.validate().is_ok());
        let text = blif::to_blif(&n).expect("serializes");
        let back = blif::from_blif(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        prop_assert_eq!(behaviour(&n, 24, 9), behaviour(&back, 24, 9));
    }

    /// The SIS/ABC dialect — `\` continuation lines plus all four `.latch`
    /// arities — parses back to the same behaviour as the pristine text.
    /// (Both halves of this regressed before the ingestion fixes: wrapped
    /// lines died with "pattern width mismatch" and the 5-token latch with
    /// "unsupported latch form".)
    #[test]
    fn blif_roundtrip_survives_continuations_and_latch_arities(recipe in arb_recipe()) {
        let n = build(&recipe);
        prop_assume!(n.validate().is_ok());
        let text = sisify(&blif::to_blif(&n).expect("serializes"));
        let back = blif::from_blif(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        prop_assert_eq!(behaviour(&n, 24, 11), behaviour(&back, 24, 11));
    }

    /// Verilog export always produces a module with balanced structure.
    #[test]
    fn verilog_always_emits_well_formed_text(recipe in arb_recipe()) {
        let n = build(&recipe);
        prop_assume!(n.validate().is_ok());
        let v = pl_netlist::verilog::to_verilog(&n).expect("emits");
        prop_assert!(v.starts_with("module "));
        prop_assert!(v.trim_end().ends_with("endmodule"));
        // every declared wire/reg is assigned or driven
        let decls = v.lines().filter(|l| l.trim_start().starts_with("wire ")).count();
        let assigns = v.lines().filter(|l| l.contains("assign ")).count();
        prop_assert!(assigns >= decls, "wires without drivers:\n{v}");
    }

    /// Dead-node elimination keeps exactly the output cones.
    #[test]
    fn dce_result_is_closed(recipe in arb_recipe()) {
        let n = build(&recipe);
        prop_assume!(n.validate().is_ok());
        let r = opt::dead_node_elimination(&n).expect("dce");
        // All fanins of kept nodes are kept (the rebuild would have failed
        // otherwise); behaviour is intact.
        prop_assert_eq!(behaviour(&n, 16, 3), behaviour(&r.netlist, 16, 3));
    }
}
