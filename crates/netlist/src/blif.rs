//! BLIF-style text serialization of netlists.
//!
//! The Berkeley Logic Interchange Format is the lingua franca of academic
//! logic-synthesis tools; supporting it makes the flow inspectable with
//! standard viewers and allows round-trip testing. Only the structural
//! subset needed here is implemented: `.model`, `.inputs`, `.outputs`,
//! `.names` (ON-set or OFF-set covers) and `.latch`.

use std::collections::HashMap;
use std::fmt::Write as _;

use pl_boolfn::{isop, Cube, Polarity, TruthTable};

use crate::error::NetlistError;
use crate::graph::{Netlist, NodeId};
use crate::node::NodeKind;

/// Serializes a netlist to BLIF text.
///
/// Node signals are named `n<i>`, primary inputs keep their port names, and
/// each primary output becomes a buffer onto its port name.
///
/// # Errors
///
/// Fails if the netlist does not validate.
pub fn to_blif(netlist: &Netlist) -> Result<String, NetlistError> {
    netlist.validate()?;
    let mut out = String::new();
    let sig = |id: NodeId| -> String {
        match netlist.node(id).kind() {
            NodeKind::Input { name } => name.clone(),
            _ => format!("n{}", id.index()),
        }
    };
    writeln!(out, ".model {}", netlist.name()).expect("string write");
    let input_names: Vec<String> = netlist.inputs().iter().map(|&i| sig(i)).collect();
    writeln!(out, ".inputs {}", input_names.join(" ")).expect("string write");
    let output_names: Vec<String> = netlist.outputs().iter().map(|(n, _)| n.clone()).collect();
    writeln!(out, ".outputs {}", output_names.join(" ")).expect("string write");

    for &ff in netlist.dffs() {
        if let NodeKind::Dff { d: Some(src), init } = netlist.node(ff).kind() {
            writeln!(out, ".latch {} {} {}", sig(*src), sig(ff), u8::from(*init))
                .expect("string write");
        }
    }
    for (id, node) in netlist.iter() {
        match node.kind() {
            NodeKind::Const { value } => {
                writeln!(out, ".names {}", sig(id)).expect("string write");
                if *value {
                    writeln!(out, "1").expect("string write");
                }
            }
            NodeKind::Lut { table, inputs } => {
                let names: Vec<String> = inputs.iter().map(|&i| sig(i)).collect();
                writeln!(out, ".names {} {}", names.join(" "), sig(id)).expect("string write");
                for cube in &isop(table, table) {
                    let mut pat = String::new();
                    for v in 0..table.num_vars() {
                        pat.push(match cube.literal(v) {
                            Polarity::Positive => '1',
                            Polarity::Negative => '0',
                            Polarity::DontCare => '-',
                        });
                    }
                    writeln!(out, "{pat} 1").expect("string write");
                }
            }
            _ => {}
        }
    }
    for (name, id) in netlist.outputs() {
        let driver = sig(*id);
        if driver != *name {
            writeln!(out, ".names {driver} {name}").expect("string write");
            writeln!(out, "1 1").expect("string write");
        }
    }
    writeln!(out, ".end").expect("string write");
    Ok(out)
}

/// Joins `\` line continuations into logical lines.
///
/// SIS and ABC wrap long `.inputs`/`.outputs`/`.names` lines with a
/// trailing backslash; tokenizing the physical lines raw would misparse
/// every wrapped directive. Comments are stripped first (a `#` comment
/// ends the physical line, so a backslash inside one does not continue
/// anything). Each logical line keeps the number of its **first** physical
/// line so parse errors point at where the construct starts.
fn logical_lines(text: &str) -> Vec<(usize, String)> {
    let mut lines: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let content = raw.split('#').next().unwrap_or("").trim_end();
        let (content, continued) = match content.strip_suffix('\\') {
            Some(head) => (head, true),
            None => (content, false),
        };
        match pending.as_mut() {
            Some((_, acc)) => {
                acc.push(' ');
                acc.push_str(content);
            }
            None => pending = Some((lineno + 1, content.to_string())),
        }
        if !continued {
            lines.push(pending.take().expect("pending was just set"));
        }
    }
    // A trailing backslash on the last physical line continues nothing.
    if let Some(entry) = pending.take() {
        lines.push(entry);
    }
    lines
}

/// Parses BLIF text into a [`Netlist`].
///
/// Handles the structural subset emitted by SIS/ABC, including `\` line
/// continuations and all four `.latch` arities (`<input> <output>` with
/// optional `<type> <control>` and optional `<init>`).
///
/// # Errors
///
/// Returns [`NetlistError::BlifParse`] with a line number for malformed
/// input (the first physical line of a wrapped construct), plus ordinary
/// construction errors for over-wide LUTs.
pub fn from_blif(text: &str) -> Result<Netlist, NetlistError> {
    #[derive(Debug)]
    struct NamesDef {
        line: usize,
        inputs: Vec<String>,
        output: String,
        on_cubes: Vec<String>,
        off_cubes: Vec<String>,
    }
    let err = |line: usize, message: &str| NetlistError::BlifParse {
        line,
        message: message.to_string(),
    };

    let mut model = String::from("top");
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut latches: Vec<(usize, String, String, bool)> = Vec::new();
    let mut names: Vec<NamesDef> = Vec::new();

    let mut current: Option<NamesDef> = None;
    for (line, logical) in logical_lines(text) {
        let trimmed = logical.trim();
        if trimmed.is_empty() {
            continue;
        }
        let toks: Vec<&str> = trimmed.split_whitespace().collect();
        if trimmed.starts_with('.') {
            if let Some(def) = current.take() {
                names.push(def);
            }
            match toks[0] {
                ".model" => {
                    model = toks.get(1).unwrap_or(&"top").to_string();
                }
                ".inputs" => inputs.extend(toks[1..].iter().map(|s| s.to_string())),
                ".outputs" => outputs.extend(toks[1..].iter().map(|s| s.to_string())),
                ".latch" => {
                    // .latch <input> <output> [<type> <control>] [<init>]
                    // All four legal arities: both the <type> <control> pair
                    // and the <init> value are independently optional, and
                    // an omitted init defaults to 0 in every form.
                    if toks.len() < 3 {
                        return Err(err(line, "latch needs input and output"));
                    }
                    let init_tok = match toks.len() {
                        3 | 5 => "0",
                        4 => toks[3],
                        6 => toks[5],
                        _ => return Err(err(line, "unsupported latch form")),
                    };
                    let init = match init_tok {
                        "0" => false,
                        "1" => true,
                        "2" | "3" => false, // don't-care / unknown -> reset to 0
                        _ => return Err(err(line, "bad latch init value")),
                    };
                    latches.push((line, toks[1].to_string(), toks[2].to_string(), init));
                }
                ".names" => {
                    if toks.len() < 2 {
                        return Err(err(line, "names needs at least an output"));
                    }
                    current = Some(NamesDef {
                        line,
                        inputs: toks[1..toks.len() - 1]
                            .iter()
                            .map(|s| s.to_string())
                            .collect(),
                        output: toks[toks.len() - 1].to_string(),
                        on_cubes: Vec::new(),
                        off_cubes: Vec::new(),
                    });
                }
                ".end" => break,
                other => return Err(err(line, &format!("unsupported directive {other}"))),
            }
        } else {
            let def = current
                .as_mut()
                .ok_or_else(|| err(line, "cover line outside .names"))?;
            let (pattern, value) = if def.inputs.is_empty() {
                (String::new(), toks[0])
            } else {
                if toks.len() != 2 {
                    return Err(err(line, "cover line needs pattern and value"));
                }
                (toks[0].to_string(), toks[1])
            };
            if pattern.len() != def.inputs.len() {
                return Err(err(line, "pattern width mismatch"));
            }
            if let Some(bad) = pattern.chars().find(|c| !matches!(c, '0' | '1' | '-')) {
                return Err(err(line, &format!("bad cover character '{bad}'")));
            }
            match value {
                "1" => def.on_cubes.push(pattern),
                "0" => def.off_cubes.push(pattern),
                _ => return Err(err(line, "cover value must be 0 or 1")),
            }
        }
    }
    if let Some(def) = current.take() {
        names.push(def);
    }

    // Build the netlist. Signals: inputs, latch outputs, then .names outputs
    // in dependency order.
    let mut n = Netlist::new(model);
    let mut sig: HashMap<String, NodeId> = HashMap::new();
    for name in &inputs {
        sig.insert(name.clone(), n.add_input(name.clone()));
    }
    for (line, _, q, init) in &latches {
        if sig.contains_key(q) {
            return Err(err(*line, "latch output redefines a signal"));
        }
        sig.insert(q.clone(), n.add_dff(*init));
    }
    // Topological creation of .names definitions.
    let mut remaining: Vec<NamesDef> = names;
    while !remaining.is_empty() {
        let ready: Vec<usize> = remaining
            .iter()
            .enumerate()
            .filter(|(_, d)| d.inputs.iter().all(|i| sig.contains_key(i)))
            .map(|(i, _)| i)
            .collect();
        if ready.is_empty() {
            let d = &remaining[0];
            return Err(err(
                d.line,
                "unresolvable .names dependencies (combinational loop or undefined signal)",
            ));
        }
        // Remove in reverse index order to keep indices valid.
        for &idx in ready.iter().rev() {
            let def = remaining.swap_remove(idx);
            let width = def.inputs.len();
            if width > 6 {
                return Err(NetlistError::LutTooWide {
                    arity: width,
                    max: 6,
                });
            }
            if !def.on_cubes.is_empty() && !def.off_cubes.is_empty() {
                return Err(err(def.line, "mixed ON and OFF cover"));
            }
            let mut table = TruthTable::zero(width);
            let (cubes, invert) = if def.off_cubes.is_empty() {
                (&def.on_cubes, false)
            } else {
                (&def.off_cubes, true)
            };
            for pat in cubes {
                let mut cube = Cube::universal(width);
                for (v, ch) in pat.chars().enumerate() {
                    cube = match ch {
                        '1' => cube.with_literal(v, Polarity::Positive),
                        '0' => cube.with_literal(v, Polarity::Negative),
                        '-' => cube,
                        _ => return Err(err(def.line, "bad cover character")),
                    };
                }
                table = table | cube.to_truth_table();
            }
            if invert {
                table = !table;
            }
            let node = if width == 0 {
                n.add_const(table.eval(0))
            } else {
                let fanins: Vec<NodeId> = def.inputs.iter().map(|i| sig[i]).collect();
                n.add_lut(table, fanins)?
            };
            if sig.insert(def.output.clone(), node).is_some() {
                return Err(err(def.line, "signal defined twice"));
            }
        }
    }
    for (line, d, q, _) in &latches {
        let src = *sig
            .get(d)
            .ok_or_else(|| err(*line, "latch input signal undefined"))?;
        n.set_dff_input(sig[q], src)?;
    }
    for name in &outputs {
        let id = *sig
            .get(name)
            .ok_or_else(|| err(0, &format!("output signal '{name}' undefined")))?;
        n.set_output(name.clone(), id);
    }
    n.validate()?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;

    fn roundtrip_behaviour(n: &Netlist, vectors: &[Vec<bool>]) {
        let text = to_blif(n).unwrap();
        let back = from_blif(&text).unwrap();
        let mut a = Evaluator::new(n).unwrap();
        let mut b = Evaluator::new(&back).unwrap();
        for v in vectors {
            assert_eq!(
                a.step(v).unwrap(),
                b.step(v).unwrap(),
                "vector {v:?}\n{text}"
            );
        }
    }

    #[test]
    fn combinational_roundtrip() {
        let mut n = Netlist::new("comb");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let ab = n.add_and2(a, b).unwrap();
        let f = n.add_xor2(ab, c).unwrap();
        n.set_output("f", f);
        let vecs: Vec<Vec<bool>> = (0..8)
            .map(|m| (0..3).map(|i| m & (1 << i) != 0).collect())
            .collect();
        roundtrip_behaviour(&n, &vecs);
    }

    #[test]
    fn sequential_roundtrip() {
        let mut n = Netlist::new("seq");
        let d = n.add_dff(true);
        let x = n.add_input("x");
        let g = n.add_xor2(d, x).unwrap();
        n.set_dff_input(d, g).unwrap();
        n.set_output("q", d);
        let vecs: Vec<Vec<bool>> =
            vec![vec![true], vec![false], vec![true], vec![true], vec![false]];
        roundtrip_behaviour(&n, &vecs);
    }

    #[test]
    fn constants_roundtrip() {
        let mut n = Netlist::new("konst");
        let one = n.add_const(true);
        let zero = n.add_const(false);
        let x = n.add_input("x");
        let g1 = n.add_and2(x, one).unwrap();
        let g2 = n.add_or2(g1, zero).unwrap();
        n.set_output("y", g2);
        roundtrip_behaviour(&n, &[vec![true], vec![false]]);
    }

    #[test]
    fn parse_off_set_cover() {
        let text = "\
.model offset
.inputs a b
.outputs y
.names a b y
00 0
.end
";
        let n = from_blif(text).unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        // y = NOT(a'b') = a | b
        assert_eq!(sim.step(&[false, false]).unwrap(), vec![false]);
        assert_eq!(sim.step(&[true, false]).unwrap(), vec![true]);
    }

    #[test]
    fn parse_reports_line_numbers() {
        let text = ".model x\n.inputs a\n.outputs y\n.names a y\n2 1\n.end\n";
        match from_blif(text) {
            Err(NetlistError::BlifParse { line, .. }) => assert_eq!(line, 5),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_undefined_output() {
        let text = ".model x\n.inputs a\n.outputs nope\n.end\n";
        assert!(matches!(
            from_blif(text),
            Err(NetlistError::BlifParse { .. })
        ));
    }

    #[test]
    fn continuation_lines_are_joined() {
        // SIS/ABC wrap long .inputs and .names lines with a trailing
        // backslash; the pre-fix parser tokenized physical lines raw and
        // rejected this file with "pattern width mismatch".
        let text = "\
.model wrapped
.inputs a b \\
  c
.outputs y
.names a b \\
  c y
1-1 \\
1
.end
";
        let n = from_blif(text).unwrap();
        assert_eq!(n.inputs().len(), 3);
        let mut sim = Evaluator::new(&n).unwrap();
        // y = a & c (b don't-care)
        assert_eq!(sim.step(&[true, false, true]).unwrap(), vec![true]);
        assert_eq!(sim.step(&[true, true, false]).unwrap(), vec![false]);
    }

    #[test]
    fn continuation_before_comment_and_trailing_backslash_at_eof() {
        // A `#` comment ends the physical line, so a backslash inside one
        // continues nothing; a trailing backslash on the last line is inert.
        let text =
            ".model x\n.inputs a # not a continuation \\\n.outputs y\n.names a y\n1 1\n.end \\";
        let n = from_blif(text).unwrap();
        assert_eq!(n.inputs().len(), 1);
    }

    #[test]
    fn continuation_errors_report_first_physical_line() {
        // The bad cover row starts on physical line 5; its continuation is
        // on line 6. The error must name line 5.
        let text = ".model x\n.inputs a b\n.outputs y\n.names a b y\n1\\\n2 1\n.end\n";
        match from_blif(text) {
            Err(NetlistError::BlifParse { line, .. }) => assert_eq!(line, 5),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn latch_accepts_all_four_arities() {
        // 3-token (bare), 4-token (init), 5-token (type+control, no init —
        // rejected as "unsupported latch form" before the fix), and
        // 6-token (type+control+init) forms are all legal BLIF.
        for (latch_line, expect_init) in [
            (".latch g q", false),
            (".latch g q 1", true),
            (".latch g q re clk", false),
            (".latch g q re clk 1", true),
        ] {
            let text = format!(
                ".model l\n.inputs x\n.outputs q\n{latch_line}\n.names x q g\n-1 1\n.end\n"
            );
            let n = from_blif(&text).unwrap_or_else(|e| panic!("'{latch_line}' rejected: {e}"));
            let mut sim = Evaluator::new(&n).unwrap();
            // First cycle exposes the init value before any update.
            assert_eq!(
                sim.step(&[false]).unwrap(),
                vec![expect_init],
                "init for '{latch_line}'"
            );
        }
    }

    #[test]
    fn latch_five_token_form_keeps_validating_init_elsewhere() {
        // The 5-token fix must not loosen init validation in the 6-token
        // form.
        let text = ".model l\n.inputs x\n.outputs q\n.latch g q re clk 7\n.names x g\n1 1\n.end\n";
        assert!(matches!(
            from_blif(text),
            Err(NetlistError::BlifParse { line: 4, .. })
        ));
    }

    #[test]
    fn names_out_of_order_are_resolved() {
        // g is defined after h although h reads g.
        let text = "\
.model order
.inputs a
.outputs y
.names g y
1 1
.names a g
0 1
.end
";
        let n = from_blif(text).unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        assert_eq!(sim.step(&[false]).unwrap(), vec![true]);
        assert_eq!(sim.step(&[true]).unwrap(), vec![false]);
    }
}
