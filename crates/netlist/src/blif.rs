//! BLIF-style text serialization of netlists.
//!
//! The Berkeley Logic Interchange Format is the lingua franca of academic
//! logic-synthesis tools; supporting it makes the flow inspectable with
//! standard viewers and allows round-trip testing. Only the structural
//! subset needed here is implemented: `.model`, `.inputs`, `.outputs`,
//! `.names` (ON-set or OFF-set covers) and `.latch`.

use std::collections::HashMap;
use std::fmt::Write as _;

use pl_boolfn::{isop, Cube, Polarity, TruthTable};

use crate::error::NetlistError;
use crate::graph::{Netlist, NodeId};
use crate::node::NodeKind;

/// Serializes a netlist to BLIF text.
///
/// Node signals are named `n<i>`, primary inputs keep their port names, and
/// each primary output becomes a buffer onto its port name.
///
/// # Errors
///
/// Fails if the netlist does not validate.
pub fn to_blif(netlist: &Netlist) -> Result<String, NetlistError> {
    netlist.validate()?;
    let mut out = String::new();
    let sig = |id: NodeId| -> String {
        match netlist.node(id).kind() {
            NodeKind::Input { name } => name.clone(),
            _ => format!("n{}", id.index()),
        }
    };
    writeln!(out, ".model {}", netlist.name()).expect("string write");
    let input_names: Vec<String> = netlist.inputs().iter().map(|&i| sig(i)).collect();
    writeln!(out, ".inputs {}", input_names.join(" ")).expect("string write");
    let output_names: Vec<String> = netlist.outputs().iter().map(|(n, _)| n.clone()).collect();
    writeln!(out, ".outputs {}", output_names.join(" ")).expect("string write");

    for &ff in netlist.dffs() {
        if let NodeKind::Dff { d: Some(src), init } = netlist.node(ff).kind() {
            writeln!(out, ".latch {} {} {}", sig(*src), sig(ff), u8::from(*init))
                .expect("string write");
        }
    }
    for (id, node) in netlist.iter() {
        match node.kind() {
            NodeKind::Const { value } => {
                writeln!(out, ".names {}", sig(id)).expect("string write");
                if *value {
                    writeln!(out, "1").expect("string write");
                }
            }
            NodeKind::Lut { table, inputs } => {
                let names: Vec<String> = inputs.iter().map(|&i| sig(i)).collect();
                writeln!(out, ".names {} {}", names.join(" "), sig(id)).expect("string write");
                for cube in &isop(table, table) {
                    let mut pat = String::new();
                    for v in 0..table.num_vars() {
                        pat.push(match cube.literal(v) {
                            Polarity::Positive => '1',
                            Polarity::Negative => '0',
                            Polarity::DontCare => '-',
                        });
                    }
                    writeln!(out, "{pat} 1").expect("string write");
                }
            }
            _ => {}
        }
    }
    for (name, id) in netlist.outputs() {
        let driver = sig(*id);
        if driver != *name {
            writeln!(out, ".names {driver} {name}").expect("string write");
            writeln!(out, "1 1").expect("string write");
        }
    }
    writeln!(out, ".end").expect("string write");
    Ok(out)
}

/// Joins `\` line continuations into logical lines.
///
/// SIS and ABC wrap long `.inputs`/`.outputs`/`.names` lines with a
/// trailing backslash; tokenizing the physical lines raw would misparse
/// every wrapped directive. Comments are stripped first (a `#` comment
/// ends the physical line, so a backslash inside one does not continue
/// anything). Each logical line keeps the number of its **first** physical
/// line so parse errors point at where the construct starts.
fn logical_lines(text: &str) -> Vec<(usize, String)> {
    let mut lines: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let content = raw.split('#').next().unwrap_or("").trim_end();
        let (content, continued) = match content.strip_suffix('\\') {
            Some(head) => (head, true),
            None => (content, false),
        };
        match pending.as_mut() {
            Some((_, acc)) => {
                acc.push(' ');
                acc.push_str(content);
            }
            None => pending = Some((lineno + 1, content.to_string())),
        }
        if !continued {
            lines.push(pending.take().expect("pending was just set"));
        }
    }
    // A trailing backslash on the last physical line continues nothing.
    if let Some(entry) = pending.take() {
        lines.push(entry);
    }
    lines
}

/// A non-fatal observation made while parsing BLIF text: a construct the
/// parser accepts for dialect compatibility but that very likely indicates
/// a broken netlist (today: a `.latch` control net that is never driven
/// anywhere in the file). The flow's lint stage surfaces each note as a
/// `PL0009` diagnostic instead of dropping it on the floor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlifNote {
    /// 1-based line number of the construct (first physical line).
    pub line: usize,
    /// The undriven signal name.
    pub signal: String,
    /// Human-readable description.
    pub message: String,
}

/// Parses BLIF text into a [`Netlist`].
///
/// Handles the structural subset emitted by SIS/ABC, including `\` line
/// continuations and all four `.latch` arities (`<input> <output>` with
/// optional `<type> <control>` and optional `<init>`). Non-fatal parser
/// observations are discarded; use [`from_blif_with_notes`] to keep them.
///
/// # Errors
///
/// Returns [`NetlistError::BlifParse`] with a line number for malformed
/// input (the first physical line of a wrapped construct), plus ordinary
/// construction errors for over-wide LUTs.
pub fn from_blif(text: &str) -> Result<Netlist, NetlistError> {
    from_blif_with_notes(text).map(|(n, _)| n)
}

/// Parses BLIF text into a [`Netlist`] plus the parser's non-fatal
/// [`BlifNote`]s (see there). This is the entry point the flow's ingest
/// stage uses, so the notes become lint diagnostics.
///
/// # Errors
///
/// Same contract as [`from_blif`]. An undriven net referenced by `.names`
/// is a hard [`NetlistError::BlifParse`] naming the signal (it cannot be
/// represented in the IR); an undriven `.latch` control net is a note,
/// because the single-implicit-clock flow ignores control nets entirely.
pub fn from_blif_with_notes(text: &str) -> Result<(Netlist, Vec<BlifNote>), NetlistError> {
    #[derive(Debug)]
    struct NamesDef {
        line: usize,
        inputs: Vec<String>,
        output: String,
        on_cubes: Vec<String>,
        off_cubes: Vec<String>,
    }
    let err = |line: usize, message: &str| NetlistError::BlifParse {
        line,
        message: message.to_string(),
    };

    struct LatchDef {
        line: usize,
        d: String,
        q: String,
        init: bool,
        control: Option<String>,
    }

    let mut model = String::from("top");
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut latches: Vec<LatchDef> = Vec::new();
    let mut names: Vec<NamesDef> = Vec::new();

    let mut current: Option<NamesDef> = None;
    for (line, logical) in logical_lines(text) {
        let trimmed = logical.trim();
        if trimmed.is_empty() {
            continue;
        }
        let toks: Vec<&str> = trimmed.split_whitespace().collect();
        if trimmed.starts_with('.') {
            if let Some(def) = current.take() {
                names.push(def);
            }
            match toks[0] {
                ".model" => {
                    model = toks.get(1).unwrap_or(&"top").to_string();
                }
                ".inputs" => inputs.extend(toks[1..].iter().map(|s| s.to_string())),
                ".outputs" => outputs.extend(toks[1..].iter().map(|s| s.to_string())),
                ".latch" => {
                    // .latch <input> <output> [<type> <control>] [<init>]
                    // All four legal arities: both the <type> <control> pair
                    // and the <init> value are independently optional, and
                    // an omitted init defaults to 0 in every form.
                    if toks.len() < 3 {
                        return Err(err(line, "latch needs input and output"));
                    }
                    let init_tok = match toks.len() {
                        3 | 5 => "0",
                        4 => toks[3],
                        6 => toks[5],
                        _ => return Err(err(line, "unsupported latch form")),
                    };
                    let init = match init_tok {
                        "0" => false,
                        "1" => true,
                        "2" | "3" => false, // don't-care / unknown -> reset to 0
                        _ => return Err(err(line, "bad latch init value")),
                    };
                    latches.push(LatchDef {
                        line,
                        d: toks[1].to_string(),
                        q: toks[2].to_string(),
                        init,
                        control: (toks.len() >= 5).then(|| toks[4].to_string()),
                    });
                }
                ".names" => {
                    if toks.len() < 2 {
                        return Err(err(line, "names needs at least an output"));
                    }
                    current = Some(NamesDef {
                        line,
                        inputs: toks[1..toks.len() - 1]
                            .iter()
                            .map(|s| s.to_string())
                            .collect(),
                        output: toks[toks.len() - 1].to_string(),
                        on_cubes: Vec::new(),
                        off_cubes: Vec::new(),
                    });
                }
                ".end" => break,
                other => return Err(err(line, &format!("unsupported directive {other}"))),
            }
        } else {
            let def = current
                .as_mut()
                .ok_or_else(|| err(line, "cover line outside .names"))?;
            let (pattern, value) = if def.inputs.is_empty() {
                (String::new(), toks[0])
            } else {
                if toks.len() != 2 {
                    return Err(err(line, "cover line needs pattern and value"));
                }
                (toks[0].to_string(), toks[1])
            };
            if pattern.len() != def.inputs.len() {
                return Err(err(line, "pattern width mismatch"));
            }
            if let Some(bad) = pattern.chars().find(|c| !matches!(c, '0' | '1' | '-')) {
                return Err(err(line, &format!("bad cover character '{bad}'")));
            }
            match value {
                "1" => def.on_cubes.push(pattern),
                "0" => def.off_cubes.push(pattern),
                _ => return Err(err(line, "cover value must be 0 or 1")),
            }
        }
    }
    if let Some(def) = current.take() {
        names.push(def);
    }

    // Every signal the file ever drives: inputs, latch outputs, .names
    // outputs. References outside this set are undriven nets.
    let defined: std::collections::HashSet<String> = inputs
        .iter()
        .cloned()
        .chain(latches.iter().map(|l| l.q.clone()))
        .chain(names.iter().map(|d| d.output.clone()))
        .collect();

    // Latch control nets are accepted for SIS/ABC dialect compatibility
    // and ignored (the flow assumes a single implicit clock) — but one
    // that is never driven anywhere is almost certainly a netlist bug, so
    // it is recorded as an explicit note instead of vanishing silently.
    let mut blif_notes: Vec<BlifNote> = Vec::new();
    for latch in &latches {
        if let Some(c) = &latch.control {
            if !defined.contains(c.as_str()) {
                blif_notes.push(BlifNote {
                    line: latch.line,
                    signal: c.clone(),
                    message: format!(
                        "latch control references undriven net '{c}' \
                         (controls are ignored: the flow assumes a single implicit clock)"
                    ),
                });
            }
        }
    }

    // Build the netlist. Signals: inputs, latch outputs, then .names outputs
    // in dependency order.
    let mut n = Netlist::new(model);
    let mut sig: HashMap<String, NodeId> = HashMap::new();
    for name in &inputs {
        sig.insert(name.clone(), n.add_input(name.clone()));
    }
    for latch in &latches {
        if sig.contains_key(&latch.q) {
            return Err(err(latch.line, "latch output redefines a signal"));
        }
        sig.insert(latch.q.clone(), n.add_dff(latch.init));
    }
    // Topological creation of .names definitions.
    let mut remaining: Vec<NamesDef> = names;
    while !remaining.is_empty() {
        let ready: Vec<usize> = remaining
            .iter()
            .enumerate()
            .filter(|(_, d)| d.inputs.iter().all(|i| sig.contains_key(i)))
            .map(|(i, _)| i)
            .collect();
        if ready.is_empty() {
            // Distinguish the two dead ends instead of one conflated
            // message: a .names reading a net nothing drives is an
            // undriven-net reference; if every referenced net is defined
            // somewhere, the definitions themselves must cycle.
            if let Some((d, missing)) = remaining.iter().find_map(|d| {
                d.inputs
                    .iter()
                    .find(|i| !defined.contains(i.as_str()))
                    .map(|i| (d, i))
            }) {
                return Err(err(
                    d.line,
                    &format!("'{}' references undriven net '{missing}'", d.output),
                ));
            }
            let d = &remaining[0];
            return Err(err(
                d.line,
                &format!("combinational .names loop involving '{}'", d.output),
            ));
        }
        // Remove in reverse index order to keep indices valid.
        for &idx in ready.iter().rev() {
            let def = remaining.swap_remove(idx);
            let width = def.inputs.len();
            if width > 6 {
                return Err(NetlistError::LutTooWide {
                    arity: width,
                    max: 6,
                });
            }
            if !def.on_cubes.is_empty() && !def.off_cubes.is_empty() {
                return Err(err(def.line, "mixed ON and OFF cover"));
            }
            let mut table = TruthTable::zero(width);
            let (cubes, invert) = if def.off_cubes.is_empty() {
                (&def.on_cubes, false)
            } else {
                (&def.off_cubes, true)
            };
            for pat in cubes {
                let mut cube = Cube::universal(width);
                for (v, ch) in pat.chars().enumerate() {
                    cube = match ch {
                        '1' => cube.with_literal(v, Polarity::Positive),
                        '0' => cube.with_literal(v, Polarity::Negative),
                        '-' => cube,
                        _ => return Err(err(def.line, "bad cover character")),
                    };
                }
                table = table | cube.to_truth_table();
            }
            if invert {
                table = !table;
            }
            let node = if width == 0 {
                n.add_const(table.eval(0))
            } else {
                let fanins: Vec<NodeId> = def.inputs.iter().map(|i| sig[i]).collect();
                n.add_lut(table, fanins)?
            };
            if sig.insert(def.output.clone(), node).is_some() {
                return Err(err(def.line, "signal defined twice"));
            }
        }
    }
    for latch in &latches {
        let src = *sig.get(&latch.d).ok_or_else(|| {
            err(
                latch.line,
                &format!("latch references undriven net '{}'", latch.d),
            )
        })?;
        n.set_dff_input(sig[&latch.q], src)?;
    }
    for name in &outputs {
        let id = *sig
            .get(name)
            .ok_or_else(|| err(0, &format!("output references undriven net '{name}'")))?;
        n.set_output(name.clone(), id);
    }
    n.validate()?;
    Ok((n, blif_notes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;

    fn roundtrip_behaviour(n: &Netlist, vectors: &[Vec<bool>]) {
        let text = to_blif(n).unwrap();
        let back = from_blif(&text).unwrap();
        let mut a = Evaluator::new(n).unwrap();
        let mut b = Evaluator::new(&back).unwrap();
        for v in vectors {
            assert_eq!(
                a.step(v).unwrap(),
                b.step(v).unwrap(),
                "vector {v:?}\n{text}"
            );
        }
    }

    #[test]
    fn combinational_roundtrip() {
        let mut n = Netlist::new("comb");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let ab = n.add_and2(a, b).unwrap();
        let f = n.add_xor2(ab, c).unwrap();
        n.set_output("f", f);
        let vecs: Vec<Vec<bool>> = (0..8)
            .map(|m| (0..3).map(|i| m & (1 << i) != 0).collect())
            .collect();
        roundtrip_behaviour(&n, &vecs);
    }

    #[test]
    fn sequential_roundtrip() {
        let mut n = Netlist::new("seq");
        let d = n.add_dff(true);
        let x = n.add_input("x");
        let g = n.add_xor2(d, x).unwrap();
        n.set_dff_input(d, g).unwrap();
        n.set_output("q", d);
        let vecs: Vec<Vec<bool>> =
            vec![vec![true], vec![false], vec![true], vec![true], vec![false]];
        roundtrip_behaviour(&n, &vecs);
    }

    #[test]
    fn constants_roundtrip() {
        let mut n = Netlist::new("konst");
        let one = n.add_const(true);
        let zero = n.add_const(false);
        let x = n.add_input("x");
        let g1 = n.add_and2(x, one).unwrap();
        let g2 = n.add_or2(g1, zero).unwrap();
        n.set_output("y", g2);
        roundtrip_behaviour(&n, &[vec![true], vec![false]]);
    }

    #[test]
    fn parse_off_set_cover() {
        let text = "\
.model offset
.inputs a b
.outputs y
.names a b y
00 0
.end
";
        let n = from_blif(text).unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        // y = NOT(a'b') = a | b
        assert_eq!(sim.step(&[false, false]).unwrap(), vec![false]);
        assert_eq!(sim.step(&[true, false]).unwrap(), vec![true]);
    }

    #[test]
    fn parse_reports_line_numbers() {
        let text = ".model x\n.inputs a\n.outputs y\n.names a y\n2 1\n.end\n";
        match from_blif(text) {
            Err(NetlistError::BlifParse { line, .. }) => assert_eq!(line, 5),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_undefined_output() {
        let text = ".model x\n.inputs a\n.outputs nope\n.end\n";
        assert!(matches!(
            from_blif(text),
            Err(NetlistError::BlifParse { .. })
        ));
    }

    #[test]
    fn continuation_lines_are_joined() {
        // SIS/ABC wrap long .inputs and .names lines with a trailing
        // backslash; the pre-fix parser tokenized physical lines raw and
        // rejected this file with "pattern width mismatch".
        let text = "\
.model wrapped
.inputs a b \\
  c
.outputs y
.names a b \\
  c y
1-1 \\
1
.end
";
        let n = from_blif(text).unwrap();
        assert_eq!(n.inputs().len(), 3);
        let mut sim = Evaluator::new(&n).unwrap();
        // y = a & c (b don't-care)
        assert_eq!(sim.step(&[true, false, true]).unwrap(), vec![true]);
        assert_eq!(sim.step(&[true, true, false]).unwrap(), vec![false]);
    }

    #[test]
    fn continuation_before_comment_and_trailing_backslash_at_eof() {
        // A `#` comment ends the physical line, so a backslash inside one
        // continues nothing; a trailing backslash on the last line is inert.
        let text =
            ".model x\n.inputs a # not a continuation \\\n.outputs y\n.names a y\n1 1\n.end \\";
        let n = from_blif(text).unwrap();
        assert_eq!(n.inputs().len(), 1);
    }

    #[test]
    fn continuation_errors_report_first_physical_line() {
        // The bad cover row starts on physical line 5; its continuation is
        // on line 6. The error must name line 5.
        let text = ".model x\n.inputs a b\n.outputs y\n.names a b y\n1\\\n2 1\n.end\n";
        match from_blif(text) {
            Err(NetlistError::BlifParse { line, .. }) => assert_eq!(line, 5),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn latch_accepts_all_four_arities() {
        // 3-token (bare), 4-token (init), 5-token (type+control, no init —
        // rejected as "unsupported latch form" before the fix), and
        // 6-token (type+control+init) forms are all legal BLIF.
        for (latch_line, expect_init) in [
            (".latch g q", false),
            (".latch g q 1", true),
            (".latch g q re clk", false),
            (".latch g q re clk 1", true),
        ] {
            let text = format!(
                ".model l\n.inputs x\n.outputs q\n{latch_line}\n.names x q g\n-1 1\n.end\n"
            );
            let n = from_blif(&text).unwrap_or_else(|e| panic!("'{latch_line}' rejected: {e}"));
            let mut sim = Evaluator::new(&n).unwrap();
            // First cycle exposes the init value before any update.
            assert_eq!(
                sim.step(&[false]).unwrap(),
                vec![expect_init],
                "init for '{latch_line}'"
            );
        }
    }

    #[test]
    fn latch_five_token_form_keeps_validating_init_elsewhere() {
        // The 5-token fix must not loosen init validation in the 6-token
        // form.
        let text = ".model l\n.inputs x\n.outputs q\n.latch g q re clk 7\n.names x g\n1 1\n.end\n";
        assert!(matches!(
            from_blif(text),
            Err(NetlistError::BlifParse { line: 4, .. })
        ));
    }

    #[test]
    fn undriven_names_input_is_an_explicit_error() {
        // `g` reads `phantom`, which nothing drives. The pre-audit parser
        // reported this as "combinational loop or undefined signal"; the
        // error must now name the undriven net and the reading construct.
        let text = "\
.model pathological
.inputs a
.outputs y
.names a phantom g
11 1
.names g y
1 1
.end
";
        match from_blif(text) {
            Err(NetlistError::BlifParse { line, message }) => {
                assert_eq!(line, 4);
                assert!(message.contains("undriven net 'phantom'"), "{message}");
                assert!(message.contains("'g'"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn names_loop_is_distinguished_from_undriven_nets() {
        // g and h drive each other: every net is defined, so this must be
        // reported as a loop, not as an undriven reference.
        let text = "\
.model looped
.inputs a
.outputs y
.names h g
1 1
.names g h
1 1
.names g y
1 1
.end
";
        match from_blif(text) {
            Err(NetlistError::BlifParse { line, message }) => {
                assert_eq!(line, 4);
                assert!(message.contains("loop"), "{message}");
                assert!(!message.contains("undriven"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn undriven_latch_control_is_a_note_not_silence() {
        // `clk` is never driven anywhere in the file: the parser accepts
        // the latch (single-implicit-clock flow) but must say so.
        let text = ".model l\n.inputs x\n.outputs q\n.latch g q re clk 1\n.names x g\n1 1\n.end\n";
        let (n, notes) = from_blif_with_notes(text).unwrap();
        assert_eq!(n.dffs().len(), 1);
        assert_eq!(notes.len(), 1);
        assert_eq!(notes[0].line, 4);
        assert_eq!(notes[0].signal, "clk");
        assert!(notes[0].message.contains("undriven net 'clk'"));
        // A control net that IS driven (here: the primary input) is fine.
        let text = ".model l\n.inputs x\n.outputs q\n.latch g q re x 1\n.names x g\n1 1\n.end\n";
        let (_, notes) = from_blif_with_notes(text).unwrap();
        assert!(notes.is_empty());
    }

    #[test]
    fn undriven_latch_data_and_output_name_the_net() {
        let text = ".model l\n.inputs x\n.outputs q\n.latch ghost q 0\n.end\n";
        match from_blif(text) {
            Err(NetlistError::BlifParse { line, message }) => {
                assert_eq!(line, 4);
                assert!(message.contains("undriven net 'ghost'"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        let text = ".model o\n.inputs x\n.outputs nope\n.end\n";
        match from_blif(text) {
            Err(NetlistError::BlifParse { message, .. }) => {
                assert!(message.contains("undriven net 'nope'"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn names_out_of_order_are_resolved() {
        // g is defined after h although h reads g.
        let text = "\
.model order
.inputs a
.outputs y
.names g y
1 1
.names a g
0 1
.end
";
        let n = from_blif(text).unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        assert_eq!(sim.step(&[false]).unwrap(), vec![true]);
        assert_eq!(sim.step(&[true]).unwrap(), vec![false]);
    }
}
