//! Gate-level netlist intermediate representation for the phased-logic flow.
//!
//! A [`Netlist`] is a directed graph of [`Node`]s: primary inputs, constants,
//! LUTs (combinational nodes carrying a [`pl_boolfn::TruthTable`]), and D
//! flip-flops with initial values. Primary outputs are named references to
//! nodes. Combinational cycles are rejected; sequential loops must pass
//! through a flip-flop, exactly as in the synchronous netlists the DATE 2002
//! paper's flow consumes from Synopsys Design Compiler.
//!
//! The crate also provides:
//!
//! * topological ordering, logic levels and fanout computation
//!   ([`analyze`]) — levels are the arrival-time estimate used by the
//!   paper's cost function (Equation 1);
//! * cleanup passes: dead-node elimination, constant propagation and
//!   structural hashing ([`opt`]);
//! * a cycle-accurate reference evaluator ([`eval`]) used to verify that the
//!   phased-logic mapping and early evaluation never change functionality;
//! * a BLIF-style text format ([`blif`]) for inspection and round-tripping.
//!
//! # Example
//!
//! ```
//! use pl_boolfn::TruthTable;
//! use pl_netlist::Netlist;
//!
//! let mut n = Netlist::new("toggle");
//! let d = n.add_dff(false);
//! let not = TruthTable::from_bits(1, 0b01);
//! let inv = n.add_lut(not, vec![d]).unwrap();
//! n.set_dff_input(d, inv).unwrap();
//! n.set_output("q", d);
//! n.validate().unwrap();
//!
//! let mut sim = pl_netlist::eval::Evaluator::new(&n).unwrap();
//! let o1 = sim.step(&[]).unwrap();
//! let o2 = sim.step(&[]).unwrap();
//! assert_ne!(o1, o2); // the register toggles every cycle
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod blif;
pub mod eco;
mod error;
pub mod eval;
mod graph;
mod node;
pub mod opt;
pub mod scc;
pub mod verilog;

pub use eco::DirtySet;
pub use error::NetlistError;
pub use graph::{Netlist, NodeId};
pub use node::{Node, NodeKind, MAX_LUT_ARITY};
