//! Cycle-accurate reference evaluator for synchronous netlists.
//!
//! [`Evaluator`] simulates a [`Netlist`] exactly as a clocked circuit: each
//! [`Evaluator::step`] presents one primary-input vector, evaluates the
//! combinational logic, samples the primary outputs, and then clocks every
//! flip-flop. The phased-logic simulator in `pl-sim` is verified against
//! this evaluator — PL mapping and early evaluation must never change the
//! produced output stream, only its timing.

use crate::analyze::comb_topo_order;
use crate::error::NetlistError;
use crate::graph::{Netlist, NodeId};
use crate::node::NodeKind;

/// Cycle-based simulator of a [`Netlist`].
///
/// # Example
///
/// ```
/// use pl_netlist::{eval::Evaluator, Netlist};
///
/// let mut n = Netlist::new("andgate");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let g = n.add_and2(a, b)?;
/// n.set_output("y", g);
/// let mut sim = Evaluator::new(&n)?;
/// assert_eq!(sim.step(&[true, true])?, vec![true]);
/// assert_eq!(sim.step(&[true, false])?, vec![false]);
/// # Ok::<(), pl_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Evaluator<'a> {
    netlist: &'a Netlist,
    order: Vec<NodeId>,
    /// Current value of every node's output.
    values: Vec<bool>,
    /// Current flip-flop contents, parallel to `netlist.dffs()`.
    state: Vec<bool>,
    cycles: u64,
}

impl<'a> Evaluator<'a> {
    /// Prepares an evaluator; flip-flops take their declared initial values.
    ///
    /// # Errors
    ///
    /// Fails if the netlist does not validate.
    pub fn new(netlist: &'a Netlist) -> Result<Self, NetlistError> {
        netlist.validate()?;
        let order = comb_topo_order(netlist)?;
        let state = netlist
            .dffs()
            .iter()
            .map(|&d| match netlist.node(d).kind() {
                NodeKind::Dff { init, .. } => *init,
                _ => unreachable!("dffs() only lists flip-flops"),
            })
            .collect();
        Ok(Self {
            netlist,
            order,
            values: vec![false; netlist.len()],
            state,
            cycles: 0,
        })
    }

    /// Number of clock cycles executed so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Current flip-flop contents (parallel to `netlist.dffs()`).
    #[must_use]
    pub fn state(&self) -> &[bool] {
        &self.state
    }

    /// Overwrites the flip-flop contents (for checkpoint/rollback tests).
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the flip-flop count.
    pub fn set_state(&mut self, state: &[bool]) {
        assert_eq!(state.len(), self.state.len(), "state width mismatch");
        self.state.copy_from_slice(state);
    }

    /// Runs one clock cycle: applies `inputs` (in primary-input declaration
    /// order), returns the primary outputs (in output declaration order),
    /// then updates every flip-flop.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputArityMismatch`] for a wrong-size vector.
    pub fn step(&mut self, inputs: &[bool]) -> Result<Vec<bool>, NetlistError> {
        let outputs = self.eval_outputs(inputs)?;
        // Clock edge: sample D pins computed by eval_outputs.
        let next: Vec<bool> = self
            .netlist
            .dffs()
            .iter()
            .map(|&d| match self.netlist.node(d).kind() {
                NodeKind::Dff { d: Some(src), .. } => self.values[src.index()],
                _ => unreachable!("validated netlist has driven flip-flops"),
            })
            .collect();
        self.state = next;
        self.cycles += 1;
        Ok(outputs)
    }

    /// Evaluates the combinational logic for `inputs` *without* clocking the
    /// flip-flops (Mealy-style output inspection).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputArityMismatch`] for a wrong-size vector.
    pub fn eval_outputs(&mut self, inputs: &[bool]) -> Result<Vec<bool>, NetlistError> {
        let pis = self.netlist.inputs();
        if inputs.len() != pis.len() {
            return Err(NetlistError::InputArityMismatch {
                got: inputs.len(),
                expected: pis.len(),
            });
        }
        for (&pi, &v) in pis.iter().zip(inputs) {
            self.values[pi.index()] = v;
        }
        for (k, &dff) in self.netlist.dffs().iter().enumerate() {
            self.values[dff.index()] = self.state[k];
        }
        for &id in &self.order {
            match self.netlist.node(id).kind() {
                NodeKind::Const { value } => self.values[id.index()] = *value,
                NodeKind::Lut { table, inputs } => {
                    let mut m = 0u32;
                    for (i, src) in inputs.iter().enumerate() {
                        if self.values[src.index()] {
                            m |= 1 << i;
                        }
                    }
                    self.values[id.index()] = table.eval(m);
                }
                NodeKind::Input { .. } | NodeKind::Dff { .. } => {}
            }
        }
        Ok(self
            .netlist
            .outputs()
            .iter()
            .map(|(_, id)| self.values[id.index()])
            .collect())
    }

    /// The most recently computed value of an arbitrary node.
    #[must_use]
    pub fn value(&self, id: NodeId) -> bool {
        self.values[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bit_counter_counts() {
        // q0 toggles every cycle; q1 toggles when q0 was 1.
        let mut n = Netlist::new("count2");
        let q0 = n.add_dff(false);
        let q1 = n.add_dff(false);
        let n0 = n.add_not(q0).unwrap();
        let t1 = n.add_xor2(q1, q0).unwrap();
        n.set_dff_input(q0, n0).unwrap();
        n.set_dff_input(q1, t1).unwrap();
        n.set_output("q0", q0);
        n.set_output("q1", q1);
        let mut sim = Evaluator::new(&n).unwrap();
        let mut seq = Vec::new();
        for _ in 0..5 {
            let o = sim.step(&[]).unwrap();
            seq.push((u8::from(o[1]) << 1) | u8::from(o[0]));
        }
        assert_eq!(seq, vec![0, 1, 2, 3, 0]);
        assert_eq!(sim.cycles(), 5);
    }

    #[test]
    fn wrong_input_arity_is_reported() {
        let mut n = Netlist::new("pi");
        let _ = n.add_input("a");
        let mut sim = Evaluator::new(&n).unwrap();
        assert!(matches!(
            sim.step(&[]),
            Err(NetlistError::InputArityMismatch {
                got: 0,
                expected: 1
            })
        ));
    }

    #[test]
    fn constants_drive_logic() {
        let mut n = Netlist::new("const");
        let one = n.add_const(true);
        let a = n.add_input("a");
        let g = n.add_and2(one, a).unwrap();
        n.set_output("y", g);
        let mut sim = Evaluator::new(&n).unwrap();
        assert_eq!(sim.step(&[true]).unwrap(), vec![true]);
        assert_eq!(sim.step(&[false]).unwrap(), vec![false]);
    }

    #[test]
    fn eval_outputs_does_not_clock() {
        let mut n = Netlist::new("hold");
        let a = n.add_input("a");
        let d = n.add_dff(false);
        n.set_dff_input(d, a).unwrap();
        n.set_output("q", d);
        let mut sim = Evaluator::new(&n).unwrap();
        assert_eq!(sim.eval_outputs(&[true]).unwrap(), vec![false]);
        assert_eq!(sim.eval_outputs(&[true]).unwrap(), vec![false]); // unchanged
        assert_eq!(sim.step(&[true]).unwrap(), vec![false]);
        assert_eq!(sim.eval_outputs(&[false]).unwrap(), vec![true]); // clocked once
    }

    #[test]
    fn set_state_overrides() {
        let mut n = Netlist::new("s");
        let d = n.add_dff(false);
        let i = n.add_not(d).unwrap();
        n.set_dff_input(d, i).unwrap();
        n.set_output("q", d);
        let mut sim = Evaluator::new(&n).unwrap();
        sim.set_state(&[true]);
        assert_eq!(sim.step(&[]).unwrap(), vec![true]);
    }
}
