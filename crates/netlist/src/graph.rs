//! The [`Netlist`] container.

use std::fmt;

use pl_boolfn::TruthTable;

use crate::eco::DirtySet;
use crate::error::NetlistError;
use crate::node::{Node, NodeKind, MAX_LUT_ARITY};

/// Minimal FNV-1a accumulator for [`Netlist::fingerprint`].
struct Fnv(u64);

impl Fnv {
    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
        // Length terminator so concatenated fields cannot alias.
        self.word(bytes.len() as u64);
    }

    fn word(&mut self, w: u64) {
        self.bytes_no_len(&w.to_le_bytes());
    }

    fn bytes_no_len(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// Identifier of a node inside one [`Netlist`].
///
/// Ids are dense indices assigned in creation order; they are only meaningful
/// relative to the netlist that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Builds an id from a raw index (intended for iteration helpers).
    #[must_use]
    pub fn from_index(i: usize) -> Self {
        NodeId(i as u32)
    }

    /// The raw index of this id.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A gate-level netlist: primary inputs, constants, LUTs and flip-flops,
/// with named primary outputs.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Netlist {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    dffs: Vec<NodeId>,
    outputs: Vec<(String, NodeId)>,
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            dffs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a primary input and returns its node id.
    pub fn add_input(&mut self, name: impl Into<String>) -> NodeId {
        let name = name.into();
        let id = self.push(Node {
            kind: NodeKind::Input { name: name.clone() },
            name: Some(name),
        });
        self.inputs.push(id);
        id
    }

    /// Adds a constant driver.
    pub fn add_const(&mut self, value: bool) -> NodeId {
        self.push(Node {
            kind: NodeKind::Const { value },
            name: None,
        })
    }

    /// Adds a LUT computing `table` over `inputs` (variable `i` ⇔
    /// `inputs[i]`).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ArityMismatch`] if the table arity differs
    /// from the fanin count, [`NetlistError::LutTooWide`] beyond
    /// [`MAX_LUT_ARITY`], or [`NetlistError::UnknownNode`] for a bad fanin.
    pub fn add_lut(
        &mut self,
        table: TruthTable,
        inputs: Vec<NodeId>,
    ) -> Result<NodeId, NetlistError> {
        if table.num_vars() != inputs.len() {
            return Err(NetlistError::ArityMismatch {
                table_vars: table.num_vars(),
                fanins: inputs.len(),
            });
        }
        if inputs.len() > MAX_LUT_ARITY {
            return Err(NetlistError::LutTooWide {
                arity: inputs.len(),
                max: MAX_LUT_ARITY,
            });
        }
        for &i in &inputs {
            self.check(i)?;
        }
        Ok(self.push(Node {
            kind: NodeKind::Lut { table, inputs },
            name: None,
        }))
    }

    /// Adds a flip-flop with the given initial value; its data input starts
    /// unconnected (see [`Netlist::set_dff_input`]).
    pub fn add_dff(&mut self, init: bool) -> NodeId {
        let id = self.push(Node {
            kind: NodeKind::Dff { d: None, init },
            name: None,
        });
        self.dffs.push(id);
        id
    }

    /// Connects (or reconnects) the data input of flip-flop `dff` to `d`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NotADff`] or [`NetlistError::UnknownNode`].
    pub fn set_dff_input(&mut self, dff: NodeId, d: NodeId) -> Result<(), NetlistError> {
        self.check(d)?;
        self.check(dff)?;
        match &mut self.nodes[dff.index()].kind {
            NodeKind::Dff { d: slot, .. } => {
                *slot = Some(d);
                Ok(())
            }
            _ => Err(NetlistError::NotADff(dff)),
        }
    }

    /// Declares a named primary output driven by `node`.
    pub fn set_output(&mut self, name: impl Into<String>, node: NodeId) {
        self.outputs.push((name.into(), node));
    }

    /// Rewires one fanin pin of an existing LUT to a different source node
    /// (an ECO edit). Unlike the creation-order construction API this
    /// **can introduce a combinational cycle** — [`Netlist::validate`] and
    /// the `pl-lint` pass report such a cycle with its concrete path, which
    /// is exactly what their regression tests use this method for.
    ///
    /// Returns the [`DirtySet`] of the edit: the LUT's output cone (through
    /// registers) as the value cone, with the old and new source on the
    /// frontier.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNode`] for a missing id,
    /// [`NetlistError::NotALut`] if `lut` is not a LUT, or
    /// [`NetlistError::LutPinOutOfRange`] for a pin beyond its arity.
    pub fn rewire_lut_input(
        &mut self,
        lut: NodeId,
        pin: usize,
        src: NodeId,
    ) -> Result<DirtySet, NetlistError> {
        self.check(src)?;
        self.check(lut)?;
        let old = match &mut self.nodes[lut.index()].kind {
            NodeKind::Lut { inputs, .. } => match inputs.get_mut(pin) {
                Some(slot) => {
                    let old = *slot;
                    *slot = src;
                    old
                }
                None => {
                    return Err(NetlistError::LutPinOutOfRange {
                        node: lut,
                        pin,
                        arity: inputs.len(),
                    })
                }
            },
            _ => return Err(NetlistError::NotALut(lut)),
        };
        Ok(DirtySet::compute(self, &[lut], &[old, src]))
    }

    /// Replaces the truth table of an existing LUT (an ECO edit). The new
    /// table must have the same arity as the LUT's fanin count.
    ///
    /// Returns the [`DirtySet`] of the edit: the LUT's output cone as the
    /// value cone, with its (unchanged) fanins on the frontier.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNode`] for a missing id,
    /// [`NetlistError::NotALut`] if `lut` is not a LUT, or
    /// [`NetlistError::ArityMismatch`] if the table arity differs from the
    /// fanin count.
    pub fn replace_lut_table(
        &mut self,
        lut: NodeId,
        table: TruthTable,
    ) -> Result<DirtySet, NetlistError> {
        self.check(lut)?;
        let frontier = match &mut self.nodes[lut.index()].kind {
            NodeKind::Lut {
                table: slot,
                inputs,
            } => {
                if table.num_vars() != inputs.len() {
                    return Err(NetlistError::ArityMismatch {
                        table_vars: table.num_vars(),
                        fanins: inputs.len(),
                    });
                }
                *slot = table;
                inputs.clone()
            }
            _ => return Err(NetlistError::NotALut(lut)),
        };
        Ok(DirtySet::compute(self, &[lut], &frontier))
    }

    /// Adds a new LUT as an ECO edit, returning its id and the edit's
    /// [`DirtySet`]. The fresh node has no readers yet, so the value cone is
    /// just the node itself; its fanins land on the frontier (their fanout
    /// counts grew). Follow up with [`Netlist::rewire_lut_input`] /
    /// [`Netlist::set_dff_input`] / [`Netlist::set_output`] to splice it in.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Netlist::add_lut`].
    pub fn insert_lut(
        &mut self,
        table: TruthTable,
        inputs: Vec<NodeId>,
    ) -> Result<(NodeId, DirtySet), NetlistError> {
        let frontier = inputs.clone();
        let id = self.add_lut(table, inputs)?;
        let dirty = DirtySet::compute(self, &[id], &frontier);
        Ok((id, dirty))
    }

    /// Removes an *unreferenced* gate (LUT, constant or flip-flop) from the
    /// netlist (an ECO edit). Node ids above the removed node shift down by
    /// one — the caller owns translating any ids it retains (the shift is
    /// `id > removed ⇒ id - 1`).
    ///
    /// Removing dead logic changes no values, so the returned [`DirtySet`]
    /// has an empty value cone; the removed node's old fanins are on the
    /// frontier (their fanout counts shrank), already expressed in the
    /// *post-removal* id space.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNode`] for a missing id,
    /// [`NetlistError::RemoveInput`] for a primary input (ports are part of
    /// the interface), or [`NetlistError::RemoveInUse`] if the node still
    /// drives a primary output, a LUT pin or a flip-flop — the error names
    /// one concrete user.
    pub fn remove_gate(&mut self, node: NodeId) -> Result<DirtySet, NetlistError> {
        self.check(node)?;
        if self.nodes[node.index()].is_input() {
            return Err(NetlistError::RemoveInput(node));
        }
        if let Some((name, _)) = self.outputs.iter().find(|(_, n)| *n == node) {
            return Err(NetlistError::RemoveInUse {
                node,
                user: format!("primary output '{name}'"),
            });
        }
        for (id, n) in self.iter() {
            if id != node && n.fanins().contains(&node) {
                let what = if n.is_dff() { "flip-flop" } else { "LUT" };
                return Err(NetlistError::RemoveInUse {
                    node,
                    user: format!("{what} {id}"),
                });
            }
        }
        let frontier: Vec<NodeId> = self.nodes[node.index()].fanins();
        self.nodes.remove(node.index());
        let shift = |id: NodeId| {
            if id > node {
                NodeId::from_index(id.index() - 1)
            } else {
                id
            }
        };
        for n in &mut self.nodes {
            match &mut n.kind {
                NodeKind::Lut { inputs, .. } => {
                    for slot in inputs {
                        *slot = shift(*slot);
                    }
                }
                NodeKind::Dff { d, .. } => {
                    if let Some(d) = d {
                        *d = shift(*d);
                    }
                }
                NodeKind::Input { .. } | NodeKind::Const { .. } => {}
            }
        }
        self.inputs = self.inputs.iter().map(|&i| shift(i)).collect();
        self.dffs = self
            .dffs
            .iter()
            .filter(|&&f| f != node)
            .map(|&f| shift(f))
            .collect();
        for (_, n) in &mut self.outputs {
            *n = shift(*n);
        }
        let frontier: Vec<NodeId> = frontier.into_iter().map(shift).collect();
        Ok(DirtySet::compute(self, &[], &frontier))
    }

    /// A 64-bit FNV-1a fingerprint of the netlist's full content: name,
    /// every node (kind, table bits, fanins, debug name), the input/dff
    /// declaration order and the named outputs. Two netlists compare equal
    /// iff their construction histories produce identical content, so equal
    /// fingerprints are a reliable cheap proxy for [`PartialEq`] (modulo
    /// 64-bit collisions) — the flow uses them to decide whether a stage
    /// artifact can be reused verbatim.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv(0xcbf2_9ce4_8422_2325);
        h.bytes(self.name.as_bytes());
        h.word(self.nodes.len() as u64);
        for n in &self.nodes {
            match &n.kind {
                NodeKind::Input { name } => {
                    h.word(1);
                    h.bytes(name.as_bytes());
                }
                NodeKind::Const { value } => {
                    h.word(2);
                    h.word(u64::from(*value));
                }
                NodeKind::Lut { table, inputs } => {
                    h.word(3);
                    h.word(table.num_vars() as u64);
                    h.word(table.bits());
                    h.word(inputs.len() as u64);
                    for i in inputs {
                        h.word(i.index() as u64);
                    }
                }
                NodeKind::Dff { d, init } => {
                    h.word(4);
                    h.word(d.map_or(u64::MAX, |d| d.index() as u64));
                    h.word(u64::from(*init));
                }
            }
            match &n.name {
                Some(name) => {
                    h.word(5);
                    h.bytes(name.as_bytes());
                }
                None => h.word(6),
            }
        }
        for &i in &self.inputs {
            h.word(i.index() as u64);
        }
        for &f in &self.dffs {
            h.word(f.index() as u64);
        }
        h.word(self.outputs.len() as u64);
        for (name, n) in &self.outputs {
            h.bytes(name.as_bytes());
            h.word(n.index() as u64);
        }
        h.0
    }

    /// Swaps a LUT's truth table **without** the arity check — fault
    /// injection only: the arity-vs-table mismatch this can create is
    /// unconstructible through [`Netlist::add_lut`], and the lint pass's
    /// defensive mismatch diagnostic needs a way to be exercised.
    ///
    /// # Panics
    ///
    /// Panics if `lut` does not exist or is not a LUT.
    #[doc(hidden)]
    pub fn inject_lut_table(&mut self, lut: NodeId, table: TruthTable) {
        match &mut self.nodes[lut.index()].kind {
            NodeKind::Lut { table: slot, .. } => *slot = table,
            other => panic!("inject_lut_table on non-LUT node {lut}: {other:?}"),
        }
    }

    /// Attaches a debug name to a node (overwriting any previous name).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNode`] if the node does not exist.
    pub fn set_name(&mut self, node: NodeId, name: impl Into<String>) -> Result<(), NetlistError> {
        self.check(node)?;
        self.nodes[node.index()].name = Some(name.into());
        Ok(())
    }

    /// Looks up a node.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range; use [`Netlist::get`] for a checked
    /// variant.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Checked node lookup.
    #[must_use]
    pub fn get(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.index())
    }

    /// Number of nodes of any kind.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the netlist has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over `(id, node)` pairs in creation order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::from_index(i), n))
    }

    /// Primary inputs in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Flip-flops in declaration order.
    #[must_use]
    pub fn dffs(&self) -> &[NodeId] {
        &self.dffs
    }

    /// Named primary outputs in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// Number of LUT nodes.
    #[must_use]
    pub fn num_luts(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_lut()).count()
    }

    /// Validates the netlist: every DFF driven, every output present, and no
    /// combinational cycles.
    ///
    /// # Errors
    ///
    /// Returns the first problem found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for &d in &self.dffs {
            if let NodeKind::Dff { d: None, .. } = self.node(d).kind() {
                return Err(NetlistError::UndrivenDff(d));
            }
        }
        for (name, id) in &self.outputs {
            if self.get(*id).is_none() {
                return Err(NetlistError::DanglingOutput {
                    name: name.clone(),
                    node: *id,
                });
            }
        }
        crate::analyze::comb_topo_order(self).map(|_| ())
    }

    pub(crate) fn check(&self, id: NodeId) -> Result<(), NetlistError> {
        if id.index() < self.nodes.len() {
            Ok(())
        } else {
            Err(NetlistError::UnknownNode(id))
        }
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(node);
        id
    }

    // ---- convenience constructors for common gates -------------------------

    /// Adds an inverter.
    ///
    /// # Errors
    ///
    /// Propagates [`Netlist::add_lut`] errors.
    pub fn add_not(&mut self, a: NodeId) -> Result<NodeId, NetlistError> {
        self.add_lut(TruthTable::from_bits(1, 0b01), vec![a])
    }

    /// Adds a 2-input AND gate.
    ///
    /// # Errors
    ///
    /// Propagates [`Netlist::add_lut`] errors.
    pub fn add_and2(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, NetlistError> {
        self.add_lut(TruthTable::from_bits(2, 0b1000), vec![a, b])
    }

    /// Adds a 2-input OR gate.
    ///
    /// # Errors
    ///
    /// Propagates [`Netlist::add_lut`] errors.
    pub fn add_or2(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, NetlistError> {
        self.add_lut(TruthTable::from_bits(2, 0b1110), vec![a, b])
    }

    /// Adds a 2-input XOR gate.
    ///
    /// # Errors
    ///
    /// Propagates [`Netlist::add_lut`] errors.
    pub fn add_xor2(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, NetlistError> {
        self.add_lut(TruthTable::from_bits(2, 0b0110), vec![a, b])
    }

    /// Adds a 2:1 multiplexer returning `if s { b } else { a }`.
    ///
    /// Variable order: `(a, b, s)` — minterm bit 0 is `a`.
    ///
    /// # Errors
    ///
    /// Propagates [`Netlist::add_lut`] errors.
    pub fn add_mux2(&mut self, s: NodeId, a: NodeId, b: NodeId) -> Result<NodeId, NetlistError> {
        let table = TruthTable::from_fn(3, |m| {
            let (a, b, s) = (m & 1 != 0, m & 2 != 0, m & 4 != 0);
            if s {
                b
            } else {
                a
            }
        });
        self.add_lut(table, vec![a, b, s])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_comb_netlist() {
        let mut n = Netlist::new("and_or");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let ab = n.add_and2(a, b).unwrap();
        let f = n.add_or2(ab, c).unwrap();
        n.set_output("f", f);
        assert_eq!(n.inputs().len(), 3);
        assert_eq!(n.num_luts(), 2);
        n.validate().unwrap();
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut n = Netlist::new("bad");
        let a = n.add_input("a");
        let t3 = TruthTable::ones(3);
        assert_eq!(
            n.add_lut(t3, vec![a]),
            Err(NetlistError::ArityMismatch {
                table_vars: 3,
                fanins: 1
            })
        );
    }

    #[test]
    fn unknown_fanin_rejected() {
        let mut n = Netlist::new("bad");
        let bogus = NodeId::from_index(42);
        assert_eq!(
            n.add_lut(TruthTable::ones(1), vec![bogus]),
            Err(NetlistError::UnknownNode(bogus))
        );
    }

    #[test]
    fn undriven_dff_fails_validation() {
        let mut n = Netlist::new("seq");
        let d = n.add_dff(true);
        assert_eq!(n.validate(), Err(NetlistError::UndrivenDff(d)));
    }

    #[test]
    fn sequential_loop_is_legal() {
        let mut n = Netlist::new("counter_bit");
        let d = n.add_dff(false);
        let inv = n.add_not(d).unwrap();
        n.set_dff_input(d, inv).unwrap();
        n.set_output("q", d);
        n.validate().unwrap();
    }

    #[test]
    fn combinational_loop_is_rejected_with_its_path() {
        // The creation-order API cannot express a combinational cycle
        // (forward references are impossible), so seed one with the ECO
        // rewire: a -> b -> c, then patch b's input from a to c.
        let mut n = Netlist::new("looped");
        let a = n.add_input("a");
        let b = n.add_not(a).unwrap();
        let c = n.add_not(b).unwrap();
        n.set_output("c", c);
        n.validate().unwrap();
        n.rewire_lut_input(b, 0, c).unwrap();
        match n.validate() {
            Err(NetlistError::CombinationalLoop { path }) => {
                assert_eq!(path, vec![b, c], "smallest cycle member first");
            }
            other => panic!("expected a combinational loop, got {other:?}"),
        }
    }

    #[test]
    fn rewire_rejects_bad_targets() {
        let mut n = Netlist::new("rw");
        let a = n.add_input("a");
        let g = n.add_not(a).unwrap();
        let missing = NodeId::from_index(99);
        assert_eq!(
            n.rewire_lut_input(g, 0, missing),
            Err(NetlistError::UnknownNode(missing))
        );
        assert_eq!(n.rewire_lut_input(a, 0, g), Err(NetlistError::NotALut(a)));
        assert_eq!(
            n.rewire_lut_input(g, 5, a),
            Err(NetlistError::LutPinOutOfRange {
                node: g,
                pin: 5,
                arity: 1
            })
        );
    }

    #[test]
    fn mux2_semantics() {
        let mut n = Netlist::new("mux");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let s = n.add_input("s");
        let m = n.add_mux2(s, a, b).unwrap();
        n.set_output("m", m);
        let mut sim = crate::eval::Evaluator::new(&n).unwrap();
        // inputs in declaration order: a, b, s
        assert_eq!(sim.step(&[true, false, false]).unwrap(), vec![true]);
        assert_eq!(sim.step(&[true, false, true]).unwrap(), vec![false]);
        assert_eq!(sim.step(&[false, true, true]).unwrap(), vec![true]);
    }

    #[test]
    fn node_names() {
        let mut n = Netlist::new("named");
        let a = n.add_input("a");
        n.set_name(a, "port_a").unwrap();
        assert_eq!(n.node(a).name(), Some("port_a"));
    }

    #[test]
    fn display_node_id() {
        assert_eq!(NodeId::from_index(7).to_string(), "n7");
    }

    #[test]
    fn replace_lut_table_checks_arity_and_returns_cone() {
        let mut n = Netlist::new("eco");
        let a = n.add_input("a");
        let g = n.add_not(a).unwrap();
        let h = n.add_not(g).unwrap();
        n.set_output("f", h);
        assert_eq!(
            n.replace_lut_table(g, TruthTable::from_bits(2, 0b1000)),
            Err(NetlistError::ArityMismatch {
                table_vars: 2,
                fanins: 1
            })
        );
        let d = n.replace_lut_table(g, TruthTable::var(1, 0)).unwrap();
        assert!(d.nodes().contains(&g) && d.nodes().contains(&h));
        assert!(d.frontier().contains(&a));
        assert_eq!(d.outputs().iter().cloned().collect::<Vec<_>>(), vec!["f"]);
        assert_eq!(n.node(g).lut_table().unwrap().bits(), 0b10);
    }

    #[test]
    fn insert_lut_starts_unreferenced() {
        let mut n = Netlist::new("eco");
        let a = n.add_input("a");
        let (id, d) = n
            .insert_lut(TruthTable::from_bits(1, 0b01), vec![a])
            .unwrap();
        assert_eq!(d.nodes().iter().copied().collect::<Vec<_>>(), vec![id]);
        assert!(d.frontier().contains(&a));
        assert!(d.outputs().is_empty());
    }

    #[test]
    fn remove_gate_shifts_ids_and_rejects_referenced_nodes() {
        let mut n = Netlist::new("eco");
        let a = n.add_input("a");
        let dead = n.add_not(a).unwrap();
        let live = n.add_not(a).unwrap();
        n.set_output("f", live);
        // The output driver and the input are not removable.
        assert!(matches!(
            n.remove_gate(live),
            Err(NetlistError::RemoveInUse { node, .. }) if node == live
        ));
        assert_eq!(n.remove_gate(a), Err(NetlistError::RemoveInput(a)));
        // Removing the dead LUT shifts `live` down by one and rewrites the
        // output reference.
        let d = n.remove_gate(dead).unwrap();
        assert!(d.nodes().is_empty());
        assert!(d.frontier().contains(&a));
        assert_eq!(n.len(), 2);
        let new_live = n.outputs()[0].1;
        assert_eq!(new_live, NodeId::from_index(1));
        assert_eq!(n.node(new_live).fanins(), vec![a]);
        n.validate().unwrap();
        // A flip-flop reading the victim also blocks removal.
        let g = n.add_not(a).unwrap();
        let dff = n.add_dff(false);
        n.set_dff_input(dff, g).unwrap();
        assert!(matches!(
            n.remove_gate(g),
            Err(NetlistError::RemoveInUse { .. })
        ));
    }

    #[test]
    fn fingerprint_tracks_content() {
        let mut n = Netlist::new("fp");
        let a = n.add_input("a");
        let g = n.add_not(a).unwrap();
        n.set_output("f", g);
        let before = n.fingerprint();
        assert_eq!(before, n.clone().fingerprint());
        n.replace_lut_table(g, TruthTable::var(1, 0)).unwrap();
        assert_ne!(before, n.fingerprint());
    }
}
