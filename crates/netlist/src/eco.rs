//! ECO (engineering change order) dirty-set tracking.
//!
//! Every netlist edit ([`Netlist::replace_lut_table`],
//! [`Netlist::insert_lut`], [`Netlist::remove_gate`],
//! [`Netlist::rewire_lut_input`]) returns a [`DirtySet`]: the set of nodes
//! whose *value* can differ from the pre-edit netlist (the edited node's
//! output cone, followed through flip-flops, since a changed `d` pin changes
//! the register's next-state and therefore its readers), plus the edit's
//! *frontier* — the old and new fanins of the edited node, whose fanout
//! counts changed even though their values did not. Downstream consumers use
//! the two parts differently:
//!
//! * the value cone (`nodes`) bounds what simulation/verification state can
//!   change and which primary `outputs` are affected;
//! * the frontier matters to cost models that read fanout counts (the
//!   technology mapper's area-flow), so incremental recompilation must treat
//!   the *combinational fanout closure* of `nodes ∪ frontier` as dirty even
//!   where values are unchanged — see [`comb_fanout_closure`].
//!
//! The closure walk uses a visited set, so it terminates even on a netlist
//! that an edit has just made cyclic (the subsequent
//! [`Netlist::validate`] is what reports the cycle as a typed error).

use std::collections::BTreeSet;

use crate::graph::{Netlist, NodeId};

/// The set of nodes invalidated by one or more netlist edits.
///
/// See the [module documentation](self) for the meaning of the parts.
/// All sets are ordered (`BTreeSet`) so iteration — and everything derived
/// from it — is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirtySet {
    /// Nodes whose value can differ from the pre-edit netlist: the edited
    /// nodes plus their fanout closure, followed through flip-flops.
    nodes: BTreeSet<NodeId>,
    /// Old and new fanins of the edited nodes: values unchanged, fanout
    /// counts changed.
    frontier: BTreeSet<NodeId>,
    /// Flip-flops inside `nodes` — the phase boundaries the dirty cone
    /// crosses.
    boundary_dffs: BTreeSet<NodeId>,
    /// Primary-output port names driven from inside `nodes`.
    outputs: BTreeSet<String>,
}

impl DirtySet {
    /// An empty dirty set (nothing invalidated).
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Computes the dirty set for value-changing `seeds` and fanout-changing
    /// `frontier` nodes over `netlist`.
    ///
    /// The value cone is the fanout closure of `seeds`, crossing flip-flops:
    /// a register whose `d` pin is dirty is itself dirty (next-state
    /// changes), and the walk continues through its readers. Ids not present
    /// in `netlist` are ignored, so the helper can be called with
    /// pre-removal ids after a batch of edits.
    #[must_use]
    pub fn compute(netlist: &Netlist, seeds: &[NodeId], frontier: &[NodeId]) -> Self {
        // Reader adjacency: `readers[src]` lists every node whose fanins
        // (LUT pins or DFF `d`) include `src`.
        let mut readers: Vec<Vec<NodeId>> = vec![Vec::new(); netlist.len()];
        for (id, node) in netlist.iter() {
            for f in node.fanins() {
                if f.index() < readers.len() {
                    readers[f.index()].push(id);
                }
            }
        }
        let mut nodes = BTreeSet::new();
        let mut boundary_dffs = BTreeSet::new();
        let mut work: Vec<NodeId> = Vec::new();
        for &s in seeds {
            if s.index() < netlist.len() && nodes.insert(s) {
                work.push(s);
            }
        }
        while let Some(id) = work.pop() {
            if netlist.node(id).is_dff() {
                boundary_dffs.insert(id);
            }
            for &r in &readers[id.index()] {
                if nodes.insert(r) {
                    work.push(r);
                }
            }
        }
        let outputs = netlist
            .outputs()
            .iter()
            .filter(|(_, n)| nodes.contains(n))
            .map(|(name, _)| name.clone())
            .collect();
        let frontier = frontier
            .iter()
            .copied()
            .filter(|f| f.index() < netlist.len())
            .collect();
        Self {
            nodes,
            frontier,
            boundary_dffs,
            outputs,
        }
    }

    /// Nodes whose value can differ from the pre-edit netlist.
    #[must_use]
    pub fn nodes(&self) -> &BTreeSet<NodeId> {
        &self.nodes
    }

    /// Old/new fanins of the edited nodes (fanout counts changed).
    #[must_use]
    pub fn frontier(&self) -> &BTreeSet<NodeId> {
        &self.frontier
    }

    /// Flip-flops the dirty cone crosses.
    #[must_use]
    pub fn boundary_dffs(&self) -> &BTreeSet<NodeId> {
        &self.boundary_dffs
    }

    /// Primary-output port names affected by the edit.
    #[must_use]
    pub fn outputs(&self) -> &BTreeSet<String> {
        &self.outputs
    }

    /// Whether nothing at all was invalidated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.frontier.is_empty()
    }

    /// Merges `other` into `self` (union of every part).
    pub fn union(&mut self, other: &DirtySet) {
        self.nodes.extend(other.nodes.iter().copied());
        self.frontier.extend(other.frontier.iter().copied());
        self.boundary_dffs
            .extend(other.boundary_dffs.iter().copied());
        self.outputs.extend(other.outputs.iter().cloned());
    }
}

/// The *combinational* fanout closure of `seeds`: every node reachable from
/// a seed through LUT pins without crossing a flip-flop, plus the seeds
/// themselves (when present in `netlist`).
///
/// This is the invalidation set incremental technology mapping uses: a node
/// outside this closure has a byte-identical decomposition, identical cut
/// candidates and identical area-flow inputs, so its mapping state can be
/// reused verbatim. Registers clip the walk because the mapper decomposes
/// and enumerates cuts per combinational cone only.
#[must_use]
pub fn comb_fanout_closure(netlist: &Netlist, seeds: &[NodeId]) -> BTreeSet<NodeId> {
    let mut readers: Vec<Vec<NodeId>> = vec![Vec::new(); netlist.len()];
    for (id, node) in netlist.iter() {
        if node.is_lut() {
            for f in node.fanins() {
                readers[f.index()].push(id);
            }
        }
    }
    let mut closure = BTreeSet::new();
    let mut work: Vec<NodeId> = Vec::new();
    for &s in seeds {
        if s.index() < netlist.len() && closure.insert(s) {
            work.push(s);
        }
    }
    while let Some(id) = work.pop() {
        for &r in &readers[id.index()] {
            if closure.insert(r) {
                work.push(r);
            }
        }
    }
    closure
}

#[cfg(test)]
mod tests {
    use super::*;

    /// a -> x -> dff -> y -> out; editing x dirties x, the dff, y and the
    /// output, and the dff lands in `boundary_dffs`.
    #[test]
    fn cone_crosses_registers_and_reaches_outputs() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let x = n.add_not(a).unwrap();
        let dff = n.add_dff(false);
        n.set_dff_input(dff, x).unwrap();
        let y = n.add_not(dff).unwrap();
        n.set_output("f", y);

        let d = DirtySet::compute(&n, &[x], &[a]);
        assert!(d.nodes().contains(&x));
        assert!(d.nodes().contains(&dff));
        assert!(d.nodes().contains(&y));
        assert!(!d.nodes().contains(&a));
        assert_eq!(
            d.boundary_dffs().iter().copied().collect::<Vec<_>>(),
            vec![dff]
        );
        assert_eq!(d.outputs().iter().cloned().collect::<Vec<_>>(), vec!["f"]);
        assert!(d.frontier().contains(&a));
    }

    /// The combinational closure stops at registers; the value cone does not.
    #[test]
    fn comb_closure_clips_at_registers() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let x = n.add_not(a).unwrap();
        let dff = n.add_dff(false);
        n.set_dff_input(dff, x).unwrap();
        let y = n.add_not(dff).unwrap();
        n.set_output("f", y);

        let c = comb_fanout_closure(&n, &[x]);
        assert!(c.contains(&x));
        assert!(!c.contains(&dff));
        assert!(!c.contains(&y));
    }

    /// The closure walk terminates on a cyclic netlist (the cycle is
    /// reported later by `validate`, not here).
    #[test]
    fn closure_terminates_on_cycles() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let x = n.add_and2(a, a).unwrap();
        let y = n.add_and2(x, a).unwrap();
        // Make x read y: a combinational cycle x <-> y.
        let d = n.rewire_lut_input(x, 0, y).unwrap();
        assert!(d.nodes().contains(&x));
        assert!(d.nodes().contains(&y));
        assert!(n.validate().is_err());
    }

    /// Union merges every component.
    #[test]
    fn union_merges_parts() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_not(a).unwrap();
        let y = n.add_not(b).unwrap();
        n.set_output("fx", x);
        n.set_output("fy", y);
        let mut d = DirtySet::compute(&n, &[x], &[a]);
        let d2 = DirtySet::compute(&n, &[y], &[b]);
        d.union(&d2);
        assert!(d.nodes().contains(&x) && d.nodes().contains(&y));
        assert!(d.frontier().contains(&a) && d.frontier().contains(&b));
        assert_eq!(d.outputs().len(), 2);
    }

    /// An empty dirty set reports empty.
    #[test]
    fn empty_is_empty() {
        assert!(DirtySet::empty().is_empty());
        let n = Netlist::new("t");
        assert!(DirtySet::compute(&n, &[], &[]).is_empty());
    }
}
