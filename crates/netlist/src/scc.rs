//! Hand-rolled strongly-connected-component machinery.
//!
//! Shared by [`crate::analyze::comb_topo_order`]'s cycle reporting and the
//! `pl-lint` diagnostics pass (combinational-cycle and zero-delay-feedback
//! lints), so every layer that names a cycle names the *same* cycle: the
//! graph is walked deterministically (roots in index order, successors in
//! adjacency order) and every returned component or path is canonicalized.
//!
//! The implementation is Tarjan's algorithm made iterative (an explicit
//! state stack instead of recursion), so deep combinational chains cannot
//! overflow the call stack.

/// Strongly connected components of a directed graph over nodes `0..n`.
///
/// `succ[v]` lists the successors of `v`. Deterministic by construction:
/// each component's nodes are sorted ascending and the component list is
/// sorted by its smallest node.
#[must_use]
pub fn tarjan_sccs(n: usize, succ: &[Vec<usize>]) -> Vec<Vec<usize>> {
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<usize>> = Vec::new();
    // Explicit DFS frames: (node, next successor position to examine).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut i)) = frames.last_mut() {
            if let Some(&w) = succ[v].get(*i) {
                *i += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack invariant");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    components.push(comp);
                }
            }
        }
    }
    components.sort_unstable_by_key(|c| c[0]);
    components
}

/// Whether a component is actually cyclic: more than one node, or a single
/// node with a self-edge.
#[must_use]
pub fn component_is_cyclic(succ: &[Vec<usize>], comp: &[usize]) -> bool {
    match comp {
        [v] => succ[*v].contains(v),
        _ => comp.len() > 1,
    }
}

/// A concrete cycle inside a cyclic strongly connected component, as a node
/// sequence `v0 -> v1 -> ... -> v0` (the closing edge back to `v0` is
/// implied, `v0` is not repeated). Deterministic: the walk starts at the
/// component's smallest node, always takes the smallest in-component
/// successor, and the result is rotated so the cycle's smallest member
/// comes first.
#[must_use]
pub fn cycle_in_component(succ: &[Vec<usize>], comp: &[usize]) -> Vec<usize> {
    debug_assert!(component_is_cyclic(succ, comp));
    let in_comp = |v: usize| comp.binary_search(&v).is_ok();
    let mut path: Vec<usize> = vec![comp[0]];
    let mut seen_at = std::collections::HashMap::new();
    seen_at.insert(comp[0], 0usize);
    loop {
        let v = *path.last().expect("path is non-empty");
        let w = succ[v]
            .iter()
            .copied()
            .filter(|&w| in_comp(w))
            .min()
            .expect("every node in a cyclic SCC has an in-component successor");
        if let Some(&start) = seen_at.get(&w) {
            // The walk closed a cycle: path[start..] -> w == path[start].
            let mut cycle = path.split_off(start);
            let min_pos = cycle
                .iter()
                .enumerate()
                .min_by_key(|&(_, v)| v)
                .map(|(i, _)| i)
                .expect("cycle is non-empty");
            cycle.rotate_left(min_pos);
            return cycle;
        }
        seen_at.insert(w, path.len());
        path.push(w);
    }
}

/// The first cycle of the graph (by the deterministic component order), or
/// `None` if the graph is acyclic.
#[must_use]
pub fn first_cycle(n: usize, succ: &[Vec<usize>]) -> Option<Vec<usize>> {
    tarjan_sccs(n, succ)
        .into_iter()
        .find(|c| component_is_cyclic(succ, c))
        .map(|c| cycle_in_component(succ, &c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acyclic_graph_has_singleton_components_and_no_cycle() {
        // 0 -> 1 -> 2
        let succ = vec![vec![1], vec![2], vec![]];
        let comps = tarjan_sccs(3, &succ);
        assert_eq!(comps, vec![vec![0], vec![1], vec![2]]);
        assert!(first_cycle(3, &succ).is_none());
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let succ = vec![vec![0]];
        assert_eq!(first_cycle(1, &succ), Some(vec![0]));
    }

    #[test]
    fn two_node_cycle_is_found_and_canonical() {
        // 2 -> 1 -> 2, plus 0 feeding 1.
        let succ = vec![vec![1], vec![2], vec![1]];
        let comps = tarjan_sccs(3, &succ);
        assert!(comps.contains(&vec![1, 2]));
        assert_eq!(first_cycle(3, &succ), Some(vec![1, 2]));
    }

    #[test]
    fn cycle_walk_trims_the_tail_into_the_cycle() {
        // One SCC {0,1,2,3,4}: 0 -> 1 -> 2 -> 3 -> {1,4}, 4 -> 0. The
        // smallest-successor walk from 0 closes at 1 (3's smallest
        // in-component successor), so the reported cycle is 1 -> 2 -> 3
        // and the 0-prefix of the walk is trimmed away.
        let succ = vec![vec![1], vec![2], vec![3], vec![1, 4], vec![0]];
        let comps = tarjan_sccs(5, &succ);
        assert_eq!(comps, vec![vec![0, 1, 2, 3, 4]]);
        assert_eq!(cycle_in_component(&succ, &comps[0]), vec![1, 2, 3]);
    }

    #[test]
    fn deep_chain_does_not_overflow_the_stack() {
        // 100_000-node path ending in a 2-cycle; recursive Tarjan would
        // risk a stack overflow here.
        let n = 100_000;
        let mut succ: Vec<Vec<usize>> = (0..n).map(|i| vec![(i + 1) % n]).collect();
        succ[n - 1] = vec![n - 2];
        let cycle = first_cycle(n, &succ).expect("tail 2-cycle");
        assert_eq!(cycle, vec![n - 2, n - 1]);
    }
}
