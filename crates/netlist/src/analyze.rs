//! Structural analyses: topological order, logic levels, fanout, statistics.
//!
//! Logic levels are the arrival-time estimate of the DATE 2002 paper: "the
//! arrival times are assumed to be equivalent to the maximum path length in
//! terms of PL gates from the primary circuit inputs" (§3). At the
//! synchronous-netlist stage the sources are primary inputs, constants and
//! flip-flop outputs.

use std::collections::VecDeque;

use crate::error::NetlistError;
use crate::graph::{Netlist, NodeId};
use crate::node::NodeKind;

/// Topological order of the *combinational* dependency graph.
///
/// Flip-flop outputs act as sources (their `d` edge is sequential, not
/// combinational). The returned order contains every node exactly once.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalLoop`] naming a concrete cycle
/// path if LUT dependencies cycle (unconstructible via the creation-order
/// API, but reachable through [`Netlist::rewire_lut_input`] and checked
/// defensively).
pub fn comb_topo_order(netlist: &Netlist) -> Result<Vec<NodeId>, NetlistError> {
    let n = netlist.len();
    let mut indegree = vec![0usize; n];
    let mut fanout: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (id, node) in netlist.iter() {
        if let NodeKind::Lut { inputs, .. } = node.kind() {
            for &src in inputs {
                fanout[src.index()].push(id.index());
                indegree[id.index()] += 1;
            }
        }
    }
    let mut queue: VecDeque<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = queue.pop_front() {
        order.push(NodeId::from_index(i));
        for &dst in &fanout[i] {
            indegree[dst] -= 1;
            if indegree[dst] == 0 {
                queue.push_back(dst);
            }
        }
    }
    if order.len() != n {
        let path = crate::scc::first_cycle(n, &fanout)
            .expect("an unfinished topological sort implies a cycle")
            .into_iter()
            .map(NodeId::from_index)
            .collect();
        return Err(NetlistError::CombinationalLoop { path });
    }
    Ok(order)
}

/// Logic level of every node, indexed by [`NodeId::index`].
///
/// Sources (inputs, constants, flip-flops) are level 0; a LUT is
/// `1 + max(level of fanins)`.
///
/// # Errors
///
/// Propagates [`comb_topo_order`] errors.
pub fn levels(netlist: &Netlist) -> Result<Vec<u32>, NetlistError> {
    let order = comb_topo_order(netlist)?;
    let mut level = vec![0u32; netlist.len()];
    for id in order {
        if let NodeKind::Lut { inputs, .. } = netlist.node(id).kind() {
            level[id.index()] = 1 + inputs.iter().map(|i| level[i.index()]).max().unwrap_or(0);
        }
    }
    Ok(level)
}

/// Maximum combinational depth (in LUT levels) of the netlist.
///
/// # Errors
///
/// Propagates [`comb_topo_order`] errors.
pub fn depth(netlist: &Netlist) -> Result<u32, NetlistError> {
    Ok(levels(netlist)?.into_iter().max().unwrap_or(0))
}

/// Fanout lists: for each node, the nodes reading it (combinationally or via
/// a flip-flop `d` pin), indexed by [`NodeId::index`].
#[must_use]
pub fn fanouts(netlist: &Netlist) -> Vec<Vec<NodeId>> {
    let mut fo: Vec<Vec<NodeId>> = vec![Vec::new(); netlist.len()];
    for (id, node) in netlist.iter() {
        for src in node.fanins() {
            fo[src.index()].push(id);
        }
    }
    fo
}

/// Summary statistics of a netlist.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Stats {
    /// Primary inputs.
    pub num_inputs: usize,
    /// Named primary outputs.
    pub num_outputs: usize,
    /// LUT nodes.
    pub num_luts: usize,
    /// Flip-flops.
    pub num_dffs: usize,
    /// Constant drivers.
    pub num_consts: usize,
    /// Maximum LUT depth.
    pub depth: u32,
    /// Histogram of LUT arities, indexed by arity (0..=6).
    pub lut_arity_histogram: [usize; 7],
}

impl Stats {
    /// Total gate count the paper reports as "PL Gates": LUTs + flip-flops
    /// (each becomes one PL gate after mapping).
    #[must_use]
    pub fn pl_gate_count(&self) -> usize {
        self.num_luts + self.num_dffs
    }
}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} PI, {} PO, {} LUT, {} DFF, depth {}",
            self.num_inputs, self.num_outputs, self.num_luts, self.num_dffs, self.depth
        )
    }
}

/// Computes summary statistics.
///
/// # Errors
///
/// Propagates [`comb_topo_order`] errors (depth computation).
pub fn stats(netlist: &Netlist) -> Result<Stats, NetlistError> {
    let mut s = Stats {
        num_inputs: netlist.inputs().len(),
        num_outputs: netlist.outputs().len(),
        num_dffs: netlist.dffs().len(),
        depth: depth(netlist)?,
        ..Stats::default()
    };
    for (_, node) in netlist.iter() {
        match node.kind() {
            NodeKind::Lut { inputs, .. } => {
                s.num_luts += 1;
                s.lut_arity_histogram[inputs.len()] += 1;
            }
            NodeKind::Const { .. } => s.num_consts += 1,
            _ => {}
        }
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n_luts: usize) -> Netlist {
        let mut n = Netlist::new("chain");
        let a = n.add_input("a");
        let mut cur = a;
        for _ in 0..n_luts {
            cur = n.add_not(cur).unwrap();
        }
        n.set_output("y", cur);
        n
    }

    #[test]
    fn topo_order_is_complete_and_sorted() {
        let n = chain(5);
        let order = comb_topo_order(&n).unwrap();
        assert_eq!(order.len(), n.len());
        let pos: Vec<usize> = {
            let mut p = vec![0; n.len()];
            for (rank, id) in order.iter().enumerate() {
                p[id.index()] = rank;
            }
            p
        };
        for (id, node) in n.iter() {
            if let NodeKind::Lut { inputs, .. } = node.kind() {
                for src in inputs {
                    assert!(pos[src.index()] < pos[id.index()]);
                }
            }
        }
    }

    #[test]
    fn levels_of_chain() {
        let n = chain(4);
        let lv = levels(&n).unwrap();
        assert_eq!(depth(&n).unwrap(), 4);
        // input is level 0, successive inverters 1..4
        assert_eq!(lv[0], 0);
        assert_eq!(lv[4], 4);
    }

    #[test]
    fn dff_is_level_zero_source() {
        let mut n = Netlist::new("seq");
        let d = n.add_dff(false);
        let inv = n.add_not(d).unwrap();
        n.set_dff_input(d, inv).unwrap();
        n.set_output("q", d);
        let lv = levels(&n).unwrap();
        assert_eq!(lv[d.index()], 0);
        assert_eq!(lv[inv.index()], 1);
    }

    #[test]
    fn fanout_lists() {
        let mut n = Netlist::new("fan");
        let a = n.add_input("a");
        let x = n.add_not(a).unwrap();
        let y = n.add_not(a).unwrap();
        let d = n.add_dff(false);
        n.set_dff_input(d, a).unwrap();
        n.set_output("x", x);
        n.set_output("y", y);
        let fo = fanouts(&n);
        assert_eq!(fo[a.index()], vec![x, y, d]);
        assert!(fo[x.index()].is_empty());
    }

    #[test]
    fn stats_counts() {
        let mut n = Netlist::new("stats");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_and2(a, b).unwrap();
        let d = n.add_dff(true);
        n.set_dff_input(d, g).unwrap();
        n.set_output("q", d);
        let s = stats(&n).unwrap();
        assert_eq!(s.num_inputs, 2);
        assert_eq!(s.num_luts, 1);
        assert_eq!(s.num_dffs, 1);
        assert_eq!(s.pl_gate_count(), 2);
        assert_eq!(s.lut_arity_histogram[2], 1);
        assert_eq!(s.depth, 1);
        assert!(s.to_string().contains("1 LUT"));
    }
}
