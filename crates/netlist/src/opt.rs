//! Netlist cleanup passes: dead-node elimination, constant propagation and
//! structural hashing.
//!
//! These mirror the light cleanup a synthesis tool performs before
//! technology mapping. All passes preserve sequential behaviour (verified by
//! the equivalence property tests in `tests/`).

use std::collections::HashMap;

use pl_boolfn::TruthTable;

use crate::error::NetlistError;
use crate::graph::{Netlist, NodeId};
use crate::node::NodeKind;

/// Result of a cleanup pass: the rewritten netlist plus how many nodes the
/// pass removed or merged.
#[derive(Debug, Clone)]
pub struct PassResult {
    /// The rewritten netlist.
    pub netlist: Netlist,
    /// Nodes eliminated by the pass.
    pub removed: usize,
}

/// Removes nodes that no primary output or flip-flop transitively reads.
///
/// # Errors
///
/// Propagates validation errors from the input netlist.
pub fn dead_node_elimination(netlist: &Netlist) -> Result<PassResult, NetlistError> {
    netlist.validate()?;
    let mut live = vec![false; netlist.len()];
    let mut stack: Vec<NodeId> = Vec::new();
    for (_, id) in netlist.outputs() {
        stack.push(*id);
    }
    // Flip-flops are roots too only if they are themselves live; but their
    // d-pin cone must be kept for any live flip-flop. Start from outputs and
    // walk through both combinational and sequential edges.
    while let Some(id) = stack.pop() {
        if live[id.index()] {
            continue;
        }
        live[id.index()] = true;
        for src in netlist.node(id).fanins() {
            stack.push(src);
        }
    }
    // Primary inputs always survive (they are part of the interface).
    for &pi in netlist.inputs() {
        live[pi.index()] = true;
    }
    rebuild(netlist, |id| live[id.index()], |_id, kind| kind.clone())
}

/// Folds LUTs whose inputs include constants, re-expressing them over the
/// remaining live inputs; LUTs that become constant turn into constant
/// drivers.
///
/// # Errors
///
/// Propagates validation errors from the input netlist.
pub fn constant_propagation(netlist: &Netlist) -> Result<PassResult, NetlistError> {
    netlist.validate()?;
    // Iteratively compute which nodes are known constants.
    let order = crate::analyze::comb_topo_order(netlist)?;
    let mut konst: Vec<Option<bool>> = vec![None; netlist.len()];
    for &id in &order {
        match netlist.node(id).kind() {
            NodeKind::Const { value } => konst[id.index()] = Some(*value),
            NodeKind::Lut { table, inputs } => {
                let mut t = *table;
                let mut vars: u8 = 0;
                let mut asg: u32 = 0;
                for (i, src) in inputs.iter().enumerate() {
                    if let Some(v) = konst[src.index()] {
                        vars |= 1 << i;
                        if v {
                            asg |= 1 << i;
                        }
                    }
                }
                if vars != 0 {
                    t = t.restrict(vars, compact_assignment(vars, asg));
                }
                if t.is_zero() {
                    konst[id.index()] = Some(false);
                } else if t.is_ones() {
                    konst[id.index()] = Some(true);
                }
            }
            _ => {}
        }
    }
    rebuild(
        netlist,
        |_| true,
        |id, kind| {
            if let Some(v) = konst[id.index()] {
                if matches!(kind, NodeKind::Lut { .. }) {
                    return NodeKind::Const { value: v };
                }
            }
            if let NodeKind::Lut { table, inputs } = kind {
                // Shrink away constant fanins.
                let mut kept: Vec<NodeId> = Vec::new();
                let mut vars: u8 = 0;
                let mut asg: u32 = 0;
                for (i, src) in inputs.iter().enumerate() {
                    match konst[src.index()] {
                        Some(v) => {
                            vars |= 1 << i;
                            if v {
                                asg |= 1 << i;
                            }
                        }
                        None => kept.push(*src),
                    }
                }
                if vars == 0 {
                    return kind.clone();
                }
                let reduced = table
                    .restrict(vars, compact_assignment(vars, asg))
                    .project(!vars & ((1 << inputs.len()) - 1) as u8);
                NodeKind::Lut {
                    table: reduced,
                    inputs: kept,
                }
            } else {
                kind.clone()
            }
        },
    )
}

/// Merges structurally identical LUTs (same table, same fanin list) and
/// identical constants.
///
/// # Errors
///
/// Propagates validation errors from the input netlist.
pub fn structural_hash(netlist: &Netlist) -> Result<PassResult, NetlistError> {
    netlist.validate()?;
    let order = crate::analyze::comb_topo_order(netlist)?;

    let mut out = Netlist::new(netlist.name());
    let mut map: Vec<Option<NodeId>> = vec![None; netlist.len()];
    let mut lut_cache: HashMap<(TruthTable, Vec<NodeId>), NodeId> = HashMap::new();
    let mut const_cache: HashMap<bool, NodeId> = HashMap::new();

    // Pass 1: create inputs and flip-flop shells in declaration order.
    for &pi in netlist.inputs() {
        if let NodeKind::Input { name } = netlist.node(pi).kind() {
            map[pi.index()] = Some(out.add_input(name.clone()));
        }
    }
    for &ff in netlist.dffs() {
        if let NodeKind::Dff { init, .. } = netlist.node(ff).kind() {
            map[ff.index()] = Some(out.add_dff(*init));
        }
    }
    // Pass 2: create LUTs/constants in topological order with hashing.
    let mut removed = 0usize;
    for &id in &order {
        match netlist.node(id).kind() {
            NodeKind::Const { value } => {
                let new = *const_cache
                    .entry(*value)
                    .or_insert_with(|| out.add_const(*value));
                if map[id.index()].is_none() {
                    map[id.index()] = Some(new);
                }
            }
            NodeKind::Lut { table, inputs } => {
                let mapped: Vec<NodeId> = inputs
                    .iter()
                    .map(|i| map[i.index()].expect("topo order maps fanins first"))
                    .collect();
                let key = (*table, mapped.clone());
                if let Some(&existing) = lut_cache.get(&key) {
                    map[id.index()] = Some(existing);
                    removed += 1;
                } else {
                    let new = out
                        .add_lut(*table, mapped)
                        .expect("rebuilt lut preserves validated arity");
                    lut_cache.insert(key, new);
                    map[id.index()] = Some(new);
                }
            }
            _ => {}
        }
    }
    // Pass 3: connect flip-flops and outputs.
    for &ff in netlist.dffs() {
        if let NodeKind::Dff { d: Some(src), .. } = netlist.node(ff).kind() {
            let new_ff = map[ff.index()].expect("flip-flop was mapped");
            let new_src = map[src.index()].expect("driver was mapped");
            out.set_dff_input(new_ff, new_src)?;
        }
    }
    for (name, id) in netlist.outputs() {
        out.set_output(name.clone(), map[id.index()].expect("output driver mapped"));
    }
    // Count duplicate constants as removed too.
    let const_total = netlist.iter().filter(|(_, n)| n.is_const()).count();
    removed += const_total.saturating_sub(const_cache.len());
    Ok(PassResult {
        netlist: out,
        removed,
    })
}

/// Runs constant propagation, structural hashing and dead-node elimination
/// to a fixed point (bounded by a small iteration cap).
///
/// # Errors
///
/// Propagates errors from the individual passes.
pub fn cleanup(netlist: &Netlist) -> Result<Netlist, NetlistError> {
    let mut cur = netlist.clone();
    for _ in 0..8 {
        let a = constant_propagation(&cur)?;
        let b = structural_hash(&a.netlist)?;
        let c = dead_node_elimination(&b.netlist)?;
        let changed = a.removed + b.removed + c.removed > 0 || c.netlist.len() != cur.len();
        cur = c.netlist;
        if !changed {
            break;
        }
    }
    Ok(cur)
}

/// Rebuilds a netlist keeping nodes selected by `keep`, transforming kinds
/// via `rewrite`.
fn rebuild(
    netlist: &Netlist,
    keep: impl Fn(NodeId) -> bool,
    rewrite: impl Fn(NodeId, &NodeKind) -> NodeKind,
) -> Result<PassResult, NetlistError> {
    let order = crate::analyze::comb_topo_order(netlist)?;
    let mut out = Netlist::new(netlist.name());
    let mut map: Vec<Option<NodeId>> = vec![None; netlist.len()];

    for &pi in netlist.inputs() {
        if let NodeKind::Input { name } = netlist.node(pi).kind() {
            map[pi.index()] = Some(out.add_input(name.clone()));
        }
    }
    for &ff in netlist.dffs() {
        if keep(ff) {
            if let NodeKind::Dff { init, .. } = netlist.node(ff).kind() {
                map[ff.index()] = Some(out.add_dff(*init));
            }
        }
    }
    let mut removed = 0usize;
    for &id in &order {
        if map[id.index()].is_some() {
            continue;
        }
        if !keep(id) {
            removed += 1;
            continue;
        }
        let kind = rewrite(id, netlist.node(id).kind());
        let new = match kind {
            NodeKind::Const { value } => out.add_const(value),
            NodeKind::Lut { table, inputs } => {
                let mapped: Vec<NodeId> = inputs
                    .iter()
                    .map(|i| map[i.index()].expect("fanin of kept node must be kept"))
                    .collect();
                out.add_lut(table, mapped)?
            }
            NodeKind::Input { .. } | NodeKind::Dff { .. } => continue,
        };
        map[id.index()] = Some(new);
    }
    for &ff in netlist.dffs() {
        if !keep(ff) {
            continue;
        }
        if let NodeKind::Dff { d: Some(src), .. } = netlist.node(ff).kind() {
            let new_ff = map[ff.index()].expect("kept flip-flop mapped");
            let new_src = map[src.index()].ok_or(NetlistError::UnknownNode(*src))?;
            out.set_dff_input(new_ff, new_src)?;
        }
    }
    for (name, id) in netlist.outputs() {
        let mapped = map[id.index()].ok_or(NetlistError::UnknownNode(*id))?;
        out.set_output(name.clone(), mapped);
    }
    Ok(PassResult {
        netlist: out,
        removed,
    })
}

/// Compacts a full-width assignment into the low bits expected by
/// [`TruthTable::restrict`] (bit *k* = value of the *k*-th set variable).
fn compact_assignment(vars: u8, full_assignment: u32) -> u32 {
    let mut out = 0u32;
    let mut k = 0;
    for v in 0..8 {
        if vars & (1 << v) != 0 {
            if (full_assignment >> v) & 1 == 1 {
                out |= 1 << k;
            }
            k += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;

    fn outputs_over(n: &Netlist, vectors: &[Vec<bool>]) -> Vec<Vec<bool>> {
        let mut sim = Evaluator::new(n).unwrap();
        vectors.iter().map(|v| sim.step(v).unwrap()).collect()
    }

    #[test]
    fn dce_removes_unreferenced_logic() {
        let mut n = Netlist::new("dce");
        let a = n.add_input("a");
        let used = n.add_not(a).unwrap();
        let _dead1 = n.add_and2(a, used).unwrap();
        let _dead2 = n.add_or2(a, used).unwrap();
        n.set_output("y", used);
        let r = dead_node_elimination(&n).unwrap();
        assert_eq!(r.removed, 2);
        assert_eq!(r.netlist.num_luts(), 1);
        // behaviour preserved
        let vecs: Vec<Vec<bool>> = vec![vec![false], vec![true]];
        assert_eq!(outputs_over(&n, &vecs), outputs_over(&r.netlist, &vecs));
    }

    #[test]
    fn const_prop_folds_through_and() {
        let mut n = Netlist::new("cp");
        let a = n.add_input("a");
        let zero = n.add_const(false);
        let g = n.add_and2(a, zero).unwrap(); // == 0
        let h = n.add_or2(g, a).unwrap(); // == a
        n.set_output("y", h);
        let folded = cleanup(&n).unwrap();
        // The OR collapses to a buffer of `a` (1-input LUT) or the output may
        // directly reference a; either way no 2-input gates survive.
        let vecs: Vec<Vec<bool>> = vec![vec![false], vec![true]];
        assert_eq!(outputs_over(&n, &vecs), outputs_over(&folded, &vecs));
        assert!(folded.iter().all(|(_, node)| match node.kind() {
            NodeKind::Lut { inputs, .. } => inputs.len() <= 1,
            _ => true,
        }));
    }

    #[test]
    fn strash_merges_duplicates() {
        let mut n = Netlist::new("sh");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g1 = n.add_and2(a, b).unwrap();
        let g2 = n.add_and2(a, b).unwrap();
        let o = n.add_xor2(g1, g2).unwrap(); // always 0 after merging
        n.set_output("y", o);
        let r = structural_hash(&n).unwrap();
        assert_eq!(r.removed, 1);
        let vecs: Vec<Vec<bool>> = (0..4).map(|m| vec![m & 1 != 0, m & 2 != 0]).collect();
        assert_eq!(outputs_over(&n, &vecs), outputs_over(&r.netlist, &vecs));
    }

    #[test]
    fn cleanup_preserves_sequential_behaviour() {
        // Counter with some dead logic and a constant-fed gate.
        let mut n = Netlist::new("mix");
        let q = n.add_dff(false);
        let one = n.add_const(true);
        let nq = n.add_xor2(q, one).unwrap(); // == !q
        n.set_dff_input(q, nq).unwrap();
        let _dead = n.add_and2(q, nq).unwrap();
        n.set_output("q", q);
        let cleaned = cleanup(&n).unwrap();
        let vecs: Vec<Vec<bool>> = vec![vec![]; 6];
        assert_eq!(outputs_over(&n, &vecs), outputs_over(&cleaned, &vecs));
        assert!(cleaned.len() < n.len());
    }

    #[test]
    fn compact_assignment_examples() {
        assert_eq!(compact_assignment(0b0101, 0b0100), 0b10);
        assert_eq!(compact_assignment(0b0011, 0b0011), 0b11);
        assert_eq!(compact_assignment(0b1000, 0b1000), 0b1);
    }
}
