//! Netlist node types.

use pl_boolfn::TruthTable;

use crate::graph::NodeId;

/// Maximum LUT arity the IR accepts.
///
/// The technology mapper targets LUT4 (the paper's PL gate), but the IR
/// tolerates up to 6 fanins so that mapping intermediates can be expressed.
pub const MAX_LUT_ARITY: usize = 6;

/// The kind of a netlist node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// A primary input with a port name.
    Input {
        /// Port name.
        name: String,
    },
    /// A constant driver.
    Const {
        /// The constant value.
        value: bool,
    },
    /// A combinational look-up table.
    Lut {
        /// The function computed over `inputs` (variable `i` of the table is
        /// `inputs[i]`).
        table: TruthTable,
        /// Fanin nodes.
        inputs: Vec<NodeId>,
    },
    /// A D flip-flop.
    Dff {
        /// The data input, if connected yet.
        d: Option<NodeId>,
        /// Power-on / reset value.
        init: bool,
    },
}

/// A netlist node: its kind plus an optional debug name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    pub(crate) kind: NodeKind,
    pub(crate) name: Option<String>,
}

impl Node {
    /// The node's kind.
    #[must_use]
    pub fn kind(&self) -> &NodeKind {
        &self.kind
    }

    /// Optional debug name attached to the node.
    #[must_use]
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Whether this node is a primary input.
    #[must_use]
    pub fn is_input(&self) -> bool {
        matches!(self.kind, NodeKind::Input { .. })
    }

    /// Whether this node is a constant.
    #[must_use]
    pub fn is_const(&self) -> bool {
        matches!(self.kind, NodeKind::Const { .. })
    }

    /// Whether this node is a LUT.
    #[must_use]
    pub fn is_lut(&self) -> bool {
        matches!(self.kind, NodeKind::Lut { .. })
    }

    /// Whether this node is a flip-flop.
    #[must_use]
    pub fn is_dff(&self) -> bool {
        matches!(self.kind, NodeKind::Dff { .. })
    }

    /// The combinational fanins of the node (empty for inputs/constants;
    /// the `d` pin for a connected flip-flop).
    #[must_use]
    pub fn fanins(&self) -> Vec<NodeId> {
        match &self.kind {
            NodeKind::Input { .. } | NodeKind::Const { .. } => Vec::new(),
            NodeKind::Lut { inputs, .. } => inputs.clone(),
            NodeKind::Dff { d, .. } => d.iter().copied().collect(),
        }
    }

    /// The LUT truth table, if this is a LUT.
    #[must_use]
    pub fn lut_table(&self) -> Option<&TruthTable> {
        match &self.kind {
            NodeKind::Lut { table, .. } => Some(table),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        let n = Node {
            kind: NodeKind::Const { value: true },
            name: None,
        };
        assert!(n.is_const());
        assert!(!n.is_lut());
        assert!(n.fanins().is_empty());
        assert!(n.lut_table().is_none());
    }

    #[test]
    fn dff_fanins_reflect_connection() {
        let unconnected = Node {
            kind: NodeKind::Dff {
                d: None,
                init: false,
            },
            name: None,
        };
        assert!(unconnected.fanins().is_empty());
        let connected = Node {
            kind: NodeKind::Dff {
                d: Some(NodeId::from_index(3)),
                init: false,
            },
            name: None,
        };
        assert_eq!(connected.fanins(), vec![NodeId::from_index(3)]);
    }
}
