//! Structural Verilog export.
//!
//! Emits a synthesizable gate-level module: LUTs become `assign`
//! expressions in sum-of-products form (via ISOP), flip-flops become a
//! clocked `always` block with a synchronous reset to their initial
//! values. This is the hand-off format for users who want to push the
//! mapped netlist through a conventional FPGA flow.

use std::fmt::Write as _;

use pl_boolfn::{isop, Polarity};

use crate::error::NetlistError;
use crate::graph::{Netlist, NodeId};
use crate::node::NodeKind;

/// Serializes a netlist as a structural Verilog module.
///
/// The module gets `clk` and `rst` ports in addition to the netlist's
/// primary inputs and outputs; `rst` loads every flip-flop's declared
/// initial value.
///
/// # Errors
///
/// Fails if the netlist does not validate.
pub fn to_verilog(netlist: &Netlist) -> Result<String, NetlistError> {
    netlist.validate()?;
    let mut s = String::new();
    let sig = |id: NodeId| -> String {
        match netlist.node(id).kind() {
            NodeKind::Input { name } => sanitize(name),
            _ => format!("n{}", id.index()),
        }
    };

    let inputs: Vec<String> = netlist.inputs().iter().map(|&i| sig(i)).collect();
    let outputs: Vec<String> = netlist.outputs().iter().map(|(n, _)| sanitize(n)).collect();
    let mut ports = vec!["clk".to_string(), "rst".to_string()];
    ports.extend(inputs.iter().cloned());
    ports.extend(outputs.iter().cloned());

    writeln!(s, "module {} (", sanitize(netlist.name())).expect("write");
    writeln!(s, "  {}", ports.join(",\n  ")).expect("write");
    writeln!(s, ");").expect("write");
    writeln!(s, "  input clk, rst;").expect("write");
    for i in &inputs {
        writeln!(s, "  input {i};").expect("write");
    }
    for o in &outputs {
        writeln!(s, "  output {o};").expect("write");
    }
    for (id, node) in netlist.iter() {
        match node.kind() {
            NodeKind::Lut { .. } | NodeKind::Const { .. } => {
                writeln!(s, "  wire {};", sig(id)).expect("write");
            }
            NodeKind::Dff { .. } => {
                writeln!(s, "  reg {};", sig(id)).expect("write");
            }
            NodeKind::Input { .. } => {}
        }
    }
    writeln!(s).expect("write");

    // Combinational assigns.
    for (id, node) in netlist.iter() {
        match node.kind() {
            NodeKind::Const { value } => {
                writeln!(s, "  assign {} = 1'b{};", sig(id), u8::from(*value)).expect("write");
            }
            NodeKind::Lut { table, inputs } => {
                let expr = if table.is_zero() {
                    "1'b0".to_string()
                } else if table.is_ones() {
                    "1'b1".to_string()
                } else {
                    let cover = isop(table, table);
                    let terms: Vec<String> = cover
                        .iter()
                        .map(|cube| {
                            let lits: Vec<String> = (0..table.num_vars())
                                .filter_map(|v| match cube.literal(v) {
                                    Polarity::Positive => Some(sig(inputs[v])),
                                    Polarity::Negative => Some(format!("~{}", sig(inputs[v]))),
                                    Polarity::DontCare => None,
                                })
                                .collect();
                            if lits.is_empty() {
                                "1'b1".to_string()
                            } else {
                                lits.join(" & ")
                            }
                        })
                        .collect();
                    terms.join(" | ")
                };
                writeln!(s, "  assign {} = {expr};", sig(id)).expect("write");
            }
            _ => {}
        }
    }

    // Sequential block.
    if !netlist.dffs().is_empty() {
        writeln!(s, "\n  always @(posedge clk) begin").expect("write");
        writeln!(s, "    if (rst) begin").expect("write");
        for &ff in netlist.dffs() {
            if let NodeKind::Dff { init, .. } = netlist.node(ff).kind() {
                writeln!(s, "      {} <= 1'b{};", sig(ff), u8::from(*init)).expect("write");
            }
        }
        writeln!(s, "    end else begin").expect("write");
        for &ff in netlist.dffs() {
            if let NodeKind::Dff { d: Some(src), .. } = netlist.node(ff).kind() {
                writeln!(s, "      {} <= {};", sig(ff), sig(*src)).expect("write");
            }
        }
        writeln!(s, "    end").expect("write");
        writeln!(s, "  end").expect("write");
    }

    // Output connections.
    writeln!(s).expect("write");
    for (name, id) in netlist.outputs() {
        let driver = sig(*id);
        let port = sanitize(name);
        if driver != port {
            writeln!(s, "  assign {port} = {driver};").expect("write");
        }
    }
    writeln!(s, "endmodule").expect("write");
    Ok(s)
}

/// Replaces characters Verilog identifiers cannot carry.
fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_boolfn::TruthTable;

    fn demo() -> Netlist {
        let mut n = Netlist::new("demo");
        let a = n.add_input("a");
        let b = n.add_input("b[0]");
        let g = n.add_and2(a, b).unwrap();
        let x = n.add_xor2(g, a).unwrap();
        let d = n.add_dff(true);
        n.set_dff_input(d, x).unwrap();
        let k = n.add_const(false);
        let o = n.add_or2(d, k).unwrap();
        n.set_output("y", o);
        n
    }

    #[test]
    fn emits_module_with_all_sections() {
        let v = to_verilog(&demo()).unwrap();
        assert!(v.contains("module demo ("));
        assert!(v.contains("input a;"));
        assert!(
            v.contains("input b_0_;"),
            "bus bit names are sanitized: {v}"
        );
        assert!(v.contains("output y;"));
        assert!(v.contains("always @(posedge clk)"));
        assert!(v.contains("<= 1'b1;"), "reset loads the init value");
        assert!(v.contains("endmodule"));
    }

    #[test]
    fn lut_expressions_are_sop() {
        let mut n = Netlist::new("sop");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let maj = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
        let g = n.add_lut(maj, vec![a, b, c]).unwrap();
        n.set_output("y", g);
        let v = to_verilog(&n).unwrap();
        // majority = ab + ac + bc in some order
        let assign = v.lines().find(|l| l.contains("assign n3")).unwrap();
        assert_eq!(assign.matches('|').count(), 2, "{assign}");
        assert_eq!(assign.matches('&').count(), 3, "{assign}");
    }

    #[test]
    fn constants_and_trivial_tables() {
        let mut n = Netlist::new("konst");
        let a = n.add_input("a");
        let zero = n.add_lut(TruthTable::zero(1), vec![a]).unwrap();
        let one = n.add_lut(TruthTable::ones(1), vec![a]).unwrap();
        n.set_output("z", zero);
        n.set_output("o", one);
        let v = to_verilog(&n).unwrap();
        assert!(v.contains("= 1'b0;"));
        assert!(v.contains("= 1'b1;"));
    }

    #[test]
    fn sanitize_rules() {
        assert_eq!(sanitize("x[3]"), "x_3_");
        assert_eq!(sanitize("3state"), "_3state");
        assert_eq!(sanitize("ok_name"), "ok_name");
    }
}
