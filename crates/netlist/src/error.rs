//! Error type for netlist construction and analysis.

use std::error::Error;
use std::fmt;

use crate::graph::NodeId;

/// Errors produced while building or analyzing a [`crate::Netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A node id referenced a node that does not exist.
    UnknownNode(NodeId),
    /// A LUT was created whose truth-table arity differs from its fanin count.
    ArityMismatch {
        /// Variables in the supplied truth table.
        table_vars: usize,
        /// Number of fanin nodes supplied.
        fanins: usize,
    },
    /// A LUT exceeded the maximum supported arity.
    LutTooWide {
        /// Requested arity.
        arity: usize,
        /// Supported maximum.
        max: usize,
    },
    /// `set_dff_input` was called on a node that is not a flip-flop.
    NotADff(NodeId),
    /// `rewire_lut_input` was called on a node that is not a LUT.
    NotALut(NodeId),
    /// `rewire_lut_input` addressed a pin beyond the LUT's arity.
    LutPinOutOfRange {
        /// The LUT being rewired.
        node: NodeId,
        /// The requested pin.
        pin: usize,
        /// The LUT's actual fanin count.
        arity: usize,
    },
    /// `remove_gate` was called on a primary input; ports are part of the
    /// design interface and cannot be removed by an ECO edit.
    RemoveInput(NodeId),
    /// `remove_gate` was called on a node that is still referenced.
    RemoveInUse {
        /// The node that was asked to be removed.
        node: NodeId,
        /// A human-readable description of one remaining user (a primary
        /// output, LUT or flip-flop).
        user: String,
    },
    /// A flip-flop was left without a driver.
    UndrivenDff(NodeId),
    /// The combinational part of the netlist contains a cycle; `path` is
    /// one concrete cycle (`path[0] -> path[1] -> ... -> path[0]`).
    CombinationalLoop {
        /// The offending cycle, smallest node first; the closing edge back
        /// to `path[0]` is implied.
        path: Vec<NodeId>,
    },
    /// A primary output references a missing node.
    DanglingOutput {
        /// Output port name.
        name: String,
        /// The missing node.
        node: NodeId,
    },
    /// Wrong number of primary-input values supplied to the evaluator.
    InputArityMismatch {
        /// Values supplied.
        got: usize,
        /// Primary inputs expected.
        expected: usize,
    },
    /// A BLIF file could not be parsed.
    BlifParse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownNode(id) => write!(f, "unknown node {id}"),
            NetlistError::ArityMismatch { table_vars, fanins } => write!(
                f,
                "truth table has {table_vars} variables but {fanins} fanins were supplied"
            ),
            NetlistError::LutTooWide { arity, max } => {
                write!(f, "lut arity {arity} exceeds supported maximum {max}")
            }
            NetlistError::NotADff(id) => write!(f, "node {id} is not a flip-flop"),
            NetlistError::NotALut(id) => write!(f, "node {id} is not a LUT"),
            NetlistError::LutPinOutOfRange { node, pin, arity } => {
                write!(f, "LUT {node} has no pin {pin} (arity {arity})")
            }
            NetlistError::RemoveInput(id) => {
                write!(
                    f,
                    "primary input {id} cannot be removed: ports are part of the interface"
                )
            }
            NetlistError::RemoveInUse { node, user } => {
                write!(f, "node {node} cannot be removed: still read by {user}")
            }
            NetlistError::UndrivenDff(id) => write!(f, "flip-flop {id} has no driver"),
            NetlistError::CombinationalLoop { path } => {
                write!(f, "combinational loop: ")?;
                for id in path {
                    write!(f, "{id} -> ")?;
                }
                write!(f, "{}", path.first().expect("cycle paths are non-empty"))
            }
            NetlistError::DanglingOutput { name, node } => {
                write!(f, "output '{name}' references missing node {node}")
            }
            NetlistError::InputArityMismatch { got, expected } => {
                write!(f, "expected {expected} primary-input values, got {got}")
            }
            NetlistError::BlifParse { line, message } => {
                write!(f, "blif parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = NetlistError::ArityMismatch {
            table_vars: 3,
            fanins: 2,
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('2'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<NetlistError>();
    }
}
