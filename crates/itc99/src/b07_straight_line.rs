//! b07 — count points on a straight line.

use pl_rtl::Module;

/// Builds b07: counts how many streamed points fall on the line `y = x + c`.
///
/// Each valid cycle presents a point `(x, y)`; the datapath forms `x + c`
/// with a ripple adder and compares it against `y`, incrementing the hit
/// counter on a match and tracking the largest deviation otherwise. This
/// gives the adder/comparator mix that made the original b07 one of the
/// paper's best EE performers (+23 %).
#[must_use]
pub fn b07() -> Module {
    const W: usize = 8;
    let mut m = Module::new("b07");
    let x = m.input_word("x", W);
    let y = m.input_word("y", W);
    let c = m.input_word("c", W);
    let valid = m.input_bit("valid");
    let reset = m.input_bit("reset");

    let hits = m.reg_word("hits", W, 0);
    let seen = m.reg_word("seen", W, 0);
    let worst = m.reg_word("worst", W, 0);

    let expect = m.add(&x, &c);
    let on_line = m.eq_w(&expect, &y);

    // |y - expect|
    let d_ab = m.sub(&y, &expect);
    let d_ba = m.sub(&expect, &y);
    let y_ge = m.ge_u(&y, &expect);
    let dev = m.mux_w(y_ge, &d_ba, &d_ab);
    let bigger = m.gt_u(&dev, &worst.q());
    let worst_upd = m.mux_w(bigger, &worst.q(), &dev);
    let worst_next = m.mux_w(on_line, &worst_upd, &worst.q());

    let hits_inc = m.inc(&hits.q());
    let hits_next = m.mux_w(on_line, &hits.q(), &hits_inc);
    let seen_next = m.inc(&seen.q());

    m.next_when_with_reset(&hits, reset, valid, &hits_next);
    m.next_when_with_reset(&seen, reset, valid, &seen_next);
    m.next_when_with_reset(&worst, reset, valid, &worst_next);

    m.output_word("hits", &hits.q());
    m.output_word("seen", &seen.q());
    m.output_word("worst", &worst.q());
    m.output_bit("on_line", on_line);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_netlist::eval::Evaluator;

    const W: usize = 8;

    fn step(sim: &mut Evaluator, x: u64, y: u64, c: u64, valid: bool, reset: bool) -> Vec<bool> {
        let mut ins: Vec<bool> = Vec::new();
        for v in [x, y, c] {
            ins.extend((0..W).map(|i| (v >> i) & 1 == 1));
        }
        ins.push(valid);
        ins.push(reset);
        sim.step(&ins).unwrap()
    }

    fn field(out: &[bool], lo: usize) -> u64 {
        (0..W).map(|i| u64::from(out[lo + i]) << i).sum()
    }

    #[test]
    fn counts_points_on_the_line() {
        let n = b07().elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        step(&mut sim, 0, 0, 0, false, true);
        let c = 7u64;
        let pts = [(1u64, 8u64), (2, 9), (3, 11), (4, 11), (5, 12), (6, 99)];
        let mut want_hits = 0;
        for &(x, y) in &pts {
            step(&mut sim, x, y, c, true, false);
            if (x + c) & 0xFF == y {
                want_hits += 1;
            }
        }
        let out = step(&mut sim, 0, 0, c, false, false);
        assert_eq!(field(&out, 0), want_hits);
        assert_eq!(field(&out, W), pts.len() as u64);
    }

    #[test]
    fn worst_deviation_tracked() {
        let n = b07().elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        step(&mut sim, 0, 0, 0, false, true);
        step(&mut sim, 10, 15, 0, true, false); // dev 5
        step(&mut sim, 10, 12, 0, true, false); // dev 2 (not worse)
        step(&mut sim, 10, 30, 0, true, false); // dev 20
        let out = step(&mut sim, 0, 0, 0, false, false);
        assert_eq!(field(&out, 2 * W), 20);
    }

    #[test]
    fn on_line_is_combinational() {
        let n = b07().elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        let out = step(&mut sim, 5, 12, 7, false, false);
        assert!(out[3 * W]);
        let out = step(&mut sim, 5, 13, 7, false, false);
        assert!(!out[3 * W]);
    }
}
