//! b04 — compute min and max.

use pl_rtl::Module;

/// Data width of the b04 datapath.
pub const B04_WIDTH: usize = 8;

/// Builds b04: running minimum/maximum over a data stream.
///
/// Each cycle with `data_in_valid` high, the 8-bit `data_in` updates the
/// running `rmax`/`rmin` registers; `rlast` keeps the previous sample and
/// `delta` flags a sample differing from the stored extremes by more than
/// a threshold — the arithmetic-comparator mix that makes the original b04
/// one of the suite's datapath-heavy members.
#[must_use]
pub fn b04() -> Module {
    let mut m = Module::new("b04");
    let data = m.input_word("data_in", B04_WIDTH);
    let valid = m.input_bit("data_in_valid");
    let reset = m.input_bit("reset");

    let rmax = m.reg_word("rmax", B04_WIDTH, 0);
    let rmin = m.reg_word("rmin", B04_WIDTH, (1 << B04_WIDTH) - 1);
    let rlast = m.reg_word("rlast", B04_WIDTH, 0);

    let new_max = m.max_u(&rmax.q(), &data);
    let new_min = m.min_u(&rmin.q(), &data);

    // delta: |data - rlast| has its high bit set (swing > 127).
    let diff_ab = m.sub(&data, &rlast.q());
    let diff_ba = m.sub(&rlast.q(), &data);
    let a_ge = m.ge_u(&data, &rlast.q());
    let diff = m.mux_w(a_ge, &diff_ba, &diff_ab);
    let delta = diff.msb();

    // Span between extremes, exported like the original's elaboration.
    let span = m.sub(&rmax.q(), &rmin.q());

    m.next_when_with_reset(&rmax, reset, valid, &new_max);
    m.next_when_with_reset(&rmin, reset, valid, &new_min);
    m.next_when_with_reset(&rlast, reset, valid, &data);

    m.output_word("rmax", &rmax.q());
    m.output_word("rmin", &rmin.q());
    m.output_word("span", &span);
    m.output_bit("delta", delta);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_netlist::eval::Evaluator;

    fn run(sim: &mut Evaluator, data: u64, valid: bool, reset: bool) -> (u64, u64, u64, bool) {
        let mut ins: Vec<bool> = (0..B04_WIDTH).map(|i| (data >> i) & 1 == 1).collect();
        ins.push(valid);
        ins.push(reset);
        let out = sim.step(&ins).unwrap();
        let word = |lo: usize| -> u64 { (0..B04_WIDTH).map(|i| u64::from(out[lo + i]) << i).sum() };
        (
            word(0),
            word(B04_WIDTH),
            word(2 * B04_WIDTH),
            out[3 * B04_WIDTH],
        )
    }

    #[test]
    fn tracks_running_extremes() {
        let n = b04().elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        run(&mut sim, 0, false, true); // reset
        let samples = [17u64, 3, 200, 113, 5, 250, 1];
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for &s in &samples {
            run(&mut sim, s, true, false);
            lo = lo.min(s);
            hi = hi.max(s);
        }
        // One idle cycle to observe the registers.
        let (rmax, rmin, span, _) = run(&mut sim, 0, false, false);
        assert_eq!(rmax, hi);
        assert_eq!(rmin, lo);
        assert_eq!(span, hi - lo);
    }

    #[test]
    fn invalid_samples_are_ignored() {
        let n = b04().elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        run(&mut sim, 0, false, true);
        run(&mut sim, 100, true, false);
        run(&mut sim, 255, false, false); // not valid — must not update
        let (rmax, _, _, _) = run(&mut sim, 0, false, false);
        assert_eq!(rmax, 100);
    }

    #[test]
    fn delta_flags_large_swings() {
        let n = b04().elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        run(&mut sim, 0, false, true);
        run(&mut sim, 10, true, false); // rlast = 10
                                        // Next sample 200: |200-10| = 190 > 127 -> delta on the same cycle
        let (_, _, _, delta) = run(&mut sim, 200, true, false);
        assert!(delta);
        let (_, _, _, delta) = run(&mut sim, 210, true, false);
        assert!(!delta, "small swing must not flag");
    }

    #[test]
    fn datapath_heavy_size() {
        let n = b04().elaborate().unwrap();
        let gates = n.num_luts() + n.dffs().len();
        assert!(gates > 100, "b04 carries real arithmetic, got {gates}");
    }
}
