//! b15 — 80386 processor (subset).
//!
//! The original b15 wraps a subset of the Intel 80386's execution
//! behaviour. This re-implementation doubles down on everything that makes
//! b14 big: sixteen 16-bit registers, a 128-word instruction ROM, a 16-word
//! data RAM with base+offset addressing, a three-bit flags register
//! (zero/carry/sign), condition-select branches, and carry-chained
//! add-with-carry / subtract-with-borrow — making it the largest circuit of
//! the suite, as in the paper's Table 3 (5648 PL gates, 45 % EE speedup).

use pl_rtl::{Bit, Module, Reg, Word};

/// Data width of the b15 core.
pub const B15_WIDTH: usize = 16;
/// Instruction-ROM address width (128 words).
pub const B15_PCW: usize = 7;
/// Register count (4-bit indices).
pub const B15_REGS: usize = 16;
/// Data-RAM words.
pub const B15_RAM: usize = 16;

/// The fixed instruction ROM.
#[must_use]
pub fn b15_program() -> Vec<u64> {
    let mut x: u64 = 0x8038_6FEED;
    (0..(1u64 << B15_PCW))
        .map(|_| {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            (x >> 20) & 0xFFFF
        })
        .collect()
}

/// Architectural state of the software model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct B15State {
    /// Register file.
    pub regs: [u64; B15_REGS],
    /// Data memory.
    pub ram: [u64; B15_RAM],
    /// Program counter.
    pub pc: u64,
    /// Zero flag.
    pub zf: bool,
    /// Carry flag.
    pub cf: bool,
    /// Sign flag (msb of last ALU result).
    pub sf: bool,
    /// Output register.
    pub out: u64,
}

impl Default for B15State {
    fn default() -> Self {
        Self {
            regs: [0; B15_REGS],
            ram: [0; B15_RAM],
            pc: 0,
            zf: false,
            cf: false,
            sf: false,
            out: 0,
        }
    }
}

impl B15State {
    /// Executes one instruction. Format: `op[15:12] rd[11:8] rs[7:4]
    /// imm[3:0]`.
    pub fn step(&mut self, program: &[u64], data_in: u64) {
        const MASK: u64 = (1 << B15_WIDTH as u64) - 1;
        const MSB: u64 = 1 << (B15_WIDTH as u64 - 1);
        let instr = program[self.pc as usize];
        let op = (instr >> 12) & 0xF;
        let rd = ((instr >> 8) & 0xF) as usize;
        let rs = ((instr >> 4) & 0xF) as usize;
        let imm = instr & 0xF;
        let a = self.regs[rd];
        let b = self.regs[rs];
        let mut next_pc = (self.pc + 1) & ((1 << B15_PCW as u64) - 1);
        let mut wrote = None;
        match op {
            0 => {
                // ALU result flags refresh even for nop-like mov rd,rd.
                wrote = Some(a);
            }
            1 => wrote = Some((imm << 4) | (a & 0xF)), // LUI-ish: imm into [7:4]
            2 => {
                let full = a + b;
                self.cf = full > MASK;
                wrote = Some(full & MASK);
            }
            3 => {
                let full = a + b + u64::from(self.cf); // ADC
                self.cf = full > MASK;
                wrote = Some(full & MASK);
            }
            4 => {
                self.cf = a < b;
                wrote = Some(a.wrapping_sub(b) & MASK);
            }
            5 => {
                let borrow = u64::from(self.cf);
                self.cf = a < b + borrow; // SBB
                wrote = Some(a.wrapping_sub(b).wrapping_sub(borrow) & MASK);
            }
            6 => wrote = Some(a & b),
            7 => wrote = Some(a | b),
            8 => wrote = Some(a ^ b),
            9 => {
                self.cf = a & 1 == 1;
                wrote = Some(a >> 1); // SHR
            }
            10 => {
                // CMP: flags only
                let r = a.wrapping_sub(b) & MASK;
                self.zf = r == 0;
                self.cf = a < b;
                self.sf = r & MSB != 0;
            }
            11 => {
                // Jcc: condition from rs low bits: 0 Z, 1 C, 2 S, 3 always
                let taken = match rs & 3 {
                    0 => self.zf,
                    1 => self.cf,
                    2 => self.sf,
                    _ => true,
                };
                if taken {
                    // target: {rd, imm} (8 bits) truncated to PC width
                    next_pc = (((rd as u64) << 4) | imm) & ((1 << B15_PCW as u64) - 1);
                }
            }
            12 => wrote = Some(self.ram[((b + imm) & 0xF) as usize]), // LD base+off
            13 => self.ram[((b + imm) & 0xF) as usize] = a,           // ST base+off
            14 => wrote = Some(data_in & MASK),
            15 => self.out = a,
            _ => unreachable!(),
        }
        if let Some(v) = wrote {
            self.regs[rd] = v;
            if op != 10 {
                self.zf = v == 0;
                self.sf = v & MSB != 0;
            }
        }
        self.pc = next_pc;
    }
}

/// Builds the b15 core as RTL.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn b15() -> Module {
    let mut m = Module::new("b15");
    let data_in = m.input_word("data_in", B15_WIDTH);
    let reset = m.input_bit("reset");

    let pc = m.reg_word("pc", B15_PCW, 0);
    let zf = m.reg_bit("zf", false);
    let cf = m.reg_bit("cf", false);
    let sf = m.reg_bit("sf", false);
    let out = m.reg_word("out", B15_WIDTH, 0);
    let regs: Vec<Reg> = (0..B15_REGS)
        .map(|i| m.reg_word(format!("r{i}"), B15_WIDTH, 0))
        .collect();
    let ram: Vec<Reg> = (0..B15_RAM)
        .map(|i| m.reg_word(format!("mem{i}"), B15_WIDTH, 0))
        .collect();

    let program = b15_program();
    let instr = m.rom(&pc.q(), B15_WIDTH, &program);
    let op = instr.slice(12, 16);
    let rd = instr.slice(8, 12);
    let rs = instr.slice(4, 8);
    let imm = instr.slice(0, 4);

    let reg_words: Vec<Word> = regs.iter().map(Reg::q).collect();
    let a = mux_by_index(&mut m, &rd, &reg_words);
    let b = mux_by_index(&mut m, &rs, &reg_words);

    // Effective address: (b + imm) low 4 bits.
    let imm_w = m.resize(&imm, B15_WIDTH);
    let ea_full = m.add(&b, &imm_w);
    let ea = ea_full.slice(0, 4);
    let ram_words: Vec<Word> = ram.iter().map(Reg::q).collect();
    let ram_val = mux_by_index(&mut m, &ea, &ram_words);

    // ALU.
    let zero_b = m.const_bit(false);
    let (add, add_c) = m.add_carry(&a, &b, zero_b);
    let (adc, adc_c) = m.add_carry(&a, &b, cf.q().bit(0));
    let (sub, sub_nb) = m.sub_borrow(&a, &b);
    let sub_c = m.not(sub_nb);
    // SBB: a - b - cf = a + !b + !cf
    let nb = m.not_w(&b);
    let ncf = m.not(cf.q().bit(0));
    let (sbb, sbb_nb) = m.add_carry(&a, &nb, ncf);
    let sbb_c = m.not(sbb_nb);
    let and = m.and_w(&a, &b);
    let or = m.or_w(&a, &b);
    let xor = m.xor_w(&a, &b);
    let shr = m.shr_const(&a, 1);
    let shr_c = a.bit(0);
    let lui = {
        let low = a.slice(0, 4);
        let mid = imm.clone();
        let zero = m.const_word(B15_WIDTH - 8, 0);
        low.concat(&mid).concat(&zero)
    };

    let is: Vec<Bit> = (0..16).map(|k| m.eq_const(&op, k)).collect();

    // Writeback mux.
    let wb = m.select(
        &a,
        &[
            (is[1], lui),
            (is[2], add),
            (is[3], adc),
            (is[4], sub.clone()),
            (is[5], sbb),
            (is[6], and),
            (is[7], or),
            (is[8], xor),
            (is[9], shr),
            (is[12], ram_val),
            (is[14], data_in.clone()),
        ],
    );
    let wr_ops = [0usize, 1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 14];
    let wr_bits: Vec<Bit> = wr_ops.iter().map(|&k| is[k]).collect();
    let write_en = m.or_all(&wr_bits);

    for (i, r) in regs.iter().enumerate() {
        let sel = m.eq_const(&rd, i as u64);
        let en = m.and2(write_en, sel);
        m.next_when_with_reset(r, reset, en, &wb);
    }
    for (i, w) in ram.iter().enumerate() {
        let sel = m.eq_const(&ea, i as u64);
        let en = m.and2(is[13], sel);
        m.next_when_with_reset(w, reset, en, &a);
    }

    // Flags.
    let wb_zero = {
        let nz = m.or_reduce(&wb);
        m.not(nz)
    };
    let wb_sign = wb.msb();
    let cmp_res = sub;
    let cmp_zero = {
        let nz = m.or_reduce(&cmp_res);
        m.not(nz)
    };
    let cmp_sign = cmp_res.msb();

    // carry updates on ops 2,3,4,5,9,10
    let c_from_alu = {
        let mut v = m.const_bit(false);
        for (k, c) in [
            (2usize, add_c),
            (3, adc_c),
            (4, sub_c),
            (5, sbb_c),
            (9, shr_c),
            (10, sub_c),
        ] {
            let t = m.and2(is[k], c);
            v = m.or2(v, t);
        }
        v
    };
    let c_op_bits: Vec<Bit> = [2usize, 3, 4, 5, 9, 10].iter().map(|&k| is[k]).collect();
    let c_update = m.or_all(&c_op_bits);
    let cf_next = m.mux(c_update, cf.q().bit(0), c_from_alu);

    let zf_from_wb = m.mux(write_en, zf.q().bit(0), wb_zero);
    let zf_next = m.mux(is[10], zf_from_wb, cmp_zero);
    let sf_from_wb = m.mux(write_en, sf.q().bit(0), wb_sign);
    let sf_next = m.mux(is[10], sf_from_wb, cmp_sign);

    let zw = Word::from_bit(zf_next);
    let cw = Word::from_bit(cf_next);
    let sw = Word::from_bit(sf_next);
    m.next_with_reset(&zf, reset, &zw);
    m.next_with_reset(&cf, reset, &cw);
    m.next_with_reset(&sf, reset, &sw);

    // Output register.
    let out_next = m.mux_w(is[15], &out.q(), &a);
    m.next_with_reset(&out, reset, &out_next);

    // Branch unit.
    let cond = {
        let c0 = m.eq_const(&rs.slice(0, 2), 0);
        let c1 = m.eq_const(&rs.slice(0, 2), 1);
        let c2 = m.eq_const(&rs.slice(0, 2), 2);
        let t0 = m.and2(c0, zf.q().bit(0));
        let t1 = m.and2(c1, cf.q().bit(0));
        let t2 = m.and2(c2, sf.q().bit(0));
        let c3 = m.eq_const(&rs.slice(0, 2), 3);
        let t01 = m.or2(t0, t1);
        let t23 = m.or2(t2, c3);
        m.or2(t01, t23)
    };
    let taken = m.and2(is[11], cond);
    let target = {
        let t = imm.concat(&rd);
        m.resize(&t, B15_PCW)
    };
    let pc_inc = m.inc(&pc.q());
    let pc_next = m.mux_w(taken, &pc_inc, &target);
    m.next_with_reset(&pc, reset, &pc_next);

    m.output_word("out", &out.q());
    m.output_word("pc", &pc.q());
    m.output_bit("zf", zf.q().bit(0));
    m.output_bit("cf", cf.q().bit(0));
    m.output_bit("sf", sf.q().bit(0));
    m
}

/// Balanced word multiplexer selecting `choices[index]`.
fn mux_by_index(m: &mut Module, index: &Word, choices: &[Word]) -> Word {
    fn rec(m: &mut Module, index: &Word, level: usize, items: &[Word]) -> Word {
        if items.len() == 1 || level >= index.width() {
            return items[0].clone();
        }
        let evens: Vec<Word> = items.iter().step_by(2).cloned().collect();
        let odds: Vec<Word> = items.iter().skip(1).step_by(2).cloned().collect();
        let lo = rec(m, index, level + 1, &evens);
        let hi = rec(m, index, level + 1, &odds);
        m.mux_w(index.bit(level), &lo, &hi)
    }
    rec(m, index, 0, choices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_netlist::eval::Evaluator;

    fn step(sim: &mut Evaluator, data_in: u64, reset: bool) -> (u64, u64, bool, bool, bool) {
        let mut ins: Vec<bool> = (0..B15_WIDTH).map(|i| (data_in >> i) & 1 == 1).collect();
        ins.push(reset);
        let out = sim.step(&ins).unwrap();
        let o: u64 = (0..B15_WIDTH).map(|i| u64::from(out[i]) << i).sum();
        let pc: u64 = (0..B15_PCW)
            .map(|i| u64::from(out[B15_WIDTH + i]) << i)
            .sum();
        let base = B15_WIDTH + B15_PCW;
        (o, pc, out[base], out[base + 1], out[base + 2])
    }

    #[test]
    fn matches_isa_model_for_300_cycles() {
        let n = b15().elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        step(&mut sim, 0, true);
        let program = b15_program();
        let mut model = B15State::default();
        let mut rng: u64 = 271828;
        for cycle in 0..300 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(11);
            let din = (rng >> 17) & 0xFFFF;
            let (o, pc, z, c, s) = step(&mut sim, din, false);
            assert_eq!(pc, model.pc, "pc diverged at cycle {cycle}");
            assert_eq!(o, model.out, "out diverged at cycle {cycle}");
            assert_eq!(
                (z, c, s),
                (model.zf, model.cf, model.sf),
                "flags at {cycle}"
            );
            model.step(&program, din);
        }
    }

    #[test]
    fn largest_of_the_suite() {
        let n14 = super::super::b14_viper::b14().elaborate().unwrap();
        let n15 = b15().elaborate().unwrap();
        let g14 = n14.num_luts() + n14.dffs().len();
        let g15 = n15.num_luts() + n15.dffs().len();
        assert!(g15 > g14, "b15 ({g15}) must exceed b14 ({g14})");
    }
}
