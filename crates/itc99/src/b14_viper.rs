//! b14 — Viper processor (subset).
//!
//! The original b14 is a synthesizable subset of the Viper, a formally
//! verified accumulator machine. This re-implementation is a single-cycle
//! 16-bit RISC with eight registers, a 64-word instruction ROM, an 8-word
//! data RAM and a compare/branch flag — the register-file muxing, ripple
//! ALU and ROM decode give it the order-of-magnitude size advantage over
//! the rest of the suite that the paper's Table 3 shows (3360 PL gates,
//! 38 % EE speedup).

use pl_rtl::{Bit, Module, Reg, Word};

/// Data width of the b14 core.
pub const B14_WIDTH: usize = 16;
/// Instruction-ROM address width (64 words).
pub const B14_PCW: usize = 6;
/// Register count (3-bit indices).
pub const B14_REGS: usize = 8;
/// Data-RAM words.
pub const B14_RAM: usize = 8;

/// The fixed instruction ROM (pseudo-random but deterministic program).
#[must_use]
pub fn b14_program() -> Vec<u64> {
    let mut x: u64 = 0xB14_CAFE;
    (0..(1u64 << B14_PCW))
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 24) & 0xFFFF
        })
        .collect()
}

/// One-cycle software model of the b14 core (used by tests and benches).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct B14State {
    /// Register file.
    pub regs: [u64; B14_REGS],
    /// Data memory.
    pub ram: [u64; B14_RAM],
    /// Program counter.
    pub pc: u64,
    /// Compare flag.
    pub b: bool,
    /// Output register.
    pub out: u64,
}

impl Default for B14State {
    fn default() -> Self {
        Self {
            regs: [0; B14_REGS],
            ram: [0; B14_RAM],
            pc: 0,
            b: false,
            out: 0,
        }
    }
}

impl B14State {
    /// Executes one instruction of `program` with external `data_in`.
    pub fn step(&mut self, program: &[u64], data_in: u64) {
        const MASK: u64 = (1 << B14_WIDTH as u64) - 1;
        let instr = program[self.pc as usize];
        let op = (instr >> 12) & 0xF;
        let rd = ((instr >> 9) & 0x7) as usize;
        let rs = ((instr >> 6) & 0x7) as usize;
        let imm = instr & 0x3F;
        let mut next_pc = (self.pc + 1) & ((1 << B14_PCW as u64) - 1);
        match op {
            0 => {}
            1 => self.regs[rd] = imm,
            2 => self.regs[rd] = (self.regs[rd] + self.regs[rs]) & MASK,
            3 => self.regs[rd] = self.regs[rd].wrapping_sub(self.regs[rs]) & MASK,
            4 => self.regs[rd] &= self.regs[rs],
            5 => self.regs[rd] |= self.regs[rs],
            6 => self.regs[rd] ^= self.regs[rs],
            7 => self.regs[rd] = (self.regs[rd] << 1) & MASK,
            8 => self.b = self.regs[rd] < self.regs[rs],
            9 => {
                if self.b {
                    next_pc = imm & ((1 << B14_PCW as u64) - 1);
                }
            }
            10 => self.regs[rd] = self.ram[(imm & 7) as usize],
            11 => self.ram[(imm & 7) as usize] = self.regs[rd],
            12 => self.regs[rd] = (self.regs[rd] + imm) & MASK,
            13 => {
                if self.b {
                    self.regs[rd] = self.regs[rs];
                }
            }
            14 => self.regs[rd] = data_in & MASK,
            15 => self.out = self.regs[rd],
            _ => unreachable!(),
        }
        self.pc = next_pc;
    }
}

/// Builds the b14 core as RTL.
#[must_use]
pub fn b14() -> Module {
    let mut m = Module::new("b14");
    let data_in = m.input_word("data_in", B14_WIDTH);
    let reset = m.input_bit("reset");

    let pc = m.reg_word("pc", B14_PCW, 0);
    let bflag = m.reg_bit("bflag", false);
    let out = m.reg_word("out", B14_WIDTH, 0);
    let regs: Vec<Reg> = (0..B14_REGS)
        .map(|i| m.reg_word(format!("r{i}"), B14_WIDTH, 0))
        .collect();
    let ram: Vec<Reg> = (0..B14_RAM)
        .map(|i| m.reg_word(format!("mem{i}"), B14_WIDTH, 0))
        .collect();

    // Fetch.
    let program = b14_program();
    let instr = m.rom(&pc.q(), B14_WIDTH, &program);
    let op = instr.slice(12, 16);
    let rd = instr.slice(9, 12);
    let rs = instr.slice(6, 9);
    let imm = instr.slice(0, 6);
    let imm_ext = m.resize(&imm, B14_WIDTH);

    // Register/memory reads.
    let rd_val = mux_by_index(&mut m, &rd, &regs.iter().map(Reg::q).collect::<Vec<_>>());
    let rs_val = mux_by_index(&mut m, &rs, &regs.iter().map(Reg::q).collect::<Vec<_>>());
    let ram_addr = imm.slice(0, 3);
    let ram_val = mux_by_index(
        &mut m,
        &ram_addr,
        &ram.iter().map(Reg::q).collect::<Vec<_>>(),
    );

    // ALU.
    let add = m.add(&rd_val, &rs_val);
    let sub = m.sub(&rd_val, &rs_val);
    let and = m.and_w(&rd_val, &rs_val);
    let or = m.or_w(&rd_val, &rs_val);
    let xor = m.xor_w(&rd_val, &rs_val);
    let shl = m.shl_const(&rd_val, 1);
    let addi = m.add(&rd_val, &imm_ext);
    let lt = m.lt_u(&rd_val, &rs_val);
    let movb = m.mux_w(bflag.q().bit(0), &rd_val, &rs_val);

    // Opcode decode.
    let is: Vec<Bit> = (0..16).map(|k| m.eq_const(&op, k)).collect();

    // Writeback value and enable.
    let wb = m.select(
        &rd_val,
        &[
            (is[1], imm_ext.clone()),
            (is[2], add),
            (is[3], sub),
            (is[4], and),
            (is[5], or),
            (is[6], xor),
            (is[7], shl),
            (is[10], ram_val),
            (is[12], addi),
            (is[13], movb),
            (is[14], data_in.clone()),
        ],
    );
    let wr_ops = [1usize, 2, 3, 4, 5, 6, 7, 10, 12, 13, 14];
    let wr_bits: Vec<Bit> = wr_ops.iter().map(|&k| is[k]).collect();
    let write_en = m.or_all(&wr_bits);

    for (i, r) in regs.iter().enumerate() {
        let sel = m.eq_const(&rd, i as u64);
        let en = m.and2(write_en, sel);
        m.next_when_with_reset(r, reset, en, &wb);
    }

    // Memory write (ST).
    for (i, w) in ram.iter().enumerate() {
        let sel = m.eq_const(&ram_addr, i as u64);
        let en = m.and2(is[11], sel);
        m.next_when_with_reset(w, reset, en, &rd_val);
    }

    // Flag and output register.
    let b_next = m.mux(is[8], bflag.q().bit(0), lt);
    let bw = Word::from_bit(b_next);
    m.next_with_reset(&bflag, reset, &bw);
    let out_next = m.mux_w(is[15], &out.q(), &rd_val);
    m.next_with_reset(&out, reset, &out_next);

    // Program counter.
    let pc_inc = m.inc(&pc.q());
    let branch_taken = m.and2(is[9], bflag.q().bit(0));
    let target = m.resize(&imm, B14_PCW);
    let pc_next = m.mux_w(branch_taken, &pc_inc, &target);
    m.next_with_reset(&pc, reset, &pc_next);

    m.output_word("out", &out.q());
    m.output_word("pc", &pc.q());
    m.output_bit("bflag", bflag.q().bit(0));
    m
}

/// Balanced word multiplexer selecting `choices[index]`.
fn mux_by_index(m: &mut Module, index: &Word, choices: &[Word]) -> Word {
    fn rec(m: &mut Module, index: &Word, level: usize, items: &[Word]) -> Word {
        if items.len() == 1 || level >= index.width() {
            return items[0].clone();
        }
        let evens: Vec<Word> = items.iter().step_by(2).cloned().collect();
        let odds: Vec<Word> = items.iter().skip(1).step_by(2).cloned().collect();
        let lo = rec(m, index, level + 1, &evens);
        let hi = rec(m, index, level + 1, &odds);
        m.mux_w(index.bit(level), &lo, &hi)
    }
    rec(m, index, 0, choices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_netlist::eval::Evaluator;

    fn step(sim: &mut Evaluator, data_in: u64, reset: bool) -> (u64, u64, bool) {
        let mut ins: Vec<bool> = (0..B14_WIDTH).map(|i| (data_in >> i) & 1 == 1).collect();
        ins.push(reset);
        let out = sim.step(&ins).unwrap();
        let o: u64 = (0..B14_WIDTH).map(|i| u64::from(out[i]) << i).sum();
        let pc: u64 = (0..B14_PCW)
            .map(|i| u64::from(out[B14_WIDTH + i]) << i)
            .sum();
        (o, pc, out[B14_WIDTH + B14_PCW])
    }

    #[test]
    fn matches_isa_model_for_300_cycles() {
        let n = b14().elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        step(&mut sim, 0, true);
        let program = b14_program();
        let mut model = B14State::default();
        let mut rng: u64 = 41;
        for cycle in 0..300 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(7);
            let din = (rng >> 13) & 0xFFFF;
            // Outputs observed this cycle reflect the model state *before*
            // executing this cycle's instruction.
            let (o, pc, b) = step(&mut sim, din, false);
            assert_eq!(pc, model.pc, "pc diverged at cycle {cycle}");
            assert_eq!(o, model.out, "out diverged at cycle {cycle}");
            assert_eq!(b, model.b, "flag diverged at cycle {cycle}");
            model.step(&program, din);
        }
    }

    #[test]
    fn reset_restarts_the_program() {
        let n = b14().elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        step(&mut sim, 0, true);
        for _ in 0..10 {
            step(&mut sim, 0, false);
        }
        step(&mut sim, 0, true);
        let (_, pc, _) = step(&mut sim, 0, false);
        assert_eq!(pc, 0);
    }

    #[test]
    fn processor_scale() {
        let n = b14().elaborate().unwrap();
        let gates = n.num_luts() + n.dffs().len();
        assert!(gates > 1000, "b14 is a processor, got {gates} gates");
    }
}
