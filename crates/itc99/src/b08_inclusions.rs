//! b08 — find inclusions in sequences.

use pl_rtl::Module;

/// Builds b08: detects whether a 4-bit pattern is *included* in the last
/// eight serial input bits.
///
/// A shift register keeps the input history; matcher logic checks every
/// alignment of the loaded pattern against the window and reports the hit
/// count and a match flag — the "find inclusions in sequences" function of
/// the original benchmark.
#[must_use]
pub fn b08() -> Module {
    const WIN: usize = 8;
    const PAT: usize = 4;
    let mut m = Module::new("b08");
    let din = m.input_bit("din");
    let pattern = m.input_word("pattern", PAT);
    let reset = m.input_bit("reset");

    let window = m.reg_word("window", WIN, 0);
    // shift in from the LSB side
    let shifted = {
        let hi = window.q().slice(0, WIN - 1);
        pl_rtl::Word::from_bit(din).concat(&hi)
    };
    m.next_with_reset(&window, reset, &shifted);

    // Match at each of the WIN-PAT+1 alignments.
    let mut match_bits = Vec::new();
    for a in 0..=(WIN - PAT) {
        let slice = window.q().slice(a, a + PAT);
        match_bits.push(m.eq_w(&slice, &pattern));
    }
    let any = m.or_all(&match_bits);

    // Popcount of alignment matches (up to 5 -> 3 bits).
    let mut count = m.const_word(3, 0);
    for &b in &match_bits {
        let w = m.resize(&pl_rtl::Word::from_bit(b), 3);
        count = m.add(&count, &w);
    }

    // Priority-encode the first matching alignment (the "where" of the
    // inclusion) — a mux chain whose late stages see early-decided inputs.
    let mut first = m.const_word(3, (WIN - PAT) as u64);
    for (a, &hit) in match_bits.iter().enumerate().rev() {
        let k = m.const_word(3, a as u64);
        first = m.mux_w(hit, &first, &k);
    }

    // Running total of windows that contained the pattern: a register +
    // slow combinational condition, the classic early-evaluation shape.
    let total = m.reg_word("total", 8, 0);
    let total_inc = m.inc(&total.q());
    let total_next = m.mux_w(any, &total.q(), &total_inc);
    m.next_with_reset(&total, reset, &total_next);

    m.output_bit("found", any);
    m.output_word("count", &count);
    m.output_word("first", &first);
    m.output_word("total", &total.q());
    m.output_word("window", &window.q());
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_netlist::eval::Evaluator;

    fn step(sim: &mut Evaluator, din: bool, pat: u64, reset: bool) -> Vec<bool> {
        let mut ins = vec![din];
        ins.extend((0..4).map(|i| (pat >> i) & 1 == 1));
        ins.push(reset);
        sim.step(&ins).unwrap()
    }

    #[test]
    fn finds_planted_pattern() {
        let n = b08().elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        step(&mut sim, false, 0b1011, true);
        // The window's bit 0 holds the newest sample, so feeding
        // s0,s1,s2,s3 leaves (w0,w1,w2,w3) = (s3,s2,s1,s0). For the
        // pattern 0b1011 (w3 w2 w1 w0 = 1,0,1,1) feed 1,0,1,1.
        for &b in &[true, false, true, true] {
            step(&mut sim, b, 0b1011, false);
        }
        // The observed output reflects the state before this cycle's shift.
        let out = step(&mut sim, false, 0b1011, false);
        assert!(out[0], "pattern must be found in the window");
    }

    #[test]
    fn software_model_agreement() {
        // Randomized cross-check against a bit-twiddling model.
        let n = b08().elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        let pat = 0b0110u64;
        step(&mut sim, false, pat, true);
        let mut window: u64 = 0;
        let mut total: u64 = 0;
        let mut x: u64 = 12345;
        for _ in 0..64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let bit = (x >> 33) & 1 == 1;
            // The output observed *this* cycle reflects the register state
            // before the shift.
            let out = step(&mut sim, bit, pat, false);
            let mut expected = 0u64;
            let mut first = 4u64;
            for a in (0..=4).rev() {
                if (window >> a) & 0xF == pat {
                    expected += 1;
                    first = a;
                }
            }
            let got: u64 = (1..4).map(|i| u64::from(out[i]) << (i - 1)).sum();
            assert_eq!(got, expected, "window {window:#010b}");
            assert_eq!(out[0], expected > 0);
            let got_first: u64 = (4..7).map(|i| u64::from(out[i]) << (i - 4)).sum();
            assert_eq!(got_first, first, "first match in {window:#010b}");
            let got_total: u64 = (7..15).map(|i| u64::from(out[i]) << (i - 7)).sum();
            assert_eq!(got_total, total, "running total");
            if expected > 0 {
                total += 1;
            }
            window = ((window << 1) | u64::from(bit)) & 0xFF;
        }
    }
}
