//! Vendored SIS-dialect BLIF exports of ITC'99 circuits.
//!
//! The repository vendors gate-level BLIF snapshots of several catalog
//! circuits under `assets/blif/` (emitted by the `pl-netlist` BLIF writer
//! from the elaborated RTL, regenerate with
//! `plc <id> --stage ingest --emit-blif assets/blif/<id>.blif`). They are
//! the file-based entry point into the flow: what the paper's Synopsys
//! netlists were to the original authors, these files are to the
//! reproduction — circuits that arrive as *text*, not as Rust code.
//!
//! The texts are compiled in via `include_str!`, so loading never touches
//! the filesystem and works from any working directory; the
//! `pipeline_golden` integration suite pins each file against a fresh
//! export of the catalog circuit so the assets cannot drift.

use pl_netlist::{blif, Netlist, NetlistError};

/// One vendored BLIF snapshot.
#[derive(Debug, Clone, Copy)]
pub struct BlifAsset {
    /// Catalog id of the exported circuit (`"b01"` …).
    pub id: &'static str,
    /// The BLIF text, exactly as vendored under `assets/blif/`.
    pub text: &'static str,
}

impl BlifAsset {
    /// Parses the vendored text into a gate-level netlist.
    ///
    /// # Errors
    ///
    /// Propagates BLIF parse errors (which would indicate a corrupted
    /// vendored file — the golden test catches this first).
    pub fn netlist(&self) -> Result<Netlist, NetlistError> {
        blif::from_blif(self.text)
    }
}

/// All vendored BLIF snapshots, in catalog order.
#[must_use]
pub fn blif_assets() -> &'static [BlifAsset] {
    &[
        BlifAsset {
            id: "b01",
            text: include_str!("../../../assets/blif/b01.blif"),
        },
        BlifAsset {
            id: "b03",
            text: include_str!("../../../assets/blif/b03.blif"),
        },
        BlifAsset {
            id: "b06",
            text: include_str!("../../../assets/blif/b06.blif"),
        },
        BlifAsset {
            id: "b09",
            text: include_str!("../../../assets/blif/b09.blif"),
        },
    ]
}

/// Looks a vendored BLIF snapshot up by catalog id.
#[must_use]
pub fn blif_asset(id: &str) -> Option<&'static BlifAsset> {
    blif_assets().iter().find(|a| a.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_asset_parses_and_matches_its_catalog_shape() {
        for asset in blif_assets() {
            let parsed = asset
                .netlist()
                .unwrap_or_else(|e| panic!("{} asset corrupt: {e}", asset.id));
            let bench = crate::by_id(asset.id).expect("asset ids are catalog ids");
            let built = (bench.build)().elaborate().expect("elaborates");
            assert_eq!(
                parsed.inputs().len(),
                built.inputs().len(),
                "{}: input count drifted",
                asset.id
            );
            assert_eq!(
                parsed.outputs().len(),
                built.outputs().len(),
                "{}: output count drifted",
                asset.id
            );
            assert_eq!(
                parsed.dffs().len(),
                built.dffs().len(),
                "{}: DFF count drifted",
                asset.id
            );
        }
    }

    #[test]
    fn lookup_by_id() {
        assert!(blif_asset("b03").is_some());
        assert!(blif_asset("b02").is_none());
        assert_eq!(blif_asset("b09").unwrap().id, "b09");
    }
}
