//! b02 — FSM that recognizes BCD numbers.

use pl_rtl::Module;

/// Builds b02: a serial BCD recognizer, the smallest circuit of the suite.
///
/// Bits of a nibble arrive MSB-first on `linea`; after the fourth bit the
/// machine asserts `u` for one cycle iff the nibble's value is 0–9 (a valid
/// binary-coded-decimal digit). An MSB-first nibble is invalid exactly when
/// it starts `1` and its second bit is `1` or its third bit is `1`
/// (values 10–15), which keeps the recognizer a handful of states — the
/// original b02 synthesizes to only a few gates.
#[must_use]
pub fn b02() -> Module {
    let mut m = Module::new("b02");
    let linea = m.input_bit("linea");
    let reset = m.input_bit("reset");

    let pos = m.reg_word("pos", 2, 0);
    let msb = m.reg_bit("msb", false);
    let bad = m.reg_bit("bad", false);

    let pos_next = m.inc(&pos.q());
    let first = m.eq_const(&pos.q(), 0);
    let last = m.eq_const(&pos.q(), 3);

    // Track the nibble's MSB and whether a set MSB was followed by another
    // set bit in positions 1/2 (value ≥ 10).
    let msb_next_bit = m.mux(first, msb.q().bit(0), linea);
    let in_middle = {
        let p1 = m.eq_const(&pos.q(), 1);
        let p2 = m.eq_const(&pos.q(), 2);
        m.or2(p1, p2)
    };
    let offending = {
        let t = m.and2(msb.q().bit(0), linea);
        m.and2(t, in_middle)
    };
    let bad_acc = m.or2(bad.q().bit(0), offending);
    let zero = m.const_bit(false);
    let bad_next_bit = m.mux(first, bad_acc, zero);

    let msb_w = pl_rtl::Word::from_bit(msb_next_bit);
    let bad_w = pl_rtl::Word::from_bit(bad_next_bit);
    m.next_with_reset(&pos, reset, &pos_next);
    m.next_with_reset(&msb, reset, &msb_w);
    m.next_with_reset(&bad, reset, &bad_w);

    let ok = {
        let nb = m.not(bad_acc);
        m.and2(last, nb)
    };
    m.output_bit("u", ok);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_netlist::eval::Evaluator;

    /// Feeds a nibble MSB-first; returns `u` as observed on the last bit.
    fn recognize(sim: &mut Evaluator, nibble: u8) -> bool {
        let mut u = false;
        for i in (0..4).rev() {
            let bit = (nibble >> i) & 1 == 1;
            let out = sim.step(&[bit, false]).unwrap();
            u = out[0];
        }
        u
    }

    #[test]
    fn recognizes_exactly_bcd_digits() {
        let n = b02().elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        sim.step(&[false, true]).unwrap(); // reset
        for v in 0..16u8 {
            let got = recognize(&mut sim, v);
            assert_eq!(got, v <= 9, "nibble {v:#06b}");
        }
    }

    #[test]
    fn is_the_smallest_benchmark() {
        let n = b02().elaborate().unwrap();
        let gates = n.num_luts() + n.dffs().len();
        assert!(gates < 60, "b02 must stay tiny, got {gates}");
    }
}
