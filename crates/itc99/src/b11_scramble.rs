//! b11 — scramble string with a variable cipher.

use pl_rtl::Module;

/// Builds b11: a stream scrambler with a keyed, state-dependent cipher.
///
/// Each valid cycle, the 6-bit character `x_in` is combined with a rolling
/// key: added to the key register, rotated by a state-dependent amount, and
/// XOR-masked; the key itself evolves from the scrambled output. The heavy
/// use of adders and rotate/mux networks mirrors the original b11, the
/// paper's single best EE result (+30 %).
#[must_use]
pub fn b11() -> Module {
    const W: usize = 6;
    let mut m = Module::new("b11");
    let x_in = m.input_word("x_in", W);
    let key_in = m.input_word("key_in", W);
    let load_key = m.input_bit("load_key");
    let valid = m.input_bit("valid");
    let reset = m.input_bit("reset");

    let key = m.reg_word("key", W, 0b10_1010);
    let phase = m.reg_word("phase", 2, 0);
    let out = m.reg_word("outreg", W, 0);

    // Stage 1: add the rolling key.
    let summed = m.add(&x_in, &key.q());
    // Stage 2: rotate by a phase-dependent amount (1..=3).
    let r1 = m.rotl_const(&summed, 1);
    let r2 = m.rotl_const(&summed, 2);
    let r3 = m.rotl_const(&summed, 3);
    let p1 = m.eq_const(&phase.q(), 1);
    let p2 = m.eq_const(&phase.q(), 2);
    let p3 = m.eq_const(&phase.q(), 3);
    let rot = m.select(&summed, &[(p1, r1), (p2, r2), (p3, r3)]);
    // Stage 3: xor with the complemented key.
    let mask = m.not_w(&key.q());
    let scrambled = m.xor_w(&rot, &mask);

    // Key evolution: key' = (key + scrambled) rotated by one, unless a new
    // key is loaded from outside.
    let key_sum = m.add(&key.q(), &scrambled);
    let key_evolved = m.rotl_const(&key_sum, 1);
    let key_next = m.mux_w(load_key, &key_evolved, &key_in);

    let phase_next = m.inc(&phase.q());

    m.next_when_with_reset(&key, reset, valid, &key_next);
    m.next_when_with_reset(&phase, reset, valid, &phase_next);
    m.next_when_with_reset(&out, reset, valid, &scrambled);

    m.output_word("x_out", &out.q());
    m.output_word("key_state", &key.q());
    m
}

/// Software model of one b11 step; used by tests and the benchmark harness
/// to validate the hardware.
#[must_use]
pub fn b11_model(x: u64, key: u64, phase: u64, load_key: bool, key_in: u64) -> (u64, u64) {
    const W: u32 = 6;
    const MASK: u64 = (1 << W) - 1;
    let summed = (x + key) & MASK;
    let rot_by = phase & 3;
    let rot = if rot_by == 0 {
        summed
    } else {
        ((summed << rot_by) | (summed >> (W as u64 - rot_by))) & MASK
    };
    let scrambled = rot ^ (!key & MASK);
    let key_next = if load_key {
        key_in
    } else {
        let s = (key + scrambled) & MASK;
        ((s << 1) | (s >> (W - 1) as u64)) & MASK
    };
    (scrambled, key_next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_netlist::eval::Evaluator;

    const W: usize = 6;

    fn step(
        sim: &mut Evaluator,
        x: u64,
        key_in: u64,
        load: bool,
        valid: bool,
        reset: bool,
    ) -> (u64, u64) {
        let mut ins: Vec<bool> = (0..W).map(|i| (x >> i) & 1 == 1).collect();
        ins.extend((0..W).map(|i| (key_in >> i) & 1 == 1));
        ins.push(load);
        ins.push(valid);
        ins.push(reset);
        let out = sim.step(&ins).unwrap();
        let x_out: u64 = (0..W).map(|i| u64::from(out[i]) << i).sum();
        let key_state: u64 = (0..W).map(|i| u64::from(out[W + i]) << i).sum();
        (x_out, key_state)
    }

    #[test]
    fn matches_software_model_over_a_stream() {
        let n = b11().elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        step(&mut sim, 0, 0, false, false, true);
        let mut key = 0b10_1010u64;
        let mut phase = 0u64;
        let mut rng: u64 = 777;
        for _ in 0..64 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = (rng >> 20) & 0x3F;
            let (want_scr, want_key) = b11_model(x, key, phase, false, 0);
            step(&mut sim, x, 0, false, true, false);
            let (got_scr, got_key) = step(&mut sim, 0, 0, false, false, false);
            assert_eq!(got_scr, want_scr, "x={x} key={key} phase={phase}");
            assert_eq!(got_key, want_key);
            key = want_key;
            phase = (phase + 1) & 3;
        }
    }

    #[test]
    fn key_reload_takes_effect() {
        let n = b11().elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        step(&mut sim, 0, 0, false, false, true);
        step(&mut sim, 5, 0b01_1001, true, true, false);
        let (_, key_state) = step(&mut sim, 0, 0, false, false, false);
        assert_eq!(key_state, 0b01_1001);
    }

    #[test]
    fn scrambling_changes_the_text() {
        let n = b11().elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        step(&mut sim, 0, 0, false, false, true);
        let mut identical = 0;
        for x in 0..32u64 {
            step(&mut sim, x, 0, false, true, false);
            let (scr, _) = step(&mut sim, 0, 0, false, false, false);
            if scr == x {
                identical += 1;
            }
        }
        assert!(identical < 8, "cipher should rarely map x to itself");
    }
}
