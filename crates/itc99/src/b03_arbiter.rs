//! b03 — resource arbiter.

use pl_rtl::{Module, Word};

/// Builds b03: a four-requester resource arbiter with rotating priority.
///
/// Request lines `req0..req3` compete for one resource; `grant` is a
/// one-hot word naming the holder. The winner keeps the resource while its
/// request stays up; on release, the requester after the previous holder
/// (cyclically) has the highest priority — the fairness queue of the
/// original benchmark.
#[must_use]
pub fn b03() -> Module {
    let mut m = Module::new("b03");
    let reqs: Vec<_> = (0..4).map(|i| m.input_bit(format!("req{i}"))).collect();
    let reset = m.input_bit("reset");

    // One-hot grant register and the index of the last holder.
    let grant = m.reg_word("grant", 4, 0);
    let last = m.reg_word("last", 2, 3);

    // Current holder still requesting?
    let held: Vec<_> = (0..4).map(|i| m.and2(grant.q().bit(i), reqs[i])).collect();
    let holding = m.or_all(&held);

    // Rotating-priority pick: for offset 1..=4 after `last`, the first
    // requester wins. Build per-candidate "wins" signals.
    let mut win_bits: Vec<pl_rtl::Bit> = Vec::with_capacity(4);
    for cand in 0..4u64 {
        // cand wins iff req[cand] and no earlier-in-rotation requester is
        // active. "Earlier" depends on `last`: distance(last, x) <
        // distance(last, cand) for active x.
        let mut beaten = m.const_bit(false);
        for last_val in 0..4u64 {
            let is_last = m.eq_const(&last.q(), last_val);
            // requesters strictly between last and cand (cyclically)
            let mut blocked = m.const_bit(false);
            let mut step = (last_val + 1) % 4;
            while step != cand {
                blocked = m.or2(blocked, reqs[step as usize]);
                step = (step + 1) % 4;
            }
            let contrib = m.and2(is_last, blocked);
            beaten = m.or2(beaten, contrib);
        }
        let not_beaten = m.not(beaten);
        win_bits.push(m.and2(reqs[cand as usize], not_beaten));
    }
    let winner = Word::from_bits(win_bits);

    let grant_next = m.mux_w(holding, &winner, &grant.q());

    // Update `last` to the index of the new grant holder (if any).
    let mut last_next = last.q();
    for i in 0..4 {
        let k = m.const_word(2, i as u64);
        last_next = m.mux_w(grant_next.bit(i), &last_next, &k);
    }

    m.next_with_reset(&grant, reset, &grant_next);
    m.next_with_reset(&last, reset, &last_next);

    m.output_word("grant", &grant.q());
    let busy = m.or_reduce(&grant.q());
    m.output_bit("busy", busy);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_netlist::eval::Evaluator;

    fn step(sim: &mut Evaluator, reqs: [bool; 4], reset: bool) -> (u8, bool) {
        let mut ins = reqs.to_vec();
        ins.push(reset);
        let out = sim.step(&ins).unwrap();
        let grant: u8 = (0..4).map(|i| u8::from(out[i]) << i).sum();
        (grant, out[4])
    }

    #[test]
    fn single_requester_wins_and_holds() {
        let n = b03().elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        step(&mut sim, [false; 4], true);
        step(&mut sim, [false, true, false, false], false);
        let (g, busy) = step(&mut sim, [false, true, false, false], false);
        assert_eq!(g, 0b0010);
        assert!(busy);
        // keeps holding while request stays up
        let (g, _) = step(&mut sim, [true, true, true, false], false);
        assert_eq!(g, 0b0010);
    }

    #[test]
    fn grant_is_always_one_hot_or_idle() {
        let n = b03().elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        step(&mut sim, [false; 4], true);
        let mut x: u32 = 0xACE1;
        for _ in 0..200 {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            let reqs = [x & 1 != 0, x & 2 != 0, x & 4 != 0, x & 8 != 0];
            let (g, busy) = step(&mut sim, reqs, false);
            assert!(g.count_ones() <= 1, "grant must be one-hot, got {g:#06b}");
            assert_eq!(busy, g != 0);
        }
    }

    #[test]
    fn rotation_gives_fairness() {
        let n = b03().elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        step(&mut sim, [false; 4], true);
        // all four request constantly; release by dropping the holder's line
        let mut holders = Vec::new();
        let mut reqs = [true; 4];
        for _ in 0..8 {
            // settle: grant appears one cycle after request
            let (g, _) = step(&mut sim, reqs, false);
            if g != 0 {
                let holder = g.trailing_zeros() as usize;
                holders.push(holder);
                reqs[holder] = false; // release next cycle
            } else {
                reqs = [true; 4];
            }
        }
        // no starvation: every requester held at least once
        for i in 0..4 {
            assert!(holders.contains(&i), "requester {i} starved in {holders:?}");
        }
    }
}
