//! b13 — interface to meteo sensors.

use pl_rtl::Module;

/// Builds b13: a weather-station sensor interface.
///
/// The controller polls two sensors in turn (temperature and wind), applies
/// per-sensor calibration offsets, watches for out-of-range readings, and
/// serializes the calibrated value over a `tx` line with a start bit — the
/// counter-and-FSM structure of the original benchmark.
#[must_use]
pub fn b13() -> Module {
    const W: usize = 8;
    let mut m = Module::new("b13");
    let temp = m.input_word("temp", W);
    let wind = m.input_word("wind", W);
    let cal_temp = m.input_word("cal_temp", 4);
    let cal_wind = m.input_word("cal_wind", 4);
    let reset = m.input_bit("reset");

    // 0 sample-temp, 1 sample-wind, 2.. transmit (pos in txpos)
    let phase = m.reg_bit("phase", false);
    let txpos = m.reg_word("txpos", 4, 0);
    let shifter = m.reg_word("shifter", W + 1, 0);
    let alarm = m.reg_bit("alarm", false);

    let sending = {
        let z = m.eq_const(&txpos.q(), 0);
        m.not(z)
    };

    // Calibrate the polled sensor.
    let use_wind = phase.q().bit(0);
    let sel = m.mux_w(use_wind, &temp, &wind);
    let cal = m.mux_w(use_wind, &cal_temp, &cal_wind);
    let cal_ext = m.resize(&cal, W);
    let calibrated = m.add(&sel, &cal_ext);

    // Out-of-range check: calibrated reading ≥ 0xF0 raises the alarm.
    let limit = m.const_word(W, 0xF0);
    let too_high = m.ge_u(&calibrated, &limit);
    let alarm_next = m.or2(alarm.q().bit(0), too_high);

    // Start a transmission when idle: load start bit + data.
    let one = m.const_bit(true);
    let frame = pl_rtl::Word::from_bit(one).concat(&calibrated);
    let zero_bit = m.const_bit(false);
    let shifted = {
        let hi = shifter.q().slice(1, W + 1);
        hi.concat(&pl_rtl::Word::from_bit(zero_bit))
    };
    let shifter_next = m.mux_w(sending, &frame, &shifted);

    let pos_dec = m.dec(&txpos.q());
    let full = m.const_word(4, (W + 1) as u64);
    let txpos_next = m.mux_w(sending, &full, &pos_dec);

    // Alternate sensors at each frame start.
    let phase_flip = m.not(use_wind);
    let phase_next_b = m.mux(sending, phase_flip, use_wind);

    m.next_with_reset(&txpos, reset, &txpos_next);
    m.next_with_reset(&shifter, reset, &shifter_next);
    let pw = pl_rtl::Word::from_bit(phase_next_b);
    m.next_with_reset(&phase, reset, &pw);
    let aw = pl_rtl::Word::from_bit(alarm_next);
    m.next_with_reset(&alarm, reset, &aw);

    m.output_bit("tx", shifter.q().bit(0));
    m.output_bit("sending", sending);
    m.output_bit("alarm", alarm.q().bit(0));
    m.output_bit("channel", use_wind);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_netlist::eval::Evaluator;

    const W: usize = 8;

    fn step(sim: &mut Evaluator, temp: u64, wind: u64, ct: u64, cw: u64, reset: bool) -> Vec<bool> {
        let mut ins: Vec<bool> = Vec::new();
        ins.extend((0..W).map(|i| (temp >> i) & 1 == 1));
        ins.extend((0..W).map(|i| (wind >> i) & 1 == 1));
        ins.extend((0..4).map(|i| (ct >> i) & 1 == 1));
        ins.extend((0..4).map(|i| (cw >> i) & 1 == 1));
        ins.push(reset);
        sim.step(&ins).unwrap()
    }

    #[test]
    fn transmits_calibrated_frame_lsb_first() {
        let n = b13().elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        step(&mut sim, 0, 0, 0, 0, true);
        // Idle cycle loads the frame (temp channel first: temp=0x21 cal=3).
        step(&mut sim, 0x21, 0xFF, 3, 0, false);
        // Collect 9 bits: start bit (frame LSB) then data 0x24.
        let mut bits = Vec::new();
        for _ in 0..9 {
            let out = step(&mut sim, 0, 0, 0, 0, false);
            bits.push(out[0]);
        }
        assert!(bits[0], "start bit first");
        let data: u64 = (1..9).map(|i| u64::from(bits[i]) << (i - 1)).sum();
        assert_eq!(data, 0x24);
    }

    #[test]
    fn alarm_latches_on_overrange() {
        let n = b13().elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        step(&mut sim, 0, 0, 0, 0, true);
        let out = step(&mut sim, 0xEE, 0, 5, 0, false); // 0xEE+5 = 0xF3 ≥ 0xF0
        assert!(!out[2], "alarm is registered, visible next cycle");
        let out = step(&mut sim, 0, 0, 0, 0, false);
        assert!(out[2]);
        // stays latched
        let out = step(&mut sim, 0, 0, 0, 0, false);
        assert!(out[2]);
    }

    #[test]
    fn channels_alternate_between_frames() {
        let n = b13().elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        step(&mut sim, 0, 0, 0, 0, true);
        let mut channels = Vec::new();
        for _ in 0..30 {
            let out = step(&mut sim, 1, 2, 0, 0, false);
            if !out[1] {
                channels.push(out[3]); // channel at frame-load time
            }
        }
        assert!(
            channels.windows(2).all(|w| w[0] != w[1]),
            "channels must alternate: {channels:?}"
        );
    }
}
