//! b01 — FSM that compares serial flows.

use pl_rtl::Module;

/// Builds b01: a small Moore machine watching two serial bit streams.
///
/// `outp` reports whether the streams have agreed on every bit of the
/// current 4-bit frame; `overflw` pulses when the mismatch counter
/// saturates. A synchronous `reset` returns the machine to its initial
/// state, as in the original benchmark.
#[must_use]
pub fn b01() -> Module {
    let mut m = Module::new("b01");
    let line1 = m.input_bit("line1");
    let line2 = m.input_bit("line2");
    let reset = m.input_bit("reset");

    // Frame position (2 bits) and per-frame agreement flag.
    let pos = m.reg_word("pos", 2, 0);
    let agree = m.reg_bit("agree", true);
    // Saturating mismatch counter across frames.
    let miss = m.reg_word("miss", 3, 0);

    let eq = m.xnor2(line1, line2);
    let pos_next = m.inc(&pos.q());
    let frame_end = m.eq_const(&pos.q(), 3);

    // agree accumulates equality within the frame, reloading at frame end.
    let agree_acc = m.and2(agree.q().bit(0), eq);
    let agree_next_bit = m.mux(frame_end, agree_acc, eq);
    let agree_next = pl_rtl::Word::from_bit(agree_next_bit);

    // Mismatch counter bumps at each disagreeing frame end, saturating at 7.
    let at_max = m.eq_const(&miss.q(), 7);
    let miss_inc = m.inc(&miss.q());
    let hold = miss.q();
    let bumped = m.mux_w(at_max, &miss_inc, &hold);
    let frame_bad = {
        let na = m.not(agree_acc);
        m.and2(frame_end, na)
    };
    let miss_next = m.mux_w(frame_bad, &hold, &bumped);

    m.next_with_reset(&pos, reset, &pos_next);
    m.next_with_reset(&agree, reset, &agree_next);
    m.next_with_reset(&miss, reset, &miss_next);

    let outp = m.and2(agree.q().bit(0), eq);
    m.output_bit("outp", outp);
    m.output_bit("overflw", at_max);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_netlist::eval::Evaluator;

    #[test]
    fn equal_streams_keep_outp_high_and_never_overflow() {
        let m = b01();
        let n = m.elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        // reset pulse
        sim.step(&[false, false, true]).unwrap();
        for i in 0..32 {
            let bit = i % 3 == 0;
            let out = sim.step(&[bit, bit, false]).unwrap();
            assert!(out[0], "outp should stay high at step {i}");
            assert!(!out[1], "no overflow on equal streams");
        }
    }

    #[test]
    fn diverging_streams_eventually_overflow() {
        let m = b01();
        let n = m.elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        sim.step(&[false, false, true]).unwrap();
        let mut overflowed = false;
        for _ in 0..64 {
            let out = sim.step(&[true, false, false]).unwrap();
            assert!(!out[0], "disagreeing bits force outp low");
            overflowed |= out[1];
        }
        assert!(overflowed, "persistent mismatch must saturate the counter");
    }

    #[test]
    fn reset_clears_the_overflow() {
        let m = b01();
        let n = m.elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        for _ in 0..64 {
            sim.step(&[true, false, false]).unwrap();
        }
        assert!(sim.step(&[true, false, false]).unwrap()[1]);
        sim.step(&[false, false, true]).unwrap(); // reset
        assert!(!sim.step(&[false, false, false]).unwrap()[1]);
    }

    #[test]
    fn stays_small_like_the_original() {
        let n = b01().elaborate().unwrap();
        let gates = n.num_luts() + n.dffs().len();
        assert!(gates < 120, "b01 is a tiny FSM, got {gates} gates");
    }
}
