//! b05 — elaborate the contents of a memory.

use pl_rtl::Module;

/// Builds b05: scans a 32-word constant memory, accumulating statistics.
///
/// A free-running address counter walks a ROM; the datapath accumulates the
/// running sum, tracks the maximum element and remembers its address, and
/// flags when the current word exceeds a programmable threshold `thresh`.
/// This mirrors the original benchmark's "elaborate contents of memory"
/// loop (ROM + adder + comparators), which the paper found EE-friendly
/// (+10 % speedup) thanks to its arithmetic content.
#[must_use]
pub fn b05() -> Module {
    const AW: usize = 5; // 32 words
    const DW: usize = 8;
    let mut m = Module::new("b05");
    let thresh = m.input_word("thresh", DW);
    let run = m.input_bit("run");
    let reset = m.input_bit("reset");

    // A fixed pseudo-random content table (the original uses a constant
    // memory initialized by the testbench).
    let contents: Vec<u64> = (0..32u64)
        .map(|i| (i.wrapping_mul(37).wrapping_add(11) ^ (i << 3)) & 0xFF)
        .collect();

    let addr = m.reg_word("addr", AW, 0);
    let sum = m.reg_word("sum", DW + AW, 0); // wide enough for 32×255
    let best = m.reg_word("best", DW, 0);
    let best_addr = m.reg_word("best_addr", AW, 0);

    let word = m.rom(&addr.q(), DW, &contents);

    let addr_next = m.inc(&addr.q());
    let word_wide = m.resize(&word, DW + AW);
    let sum_next = m.add(&sum.q(), &word_wide);

    let is_new_best = m.gt_u(&word, &best.q());
    let best_next = m.mux_w(is_new_best, &best.q(), &word);
    let ba_next = m.mux_w(is_new_best, &best_addr.q(), &addr.q());

    m.next_when_with_reset(&addr, reset, run, &addr_next);
    m.next_when_with_reset(&sum, reset, run, &sum_next);
    m.next_when_with_reset(&best, reset, run, &best_next);
    m.next_when_with_reset(&best_addr, reset, run, &ba_next);

    let over = m.gt_u(&word, &thresh);
    m.output_word("sum", &sum.q());
    m.output_word("best", &best.q());
    m.output_word("best_addr", &best_addr.q());
    m.output_bit("over_thresh", over);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_netlist::eval::Evaluator;

    const AW: usize = 5;
    const DW: usize = 8;

    fn contents() -> Vec<u64> {
        (0..32u64)
            .map(|i| (i.wrapping_mul(37).wrapping_add(11) ^ (i << 3)) & 0xFF)
            .collect()
    }

    fn step(sim: &mut Evaluator, thresh: u64, run: bool, reset: bool) -> Vec<bool> {
        let mut ins: Vec<bool> = (0..DW).map(|i| (thresh >> i) & 1 == 1).collect();
        ins.push(run);
        ins.push(reset);
        sim.step(&ins).unwrap()
    }

    fn field(out: &[bool], lo: usize, w: usize) -> u64 {
        (0..w).map(|i| u64::from(out[lo + i]) << i).sum()
    }

    #[test]
    fn full_scan_matches_software_model() {
        let n = b05().elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        step(&mut sim, 0, false, true);
        for _ in 0..32 {
            step(&mut sim, 0, true, false);
        }
        let out = step(&mut sim, 0, false, false);
        let c = contents();
        let want_sum: u64 = c.iter().sum();
        let want_best = *c.iter().max().unwrap();
        let want_ba = c.iter().position(|&x| x == want_best).unwrap() as u64;
        assert_eq!(field(&out, 0, DW + AW), want_sum);
        assert_eq!(field(&out, DW + AW, DW), want_best);
        assert_eq!(field(&out, DW + AW + DW, AW), want_ba);
    }

    #[test]
    fn threshold_flag_is_combinational_on_current_word() {
        let n = b05().elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        step(&mut sim, 0, false, true);
        let c = contents();
        // addr stays 0 while run=0: word = c[0]
        let out = step(&mut sim, c[0] - 1, false, false);
        assert!(out[DW + AW + DW + AW], "word {} > {}", c[0], c[0] - 1);
        let out = step(&mut sim, c[0], false, false);
        assert!(!out[DW + AW + DW + AW]);
    }

    #[test]
    fn has_memory_scale() {
        let n = b05().elaborate().unwrap();
        let gates = n.num_luts() + n.dffs().len();
        assert!(gates > 150, "b05 embeds a 32-word ROM, got {gates}");
    }
}
