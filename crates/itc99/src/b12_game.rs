//! b12 — 1-player game (guess a sequence).

use pl_rtl::Module;

/// Builds b12: a Simon-style "guess the sequence" game machine.
///
/// The machine generates a pseudo-random target sequence with an LFSR,
/// plays it back from a pattern ROM, accepts the player's 2-bit guesses,
/// keeps score with saturating counters, and walks a game FSM
/// (idle → play → listen → score). The original b12 is the largest
/// non-processor circuit of the suite; this version's ROM + LFSR + FSM +
/// score datapath reproduces that relative weight.
#[must_use]
pub fn b12() -> Module {
    let mut m = Module::new("b12");
    let start = m.input_bit("start");
    let guess = m.input_word("guess", 2);
    let guess_valid = m.input_bit("guess_valid");
    let reset = m.input_bit("reset");

    // Game FSM: 0 idle, 1 play, 2 listen, 3 score.
    let state = m.reg_word("state", 2, 0);
    // 16-bit LFSR (x^16 + x^15 + x^13 + x^4 + 1) seeds the round.
    let lfsr = m.reg_word("lfsr", 16, 0xACE1);
    // Playback position within the 16-step round.
    let pos = m.reg_word("pos", 4, 0);
    // Score: correct guesses (saturating), best score, lives, rounds played.
    let score = m.reg_word("score", 8, 0);
    let best_score = m.reg_word("best_score", 8, 0);
    let rounds = m.reg_word("rounds", 6, 0);
    let lives = m.reg_word("lives", 3, 5);
    // Player history: last 8 guesses, used to spice up the note index.
    let history = m.reg_word("history", 16, 0);

    let s_idle = m.eq_const(&state.q(), 0);
    let s_play = m.eq_const(&state.q(), 1);
    let s_listen = m.eq_const(&state.q(), 2);
    let s_score = m.eq_const(&state.q(), 3);

    // LFSR next.
    let fb = {
        let t1 = m.xor2(lfsr.q().bit(15), lfsr.q().bit(14));
        let t2 = m.xor2(lfsr.q().bit(12), lfsr.q().bit(3));
        m.xor2(t1, t2)
    };
    let lfsr_next = {
        let hi = lfsr.q().slice(0, 15);
        pl_rtl::Word::from_bit(fb).concat(&hi)
    };

    // Pattern ROM: 32 two-bit notes, indexed by pos XOR lfsr/history bits.
    let rom_data: Vec<u64> = vec![
        0, 1, 2, 3, 2, 1, 0, 3, 1, 1, 2, 0, 3, 3, 0, 2, 2, 0, 1, 3, 0, 2, 3, 1, 3, 0, 2, 1, 1, 2,
        3, 0,
    ];
    let idx = {
        let low = lfsr.q().slice(0, 5);
        let pos5 = m.resize(&pos.q(), 5);
        m.xor_w(&pos5, &low)
    };
    let note = m.rom(&idx, 2, &rom_data);

    let pos_next = m.inc(&pos.q());
    let round_end = m.eq_const(&pos.q(), 15);

    // Guess checking while listening.
    let hit = m.eq_w(&guess, &note);
    let miss = m.not(hit);
    let sc_inc = m.inc(&score.q());
    let sc_max = m.eq_const(&score.q(), 255);
    let sc_bump = m.mux_w(sc_max, &sc_inc, &score.q());
    let take_hit = {
        let t = m.and2(s_listen, guess_valid);
        m.and2(t, hit)
    };
    let score_next = m.mux_w(take_hit, &score.q(), &sc_bump);

    let lv_dec = m.dec(&lives.q());
    let lv_zero = m.eq_const(&lives.q(), 0);
    let lv_dead = m.mux_w(lv_zero, &lv_dec, &lives.q());
    let take_miss = {
        let t = m.and2(s_listen, guess_valid);
        m.and2(t, miss)
    };
    let lives_next = m.mux_w(take_miss, &lives.q(), &lv_dead);

    // FSM transitions.
    let k_idle = m.const_word(2, 0);
    let k_play = m.const_word(2, 1);
    let k_listen = m.const_word(2, 2);
    let k_score = m.const_word(2, 3);
    let idle_next = m.mux_w(start, &k_idle, &k_play);
    let play_next = m.mux_w(round_end, &k_play, &k_listen);
    // The last (16th) guess of the round moves to the score state.
    let last_guess = m.and2(round_end, guess_valid);
    let listen_next = m.mux_w(last_guess, &k_listen, &k_score);
    let game_over = m.eq_const(&lives.q(), 0);
    let score_next_state = m.mux_w(game_over, &k_play, &k_idle);
    let state_next = m.select(
        &k_idle,
        &[
            (s_idle, idle_next),
            (s_play, play_next),
            (s_listen, listen_next),
            (s_score, score_next_state),
        ],
    );

    // Position advances through playback freely, but in the listen phase it
    // waits for the player's guess (the presented note stays stable).
    let listening_step = m.and2(s_listen, guess_valid);
    let advancing = m.or2(s_play, listening_step);
    let zero4 = m.const_word(4, 0);
    let moving = m.or2(s_play, s_listen);
    let pos_held = m.mux_w(advancing, &pos.q(), &pos_next);
    let pos_upd = m.mux_w(moving, &zero4, &pos_held);

    // LFSR advances every idle cycle (free-running randomness).
    let lfsr_upd = m.mux_w(s_idle, &lfsr.q(), &lfsr_next);

    // Guess history shifts on every accepted guess.
    let hist_shifted = {
        let lo = history.q().slice(0, 14);
        guess.concat(&lo)
    };
    let hist_next = m.mux_w(listening_step, &history.q(), &hist_shifted);

    // Round accounting: on entering score state, remember the best score
    // and bump the round counter.
    let entering_score = {
        let t = m.and2(s_listen, round_end);
        m.and2(t, guess_valid)
    };
    let new_best = m.gt_u(&score.q(), &best_score.q());
    let best_cand = m.mux_w(new_best, &best_score.q(), &score.q());
    let best_next = m.mux_w(entering_score, &best_score.q(), &best_cand);
    let rounds_inc = m.inc(&rounds.q());
    let rounds_next = m.mux_w(entering_score, &rounds.q(), &rounds_inc);

    m.next_with_reset(&state, reset, &state_next);
    m.next_with_reset(&lfsr, reset, &lfsr_upd);
    m.next_with_reset(&pos, reset, &pos_upd);
    m.next_with_reset(&score, reset, &score_next);
    m.next_with_reset(&best_score, reset, &best_next);
    m.next_with_reset(&rounds, reset, &rounds_next);
    m.next_with_reset(&lives, reset, &lives_next);
    m.next_with_reset(&history, reset, &hist_next);

    m.output_word("note", &note);
    m.output_word("score", &score.q());
    m.output_word("lives", &lives.q());
    m.output_bit("playing", s_play);
    m.output_bit("game_over", game_over);
    m.output_word("best_score", &best_score.q());
    m.output_word("rounds", &rounds.q());
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_netlist::eval::Evaluator;

    fn step(sim: &mut Evaluator, start: bool, guess: u64, gv: bool, reset: bool) -> Vec<bool> {
        let mut ins = vec![start];
        ins.extend((0..2).map(|i| (guess >> i) & 1 == 1));
        ins.push(gv);
        ins.push(reset);
        sim.step(&ins).unwrap()
    }

    fn score(out: &[bool]) -> u64 {
        (0..8).map(|i| u64::from(out[2 + i]) << i).sum()
    }
    fn lives(out: &[bool]) -> u64 {
        (0..3).map(|i| u64::from(out[10 + i]) << i).sum()
    }

    #[test]
    fn starts_and_plays_a_round() {
        let n = b12().elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        step(&mut sim, false, 0, false, true);
        step(&mut sim, true, 0, false, false); // idle -> play
        let out = step(&mut sim, false, 0, false, false);
        assert!(out[13], "machine should report playing");
        // play runs 16 positions then listens
        for _ in 0..16 {
            step(&mut sim, false, 0, false, false);
        }
        let out = step(&mut sim, false, 0, false, false);
        assert!(!out[13], "round playback must end");
    }

    #[test]
    fn correct_guesses_raise_score_wrong_cost_lives() {
        let n = b12().elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        step(&mut sim, false, 0, false, true);
        step(&mut sim, true, 0, false, false);
        for _ in 0..17 {
            step(&mut sim, false, 0, false, false); // finish playback
        }
        // Now listening. The presented note holds steady until a guess is
        // accepted, so we can read it one cycle and echo it the next.
        let out = step(&mut sim, false, 0, false, false);
        let note: u64 = u64::from(out[0]) | (u64::from(out[1]) << 1);
        step(&mut sim, false, note, true, false); // hit
        let out = step(&mut sim, false, 0, false, false);
        assert_eq!(score(&out), 1);
        let note: u64 = u64::from(out[0]) | (u64::from(out[1]) << 1);
        step(&mut sim, false, note ^ 3, true, false); // miss
        let out = step(&mut sim, false, 0, false, false);
        assert_eq!(lives(&out), 4);
        assert_eq!(score(&out), 1, "a miss must not change the score");
    }

    #[test]
    fn larger_than_the_small_fsms() {
        let n = b12().elaborate().unwrap();
        let gates = n.num_luts() + n.dffs().len();
        assert!(gates > 250, "b12 is the big non-CPU circuit, got {gates}");
    }
}
