//! b09 — serial to serial converter.

use pl_rtl::Module;

/// Builds b09: a serial-in/serial-out width converter with parity.
///
/// Incoming bits fill an 8-bit deserializer; when a frame completes, it is
/// copied into the output shift register (with its parity recomputed) and
/// re-serialized on `dout` while the next frame streams in — the
/// double-buffered converter structure of the original benchmark.
#[must_use]
pub fn b09() -> Module {
    const W: usize = 8;
    let mut m = Module::new("b09");
    let din = m.input_bit("din");
    let reset = m.input_bit("reset");

    let inreg = m.reg_word("inreg", W, 0);
    let outreg = m.reg_word("outreg", W, 0);
    let pos = m.reg_word("pos", 3, 0);
    let parity = m.reg_bit("parity", false);

    let frame_done = m.eq_const(&pos.q(), (W - 1) as u64);
    let pos_next = m.inc(&pos.q());

    // Deserializer shifts toward the MSB.
    let in_shifted = {
        let lo = inreg.q().slice(1, W);
        lo.concat(&pl_rtl::Word::from_bit(din))
    };
    // On frame completion, transfer to the serializer.
    let out_shifted = {
        let one = m.const_bit(false);
        let hi = outreg.q().slice(1, W);
        hi.concat(&pl_rtl::Word::from_bit(one))
    };
    let out_next = m.mux_w(frame_done, &out_shifted, &in_shifted);

    let par_now = m.xor_reduce(&in_shifted);
    let par_hold = parity.q().bit(0);
    let par_next = m.mux(frame_done, par_hold, par_now);

    m.next_with_reset(&inreg, reset, &in_shifted);
    m.next_with_reset(&outreg, reset, &out_next);
    m.next_with_reset(&pos, reset, &pos_next);
    let par_w = pl_rtl::Word::from_bit(par_next);
    m.next_with_reset(&parity, reset, &par_w);

    m.output_bit("dout", outreg.q().bit(0));
    m.output_bit("parity", parity.q().bit(0));
    m.output_bit("frame", frame_done);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_netlist::eval::Evaluator;

    fn step(sim: &mut Evaluator, din: bool, reset: bool) -> (bool, bool, bool) {
        let out = sim.step(&[din, reset]).unwrap();
        (out[0], out[1], out[2])
    }

    #[test]
    fn frames_are_reserialized() {
        let n = b09().elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        step(&mut sim, false, true);
        let byte = 0b1101_0010u32;
        // Send LSB-first (deserializer shifts toward MSB).
        for i in 0..8 {
            step(&mut sim, (byte >> i) & 1 == 1, false);
        }
        // The next 8 cycles stream the captured byte out, LSB first.
        let mut got = 0u32;
        for i in 0..8 {
            let (dout, _, _) = step(&mut sim, false, false);
            got |= u32::from(dout) << i;
        }
        assert_eq!(got, byte);
    }

    #[test]
    fn parity_matches_frame() {
        let n = b09().elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        for byte in [0b1101_0010u32, 0b1111_0000, 0b0000_0001, 0] {
            step(&mut sim, false, true);
            for i in 0..8 {
                step(&mut sim, (byte >> i) & 1 == 1, false);
            }
            let (_, parity, _) = step(&mut sim, false, false);
            assert_eq!(parity, byte.count_ones() % 2 == 1, "byte {byte:#010b}");
        }
    }

    #[test]
    fn frame_strobe_every_eight_cycles() {
        let n = b09().elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        step(&mut sim, false, true);
        let mut strobes = Vec::new();
        for i in 0..24 {
            let (_, _, frame) = step(&mut sim, false, false);
            if frame {
                strobes.push(i);
            }
        }
        assert_eq!(strobes, vec![7, 15, 23]);
    }
}
