//! Re-implementations of the ITC99 benchmark circuits (b01–b15).
//!
//! The DATE 2002 early-evaluation paper evaluates on the ITC99 suite
//! (Politecnico di Torino). The original RTL VHDL and the commercial
//! synthesis flow are not available here, so each circuit is re-implemented
//! **from its published functional description** (the same descriptions the
//! paper's Table 3 quotes) using the `pl-rtl` builder DSL. The goal is
//! behavioural and structural fidelity — FSM-heavy control circuits stay
//! small, arithmetic datapaths carry ripple adders and comparators, and the
//! two processor subsets (b14 Viper, b15 80386) dominate the suite's size —
//! so that the early-evaluation statistics exercise the same regimes as the
//! paper's table, while absolute gate counts naturally differ from a
//! Synopsys-mapped netlist.
//!
//! Besides the RTL catalog, [`blif_assets`] exposes vendored SIS-dialect
//! BLIF snapshots of several circuits (under `assets/blif/`) — the
//! file-based loader path that feeds the `pl-flow` ingest stage the same
//! way a third-party netlist file would.
//!
//! # Example
//!
//! ```
//! use pl_itc99::catalog;
//!
//! let suite = catalog();
//! assert_eq!(suite.len(), 15);
//! let b01 = (suite[0].build)();
//! let netlist = b01.elaborate().unwrap();
//! assert!(netlist.dffs().len() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod b01_serial_flows;
mod b02_bcd;
mod b03_arbiter;
mod b04_minmax;
mod b05_memory;
mod b06_interrupt;
mod b07_straight_line;
mod b08_inclusions;
mod b09_serial_converter;
mod b10_voting;
mod b11_scramble;
mod b12_game;
mod b13_meteo;
mod b14_viper;
mod b15_i386;
mod blif_assets;

pub use b01_serial_flows::b01;
pub use b02_bcd::b02;
pub use b03_arbiter::b03;
pub use b04_minmax::{b04, B04_WIDTH};
pub use b05_memory::b05;
pub use b06_interrupt::b06;
pub use b07_straight_line::b07;
pub use b08_inclusions::b08;
pub use b09_serial_converter::b09;
pub use b10_voting::b10;
pub use b11_scramble::{b11, b11_model};
pub use b12_game::b12;
pub use b13_meteo::b13;
pub use b14_viper::{b14, b14_program, B14State, B14_PCW, B14_RAM, B14_REGS, B14_WIDTH};
pub use b15_i386::{b15, b15_program, B15State, B15_PCW, B15_RAM, B15_REGS, B15_WIDTH};
pub use blif_assets::{blif_asset, blif_assets, BlifAsset};

use pl_rtl::Module;

/// One suite entry: identifier, the paper's Table 3 description, and the
/// circuit generator.
#[derive(Clone, Copy)]
pub struct Benchmark {
    /// Suite identifier (`"b01"` … `"b15"`).
    pub id: &'static str,
    /// Functional description, as in the paper's Table 3.
    pub description: &'static str,
    /// Builds the RTL module.
    pub build: fn() -> Module,
}

impl std::fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Benchmark")
            .field("id", &self.id)
            .field("description", &self.description)
            .finish()
    }
}

/// The full suite in Table 3 order (b01 … b15).
#[must_use]
pub fn catalog() -> Vec<Benchmark> {
    vec![
        Benchmark {
            id: "b01",
            description: "FSM that compares serial flows",
            build: b01,
        },
        Benchmark {
            id: "b02",
            description: "FSM that recognizes BCD numbers",
            build: b02,
        },
        Benchmark {
            id: "b03",
            description: "Resource arbiter",
            build: b03,
        },
        Benchmark {
            id: "b04",
            description: "Compute min and max",
            build: b04,
        },
        Benchmark {
            id: "b05",
            description: "Elaborate contents of memory",
            build: b05,
        },
        Benchmark {
            id: "b06",
            description: "Interrupt handler",
            build: b06,
        },
        Benchmark {
            id: "b07",
            description: "Count points on a straight line",
            build: b07,
        },
        Benchmark {
            id: "b08",
            description: "Find inclusions in sequences",
            build: b08,
        },
        Benchmark {
            id: "b09",
            description: "Serial to serial converter",
            build: b09,
        },
        Benchmark {
            id: "b10",
            description: "Voting system",
            build: b10,
        },
        Benchmark {
            id: "b11",
            description: "Scramble string with a cipher",
            build: b11,
        },
        Benchmark {
            id: "b12",
            description: "1-player game (guess a sequence)",
            build: b12,
        },
        Benchmark {
            id: "b13",
            description: "Interface to meteo sensors",
            build: b13,
        },
        Benchmark {
            id: "b14",
            description: "Viper processor (subset)",
            build: b14,
        },
        Benchmark {
            id: "b15",
            description: "80386 processor (subset)",
            build: b15,
        },
    ]
}

/// Looks a benchmark up by id (`"b01"` … `"b15"`).
#[must_use]
pub fn by_id(id: &str) -> Option<Benchmark> {
    catalog().into_iter().find(|b| b.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_complete_and_ordered() {
        let c = catalog();
        assert_eq!(c.len(), 15);
        for (i, b) in c.iter().enumerate() {
            assert_eq!(b.id, format!("b{:02}", i + 1));
        }
    }

    #[test]
    fn lookup_by_id() {
        assert!(by_id("b07").is_some());
        assert!(by_id("b99").is_none());
        assert_eq!(
            by_id("b14").unwrap().description,
            "Viper processor (subset)"
        );
    }

    #[test]
    fn every_benchmark_elaborates() {
        for b in catalog() {
            let m = (b.build)();
            let n = m
                .elaborate()
                .unwrap_or_else(|e| panic!("{} failed: {e}", b.id));
            assert!(!n.dffs().is_empty(), "{} should be sequential", b.id);
            assert!(!n.outputs().is_empty(), "{} needs outputs", b.id);
        }
    }

    #[test]
    fn processors_dominate_suite_size() {
        // Size ordering sanity: the paper's b14/b15 are an order of
        // magnitude larger than the small FSMs.
        let size = |id: &str| {
            let m = (by_id(id).unwrap().build)();
            let n = m.elaborate().unwrap();
            n.num_luts() + n.dffs().len()
        };
        let b01 = size("b01");
        let b06 = size("b06");
        let b12 = size("b12");
        let b14 = size("b14");
        let b15 = size("b15");
        assert!(b14 > 4 * b12, "b14 ({b14}) should dwarf b12 ({b12})");
        assert!(b15 > b14, "b15 ({b15}) should exceed b14 ({b14})");
        assert!(b01 < 120 && b06 < 120, "control FSMs stay small");
    }
}
