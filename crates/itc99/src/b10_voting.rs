//! b10 — voting system.

use pl_rtl::Module;

/// Builds b10: a weighted voting machine.
///
/// Four voters submit ballots (`vote0..vote3`) with configurable 2-bit
/// weights packed in `weights`. Each polling cycle accumulates yes/no
/// tallies; `decision` reports the current leader and `quorum` whether the
/// total weight seen reaches eight — the control/datapath mix of the
/// original voting benchmark.
#[must_use]
pub fn b10() -> Module {
    const CW: usize = 6;
    let mut m = Module::new("b10");
    let votes: Vec<_> = (0..4).map(|i| m.input_bit(format!("vote{i}"))).collect();
    let weights = m.input_word("weights", 8); // four 2-bit weights
    let poll = m.input_bit("poll");
    let reset = m.input_bit("reset");

    let yes = m.reg_word("yes", CW, 0);
    let no = m.reg_word("no", CW, 0);

    // Sum the weights of yes / no voters this cycle.
    let mut yes_sum = m.const_word(CW, 0);
    let mut no_sum = m.const_word(CW, 0);
    for (i, &v) in votes.iter().enumerate() {
        let w = weights.slice(2 * i, 2 * i + 2);
        let w_ext = m.resize(&w, CW);
        let zero = m.const_word(CW, 0);
        let yes_part = m.mux_w(v, &zero, &w_ext);
        let no_part = m.mux_w(v, &w_ext, &zero);
        yes_sum = m.add(&yes_sum, &yes_part);
        no_sum = m.add(&no_sum, &no_part);
    }

    let yes_next = m.add(&yes.q(), &yes_sum);
    let no_next = m.add(&no.q(), &no_sum);
    m.next_when_with_reset(&yes, reset, poll, &yes_next);
    m.next_when_with_reset(&no, reset, poll, &no_next);

    let decision = m.gt_u(&yes.q(), &no.q());
    let total = m.add(&yes.q(), &no.q());
    let eight = m.const_word(CW, 8);
    let quorum = m.ge_u(&total, &eight);
    let margin = {
        let d_yes = m.sub(&yes.q(), &no.q());
        let d_no = m.sub(&no.q(), &yes.q());
        m.mux_w(decision, &d_no, &d_yes)
    };

    m.output_bit("decision", decision);
    m.output_bit("quorum", quorum);
    m.output_word("margin", &margin);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_netlist::eval::Evaluator;

    const CW: usize = 6;

    fn step(
        sim: &mut Evaluator,
        votes: [bool; 4],
        weights: u64,
        poll: bool,
        reset: bool,
    ) -> (bool, bool, u64) {
        let mut ins = votes.to_vec();
        ins.extend((0..8).map(|i| (weights >> i) & 1 == 1));
        ins.push(poll);
        ins.push(reset);
        let out = sim.step(&ins).unwrap();
        let margin: u64 = (0..CW).map(|i| u64::from(out[2 + i]) << i).sum();
        (out[0], out[1], margin)
    }

    #[test]
    fn weighted_majority_wins() {
        let n = b10().elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        // weights: voter0=3, voter1=1, voter2=1, voter3=1 (packed LSB first)
        let w = 0b01_01_01_11;
        step(&mut sim, [false; 4], w, false, true);
        // voter0 yes, others no: 3 vs 3 -> tie, decision false
        step(&mut sim, [true, false, false, false], w, true, false);
        let (d, _, margin) = step(&mut sim, [false; 4], w, false, false);
        assert!(!d);
        assert_eq!(margin, 0);
        // another round: voters 0 and 1 yes -> 4 vs 2 cumulative 7 vs 5
        step(&mut sim, [true, true, false, false], w, true, false);
        let (d, q, margin) = step(&mut sim, [false; 4], w, false, false);
        assert!(d);
        assert!(q, "12 total weight >= 8");
        assert_eq!(margin, 2);
    }

    #[test]
    fn quorum_needs_weight() {
        let n = b10().elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        let w = 0b01_01_01_01; // all weight 1
        step(&mut sim, [false; 4], w, false, true);
        step(&mut sim, [true, true, true, true], w, true, false);
        let (_, q, _) = step(&mut sim, [false; 4], w, false, false);
        assert!(!q, "4 < 8");
        step(&mut sim, [true, true, true, true], w, true, false);
        let (_, q, _) = step(&mut sim, [false; 4], w, false, false);
        assert!(q, "8 >= 8");
    }

    #[test]
    fn poll_gate_holds_tallies() {
        let n = b10().elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        let w = 0b11_11_11_11;
        step(&mut sim, [false; 4], w, false, true);
        step(&mut sim, [true; 4], w, false, false); // poll low: ignored
        let (_, q, margin) = step(&mut sim, [false; 4], w, false, false);
        assert!(!q);
        assert_eq!(margin, 0);
    }
}
