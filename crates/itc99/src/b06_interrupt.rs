//! b06 — interrupt handler.

use pl_rtl::Module;

/// Builds b06: a tiny interrupt-acknowledge FSM.
///
/// Two interrupt lines compete: `cont_eql` (equal-priority round) and a
/// normal request `rqst`. The handler walks a four-state loop — idle,
/// acknowledge, service, release — raising `ackout` during acknowledge and
/// `busy` until release. Like the original, it is one of the smallest
/// circuits of the suite and purely control-dominated (the paper measured a
/// slight EE *slowdown* here).
#[must_use]
pub fn b06() -> Module {
    let mut m = Module::new("b06");
    let rqst = m.input_bit("rqst");
    let cont_eql = m.input_bit("cont_eql");
    let reset = m.input_bit("reset");

    // states: 0 idle, 1 ack, 2 service, 3 release
    let state = m.reg_word("state", 2, 0);
    let s_idle = m.eq_const(&state.q(), 0);
    let s_ack = m.eq_const(&state.q(), 1);
    let s_srv = m.eq_const(&state.q(), 2);
    let s_rel = m.eq_const(&state.q(), 3);

    let any_irq = m.or2(rqst, cont_eql);
    let k_idle = m.const_word(2, 0);
    let k_ack = m.const_word(2, 1);
    let k_srv = m.const_word(2, 2);
    let k_rel = m.const_word(2, 3);

    // idle -> ack on request; ack -> service; service -> release when the
    // request drops; release -> idle.
    let from_idle = m.mux_w(any_irq, &k_idle, &k_ack);
    let req_gone = m.not(any_irq);
    let from_srv = m.mux_w(req_gone, &k_srv, &k_rel);
    let next = m.select(
        &k_idle,
        &[
            (s_idle, from_idle),
            (s_ack, k_srv.clone()),
            (s_srv, from_srv),
            (s_rel, k_idle.clone()),
        ],
    );
    m.next_with_reset(&state, reset, &next);

    m.output_bit("ackout", s_ack);
    let busy = {
        let t = m.or2(s_ack, s_srv);
        m.or2(t, s_rel)
    };
    m.output_bit("busy", busy);
    // priority indicator: equal-priority line during service
    let eq_round = m.and2(s_srv, cont_eql);
    m.output_bit("cont_eql_srv", eq_round);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_netlist::eval::Evaluator;

    fn step(sim: &mut Evaluator, rqst: bool, cont: bool, reset: bool) -> (bool, bool) {
        let out = sim.step(&[rqst, cont, reset]).unwrap();
        (out[0], out[1])
    }

    #[test]
    fn walks_the_handshake() {
        let n = b06().elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        step(&mut sim, false, false, true); // reset -> idle
        let (ack, busy) = step(&mut sim, true, false, false); // observes idle
        assert!(!ack && !busy);
        let (ack, busy) = step(&mut sim, true, false, false); // now in ack
        assert!(ack && busy);
        let (ack, busy) = step(&mut sim, true, false, false); // service
        assert!(!ack && busy);
        let (_, busy) = step(&mut sim, false, false, false); // still service, req dropped
        assert!(busy);
        let (_, busy) = step(&mut sim, false, false, false); // release
        assert!(busy);
        let (ack, busy) = step(&mut sim, false, false, false); // idle again
        assert!(!ack && !busy);
    }

    #[test]
    fn idle_without_requests() {
        let n = b06().elaborate().unwrap();
        let mut sim = Evaluator::new(&n).unwrap();
        step(&mut sim, false, false, true);
        for _ in 0..8 {
            let (ack, busy) = step(&mut sim, false, false, false);
            assert!(!ack && !busy);
        }
    }

    #[test]
    fn tiny_like_the_original() {
        let n = b06().elaborate().unwrap();
        let gates = n.num_luts() + n.dffs().len();
        assert!(
            gates < 60,
            "b06 is the paper's 10-gate circuit, got {gates}"
        );
    }
}
