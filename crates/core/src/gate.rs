//! Phased-logic gates and arcs.
//!
//! A [`PlGate`] models the cell of the paper's Figure 1: a LUT4 function
//! block guarded by input-phase completion detection (Muller C-element) with
//! LEDR output latches. At the abstraction level of this crate, the gate is
//! a marked-graph *transition* and every signal/feedback wire is a
//! [`PlArc`] (a marked-graph *place* holding 0 or 1 tokens).

use std::fmt;

use pl_boolfn::TruthTable;

/// Identifier of a gate inside one [`crate::PlNetlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlGateId(pub(crate) u32);

impl PlGateId {
    /// Raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index.
    #[must_use]
    pub fn from_index(i: usize) -> Self {
        PlGateId(i as u32)
    }
}

impl fmt::Display for PlGateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Identifier of an arc inside one [`crate::PlNetlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlArcId(pub(crate) u32);

impl PlArcId {
    /// Raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index.
    #[must_use]
    pub fn from_index(i: usize) -> Self {
        PlArcId(i as u32)
    }
}

impl fmt::Display for PlArcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// What a phased-logic gate computes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlGateKind {
    /// Environment source: injects primary-input tokens.
    Input {
        /// Port name.
        name: String,
    },
    /// Environment sink: consumes primary-output tokens.
    Output {
        /// Port name.
        name: String,
    },
    /// A LUT compute gate (the paper's PL gate, Figure 1).
    Compute {
        /// Function over the gate's data pins (pin `i` ⇔ table variable `i`).
        table: TruthTable,
    },
    /// A register gate: the direct mapping of a D flip-flop. Behaves as an
    /// identity compute gate whose output arc carries an *initial token*
    /// with the power-on value.
    Register {
        /// Power-on token value.
        init: bool,
    },
    /// A tied-off constant. Constant pins are excluded from the token game:
    /// consumers treat them as always ready with a fixed value.
    Constant {
        /// The constant value.
        value: bool,
    },
}

/// One phased-logic gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlGate {
    pub(crate) kind: PlGateKind,
    pub(crate) name: Option<String>,
    /// Data fanin arcs in pin order (parallel to the LUT variables).
    pub(crate) data_in: Vec<PlArcId>,
    /// Acknowledge (and early-fire) fanin arcs.
    pub(crate) control_in: Vec<PlArcId>,
    /// All fanout arcs (data and control) leaving this gate.
    pub(crate) out: Vec<PlArcId>,
    /// Constant values for pins tied off to constants (`None` = live pin).
    pub(crate) const_pins: Vec<Option<bool>>,
    /// Early-evaluation pairing, if this gate is an EE master.
    pub(crate) ee: Option<EeControl>,
}

/// Early-evaluation wiring attached to a master gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EeControl {
    /// The paired trigger gate.
    pub trigger: PlGateId,
    /// The efire arc (trigger → master).
    pub efire_arc: PlArcId,
    /// Pins of the master covered by the trigger's support set.
    pub subset_pins: Vec<u8>,
    /// The trigger function, projected onto the subset pins
    /// (variable `k` ⇔ `subset_pins[k]`).
    pub trigger_table: TruthTable,
}

impl PlGate {
    /// The gate's kind.
    #[must_use]
    pub fn kind(&self) -> &PlGateKind {
        &self.kind
    }

    /// Optional debug name.
    #[must_use]
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Data fanin arcs in pin order.
    #[must_use]
    pub fn data_in(&self) -> &[PlArcId] {
        &self.data_in
    }

    /// Acknowledge / early-fire fanin arcs.
    #[must_use]
    pub fn control_in(&self) -> &[PlArcId] {
        &self.control_in
    }

    /// All fanout arcs.
    #[must_use]
    pub fn out_arcs(&self) -> &[PlArcId] {
        &self.out
    }

    /// Constant tie-off value of pin `pin`, if any.
    #[must_use]
    pub fn const_pin(&self, pin: usize) -> Option<bool> {
        self.const_pins.get(pin).copied().flatten()
    }

    /// All pins in order: `Some(v)` for constant tie-offs, `None` for pins
    /// driven by a data arc. The length is the gate's pin count.
    #[must_use]
    pub fn const_pins(&self) -> &[Option<bool>] {
        &self.const_pins
    }

    /// The early-evaluation control block, if this gate is an EE master.
    #[must_use]
    pub fn ee(&self) -> Option<&EeControl> {
        self.ee.as_ref()
    }

    /// Whether this is a compute or register gate (the units counted as
    /// "PL gates" in the paper's Table 3).
    #[must_use]
    pub fn is_logic(&self) -> bool {
        matches!(
            self.kind,
            PlGateKind::Compute { .. } | PlGateKind::Register { .. }
        )
    }

    /// The LUT table for compute gates; identity for registers.
    #[must_use]
    pub fn table(&self) -> Option<TruthTable> {
        match &self.kind {
            PlGateKind::Compute { table } => Some(*table),
            PlGateKind::Register { .. } => Some(TruthTable::from_bits(1, 0b10)),
            _ => None,
        }
    }
}

/// The kind of a marked-graph arc.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlArcKind {
    /// A data (LEDR signal) arc; carries values.
    Data,
    /// An acknowledge / feedback arc (the paper's `fi`/`fo` signals).
    Ack,
    /// The early-fire arc of an EE pair (trigger → master).
    Efire,
}

/// One marked-graph arc (place) between two gates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlArc {
    pub(crate) src: PlGateId,
    pub(crate) dst: PlGateId,
    pub(crate) kind: PlArcKind,
    /// Tokens present at reset (0 or 1 — the mapping never marks an arc twice).
    pub(crate) init_tokens: u8,
    /// Initial token value for data arcs carrying a reset token.
    pub(crate) init_value: bool,
    /// Destination pin for data arcs (LUT variable index).
    pub(crate) dst_pin: Option<u8>,
}

impl PlArc {
    /// Producer gate.
    #[must_use]
    pub fn src(&self) -> PlGateId {
        self.src
    }

    /// Consumer gate.
    #[must_use]
    pub fn dst(&self) -> PlGateId {
        self.dst
    }

    /// Arc kind.
    #[must_use]
    pub fn kind(&self) -> PlArcKind {
        self.kind
    }

    /// Tokens at reset.
    #[must_use]
    pub fn init_tokens(&self) -> u8 {
        self.init_tokens
    }

    /// Value of the reset token (data arcs only).
    #[must_use]
    pub fn init_value(&self) -> bool {
        self.init_value
    }

    /// Destination LUT pin for data arcs.
    #[must_use]
    pub fn dst_pin(&self) -> Option<u8> {
        self.dst_pin
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display() {
        assert_eq!(PlGateId::from_index(3).to_string(), "g3");
        assert_eq!(PlArcId::from_index(9).to_string(), "a9");
    }

    #[test]
    fn register_table_is_identity() {
        let g = PlGate {
            kind: PlGateKind::Register { init: true },
            name: None,
            data_in: vec![],
            control_in: vec![],
            out: vec![],
            const_pins: vec![],
            ee: None,
        };
        let t = g.table().unwrap();
        assert_eq!(t.num_vars(), 1);
        assert!(!t.eval(0));
        assert!(t.eval(1));
        assert!(g.is_logic());
    }

    #[test]
    fn io_gates_are_not_logic() {
        let g = PlGate {
            kind: PlGateKind::Input { name: "a".into() },
            name: None,
            data_in: vec![],
            control_in: vec![],
            out: vec![],
            const_pins: vec![],
            ee: None,
        };
        assert!(!g.is_logic());
        assert!(g.table().is_none());
    }
}
