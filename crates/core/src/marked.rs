//! Marked-graph liveness and safety analysis.
//!
//! The paper (§2, citing Linder/Harden) requires the PL netlist's marked
//! graph to be **live** — "an active token on each directed circuit of the
//! graph and every signal must be part of a directed circuit" — and
//! **safe** — "each directed circuit has only one active token on it at a
//! time" (more precisely: every arc lies on some circuit carrying exactly
//! one token, which bounds every arc's occupancy to one).
//!
//! [`check_liveness`] runs in linear time (Tarjan SCC + cycle check on the
//! token-free subgraph) and is executed for every constructed netlist.
//! [`check_safety`] does a token-budgeted search per arc and is intended
//! for tests and small-to-medium designs; the discrete-event simulator
//! additionally asserts dynamic safety (no arc ever holds two tokens) on
//! every run.

use crate::error::PlError;
use crate::gate::{PlArcId, PlGateId};
use crate::netlist::PlNetlist;

/// Structural liveness check.
///
/// Verifies that (a) every arc's endpoints are in the same strongly
/// connected component — i.e. every signal is part of a directed circuit —
/// and (b) the subgraph of token-free arcs is acyclic, so every directed
/// circuit carries at least one token.
///
/// # Errors
///
/// Returns [`PlError::ArcNotOnCircuit`] or [`PlError::ZeroTokenCycle`].
pub fn check_liveness(pl: &PlNetlist) -> Result<(), PlError> {
    let n = pl.gates().len();
    // (a) SCCs over all arcs.
    let adj_all: Vec<Vec<usize>> = adjacency(pl, |_| true);
    let scc = tarjan_scc(&adj_all);
    for (i, arc) in pl.arcs().iter().enumerate() {
        if scc[arc.src().index()] != scc[arc.dst().index()] {
            return Err(PlError::ArcNotOnCircuit(PlArcId::from_index(i)));
        }
    }
    // (b) token-free subgraph must be acyclic.
    let adj0: Vec<Vec<usize>> = adjacency(pl, |a| pl.arcs()[a].init_tokens() == 0);
    if let Some(g) = find_cycle_node(&adj0, n) {
        return Err(PlError::ZeroTokenCycle(PlGateId::from_index(g)));
    }
    Ok(())
}

/// Structural safety check: every arc must lie on a directed circuit
/// carrying **exactly one** token.
///
/// Cost is `O(arcs × (gates + arcs))`; use on small/medium designs or in
/// tests. Construction inserts feedback arcs precisely to establish this
/// property, so a failure indicates a mapping bug.
///
/// # Errors
///
/// Returns [`PlError::UnsafeArc`] naming the first uncovered arc.
pub fn check_safety(pl: &PlNetlist) -> Result<(), PlError> {
    let n = pl.gates().len();
    // Successor lists annotated with arc token counts.
    let mut succ: Vec<Vec<(usize, u8)>> = vec![Vec::new(); n];
    for arc in pl.arcs() {
        succ[arc.src().index()].push((arc.dst().index(), arc.init_tokens()));
    }
    for (i, arc) in pl.arcs().iter().enumerate() {
        let budget = 1 - arc.init_tokens().min(1);
        if !path_with_exact_tokens(&succ, arc.dst().index(), arc.src().index(), budget) {
            return Err(PlError::UnsafeArc(PlArcId::from_index(i)));
        }
    }
    Ok(())
}

/// Breadth-first search for a path `from ⇝ to` whose arcs carry exactly
/// `budget` tokens (budget ∈ {0, 1}). A zero-length path qualifies when
/// `from == to` and `budget == 0`.
fn path_with_exact_tokens(succ: &[Vec<(usize, u8)>], from: usize, to: usize, budget: u8) -> bool {
    if from == to && budget == 0 {
        return true;
    }
    let n = succ.len();
    // State: (gate, tokens used so far). Tokens capped at budget.
    let mut visited = vec![false; n * 2];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back((from, 0u8));
    visited[from * 2] = true;
    while let Some((g, t)) = queue.pop_front() {
        for &(next, w) in &succ[g] {
            let nt = t + w.min(1);
            if nt > budget {
                continue;
            }
            if next == to && nt == budget {
                return true;
            }
            let key = next * 2 + nt as usize;
            if !visited[key] {
                visited[key] = true;
                queue.push_back((next, nt));
            }
        }
    }
    false
}

/// Builds gate-level adjacency over arcs selected by `keep` (by arc index).
fn adjacency(pl: &PlNetlist, keep: impl Fn(usize) -> bool) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); pl.gates().len()];
    for (i, arc) in pl.arcs().iter().enumerate() {
        if keep(i) {
            adj[arc.src().index()].push(arc.dst().index());
        }
    }
    adj
}

/// Iterative Tarjan strongly-connected components; returns component id per
/// node.
fn tarjan_scc(adj: &[Vec<usize>]) -> Vec<usize> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp = vec![usize::MAX; n];
    let mut next_index = 0usize;
    let mut next_comp = 0usize;
    // Explicit DFS stack: (node, child iterator position).
    let mut call: Vec<(usize, usize)> = Vec::new();

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        call.push((start, 0));
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("scc stack underflow");
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    comp
}

/// Finds any node on a directed cycle (None if the graph is acyclic).
fn find_cycle_node(adj: &[Vec<usize>], n: usize) -> Option<usize> {
    let mut indeg = vec![0usize; n];
    for succ in adj {
        for &s in succ {
            indeg[s] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut seen = 0usize;
    while let Some(i) = queue.pop() {
        seen += 1;
        for &s in &adj[i] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                queue.push(s);
            }
        }
    }
    if seen == n {
        None
    } else {
        (0..n).find(|&i| indeg[i] > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_netlist::Netlist;

    fn small_counter() -> PlNetlist {
        let mut n = Netlist::new("cnt");
        let q0 = n.add_dff(false);
        let q1 = n.add_dff(false);
        let n0 = n.add_not(q0).unwrap();
        let t1 = n.add_xor2(q1, q0).unwrap();
        n.set_dff_input(q0, n0).unwrap();
        n.set_dff_input(q1, t1).unwrap();
        n.set_output("q0", q0);
        n.set_output("q1", q1);
        PlNetlist::from_sync(&n).unwrap()
    }

    fn comb_pipeline() -> PlNetlist {
        let mut n = Netlist::new("pipe");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g1 = n.add_and2(a, b).unwrap();
        let g2 = n.add_not(g1).unwrap();
        n.set_output("y", g2);
        PlNetlist::from_sync(&n).unwrap()
    }

    #[test]
    fn counter_is_live_and_safe() {
        let pl = small_counter();
        check_liveness(&pl).unwrap();
        check_safety(&pl).unwrap();
    }

    #[test]
    fn pipeline_is_live_and_safe() {
        let pl = comb_pipeline();
        check_liveness(&pl).unwrap();
        check_safety(&pl).unwrap();
    }

    /// Directly cross-coupled registers (a swap pair) form an all-register
    /// ring; the mapping must splice slack buffers or the acknowledge arcs
    /// deadlock. Found by the pipeline property tests.
    #[test]
    fn register_swap_ring_is_live_and_safe() {
        let mut n = Netlist::new("swap");
        let a = n.add_dff(true);
        let b = n.add_dff(false);
        n.set_dff_input(a, b).unwrap();
        n.set_dff_input(b, a).unwrap();
        n.set_output("a", a);
        n.set_output("b", b);
        let pl = PlNetlist::from_sync(&n).unwrap();
        check_liveness(&pl).unwrap();
        check_safety(&pl).unwrap();
        // Two slack buffers were inserted.
        assert_eq!(pl.num_logic_gates(), 4);
    }

    /// A register holding itself (q feeds d directly) is a one-node ring.
    #[test]
    fn register_self_loop_is_live_and_safe() {
        let mut n = Netlist::new("hold");
        let a = n.add_dff(true);
        n.set_dff_input(a, a).unwrap();
        n.set_output("a", a);
        let pl = PlNetlist::from_sync(&n).unwrap();
        check_liveness(&pl).unwrap();
        check_safety(&pl).unwrap();
    }

    /// A three-stage rotating ring — every edge needs slack.
    #[test]
    fn register_rotate_ring_is_live_and_safe() {
        let mut n = Netlist::new("rot3");
        let r: Vec<_> = (0..3).map(|i| n.add_dff(i == 0)).collect();
        for i in 0..3 {
            n.set_dff_input(r[i], r[(i + 1) % 3]).unwrap();
            n.set_output(format!("q{i}"), r[i]);
        }
        let pl = PlNetlist::from_sync(&n).unwrap();
        check_liveness(&pl).unwrap();
        check_safety(&pl).unwrap();
    }

    /// Shift chains (register feeding register, acyclically) must NOT get
    /// buffers — only rings need slack.
    #[test]
    fn shift_chain_gets_no_buffers() {
        let mut n = Netlist::new("shift");
        let x = n.add_input("x");
        let s0 = n.add_dff(false);
        let s1 = n.add_dff(false);
        n.set_dff_input(s0, x).unwrap();
        n.set_dff_input(s1, s0).unwrap();
        n.set_output("q", s1);
        let pl = PlNetlist::from_sync(&n).unwrap();
        check_liveness(&pl).unwrap();
        check_safety(&pl).unwrap();
        assert_eq!(pl.num_logic_gates(), 2, "no slack buffers on a chain");
    }

    #[test]
    fn tarjan_components() {
        // 0 -> 1 -> 0 cycle; 2 isolated
        let adj = vec![vec![1], vec![0], vec![]];
        let scc = tarjan_scc(&adj);
        assert_eq!(scc[0], scc[1]);
        assert_ne!(scc[0], scc[2]);
    }

    #[test]
    fn cycle_detection() {
        let cyclic = vec![vec![1], vec![2], vec![0]];
        assert!(find_cycle_node(&cyclic, 3).is_some());
        let acyclic = vec![vec![1], vec![2], vec![]];
        assert!(find_cycle_node(&acyclic, 3).is_none());
    }

    #[test]
    fn exact_token_paths() {
        // 0 --(0 tokens)--> 1 --(1 token)--> 2
        let succ = vec![vec![(1usize, 0u8)], vec![(2, 1)], vec![]];
        assert!(path_with_exact_tokens(&succ, 0, 2, 1));
        assert!(!path_with_exact_tokens(&succ, 0, 2, 0));
        assert!(path_with_exact_tokens(&succ, 0, 1, 0));
        assert!(path_with_exact_tokens(&succ, 0, 0, 0)); // zero-length
    }
}
