//! Phased logic with generalized early evaluation — the primary contribution
//! of *"Generalized Early Evaluation in Self-Timed Circuits"* (Thornton,
//! Fazel, Reese, Traver — DATE 2002).
//!
//! # Background
//!
//! **Phased Logic (PL)** maps a synchronous LUT4+DFF netlist one-to-one onto
//! a clockless, delay-insensitive network. Data travels as
//! [LEDR-encoded](ledr) dual-rail tokens whose *phase* alternates even/odd
//! with every new value; a PL gate fires when all of its inputs carry tokens
//! of the phase it is waiting for, latches its LUT4 output, and toggles its
//! own phase (a Muller C-element implements the rendezvous — Figure 1 of the
//! paper). The resulting token game is a **marked graph** which must be
//! *live* (every signal on a directed circuit; every circuit marked) and
//! *safe* (at most one token per arc) — see [`marked`].
//!
//! # Early evaluation
//!
//! [`ee`] implements the paper's contribution: for every master LUT4
//! function, [`trigger`] exhaustively searches the 14 support subsets of ≤3
//! inputs for a *trigger function* that fires (evaluates to 1) exactly when
//! the subset's values force the master's output. Candidates are ranked by
//! the paper's Equation 1,
//!
//! ```text
//! Cost = %Coverage × (Mmax / Tmax)
//! ```
//!
//! and the winning trigger becomes a paired *trigger PL gate* that lets the
//! master fire before its slow inputs arrive (Figure 2), at the price of one
//! extra Muller C-element on the master's normal firing path.
//!
//! The search computes each subset's forced-value set **word-parallel** on
//! the packed truth-table bits (AND/OR cofactor folds instead of
//! per-assignment restriction), and [`trigger::TriggerCache`] memoizes
//! whole searches per `(function, arrival-signature)` class so repeated
//! LUT classes (carry chains, bit slices) are analyzed once per netlist.
//!
//! # Simulation support
//!
//! [`adjacency`] freezes a netlist into a flat CSR layer —
//! per-gate pin-indexed data-in arcs, ack in-arcs, out-arcs split into
//! value/ack lists, readiness bitmasks, folded constant pins — which is
//! what `pl-sim`'s allocation-free engine consults instead of the
//! construction-friendly `Vec`-per-gate representation here.
//!
//! # Flow position
//!
//! `pl-core` consumes LUT4 netlists produced by `pl-techmap` (via
//! [`netlist::PlNetlist::from_sync`]) and feeds `pl-sim`, whose
//! discrete-event simulator measures the latency improvements reported in
//! the paper's Table 3.
//!
//! # Example
//!
//! Reproduce the paper's Table 1: the carry-out of a full adder has a
//! trigger `a·b + a'·b'` on subset `{a, b}` with 50 % coverage.
//!
//! ```
//! use pl_boolfn::TruthTable;
//! use pl_core::trigger::search_triggers;
//!
//! let carry = TruthTable::from_fn(3, |m| {
//!     let (a, b, c) = (m & 1 != 0, m & 2 != 0, m & 4 != 0);
//!     (c && (a || b)) || (a && b)
//! });
//! // arrivals: a, b early (level 1); carry-in c late (level 3)
//! let cands = search_triggers(&carry, &[1, 1, 3]);
//! let best = cands.first().expect("carry-out has a trigger");
//! assert_eq!(best.support, 0b011);
//! assert!((best.coverage - 0.5).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adjacency;
pub mod cell;
pub mod ee;
mod error;
pub mod gate;
pub mod ledr;
pub mod marked;
pub mod netlist;
pub mod trigger;

pub use adjacency::PlAdjacency;
pub use error::PlError;
pub use gate::{PlArc, PlArcId, PlArcKind, PlGate, PlGateId, PlGateKind};
pub use ledr::{LedrSignal, Phase};
pub use netlist::PlNetlist;

// Parallel sweeps (`pl_sim::parallel`) hand one `&PlNetlist` — and the
// frozen CSR adjacency derived from it — to every worker thread, each of
// which owns a private simulator. These types must therefore stay
// shareable-by-reference; this compile-time check fails the build if a
// future change sneaks in interior mutability or a non-thread-safe field.
const _: () = {
    const fn thread_shareable<T: Send + Sync>() {}
    thread_shareable::<PlNetlist>();
    thread_shareable::<PlAdjacency>();
    thread_shareable::<PlGate>();
    thread_shareable::<PlArc>();
    thread_shareable::<PlError>();
};
