//! The phased-logic netlist and the synchronous→PL direct mapping.
//!
//! [`PlNetlist::from_sync`] implements the Linder/Harden direct mapping the
//! paper builds on (§1–2): every LUT and flip-flop of a synchronous netlist
//! becomes one PL gate; every wire becomes a *data arc* of a marked graph;
//! flip-flop output arcs carry an initial token holding the reset value.
//! Acknowledge (feedback) arcs are inserted so that every data arc lies on a
//! directed circuit carrying exactly one token — the structural condition
//! for the net to be **live** and **safe** (paper §2). Following the
//! paper's observation that "some output signals need no feedback signal if
//! they are already part of a loop", an ack arc is omitted whenever an
//! existing data path already closes a one-token circuit.

use std::collections::HashMap;

use pl_netlist::{Netlist, NodeId, NodeKind};

use crate::error::PlError;
use crate::gate::{PlArc, PlArcId, PlArcKind, PlGate, PlGateId, PlGateKind};

/// A phased-logic netlist: gates (marked-graph transitions) connected by
/// data/ack arcs (places holding at most one token).
///
/// Build one with [`PlNetlist::from_sync`]; add early evaluation with
/// [`PlNetlist::with_early_evaluation`](crate::ee).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlNetlist {
    pub(crate) name: String,
    pub(crate) gates: Vec<PlGate>,
    pub(crate) arcs: Vec<PlArc>,
    pub(crate) inputs: Vec<PlGateId>,
    pub(crate) outputs: Vec<(String, PlGateId)>,
}

impl PlNetlist {
    /// Maps a synchronous LUT netlist onto phased logic.
    ///
    /// Requirements on `sync`: validated, LUT arity ≤ 4 (the PL gate is a
    /// LUT4 cell — run `pl-techmap` first).
    ///
    /// # Errors
    ///
    /// Returns [`PlError::LutTooWideForPl`] for wider LUTs, or wraps netlist
    /// validation failures.
    pub fn from_sync(sync: &Netlist) -> Result<Self, PlError> {
        sync.validate().map_err(PlError::Netlist)?;
        for (_, node) in sync.iter() {
            if let NodeKind::Lut { inputs, .. } = node.kind() {
                if inputs.len() > 4 {
                    return Err(PlError::LutTooWideForPl {
                        arity: inputs.len(),
                    });
                }
            }
        }

        let mut pl = PlNetlist {
            name: sync.name().to_string(),
            gates: Vec::new(),
            arcs: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        };

        // 1. Gates.
        let mut map: Vec<Option<PlGateId>> = vec![None; sync.len()];
        for (id, node) in sync.iter() {
            let kind = match node.kind() {
                NodeKind::Input { name } => PlGateKind::Input { name: name.clone() },
                NodeKind::Const { value } => PlGateKind::Constant { value: *value },
                NodeKind::Lut { table, .. } => PlGateKind::Compute { table: *table },
                NodeKind::Dff { init, .. } => PlGateKind::Register { init: *init },
            };
            let g = pl.push_gate(kind, node.name().map(str::to_string));
            map[id.index()] = Some(g);
            if node.is_input() {
                pl.inputs.push(g);
            }
        }
        let gate_of = |id: NodeId| map[id.index()].expect("every sync node mapped");

        // Rings of *directly connected* registers (DFF→DFF with no logic in
        // between) would make every data arc on the ring carry an initial
        // token; the matching acknowledge arcs would then form a token-free
        // cycle — instant deadlock. Hardware PL flows splice slack there;
        // we do the same with an identity buffer gate per ring edge.
        let ring_edges = register_ring_edges(sync);

        // 2. Data arcs (constants tie pins off instead of making arcs).
        for (id, node) in sync.iter() {
            match node.kind() {
                NodeKind::Lut { inputs, .. } => {
                    let dst = gate_of(id);
                    pl.gates[dst.index()].const_pins = vec![None; inputs.len()];
                    for (pin, &src) in inputs.iter().enumerate() {
                        pl.connect_data(sync, gate_of(src), src, dst, pin as u8);
                    }
                }
                NodeKind::Dff { d: Some(src), .. } => {
                    let dst = gate_of(id);
                    pl.gates[dst.index()].const_pins = vec![None];
                    if ring_edges.contains(&(*src, id)) {
                        // Splice a slack buffer: src ─(token)─► buf ─► dst.
                        let init = match sync.node(*src).kind() {
                            NodeKind::Dff { init, .. } => *init,
                            _ => unreachable!("ring edges connect registers"),
                        };
                        let buf = pl.push_gate(
                            PlGateKind::Compute {
                                table: pl_boolfn::TruthTable::from_bits(1, 0b10),
                            },
                            Some(format!("ring_buf_{}", id.index())),
                        );
                        pl.gates[buf.index()].const_pins = vec![None];
                        pl.add_data_arc(gate_of(*src), buf, 0, 1, init);
                        pl.add_data_arc(buf, dst, 0, 0, false);
                    } else {
                        pl.connect_data(sync, gate_of(*src), *src, dst, 0);
                    }
                }
                _ => {}
            }
        }
        // Output sink gates.
        for (name, driver) in sync.outputs() {
            let g = pl.push_gate(PlGateKind::Output { name: name.clone() }, None);
            pl.gates[g.index()].const_pins = vec![None];
            pl.connect_data(sync, gate_of(*driver), *driver, g, 0);
            pl.outputs.push((name.clone(), g));
        }

        // 3. Acknowledge arcs for every data arc not already on a one-token
        //    data circuit.
        pl.insert_feedback_arcs(&[]);
        Ok(pl)
    }

    /// The design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All gates, indexed by [`PlGateId::index`].
    #[must_use]
    pub fn gates(&self) -> &[PlGate] {
        &self.gates
    }

    /// All arcs, indexed by [`PlArcId::index`].
    #[must_use]
    pub fn arcs(&self) -> &[PlArc] {
        &self.arcs
    }

    /// Looks up one gate.
    #[must_use]
    pub fn gate(&self, id: PlGateId) -> &PlGate {
        &self.gates[id.index()]
    }

    /// Looks up one arc.
    #[must_use]
    pub fn arc(&self, id: PlArcId) -> &PlArc {
        &self.arcs[id.index()]
    }

    /// Environment input gates in port order.
    #[must_use]
    pub fn input_gates(&self) -> &[PlGateId] {
        &self.inputs
    }

    /// Environment output gates in port order.
    #[must_use]
    pub fn output_gates(&self) -> &[(String, PlGateId)] {
        &self.outputs
    }

    /// Number of logic (compute + register) gates — the paper's "PL Gates"
    /// column in Table 3.
    #[must_use]
    pub fn num_logic_gates(&self) -> usize {
        self.gates.iter().filter(|g| g.is_logic()).count()
    }

    /// Number of compute gates (early-evaluation candidates).
    #[must_use]
    pub fn num_compute_gates(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| matches!(g.kind, PlGateKind::Compute { .. }))
            .count()
    }

    /// Number of EE master/trigger pairs present.
    #[must_use]
    pub fn num_ee_pairs(&self) -> usize {
        self.gates.iter().filter(|g| g.ee.is_some()).count()
    }

    /// Number of acknowledge arcs (feedback signals).
    #[must_use]
    pub fn num_ack_arcs(&self) -> usize {
        self.arcs
            .iter()
            .filter(|a| a.kind == PlArcKind::Ack)
            .count()
    }

    /// A 64-bit FNV-1a fingerprint of the full phased-graph content: every
    /// gate (kind, name, tied-off pins, EE pairing) and every arc (endpoints,
    /// kind, marking, pin). Equal content ⇒ equal fingerprint, so the flow
    /// uses it to decide when a retained phased artifact can be reused
    /// verbatim after an incremental recompile.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        const PRIME: u64 = 0x100_0000_01b3;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let word = |h: &mut u64, w: u64| {
            for b in w.to_le_bytes() {
                *h ^= u64::from(b);
                *h = h.wrapping_mul(PRIME);
            }
        };
        let bytes = |h: &mut u64, s: &[u8]| {
            for &b in s {
                *h ^= u64::from(b);
                *h = h.wrapping_mul(PRIME);
            }
            word(h, s.len() as u64);
        };
        bytes(&mut h, self.name.as_bytes());
        word(&mut h, self.gates.len() as u64);
        for g in &self.gates {
            match &g.kind {
                PlGateKind::Input { name } => {
                    word(&mut h, 1);
                    bytes(&mut h, name.as_bytes());
                }
                PlGateKind::Constant { value } => {
                    word(&mut h, 2);
                    word(&mut h, u64::from(*value));
                }
                PlGateKind::Compute { table } => {
                    word(&mut h, 3);
                    word(&mut h, table.num_vars() as u64);
                    word(&mut h, table.bits());
                }
                PlGateKind::Register { init } => {
                    word(&mut h, 4);
                    word(&mut h, u64::from(*init));
                }
                PlGateKind::Output { name } => {
                    word(&mut h, 5);
                    bytes(&mut h, name.as_bytes());
                }
            }
            match &g.name {
                Some(n) => {
                    word(&mut h, 6);
                    bytes(&mut h, n.as_bytes());
                }
                None => word(&mut h, 7),
            }
            word(&mut h, g.const_pins.len() as u64);
            for cp in &g.const_pins {
                word(&mut h, cp.map_or(2, u64::from));
            }
            match &g.ee {
                Some(ee) => {
                    word(&mut h, 8);
                    word(&mut h, u64::from(ee.trigger.0));
                    word(&mut h, u64::from(ee.efire_arc.0));
                    word(&mut h, ee.subset_pins.len() as u64);
                    for &p in &ee.subset_pins {
                        word(&mut h, u64::from(p));
                    }
                    word(&mut h, ee.trigger_table.num_vars() as u64);
                    word(&mut h, ee.trigger_table.bits());
                }
                None => word(&mut h, 9),
            }
        }
        word(&mut h, self.arcs.len() as u64);
        for a in &self.arcs {
            word(&mut h, u64::from(a.src.0));
            word(&mut h, u64::from(a.dst.0));
            word(
                &mut h,
                match a.kind {
                    PlArcKind::Data => 0,
                    PlArcKind::Ack => 1,
                    PlArcKind::Efire => 2,
                },
            );
            word(&mut h, u64::from(a.init_tokens));
            word(&mut h, u64::from(a.init_value));
            word(&mut h, a.dst_pin.map_or(u64::MAX, u64::from));
        }
        for &i in &self.inputs {
            word(&mut h, u64::from(i.0));
        }
        word(&mut h, self.outputs.len() as u64);
        for (name, g) in &self.outputs {
            bytes(&mut h, name.as_bytes());
            word(&mut h, u64::from(g.0));
        }
        h
    }

    /// Checks that every logic/output gate pin is either tied to a constant
    /// or driven by exactly one data arc.
    ///
    /// # Errors
    ///
    /// Returns [`PlError::MissingPinDriver`] for the first floating pin.
    pub fn check_pins(&self) -> Result<(), PlError> {
        for (i, gate) in self.gates.iter().enumerate() {
            for (pin, cv) in gate.const_pins.iter().enumerate() {
                if cv.is_some() {
                    continue;
                }
                let driven = gate
                    .data_in
                    .iter()
                    .any(|a| self.arcs[a.index()].dst_pin == Some(pin as u8));
                if !driven {
                    return Err(PlError::MissingPinDriver {
                        gate: PlGateId::from_index(i),
                        pin: pin as u8,
                    });
                }
            }
        }
        Ok(())
    }

    /// Arrival level of every gate: the "maximum path length in terms of PL
    /// gates from the primary circuit inputs" used by the paper's cost
    /// function (§3). Inputs, constants and registers are level 0 (their
    /// tokens are available at the start of a round); a compute gate is one
    /// more than its slowest data fanin.
    #[must_use]
    pub fn arrival_levels(&self) -> Vec<u32> {
        let n = self.gates.len();
        let mut level = vec![0u32; n];
        // The 0-token data subgraph (combinational arcs) is acyclic; walk it
        // in topological order via Kahn's algorithm.
        let mut indeg = vec![0usize; n];
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for arc in &self.arcs {
            if arc.kind == PlArcKind::Data && arc.init_tokens == 0 {
                succ[arc.src.index()].push(arc.dst.index());
                indeg[arc.dst.index()] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        while let Some(i) = queue.pop() {
            let is_compute = matches!(self.gates[i].kind, PlGateKind::Compute { .. });
            let fanin_max = self.gates[i]
                .data_in
                .iter()
                .filter(|a| self.arcs[a.index()].init_tokens == 0)
                .map(|a| level[self.arcs[a.index()].src.index()])
                .max()
                .unwrap_or(0);
            level[i] = if is_compute {
                1 + fanin_max
            } else if matches!(self.gates[i].kind, PlGateKind::Output { .. }) {
                fanin_max
            } else {
                0
            };
            for &s in &succ[i] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(s);
                }
            }
        }
        level
    }

    /// Per-pin arrival levels of a gate's data inputs (constant pins are 0).
    #[must_use]
    pub fn pin_arrivals(&self, gate: PlGateId, levels: &[u32]) -> Vec<u32> {
        let g = &self.gates[gate.index()];
        let mut arr = vec![0u32; g.const_pins.len()];
        for &aid in &g.data_in {
            let arc = &self.arcs[aid.index()];
            if let Some(pin) = arc.dst_pin {
                // Register-sourced tokens are available immediately.
                arr[pin as usize] = if arc.init_tokens > 0 {
                    0
                } else {
                    levels[arc.src.index()]
                };
            }
        }
        arr
    }

    // ---- fault injection (testing the defensive checks) -----------------

    /// Deletes one arc, rebuilding indices — **fault injection only**: the
    /// result generally violates liveness/safety, which is exactly what the
    /// failure-injection tests use to prove the checkers and the simulator
    /// catch broken marked graphs.
    #[doc(hidden)]
    pub fn inject_remove_arc(&mut self, victim: PlArcId) {
        let old = std::mem::take(&mut self.arcs);
        for g in &mut self.gates {
            g.data_in.clear();
            g.control_in.clear();
            g.out.clear();
        }
        let mut efire_remap: Vec<(PlGateId, PlArcId)> = Vec::new();
        for (i, arc) in old.into_iter().enumerate() {
            if i == victim.index() {
                continue;
            }
            let new_id = match arc.kind {
                PlArcKind::Data => self.add_data_arc(
                    arc.src,
                    arc.dst,
                    arc.dst_pin.expect("data arcs carry pins"),
                    arc.init_tokens,
                    arc.init_value,
                ),
                k => self.add_control_arc(arc.src, arc.dst, k, arc.init_tokens),
            };
            if arc.kind == PlArcKind::Efire {
                efire_remap.push((arc.dst, new_id));
            }
        }
        for (master, new_efire) in efire_remap {
            if let Some(ee) = &mut self.gates[master.index()].ee {
                ee.efire_arc = new_efire;
            }
        }
    }

    /// Overwrites an EE pair's trigger function — **fault injection only**:
    /// an unsound trigger must be caught by the simulator's forced-value
    /// check ([`pl-sim`'s `UnsoundTrigger`] error).
    ///
    /// # Panics
    ///
    /// Panics if `master` is not an EE master or the table arity differs
    /// from the trigger's.
    #[doc(hidden)]
    pub fn inject_trigger_table(&mut self, master: PlGateId, table: pl_boolfn::TruthTable) {
        let ee = self.gates[master.index()]
            .ee
            .as_mut()
            .expect("fault target must be an EE master");
        assert_eq!(
            table.num_vars(),
            ee.trigger_table.num_vars(),
            "trigger arity"
        );
        ee.trigger_table = table;
        let trigger = ee.trigger;
        match &mut self.gates[trigger.index()].kind {
            PlGateKind::Compute { table: t } => *t = table,
            _ => unreachable!("triggers are compute gates"),
        }
    }

    // ---- construction internals ----------------------------------------

    pub(crate) fn push_gate(&mut self, kind: PlGateKind, name: Option<String>) -> PlGateId {
        let id = PlGateId::from_index(self.gates.len());
        self.gates.push(PlGate {
            kind,
            name,
            data_in: Vec::new(),
            control_in: Vec::new(),
            out: Vec::new(),
            const_pins: Vec::new(),
            ee: None,
        });
        id
    }

    /// Connects a data pin, tying it off if the source is a constant.
    fn connect_data(
        &mut self,
        sync: &Netlist,
        src_gate: PlGateId,
        src_node: NodeId,
        dst: PlGateId,
        pin: u8,
    ) {
        match sync.node(src_node).kind() {
            NodeKind::Const { value } => {
                self.gates[dst.index()].const_pins[pin as usize] = Some(*value);
            }
            NodeKind::Dff { init, .. } => {
                self.add_data_arc(src_gate, dst, pin, 1, *init);
            }
            _ => {
                self.add_data_arc(src_gate, dst, pin, 0, false);
            }
        }
    }

    pub(crate) fn add_data_arc(
        &mut self,
        src: PlGateId,
        dst: PlGateId,
        pin: u8,
        init_tokens: u8,
        init_value: bool,
    ) -> PlArcId {
        let id = PlArcId::from_index(self.arcs.len());
        self.arcs.push(PlArc {
            src,
            dst,
            kind: PlArcKind::Data,
            init_tokens,
            init_value,
            dst_pin: Some(pin),
        });
        self.gates[src.index()].out.push(id);
        self.gates[dst.index()].data_in.push(id);
        id
    }

    /// Removes every control (ack/efire) arc, keeping data arcs only and
    /// re-indexing them. Used by the EE transformation to re-plan feedback
    /// around the chosen masters.
    ///
    /// # Panics
    ///
    /// Panics (debug) if any gate already carries EE control state, since
    /// its efire arc id would be invalidated.
    pub(crate) fn strip_control_arcs(&mut self) {
        debug_assert!(
            self.gates.iter().all(|g| g.ee.is_none()),
            "strip_control_arcs would orphan efire references"
        );
        let old = std::mem::take(&mut self.arcs);
        for g in &mut self.gates {
            g.data_in.clear();
            g.control_in.clear();
            g.out.clear();
        }
        for arc in old {
            if arc.kind == PlArcKind::Data {
                self.add_data_arc(
                    arc.src,
                    arc.dst,
                    arc.dst_pin.expect("data arcs carry a pin"),
                    arc.init_tokens,
                    arc.init_value,
                );
            }
        }
    }

    pub(crate) fn add_control_arc(
        &mut self,
        src: PlGateId,
        dst: PlGateId,
        kind: PlArcKind,
        init_tokens: u8,
    ) -> PlArcId {
        debug_assert_ne!(kind, PlArcKind::Data);
        let id = PlArcId::from_index(self.arcs.len());
        self.arcs.push(PlArc {
            src,
            dst,
            kind,
            init_tokens,
            init_value: false,
            dst_pin: None,
        });
        self.gates[src.index()].out.push(id);
        self.gates[dst.index()].control_in.push(id);
        id
    }

    /// Inserts acknowledge arcs: for each data arc `A→B` carrying `m` tokens,
    /// adds `B→A` with `1−m` tokens unless a data-only path `B ⇝ A` with
    /// exactly `1−m` tokens already closes a one-token circuit.
    ///
    /// Ack arcs between the same gate pair are shared (the paper: multiple
    /// output signals covered by one feedback signal).
    ///
    /// `forbidden[g]` marks gates whose firing is *not atomic* — EE masters
    /// produce early and consume late (Figure 2), so a circuit through them
    /// no longer bounds token counts. Arcs adjacent to forbidden gates must
    /// be given explicit acks by the caller beforehand; covering paths here
    /// never transit a forbidden gate. An empty slice forbids nothing.
    pub(crate) fn insert_feedback_arcs(&mut self, forbidden: &[bool]) {
        let (reach0, reach1) = self.data_reachability(forbidden);
        let is_forbidden = |g: PlGateId| forbidden.get(g.index()).copied().unwrap_or(false);
        // Share feedback arcs that already exist (including the explicit
        // master/trigger feedbacks added by the EE transformation).
        let mut existing: HashMap<(PlGateId, PlGateId, u8), ()> = self
            .arcs
            .iter()
            .filter(|a| a.kind == PlArcKind::Ack)
            .map(|a| ((a.src, a.dst, a.init_tokens), ()))
            .collect();
        let data_arcs: Vec<(PlGateId, PlGateId, u8)> = self
            .arcs
            .iter()
            .filter(|a| a.kind == PlArcKind::Data)
            .map(|a| (a.src, a.dst, a.init_tokens))
            .collect();
        for (src, dst, m) in data_arcs {
            if is_forbidden(src) || is_forbidden(dst) {
                // Master-adjacent arcs carry explicit feedback (Figure 2).
                continue;
            }
            let need = 1 - m; // tokens the return path must carry
            let covered = if need == 0 {
                reach0[dst.index()].contains(src.index())
            } else {
                reach1[dst.index()].contains(src.index())
            };
            if covered {
                continue;
            }
            if existing.contains_key(&(dst, src, need)) {
                continue;
            }
            self.add_control_arc(dst, src, PlArcKind::Ack, need);
            existing.insert((dst, src, need), ());
        }
    }

    /// Computes, for every gate `g`, the sets of gates reachable from `g`
    /// along data arcs using exactly 0 tokens (`reach0`, includes `g`
    /// itself) and exactly 1 token (`reach1`). Paths never visit gates
    /// marked `forbidden` (non-atomic EE masters).
    fn data_reachability(&self, forbidden: &[bool]) -> (Vec<BitSet>, Vec<BitSet>) {
        let n = self.gates.len();
        let blocked = |i: usize| forbidden.get(i).copied().unwrap_or(false);
        // 0-token data arcs form a DAG (combinational edges); 1-token data
        // arcs are register/initialized edges.
        let mut succ0: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut succ1: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indeg = vec![0usize; n];
        for a in &self.arcs {
            if a.kind != PlArcKind::Data || blocked(a.src.index()) || blocked(a.dst.index()) {
                continue;
            }
            if a.init_tokens == 0 {
                succ0[a.src.index()].push(a.dst.index());
                indeg[a.dst.index()] += 1;
            } else {
                succ1[a.src.index()].push(a.dst.index());
            }
        }
        // Reverse-topological order of the 0-token DAG.
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut topo: Vec<usize> = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            topo.push(i);
            for &s in &succ0[i] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(s);
                }
            }
        }
        debug_assert_eq!(topo.len(), n, "0-token data subgraph must be acyclic");
        // DP over reverse topological order of the combinational DAG.
        let mut reach0: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
        for &i in topo.iter().rev() {
            let mut set = BitSet::new(n);
            set.insert(i);
            for &s in &succ0[i] {
                set.union_with(&reach0[s]);
            }
            reach0[i] = set;
        }
        let mut reach1: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
        for &i in topo.iter().rev() {
            let mut set = BitSet::new(n);
            for &s in &succ0[i] {
                set.union_with(&reach1[s]);
            }
            for &w in &succ1[i] {
                set.union_with(&reach0[w]);
            }
            reach1[i] = set;
        }
        (reach0, reach1)
    }
}

/// Finds the direct register→register feed edges that lie on all-register
/// cycles of a synchronous netlist.
///
/// Each flip-flop has exactly one data driver, so the "driver is also a
/// flip-flop" relation is a functional graph whose cycles are simple rings;
/// a pointer walk with visit colouring finds them in linear time.
fn register_ring_edges(sync: &Netlist) -> std::collections::HashSet<(NodeId, NodeId)> {
    use pl_netlist::NodeKind;
    let mut parent: HashMap<NodeId, NodeId> = HashMap::new();
    for &ff in sync.dffs() {
        if let NodeKind::Dff { d: Some(src), .. } = sync.node(ff).kind() {
            if sync.node(*src).is_dff() {
                parent.insert(ff, *src);
            }
        }
    }
    // colour: 0 unvisited, 1 on current walk, 2 finished
    let mut colour: HashMap<NodeId, u8> = HashMap::new();
    let mut edges = std::collections::HashSet::new();
    for &start in sync.dffs() {
        if colour.get(&start).copied().unwrap_or(0) != 0 {
            continue;
        }
        // Walk the driver chain, recording the path.
        let mut path = Vec::new();
        let mut cur = start;
        loop {
            match colour.get(&cur).copied().unwrap_or(0) {
                1 => {
                    // Found a new ring: everything from `cur`'s position on.
                    let pos = path
                        .iter()
                        .position(|&n| n == cur)
                        .expect("colour-1 nodes are on the current path");
                    let ring: &[NodeId] = &path[pos..];
                    for (i, &n) in ring.iter().enumerate() {
                        let next = ring[(i + 1) % ring.len()];
                        // n drives next? parent[next] == n ... but our walk
                        // follows parents, so n's parent is the next entry.
                        let _ = next;
                        let p = parent[&n];
                        edges.insert((p, n));
                    }
                    break;
                }
                2 => break,
                _ => {}
            }
            colour.insert(cur, 1);
            path.push(cur);
            match parent.get(&cur) {
                Some(&p) => cur = p,
                None => break,
            }
        }
        for n in path {
            colour.insert(n, 2);
        }
    }
    edges
}

/// A simple fixed-size bit set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    pub(crate) fn new(n: usize) -> Self {
        Self {
            words: vec![0; n.div_ceil(64)],
        }
    }

    pub(crate) fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    pub(crate) fn contains(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    pub(crate) fn union_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }
}
