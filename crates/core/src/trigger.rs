//! Trigger-function search and the paper's cost function (Equation 1).
//!
//! For a master LUT4 function `f`, a *trigger* over a support subset `S` of
//! the master's inputs fires (evaluates to 1) exactly on the assignments to
//! `S` that force `f`'s output regardless of the remaining inputs. Each
//! time the trigger is 1, the master "can go ahead and evaluate even if
//! \[the other inputs have\] not arrived since \[their\] value is a don't care
//! in these cases" (paper §3, Table 1).
//!
//! The search is exhaustive over all support subsets of three or fewer
//! variables — for a full LUT4, the paper's "14 possible support sets".
//! Candidates are ranked by
//!
//! ```text
//! Cost = %Coverage × (Mmax / Tmax)                       (Equation 1)
//! ```
//!
//! where `%Coverage` is the fraction of the master's minterms (ON and OFF)
//! forced by the subset, and `Mmax`/`Tmax` are the worst-case arrival times
//! of the master's/trigger's input signals in PL-gate levels.
//!
//! # Word-parallel forced-value extraction
//!
//! [`search_triggers`] computes the forced-value set of every support
//! subset **word-parallel** on the packed truth-table bits: the table is
//! folded once per non-subset variable with an AND (resp. OR) across that
//! variable's cofactor halves, after which bit `m₀` of the folded word
//! answers "is the output forced to 1 (resp. 0) under the subset
//! assignment whose minterm representative is `m₀`" — for *all* `2^k`
//! assignments at once. That replaces `2^k` per-assignment
//! `forced_value` calls (each a chain of cofactor masks) with `O(n)` word
//! operations per subset. The historical per-assignment implementation is
//! kept as [`search_triggers_baseline`] for differential tests and the
//! `ee_search` benchmark.
//!
//! # Memoization
//!
//! Netlists repeat LUT classes heavily (every carry cell of an adder, every
//! bit slice of a comparator…). [`TriggerCache`] memoizes full search
//! results keyed by `(truth-table bits, arity, support-masked arrival
//! signature)`, so `with_early_evaluation` analyzes each distinct
//! (function, arrival-profile) class once per netlist instead of once per
//! gate.

use std::collections::HashMap;

use pl_boolfn::{support_subsets, CubeList, TruthTable, VarSet};

/// One candidate trigger function for a master gate.
#[derive(Debug, Clone, PartialEq)]
pub struct TriggerCandidate {
    /// The support subset, as a bit mask over the master's pins.
    pub support: VarSet,
    /// The trigger function over the subset variables (variable `k` of this
    /// table is the `k`-th lowest set bit of `support`).
    pub table: TruthTable,
    /// Fraction of master minterms (both ON and OFF) covered, in `[0, 1]`.
    pub coverage: f64,
    /// Worst-case arrival level among the master's support inputs.
    pub m_max: u32,
    /// Worst-case arrival level among the trigger's (subset) inputs.
    pub t_max: u32,
}

impl TriggerCandidate {
    /// The paper's Equation 1: `%Coverage × Mmax / Tmax`.
    ///
    /// Arrival levels of zero are clamped to one so that signals arriving
    /// straight from primary inputs (level 0) do not divide by zero; the
    /// ratio still rewards triggers whose inputs arrive earlier than the
    /// master's slowest input.
    #[must_use]
    pub fn cost(&self) -> f64 {
        self.coverage * f64::from(self.m_max.max(1)) / f64::from(self.t_max.max(1))
    }

    /// Whether this trigger can produce a speedup at all: some input of the
    /// master arrives strictly later than every trigger input.
    #[must_use]
    pub fn offers_speedup(&self) -> bool {
        self.t_max < self.m_max
    }
}

/// Searches all support subsets of ≤ `3` variables of `master`'s true
/// support for trigger candidates, returning them sorted by descending
/// [`TriggerCandidate::cost`] (ties: larger coverage, then smaller subset).
///
/// `arrivals[i]` is the arrival level of master pin `i` (see
/// [`crate::PlNetlist::pin_arrivals`]). Subsets equal to the full true
/// support are excluded — triggering on *all* inputs is ordinary firing.
///
/// # Panics
///
/// Panics if `arrivals` is shorter than the master's variable count.
#[must_use]
pub fn search_triggers(master: &TruthTable, arrivals: &[u32]) -> Vec<TriggerCandidate> {
    assert!(
        arrivals.len() >= master.num_vars(),
        "need an arrival level per master pin"
    );
    let support = master.support();
    let support_size = support.count_ones();
    if support_size < 2 {
        return Vec::new();
    }
    // Positions of the support variables (stack array — no iterator or
    // allocation in the enumeration).
    let mut vars = [0u8; pl_boolfn::MAX_VARS];
    let mut nsup = 0usize;
    for v in 0..master.num_vars() {
        if support & (1 << v) != 0 {
            vars[nsup] = v as u8;
            nsup += 1;
        }
    }
    let m_max = (0..nsup)
        .map(|i| arrivals[vars[i] as usize])
        .max()
        .unwrap_or(0);
    // Reciprocal multiply: `total` is a power of two, so `x * inv_total`
    // is bit-identical to `x / total` and cheaper in the hot loop.
    let inv_total = 1.0 / f64::from(1u32 << support_size);

    // 2^4-1 proper subsets of ≤3 vars is the LUT4 worst case (the paper's
    // "14 possible support sets"); larger supports cap out below 42.
    let mut out = Vec::with_capacity(14);
    for sel in 1u32..(1 << nsup) {
        let k = sel.count_ones();
        if k > 3 || k == nsup as u32 {
            continue; // ≤3 variables, proper subsets only
        }
        // Subset mask, scatter offsets and Tmax in one pass over `sel`.
        let mut subset: VarSet = 0;
        let mut offs = [0u32; 3];
        let mut t_max = 0u32;
        let mut j = 0usize;
        for (i, &v) in vars.iter().enumerate().take(nsup) {
            if sel & (1 << i) != 0 {
                subset |= 1 << v;
                offs[j] = 1 << v;
                j += 1;
                t_max = t_max.max(arrivals[v as usize]);
            }
        }
        let trig_bits = forced_set(master, support, subset, &offs[..j]);
        if trig_bits == 0 {
            continue;
        }
        let forced = trig_bits.count_ones();
        // Each forced assignment covers all minterms of the non-subset
        // support variables.
        let covered = u64::from(forced) << (support_size - k);
        let coverage = covered as f64 * inv_total;
        out.push(TriggerCandidate {
            support: subset,
            table: TruthTable::from_bits(k as usize, trig_bits),
            coverage,
            m_max,
            t_max,
        });
    }
    sort_candidates(&mut out);
    out
}

/// Word-parallel forced-value set of one support subset: bit `asg` of the
/// returned mask is 1 iff fixing the subset variables to assignment `asg`
/// forces the master's output.
///
/// One AND-fold and one OR-fold per *support* variable outside the subset
/// collapse that variable's cofactor halves; afterwards the bit at a
/// subset assignment's minterm representative (non-subset variables = 0)
/// holds "all minterms of this cofactor are 1" (AND-fold) / "any minterm
/// is 1" (OR-fold). Forced ⇔ and-bit (forced to 1) or negated or-bit
/// (forced to 0). Vacuous variables need no fold: both cofactor halves are
/// equal, so the representative bit already answers for the whole class.
///
/// `offs[j]` must hold `1 << v` for the `j`-th lowest subset variable `v`
/// (the caller computes these while building the subset mask).
#[inline]
fn forced_set(master: &TruthTable, support: VarSet, subset: VarSet, offs: &[u32]) -> u64 {
    let mut and_t = master.bits();
    let mut or_t = and_t;
    let mut fold = support & !subset;
    while fold != 0 {
        let v = fold.trailing_zeros();
        let s = 1u32 << v;
        and_t &= and_t >> s;
        or_t |= or_t >> s;
        fold &= fold - 1;
    }
    // Walk the 2^k subset assignments; the representative minterm scatters
    // the assignment bits onto the subset variable positions.
    let mut trig_bits = 0u64;
    for asg in 0..(1u32 << offs.len()) {
        let mut m0 = 0u32;
        for (bit, &off) in offs.iter().enumerate() {
            if (asg >> bit) & 1 == 1 {
                m0 |= off;
            }
        }
        let forced1 = (and_t >> m0) & 1 == 1;
        let forced0 = (or_t >> m0) & 1 == 0;
        if forced1 || forced0 {
            trig_bits |= 1 << asg;
        }
    }
    trig_bits
}

/// The historical per-assignment trigger search, retained as the
/// differential baseline for [`search_triggers`] (the `ee_search` bench
/// and the equivalence suite compare both). Candidate ranking and results
/// are identical; only the forced-set extraction differs.
#[must_use]
pub fn search_triggers_baseline(master: &TruthTable, arrivals: &[u32]) -> Vec<TriggerCandidate> {
    assert!(
        arrivals.len() >= master.num_vars(),
        "need an arrival level per master pin"
    );
    let support = master.support();
    let support_size = support.count_ones();
    if support_size < 2 {
        return Vec::new();
    }
    let m_max = (0..master.num_vars())
        .filter(|&v| support & (1 << v) != 0)
        .map(|v| arrivals[v])
        .max()
        .unwrap_or(0);
    let total = f64::from(1u32 << support_size);

    let mut out = Vec::new();
    for subset in support_subsets(support, 3) {
        if subset == support {
            continue; // proper subsets only
        }
        let k = subset.count_ones();
        let mut trig_bits = 0u64;
        let mut forced = 0u32;
        for asg in 0..(1u32 << k) {
            if master.forced_value(subset, asg).is_some() {
                trig_bits |= 1 << asg;
                forced += 1;
            }
        }
        if forced == 0 {
            continue;
        }
        let covered = u64::from(forced) << (support_size - k);
        let coverage = covered as f64 / total;
        let t_max = (0..master.num_vars())
            .filter(|&v| subset & (1 << v) != 0)
            .map(|v| arrivals[v])
            .max()
            .unwrap_or(0);
        out.push(TriggerCandidate {
            support: subset,
            table: TruthTable::from_bits(k as usize, trig_bits),
            coverage,
            m_max,
            t_max,
        });
    }
    // The seed implementation's sort, kept verbatim (including the
    // `partial_cmp(..).expect(..)` the rewrite replaces with `total_cmp`)
    // so that baseline timings reflect the true pre-refactor cost.
    out.sort_by(|a, b| {
        b.cost()
            .partial_cmp(&a.cost())
            .expect("costs are finite")
            .then(b.coverage.partial_cmp(&a.coverage).expect("finite"))
            .then(a.support.count_ones().cmp(&b.support.count_ones()))
            .then(a.support.cmp(&b.support))
    });
    out
}

/// Deterministic candidate ranking: descending cost, then descending
/// coverage, then smaller subsets, then ascending subset mask.
///
/// `f64::total_cmp` (not `partial_cmp(..).expect(..)`): costs are finite by
/// construction today, but the ordering is load-bearing for candidate
/// selection, and a NaN sneaking in through a future cost tweak must not
/// panic mid-synthesis or destabilize the sort.
fn sort_candidates(out: &mut [TriggerCandidate]) {
    // Insertion sort over a cost cache: a LUT4 search yields ≤ 14
    // candidates (≤ 41 for the 6-var tables the techmap probes), `std`
    // sorts allocate, and recomputing `cost()` per comparison costs a
    // division — at millions of searches per second both are measurable.
    // The comparator is total (`support` is unique per candidate), so the
    // result never depends on the upstream enumeration order.
    debug_assert!(out.len() <= 48, "candidate lists are small by construction");
    let mut costs = [0.0f64; 48];
    for (i, c) in out.iter().enumerate() {
        costs[i] = c.cost();
    }
    for i in 1..out.len() {
        let mut j = i;
        while j > 0 {
            let (a, b) = (&out[j], &out[j - 1]);
            let a_above = costs[j - 1]
                .total_cmp(&costs[j])
                .then(b.coverage.total_cmp(&a.coverage))
                .then(a.support.count_ones().cmp(&b.support.count_ones()))
                .then(a.support.cmp(&b.support))
                .is_lt();
            if !a_above {
                break;
            }
            out.swap(j - 1, j);
            costs.swap(j - 1, j);
            j -= 1;
        }
    }
}

/// Memoization cache for [`search_triggers`], keyed by the master's packed
/// truth-table bits, arity, and its **support-masked** arrival signature
/// (arrivals of vacuous variables never influence the result, so they are
/// normalized to 0 to maximize hit rate).
///
/// One cache serves one netlist transformation; hit statistics are exposed
/// for perf tracking (`BENCH_ee_search.json`).
#[derive(Debug, Clone, Default)]
pub struct TriggerCache {
    map: HashMap<(u64, u8, [u32; 6]), Vec<TriggerCandidate>>,
    hits: u64,
    misses: u64,
}

impl TriggerCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Memoized [`search_triggers`]. The returned slice is owned by the
    /// cache; clone candidates out as needed.
    ///
    /// # Panics
    ///
    /// Panics if `arrivals` is shorter than the master's variable count.
    pub fn search(&mut self, master: &TruthTable, arrivals: &[u32]) -> &[TriggerCandidate] {
        assert!(
            arrivals.len() >= master.num_vars(),
            "need an arrival level per master pin"
        );
        let support = master.support();
        let mut sig = [0u32; 6];
        for v in 0..master.num_vars() {
            if support & (1 << v) != 0 {
                sig[v] = arrivals[v];
            }
        }
        let key = (master.bits(), master.num_vars() as u8, sig);
        match self.map.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.hits += 1;
                e.into_mut().as_slice()
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                self.misses += 1;
                v.insert(search_triggers(master, arrivals)).as_slice()
            }
        }
    }

    /// Number of searches answered from the cache.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of searches computed fresh.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of distinct (function, arrival-signature) classes seen.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.map.len()
    }
}

/// The best candidate (by cost) that actually offers a speedup, if any.
#[must_use]
pub fn best_trigger(master: &TruthTable, arrivals: &[u32]) -> Option<TriggerCandidate> {
    search_triggers(master, arrivals)
        .into_iter()
        .find(TriggerCandidate::offers_speedup)
}

/// Cube-list trigger derivation — the paper's Table 2 procedure.
///
/// Given ON/OFF covers of the master, the candidate trigger cover for
/// `subset` consists of every cube (from either cover) whose literals all
/// lie within the subset; the returned count is the number of master
/// minterms those cubes cover (ON and OFF combined).
///
/// This is the historical formulation; [`search_triggers`] computes the
/// same ON-set exactly from the truth table (the cube method can undercount
/// when the supplied covers split a forced region across cubes — the tests
/// cross-check both).
#[must_use]
pub fn trigger_cover_from_cubes(
    f_on: &CubeList,
    f_off: &CubeList,
    subset: VarSet,
) -> (CubeList, u64) {
    let mut cover = CubeList::new(f_on.width());
    let on_sub = f_on.restricted_to_support(subset);
    let off_sub = f_off.restricted_to_support(subset);
    let covered = on_sub.count_covered() + off_sub.count_covered();
    cover.extend(on_sub);
    cover.extend(off_sub);
    (cover, covered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_boolfn::isop;

    /// The paper's running example: full-adder carry-out `c(a+b) + ab`
    /// with variable order a=0, b=1, c=2.
    fn carry_out() -> TruthTable {
        TruthTable::from_fn(3, |m| {
            let (a, b, c) = (m & 1 != 0, m & 2 != 0, m & 4 != 0);
            (c && (a || b)) || (a && b)
        })
    }

    #[test]
    fn paper_table1_trigger_on_ab() {
        // Table 1: trigger a·b + a'·b' over {a,b}; coverage 4/8 = 50 %.
        let cands = search_triggers(&carry_out(), &[1, 1, 3]);
        let ab = cands
            .iter()
            .find(|c| c.support == 0b011)
            .expect("subset {a,b} searched");
        // trigger(a,b) = 1 iff a == b
        assert_eq!(
            ab.table,
            TruthTable::from_fn(2, |m| (m & 1 != 0) == (m & 2 != 0))
        );
        assert!((ab.coverage - 0.5).abs() < 1e-12);
        // Trigger truth column of Table 1: 1,1,0,0,0,0,1,1 over (a,b,c).
        for m in 0..8u32 {
            let (a, b) = (m & 1, (m >> 1) & 1);
            let expect = a == b;
            assert_eq!(ab.table.eval(a | (b << 1)), expect, "minterm {m}");
        }
    }

    #[test]
    fn paper_table1_best_choice_is_ab() {
        // With the carry-in arriving latest (the adder case), {a,b} must win.
        let best = best_trigger(&carry_out(), &[1, 1, 3]).expect("carry has a trigger");
        assert_eq!(best.support, 0b011);
        assert_eq!(best.m_max, 3);
        assert_eq!(best.t_max, 1);
        assert!((best.cost() - 0.5 * 3.0).abs() < 1e-12);
    }

    #[test]
    fn paper_table2_cube_coverage() {
        // Table 2: master ON = {11-, 1-1, -11}, OFF = {00-, 010, 100};
        // subset {a,b} keeps cubes 11- and 00-, covering 2+2 = 4 minterms.
        let f_on = CubeList::parse(&["11-", "1-1", "-11"]).unwrap();
        let f_off = CubeList::parse(&["00-", "010", "100"]).unwrap();
        let (cover, covered) = trigger_cover_from_cubes(&f_on, &f_off, 0b011);
        assert_eq!(covered, 4);
        let cubes: Vec<String> = cover.iter().map(|c| c.to_string()).collect();
        assert_eq!(cubes, vec!["11-", "00-"]);
        // f_trig = {00-, 11-} == a'b' + ab, matching Table 1's trigger.
        let tt = cover.to_truth_table();
        assert_eq!(tt, TruthTable::from_fn(3, |m| (m & 1 != 0) == (m & 2 != 0)));
    }

    #[test]
    fn cube_method_agrees_with_exact_on_paper_example() {
        let f = carry_out();
        let f_on = isop(&f, &f);
        let neg = !f;
        let f_off = isop(&neg, &neg);
        let (_, covered) = trigger_cover_from_cubes(&f_on, &f_off, 0b011);
        let cands = search_triggers(&f, &[0, 0, 0]);
        let exact = cands.iter().find(|c| c.support == 0b011).unwrap();
        assert_eq!(covered as f64 / 8.0, exact.coverage);
    }

    #[test]
    fn all_14_subsets_searched_for_lut4() {
        // A 4-var function with full support: xor4 has no trigger (no
        // subset forces it), majority-like functions do.
        let xor4 = TruthTable::from_fn(4, |m| m.count_ones() % 2 == 1);
        assert!(search_triggers(&xor4, &[1, 1, 1, 1]).is_empty());

        let maj_ish = TruthTable::from_fn(4, |m| m.count_ones() >= 2);
        let cands = search_triggers(&maj_ish, &[1, 1, 1, 1]);
        // every candidate's support is a proper subset of 4 vars, ≤ 3 wide
        for c in &cands {
            assert!(c.support.count_ones() <= 3);
            assert_ne!(c.support, 0b1111);
            assert!(c.coverage > 0.0 && c.coverage < 1.0);
        }
        // subsets of 2+ ones can force majority-of-4 (e.g. two ones + two
        // more inputs can't flip below threshold when 3 are set)
        assert!(!cands.is_empty());
    }

    #[test]
    fn trigger_soundness_sampled() {
        // For every candidate: trigger=1 on an assignment ⇒ master forced.
        let mut x: u64 = 0x1234_5678_9ABC_DEF0;
        for _ in 0..100 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let master = TruthTable::from_bits(4, x & 0xFFFF);
            for cand in search_triggers(&master, &[1, 2, 3, 4]) {
                let k = cand.support.count_ones();
                for asg in 0..(1u32 << k) {
                    if cand.table.eval(asg) {
                        assert!(
                            master.forced_value(cand.support, asg).is_some(),
                            "unsound trigger for master {master:?} subset {:#b}",
                            cand.support
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cost_weighs_arrival_ratio() {
        // Same function, but now a and b are the LATE inputs: the {a,b}
        // trigger loses its appeal vs subsets containing c.
        let f = carry_out();
        let slow_ab = search_triggers(&f, &[5, 5, 1]);
        let ab = slow_ab.iter().find(|c| c.support == 0b011).unwrap();
        assert_eq!(ab.t_max, 5);
        assert!(!ab.offers_speedup());
        assert!(best_trigger(&f, &[5, 5, 1]).is_none() || ab.support != 0b011);
    }

    #[test]
    fn zero_arrival_cost_is_clamped() {
        let f = carry_out();
        let cands = search_triggers(&f, &[0, 0, 0]);
        for c in &cands {
            assert!(c.cost().is_finite());
        }
    }

    #[test]
    fn constant_and_single_var_masters_have_no_triggers() {
        assert!(search_triggers(&TruthTable::zero(4), &[1; 4]).is_empty());
        assert!(search_triggers(&TruthTable::var(4, 2), &[1; 4]).is_empty());
    }

    #[test]
    fn candidates_sorted_by_cost() {
        let f = carry_out();
        let cands = search_triggers(&f, &[1, 2, 4]);
        for w in cands.windows(2) {
            assert!(w[0].cost() >= w[1].cost());
        }
    }

    /// The word-parallel search must agree candidate-for-candidate with the
    /// per-assignment baseline on random tables of every supported arity.
    #[test]
    fn word_parallel_matches_baseline() {
        let mut x: u64 = 0xD1FF_5EED_0BAD_F00D;
        for arity in 2..=6usize {
            let arrivals: Vec<u32> = (0..arity as u32).map(|v| (v * 7) % 5).collect();
            for _ in 0..200 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let master = TruthTable::from_bits(arity, x);
                assert_eq!(
                    search_triggers(&master, &arrivals),
                    search_triggers_baseline(&master, &arrivals),
                    "diverged for {master:?}"
                );
            }
        }
    }

    /// The memo cache returns results identical to the direct search, and
    /// actually hits on repeated LUT classes.
    #[test]
    fn cache_matches_direct_search_and_hits() {
        let mut cache = TriggerCache::new();
        let mut x: u64 = 0xCAC4E_u64;
        let arrivals = [1u32, 2, 3, 4];
        let mut tables = Vec::new();
        for _ in 0..64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            tables.push(TruthTable::from_bits(4, x & 0xFFFF));
        }
        for t in &tables {
            assert_eq!(
                cache.search(t, &arrivals),
                search_triggers(t, &arrivals).as_slice()
            );
        }
        let misses_after_first_pass = cache.misses();
        for t in &tables {
            assert_eq!(
                cache.search(t, &arrivals),
                search_triggers(t, &arrivals).as_slice()
            );
        }
        assert_eq!(
            cache.misses(),
            misses_after_first_pass,
            "second pass must hit"
        );
        assert!(cache.hits() >= tables.len() as u64);
        assert!(cache.classes() as u64 == misses_after_first_pass);
    }

    /// Arrivals of vacuous variables must not fragment the cache key.
    #[test]
    fn cache_normalizes_vacuous_arrivals() {
        // f depends on {0, 2} only.
        let f = TruthTable::var(4, 0) & TruthTable::var(4, 2);
        let mut cache = TriggerCache::new();
        let a = cache.search(&f, &[1, 9, 3, 9]).to_vec();
        let b = cache.search(&f, &[1, 0, 3, 5]).to_vec();
        assert_eq!(a, b);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }
}
