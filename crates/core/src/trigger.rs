//! Trigger-function search and the paper's cost function (Equation 1).
//!
//! For a master LUT4 function `f`, a *trigger* over a support subset `S` of
//! the master's inputs fires (evaluates to 1) exactly on the assignments to
//! `S` that force `f`'s output regardless of the remaining inputs. Each
//! time the trigger is 1, the master "can go ahead and evaluate even if
//! \[the other inputs have\] not arrived since \[their\] value is a don't care
//! in these cases" (paper §3, Table 1).
//!
//! The search is exhaustive over all support subsets of three or fewer
//! variables — for a full LUT4, the paper's "14 possible support sets".
//! Candidates are ranked by
//!
//! ```text
//! Cost = %Coverage × (Mmax / Tmax)                       (Equation 1)
//! ```
//!
//! where `%Coverage` is the fraction of the master's minterms (ON and OFF)
//! forced by the subset, and `Mmax`/`Tmax` are the worst-case arrival times
//! of the master's/trigger's input signals in PL-gate levels.

use pl_boolfn::{support_subsets, CubeList, TruthTable, VarSet};

/// One candidate trigger function for a master gate.
#[derive(Debug, Clone, PartialEq)]
pub struct TriggerCandidate {
    /// The support subset, as a bit mask over the master's pins.
    pub support: VarSet,
    /// The trigger function over the subset variables (variable `k` of this
    /// table is the `k`-th lowest set bit of `support`).
    pub table: TruthTable,
    /// Fraction of master minterms (both ON and OFF) covered, in `[0, 1]`.
    pub coverage: f64,
    /// Worst-case arrival level among the master's support inputs.
    pub m_max: u32,
    /// Worst-case arrival level among the trigger's (subset) inputs.
    pub t_max: u32,
}

impl TriggerCandidate {
    /// The paper's Equation 1: `%Coverage × Mmax / Tmax`.
    ///
    /// Arrival levels of zero are clamped to one so that signals arriving
    /// straight from primary inputs (level 0) do not divide by zero; the
    /// ratio still rewards triggers whose inputs arrive earlier than the
    /// master's slowest input.
    #[must_use]
    pub fn cost(&self) -> f64 {
        self.coverage * f64::from(self.m_max.max(1)) / f64::from(self.t_max.max(1))
    }

    /// Whether this trigger can produce a speedup at all: some input of the
    /// master arrives strictly later than every trigger input.
    #[must_use]
    pub fn offers_speedup(&self) -> bool {
        self.t_max < self.m_max
    }
}

/// Searches all support subsets of ≤ `3` variables of `master`'s true
/// support for trigger candidates, returning them sorted by descending
/// [`TriggerCandidate::cost`] (ties: larger coverage, then smaller subset).
///
/// `arrivals[i]` is the arrival level of master pin `i` (see
/// [`crate::PlNetlist::pin_arrivals`]). Subsets equal to the full true
/// support are excluded — triggering on *all* inputs is ordinary firing.
///
/// # Panics
///
/// Panics if `arrivals` is shorter than the master's variable count.
#[must_use]
pub fn search_triggers(master: &TruthTable, arrivals: &[u32]) -> Vec<TriggerCandidate> {
    assert!(
        arrivals.len() >= master.num_vars(),
        "need an arrival level per master pin"
    );
    let support = master.support();
    let support_size = support.count_ones();
    if support_size < 2 {
        return Vec::new();
    }
    let m_max = (0..master.num_vars())
        .filter(|&v| support & (1 << v) != 0)
        .map(|v| arrivals[v])
        .max()
        .unwrap_or(0);
    let total = f64::from(1u32 << support_size);

    let mut out = Vec::new();
    for subset in support_subsets(support, 3) {
        if subset == support {
            continue; // proper subsets only
        }
        let k = subset.count_ones();
        let mut trig_bits = 0u64;
        let mut forced = 0u32;
        for asg in 0..(1u32 << k) {
            if master.forced_value(subset, asg).is_some() {
                trig_bits |= 1 << asg;
                forced += 1;
            }
        }
        if forced == 0 {
            continue;
        }
        // Each forced assignment covers all minterms of the non-subset
        // support variables.
        let covered = u64::from(forced) << (support_size - k);
        let coverage = covered as f64 / total;
        let t_max = (0..master.num_vars())
            .filter(|&v| subset & (1 << v) != 0)
            .map(|v| arrivals[v])
            .max()
            .unwrap_or(0);
        out.push(TriggerCandidate {
            support: subset,
            table: TruthTable::from_bits(k as usize, trig_bits),
            coverage,
            m_max,
            t_max,
        });
    }
    out.sort_by(|a, b| {
        b.cost()
            .partial_cmp(&a.cost())
            .expect("costs are finite")
            .then(b.coverage.partial_cmp(&a.coverage).expect("finite"))
            .then(a.support.count_ones().cmp(&b.support.count_ones()))
            .then(a.support.cmp(&b.support))
    });
    out
}

/// The best candidate (by cost) that actually offers a speedup, if any.
#[must_use]
pub fn best_trigger(master: &TruthTable, arrivals: &[u32]) -> Option<TriggerCandidate> {
    search_triggers(master, arrivals)
        .into_iter()
        .find(TriggerCandidate::offers_speedup)
}

/// Cube-list trigger derivation — the paper's Table 2 procedure.
///
/// Given ON/OFF covers of the master, the candidate trigger cover for
/// `subset` consists of every cube (from either cover) whose literals all
/// lie within the subset; the returned count is the number of master
/// minterms those cubes cover (ON and OFF combined).
///
/// This is the historical formulation; [`search_triggers`] computes the
/// same ON-set exactly from the truth table (the cube method can undercount
/// when the supplied covers split a forced region across cubes — the tests
/// cross-check both).
#[must_use]
pub fn trigger_cover_from_cubes(
    f_on: &CubeList,
    f_off: &CubeList,
    subset: VarSet,
) -> (CubeList, u64) {
    let mut cover = CubeList::new(f_on.width());
    let on_sub = f_on.restricted_to_support(subset);
    let off_sub = f_off.restricted_to_support(subset);
    let covered = on_sub.count_covered() + off_sub.count_covered();
    cover.extend(on_sub);
    cover.extend(off_sub);
    (cover, covered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_boolfn::isop;

    /// The paper's running example: full-adder carry-out `c(a+b) + ab`
    /// with variable order a=0, b=1, c=2.
    fn carry_out() -> TruthTable {
        TruthTable::from_fn(3, |m| {
            let (a, b, c) = (m & 1 != 0, m & 2 != 0, m & 4 != 0);
            (c && (a || b)) || (a && b)
        })
    }

    #[test]
    fn paper_table1_trigger_on_ab() {
        // Table 1: trigger a·b + a'·b' over {a,b}; coverage 4/8 = 50 %.
        let cands = search_triggers(&carry_out(), &[1, 1, 3]);
        let ab = cands.iter().find(|c| c.support == 0b011).expect("subset {a,b} searched");
        // trigger(a,b) = 1 iff a == b
        assert_eq!(ab.table, TruthTable::from_fn(2, |m| (m & 1 != 0) == (m & 2 != 0)));
        assert!((ab.coverage - 0.5).abs() < 1e-12);
        // Trigger truth column of Table 1: 1,1,0,0,0,0,1,1 over (a,b,c).
        for m in 0..8u32 {
            let (a, b) = (m & 1, (m >> 1) & 1);
            let expect = a == b;
            assert_eq!(ab.table.eval(a | (b << 1)), expect, "minterm {m}");
        }
    }

    #[test]
    fn paper_table1_best_choice_is_ab() {
        // With the carry-in arriving latest (the adder case), {a,b} must win.
        let best = best_trigger(&carry_out(), &[1, 1, 3]).expect("carry has a trigger");
        assert_eq!(best.support, 0b011);
        assert_eq!(best.m_max, 3);
        assert_eq!(best.t_max, 1);
        assert!((best.cost() - 0.5 * 3.0).abs() < 1e-12);
    }

    #[test]
    fn paper_table2_cube_coverage() {
        // Table 2: master ON = {11-, 1-1, -11}, OFF = {00-, 010, 100};
        // subset {a,b} keeps cubes 11- and 00-, covering 2+2 = 4 minterms.
        let f_on = CubeList::parse(&["11-", "1-1", "-11"]).unwrap();
        let f_off = CubeList::parse(&["00-", "010", "100"]).unwrap();
        let (cover, covered) = trigger_cover_from_cubes(&f_on, &f_off, 0b011);
        assert_eq!(covered, 4);
        let cubes: Vec<String> = cover.iter().map(|c| c.to_string()).collect();
        assert_eq!(cubes, vec!["11-", "00-"]);
        // f_trig = {00-, 11-} == a'b' + ab, matching Table 1's trigger.
        let tt = cover.to_truth_table();
        assert_eq!(tt, TruthTable::from_fn(3, |m| (m & 1 != 0) == (m & 2 != 0)));
    }

    #[test]
    fn cube_method_agrees_with_exact_on_paper_example() {
        let f = carry_out();
        let f_on = isop(&f, &f);
        let neg = !f;
        let f_off = isop(&neg, &neg);
        let (_, covered) = trigger_cover_from_cubes(&f_on, &f_off, 0b011);
        let cands = search_triggers(&f, &[0, 0, 0]);
        let exact = cands.iter().find(|c| c.support == 0b011).unwrap();
        assert_eq!(covered as f64 / 8.0, exact.coverage);
    }

    #[test]
    fn all_14_subsets_searched_for_lut4() {
        // A 4-var function with full support: xor4 has no trigger (no
        // subset forces it), majority-like functions do.
        let xor4 = TruthTable::from_fn(4, |m| m.count_ones() % 2 == 1);
        assert!(search_triggers(&xor4, &[1, 1, 1, 1]).is_empty());

        let maj_ish = TruthTable::from_fn(4, |m| m.count_ones() >= 2);
        let cands = search_triggers(&maj_ish, &[1, 1, 1, 1]);
        // every candidate's support is a proper subset of 4 vars, ≤ 3 wide
        for c in &cands {
            assert!(c.support.count_ones() <= 3);
            assert_ne!(c.support, 0b1111);
            assert!(c.coverage > 0.0 && c.coverage < 1.0);
        }
        // subsets of 2+ ones can force majority-of-4 (e.g. two ones + two
        // more inputs can't flip below threshold when 3 are set)
        assert!(!cands.is_empty());
    }

    #[test]
    fn trigger_soundness_sampled() {
        // For every candidate: trigger=1 on an assignment ⇒ master forced.
        let mut x: u64 = 0x1234_5678_9ABC_DEF0;
        for _ in 0..100 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let master = TruthTable::from_bits(4, x & 0xFFFF);
            for cand in search_triggers(&master, &[1, 2, 3, 4]) {
                let k = cand.support.count_ones();
                for asg in 0..(1u32 << k) {
                    if cand.table.eval(asg) {
                        assert!(
                            master.forced_value(cand.support, asg).is_some(),
                            "unsound trigger for master {master:?} subset {:#b}",
                            cand.support
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cost_weighs_arrival_ratio() {
        // Same function, but now a and b are the LATE inputs: the {a,b}
        // trigger loses its appeal vs subsets containing c.
        let f = carry_out();
        let slow_ab = search_triggers(&f, &[5, 5, 1]);
        let ab = slow_ab.iter().find(|c| c.support == 0b011).unwrap();
        assert_eq!(ab.t_max, 5);
        assert!(!ab.offers_speedup());
        assert!(best_trigger(&f, &[5, 5, 1]).is_none() || ab.support != 0b011);
    }

    #[test]
    fn zero_arrival_cost_is_clamped() {
        let f = carry_out();
        let cands = search_triggers(&f, &[0, 0, 0]);
        for c in &cands {
            assert!(c.cost().is_finite());
        }
    }

    #[test]
    fn constant_and_single_var_masters_have_no_triggers() {
        assert!(search_triggers(&TruthTable::zero(4), &[1; 4]).is_empty());
        assert!(search_triggers(&TruthTable::var(4, 2), &[1; 4]).is_empty());
    }

    #[test]
    fn candidates_sorted_by_cost() {
        let f = carry_out();
        let cands = search_triggers(&f, &[1, 2, 4]);
        for w in cands.windows(2) {
            assert!(w[0].cost() >= w[1].cost());
        }
    }
}
