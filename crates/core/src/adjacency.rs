//! Flat (CSR-style) adjacency and pin-map layer over a [`PlNetlist`].
//!
//! [`PlNetlist`] stores arcs per gate as `Vec<PlArcId>`s that are convenient
//! to build incrementally but slow to consult inside a hot simulation loop:
//! finding "the arc on pin 2" is a linear scan, and the per-gate `Vec`s
//! scatter across the heap. [`PlAdjacency`] freezes a netlist's topology
//! into contiguous arrays sliced per gate:
//!
//! * data-in arcs **indexed by pin** ([`PlAdjacency::pin_arc`] — `O(1)`
//!   pin→arc lookup, `NO_ARC` for constant-tied pins),
//! * control-in arcs,
//! * out-arcs **split** into value-carrying (data + efire) and acknowledge
//!   lists, so a producer walks exactly the arcs it must mark,
//! * per-gate readiness masks ([`PlAdjacency::data_full_mask`],
//!   [`PlAdjacency::subset_mask`]) for bitset-based firing checks, and
//! * the folded constant-pin contribution to the LUT minterm index.
//!
//! The simulator (`pl-sim`) builds one `PlAdjacency` per netlist at
//! construction and never scans or allocates to find an arc afterwards.

use crate::gate::{PlArcKind, PlGateKind};
use crate::netlist::PlNetlist;

/// Sentinel for "no arc drives this pin" (the pin is constant-tied).
pub const NO_ARC: u32 = u32::MAX;

/// Frozen flat adjacency of one [`PlNetlist`] (see the module docs).
///
/// All arrays are indexed by raw gate/arc indices; slices of the per-gate
/// CSR arrays are obtained through the accessor methods.
#[derive(Debug, Clone)]
pub struct PlAdjacency {
    n_gates: usize,
    // CSR: value-carrying out-arcs (data + efire), then ack out-arcs.
    out_val_off: Vec<u32>,
    out_val: Vec<u32>,
    out_ack_off: Vec<u32>,
    out_ack: Vec<u32>,
    // CSR pin map: per gate, one entry per pin; NO_ARC for const pins.
    pin_off: Vec<u32>,
    pin_arc: Vec<u32>,
    // Per-arc destination pin (`u8::MAX` for control arcs) and source/dst.
    arc_src: Vec<u32>,
    arc_dst: Vec<u32>,
    arc_dst_pin: Vec<u8>,
    arc_kind: Vec<PlArcKind>,
    // Per-gate readiness masks over pin bits.
    data_full_mask: Vec<u8>,
    subset_mask: Vec<u8>,
    // Constant-pin folding: OR these bits into the LUT minterm index.
    const_value_bits: Vec<u8>,
    const_pin_mask: Vec<u8>,
    // CSR: acknowledge in-arcs per gate (efire excluded).
    ack_in_off: Vec<u32>,
    ack_in: Vec<u32>,
    // Efire in-arc per gate (EE masters only), else NO_ARC.
    efire_arc: Vec<u32>,
    // LUT bits per gate (registers get the identity table); 0 for IO gates.
    eval_bits: Vec<u64>,
    // Compact per-gate dispatch class (avoids touching the fat PlGate
    // structs — and their String payloads — in the simulator's hot loop).
    gate_class: Vec<GateClass>,
    // Output-port slot per gate (index into `PlNetlist::output_gates`),
    // NO_ARC for non-outputs.
    output_slot: Vec<u32>,
}

/// Compact firing-rule class of a gate (a cache-friendly projection of
/// [`PlGateKind`] for the simulator's dispatch loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum GateClass {
    /// Tied-off constant: never fires.
    Constant,
    /// Environment source.
    Input,
    /// Environment sink.
    Output,
    /// Compute or register gate (LUT semantics; EE-ness is signalled by
    /// [`PlAdjacency::efire_arc`]).
    Logic,
}

impl PlAdjacency {
    /// Freezes `pl`'s topology. Cost is `O(gates + arcs)`.
    #[must_use]
    pub fn new(pl: &PlNetlist) -> Self {
        let n = pl.gates().len();
        let arcs = pl.arcs();

        let mut adj = Self {
            n_gates: n,
            out_val_off: vec![0; n + 1],
            out_val: Vec::new(),
            out_ack_off: vec![0; n + 1],
            out_ack: Vec::new(),
            pin_off: vec![0; n + 1],
            pin_arc: Vec::new(),
            arc_src: arcs.iter().map(|a| a.src().index() as u32).collect(),
            arc_dst: arcs.iter().map(|a| a.dst().index() as u32).collect(),
            arc_dst_pin: arcs
                .iter()
                .map(|a| a.dst_pin().unwrap_or(u8::MAX))
                .collect(),
            arc_kind: arcs.iter().map(crate::gate::PlArc::kind).collect(),
            data_full_mask: vec![0; n],
            subset_mask: vec![0; n],
            const_value_bits: vec![0; n],
            const_pin_mask: vec![0; n],
            ack_in_off: vec![0; n + 1],
            ack_in: Vec::new(),
            efire_arc: vec![NO_ARC; n],
            eval_bits: vec![0; n],
            gate_class: pl
                .gates()
                .iter()
                .map(|g| match g.kind() {
                    PlGateKind::Constant { .. } => GateClass::Constant,
                    PlGateKind::Input { .. } => GateClass::Input,
                    PlGateKind::Output { .. } => GateClass::Output,
                    PlGateKind::Compute { .. } | PlGateKind::Register { .. } => GateClass::Logic,
                })
                .collect(),
            output_slot: vec![NO_ARC; n],
        };
        for (slot, (_, og)) in pl.output_gates().iter().enumerate() {
            adj.output_slot[og.index()] = slot as u32;
        }

        // Counting pass for the CSR offsets.
        for a in arcs {
            let src = a.src().index();
            if matches!(a.kind(), PlArcKind::Data | PlArcKind::Efire) {
                adj.out_val_off[src + 1] += 1;
            } else {
                adj.out_ack_off[src + 1] += 1;
            }
            if a.kind() == PlArcKind::Ack {
                adj.ack_in_off[a.dst().index() + 1] += 1;
            }
        }
        for i in 0..n {
            adj.out_val_off[i + 1] += adj.out_val_off[i];
            adj.out_ack_off[i + 1] += adj.out_ack_off[i];
            adj.ack_in_off[i + 1] += adj.ack_in_off[i];
            adj.pin_off[i + 1] = adj.pin_off[i] + pl.gates()[i].const_pins().len() as u32;
        }
        adj.out_val = vec![0; adj.out_val_off[n] as usize];
        adj.out_ack = vec![0; adj.out_ack_off[n] as usize];
        adj.ack_in = vec![0; adj.ack_in_off[n] as usize];
        adj.pin_arc = vec![NO_ARC; adj.pin_off[n] as usize];

        // Filling pass. Arc ids ascend within each gate's slice, keeping
        // production order identical to the `Vec<PlArcId>` representation.
        let mut val_cursor: Vec<u32> = adj.out_val_off[..n].to_vec();
        let mut ack_cursor: Vec<u32> = adj.out_ack_off[..n].to_vec();
        let mut ack_in_cursor: Vec<u32> = adj.ack_in_off[..n].to_vec();
        for (i, a) in arcs.iter().enumerate() {
            let src = a.src().index();
            if matches!(a.kind(), PlArcKind::Data | PlArcKind::Efire) {
                adj.out_val[val_cursor[src] as usize] = i as u32;
                val_cursor[src] += 1;
            } else {
                adj.out_ack[ack_cursor[src] as usize] = i as u32;
                ack_cursor[src] += 1;
            }
            let dst = a.dst().index();
            match a.kind() {
                PlArcKind::Data => {
                    let pin = a.dst_pin().expect("data arcs carry a pin");
                    let slot = adj.pin_off[dst] + u32::from(pin);
                    debug_assert_eq!(
                        adj.pin_arc[slot as usize], NO_ARC,
                        "two data arcs drive gate {dst} pin {pin}"
                    );
                    adj.pin_arc[slot as usize] = i as u32;
                    adj.data_full_mask[dst] |= 1 << pin;
                }
                PlArcKind::Ack => {
                    adj.ack_in[ack_in_cursor[dst] as usize] = i as u32;
                    ack_in_cursor[dst] += 1;
                }
                PlArcKind::Efire => {}
            }
        }

        for (i, gate) in pl.gates().iter().enumerate() {
            for (pin, cv) in gate.const_pins().iter().enumerate() {
                if let Some(v) = cv {
                    adj.const_pin_mask[i] |= 1 << pin;
                    if *v {
                        adj.const_value_bits[i] |= 1 << pin;
                    }
                }
            }
            if let Some(ee) = gate.ee() {
                adj.efire_arc[i] = ee.efire_arc.index() as u32;
                for &pin in &ee.subset_pins {
                    adj.subset_mask[i] |= 1 << pin;
                }
            }
            if let Some(table) = gate.table() {
                adj.eval_bits[i] = table.bits();
            }
            debug_assert!(
                !matches!(
                    gate.kind(),
                    PlGateKind::Compute { .. } | PlGateKind::Register { .. }
                ) || gate.const_pins().len() <= 8,
                "pin masks are u8-wide"
            );
        }
        adj
    }

    /// Number of gates covered.
    #[must_use]
    pub fn num_gates(&self) -> usize {
        self.n_gates
    }

    /// Value-carrying (data + efire) out-arc ids of gate `g`.
    #[must_use]
    pub fn out_value_arcs(&self, g: usize) -> &[u32] {
        &self.out_val[self.out_val_off[g] as usize..self.out_val_off[g + 1] as usize]
    }

    /// Acknowledge out-arc ids of gate `g`.
    #[must_use]
    pub fn out_ack_arcs(&self, g: usize) -> &[u32] {
        &self.out_ack[self.out_ack_off[g] as usize..self.out_ack_off[g + 1] as usize]
    }

    /// Per-pin driving arc of gate `g` ([`NO_ARC`] for constant pins).
    #[must_use]
    pub fn pin_arcs(&self, g: usize) -> &[u32] {
        &self.pin_arc[self.pin_off[g] as usize..self.pin_off[g + 1] as usize]
    }

    /// The arc driving pin `pin` of gate `g`, or [`NO_ARC`].
    #[must_use]
    pub fn pin_arc(&self, g: usize, pin: u8) -> u32 {
        self.pin_arc[self.pin_off[g] as usize + pin as usize]
    }

    /// Source gate index of arc `a`.
    #[must_use]
    pub fn arc_src(&self, a: usize) -> u32 {
        self.arc_src[a]
    }

    /// Destination gate index of arc `a`.
    #[must_use]
    pub fn arc_dst(&self, a: usize) -> u32 {
        self.arc_dst[a]
    }

    /// Destination pin of arc `a` (`u8::MAX` for control arcs).
    #[must_use]
    pub fn arc_dst_pin(&self, a: usize) -> u8 {
        self.arc_dst_pin[a]
    }

    /// Kind of arc `a`.
    #[must_use]
    pub fn arc_kind(&self, a: usize) -> PlArcKind {
        self.arc_kind[a]
    }

    /// Bit mask of gate `g`'s arc-driven pins (full data readiness).
    #[must_use]
    pub fn data_full_mask(&self, g: usize) -> u8 {
        self.data_full_mask[g]
    }

    /// Bit mask of an EE master's trigger-subset pins (0 for non-masters).
    #[must_use]
    pub fn subset_mask(&self, g: usize) -> u8 {
        self.subset_mask[g]
    }

    /// Constant-pin value bits of gate `g`, positioned at their pins.
    #[must_use]
    pub fn const_value_bits(&self, g: usize) -> u8 {
        self.const_value_bits[g]
    }

    /// Bit mask of gate `g`'s constant-tied pins.
    #[must_use]
    pub fn const_pin_mask(&self, g: usize) -> u8 {
        self.const_pin_mask[g]
    }

    /// Acknowledge in-arc ids of gate `g` (efire excluded).
    #[must_use]
    pub fn ack_in_arcs(&self, g: usize) -> &[u32] {
        &self.ack_in[self.ack_in_off[g] as usize..self.ack_in_off[g + 1] as usize]
    }

    /// Number of acknowledge in-arcs of gate `g` (efire excluded).
    #[must_use]
    pub fn ack_in_count(&self, g: usize) -> u32 {
        self.ack_in_off[g + 1] - self.ack_in_off[g]
    }

    /// The efire in-arc of EE master `g`, or [`NO_ARC`].
    #[must_use]
    pub fn efire_arc(&self, g: usize) -> u32 {
        self.efire_arc[g]
    }

    /// Raw LUT bits of logic gate `g` (identity for registers, 0 for IO).
    #[must_use]
    pub fn eval_bits(&self, g: usize) -> u64 {
        self.eval_bits[g]
    }

    /// Compact dispatch class of gate `g`.
    #[must_use]
    pub fn gate_class(&self, g: usize) -> GateClass {
        self.gate_class[g]
    }

    /// Output-port slot of gate `g` (its index in
    /// `PlNetlist::output_gates`), or [`NO_ARC`] for non-output gates.
    #[must_use]
    pub fn output_slot(&self, g: usize) -> u32 {
        self.output_slot[g]
    }
}

impl PlNetlist {
    /// Freezes this netlist's topology into a [`PlAdjacency`].
    #[must_use]
    pub fn adjacency(&self) -> PlAdjacency {
        PlAdjacency::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ee::EeOptions;
    use pl_boolfn::TruthTable;
    use pl_netlist::Netlist;

    fn adder(bits: usize) -> PlNetlist {
        let mut n = Netlist::new("rca");
        let a: Vec<_> = (0..bits).map(|i| n.add_input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..bits).map(|i| n.add_input(format!("b{i}"))).collect();
        let mut carry = n.add_const(false);
        for i in 0..bits {
            let sum_t = TruthTable::from_fn(3, |m| m.count_ones() % 2 == 1);
            let cry_t = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
            let s = n.add_lut(sum_t, vec![a[i], b[i], carry]).unwrap();
            let c = n.add_lut(cry_t, vec![a[i], b[i], carry]).unwrap();
            n.set_output(format!("s{i}"), s);
            carry = c;
        }
        n.set_output("cout", carry);
        PlNetlist::from_sync(&n).unwrap()
    }

    /// The flat layer must agree arc-for-arc with the `Vec` representation.
    #[test]
    fn adjacency_matches_netlist_vectors() {
        for pl in [
            adder(4),
            adder(4)
                .with_early_evaluation(&EeOptions::default())
                .into_netlist(),
        ] {
            let adj = pl.adjacency();
            assert_eq!(adj.num_gates(), pl.gates().len());
            for (g, gate) in pl.gates().iter().enumerate() {
                let vals: Vec<u32> = gate
                    .out_arcs()
                    .iter()
                    .filter(|a| matches!(pl.arc(**a).kind(), PlArcKind::Data | PlArcKind::Efire))
                    .map(|a| a.index() as u32)
                    .collect();
                let acks: Vec<u32> = gate
                    .out_arcs()
                    .iter()
                    .filter(|a| pl.arc(**a).kind() == PlArcKind::Ack)
                    .map(|a| a.index() as u32)
                    .collect();
                assert_eq!(adj.out_value_arcs(g), vals.as_slice());
                assert_eq!(adj.out_ack_arcs(g), acks.as_slice());
                assert_eq!(
                    adj.ack_in_count(g) as usize,
                    gate.control_in()
                        .iter()
                        .filter(|a| pl.arc(**a).kind() == PlArcKind::Ack)
                        .count()
                );
                // Pin map: every live pin's arc, every const pin NO_ARC.
                for (pin, cv) in gate.const_pins().iter().enumerate() {
                    let expected = gate
                        .data_in()
                        .iter()
                        .find(|a| pl.arc(**a).dst_pin() == Some(pin as u8))
                        .map(|a| a.index() as u32);
                    match cv {
                        Some(v) => {
                            assert_eq!(adj.pin_arc(g, pin as u8), NO_ARC);
                            assert_ne!(adj.const_pin_mask(g) & (1 << pin), 0);
                            assert_eq!(adj.const_value_bits(g) & (1 << pin) != 0, *v);
                        }
                        None => {
                            assert_eq!(Some(adj.pin_arc(g, pin as u8)), expected);
                            assert_eq!(adj.data_full_mask(g) & (1 << pin), 1 << pin);
                        }
                    }
                }
                if let Some(ee) = gate.ee() {
                    assert_eq!(adj.efire_arc(g), ee.efire_arc.index() as u32);
                    for &p in &ee.subset_pins {
                        assert_ne!(adj.subset_mask(g) & (1 << p), 0);
                    }
                } else {
                    assert_eq!(adj.efire_arc(g), NO_ARC);
                    assert_eq!(adj.subset_mask(g), 0);
                }
                if let Some(t) = gate.table() {
                    assert_eq!(adj.eval_bits(g), t.bits());
                }
            }
        }
    }
}
