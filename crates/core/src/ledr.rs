//! Level-Encoded Dual-Rail (LEDR) signal encoding.
//!
//! A LEDR signal carries its logic value on the `v` rail and a *timing* bit
//! on the `t` rail; the **phase** of the signal is `v ⊕ t`. Each new data
//! token toggles the phase (even → odd → even …) while exactly one rail
//! changes per token, giving a two-phase, transition-signalling protocol
//! with no return-to-zero spacer (Dean/Williams/Dill 1991; paper §2).

use std::fmt;
use std::ops::Not;

/// The phase of a token or gate: even (`p = 0`) or odd (`p = 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Phase {
    /// Phase bit 0.
    #[default]
    Even,
    /// Phase bit 1.
    Odd,
}

impl Phase {
    /// The phase as the paper's `p = v ⊕ t` bit.
    #[must_use]
    pub fn bit(self) -> bool {
        matches!(self, Phase::Odd)
    }

    /// Builds a phase from its bit.
    #[must_use]
    pub fn from_bit(bit: bool) -> Self {
        if bit {
            Phase::Odd
        } else {
            Phase::Even
        }
    }

    /// The opposite phase.
    #[must_use]
    pub fn toggled(self) -> Self {
        match self {
            Phase::Even => Phase::Odd,
            Phase::Odd => Phase::Even,
        }
    }
}

impl Not for Phase {
    type Output = Phase;
    fn not(self) -> Phase {
        self.toggled()
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Even => write!(f, "even"),
            Phase::Odd => write!(f, "odd"),
        }
    }
}

/// One LEDR-encoded signal: value rail `v` and timing rail `t`.
///
/// # Example
///
/// ```
/// use pl_core::{LedrSignal, Phase};
///
/// let s = LedrSignal::with_phase(true, Phase::Even);
/// let s2 = s.next_token(false); // transmit a new value
/// assert_eq!(s2.phase(), Phase::Odd);
/// assert_eq!(s2.value(), false);
/// // exactly one rail toggled
/// let flips = u8::from(s.v() != s2.v()) + u8::from(s.t() != s2.t());
/// assert_eq!(flips, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LedrSignal {
    v: bool,
    t: bool,
}

impl LedrSignal {
    /// Builds a signal from raw rails.
    #[must_use]
    pub fn new(v: bool, t: bool) -> Self {
        Self { v, t }
    }

    /// Builds a signal carrying `value` at the given `phase`
    /// (choosing `t = v ⊕ p`).
    #[must_use]
    pub fn with_phase(value: bool, phase: Phase) -> Self {
        Self {
            v: value,
            t: value ^ phase.bit(),
        }
    }

    /// The value rail (the logic value, as in a single-rail system).
    #[must_use]
    pub fn v(self) -> bool {
        self.v
    }

    /// The timing rail.
    #[must_use]
    pub fn t(self) -> bool {
        self.t
    }

    /// The logic value carried by the token.
    #[must_use]
    pub fn value(self) -> bool {
        self.v
    }

    /// The phase `p = v ⊕ t`.
    #[must_use]
    pub fn phase(self) -> Phase {
        Phase::from_bit(self.v ^ self.t)
    }

    /// Encodes the next data token carrying `value`: the phase toggles and
    /// exactly one rail changes.
    #[must_use]
    pub fn next_token(self, value: bool) -> Self {
        Self::with_phase(value, self.phase().toggled())
    }
}

impl fmt::Display for LedrSignal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", u8::from(self.v), self.phase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_is_v_xor_t() {
        assert_eq!(LedrSignal::new(false, false).phase(), Phase::Even);
        assert_eq!(LedrSignal::new(true, true).phase(), Phase::Even);
        assert_eq!(LedrSignal::new(true, false).phase(), Phase::Odd);
        assert_eq!(LedrSignal::new(false, true).phase(), Phase::Odd);
    }

    #[test]
    fn with_phase_sets_both() {
        for &value in &[false, true] {
            for &phase in &[Phase::Even, Phase::Odd] {
                let s = LedrSignal::with_phase(value, phase);
                assert_eq!(s.value(), value);
                assert_eq!(s.phase(), phase);
            }
        }
    }

    #[test]
    fn next_token_toggles_phase_and_moves_one_rail() {
        let mut s = LedrSignal::with_phase(false, Phase::Even);
        let values = [true, true, false, true, false, false, true];
        for &v in &values {
            let n = s.next_token(v);
            assert_eq!(n.value(), v);
            assert_eq!(n.phase(), s.phase().toggled());
            let flips = u8::from(s.v() != n.v()) + u8::from(s.t() != n.t());
            assert_eq!(flips, 1, "LEDR moves exactly one rail per token");
            s = n;
        }
    }

    #[test]
    fn phase_not_operator() {
        assert_eq!(!Phase::Even, Phase::Odd);
        assert_eq!(!!Phase::Odd, Phase::Odd);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Phase::Even.to_string(), "even");
        assert_eq!(LedrSignal::new(true, false).to_string(), "1@odd");
    }
}
