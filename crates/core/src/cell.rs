//! Structural model of the PL cell of the paper's Figure 1.
//!
//! The marked-graph abstraction used by [`crate::netlist`] and `pl-sim`
//! says a PL gate "fires when all inputs carry fresh-phase tokens". This
//! module models the hardware that implements that rule — per-input phase
//! comparators feeding a Muller C-element, a LUT4 function block and LEDR
//! output latches — and the tests demonstrate that the structural cell and
//! the abstract rule agree token-for-token. (The prototype cell of reference \[23\] is
//! exactly this circuit.)

use pl_boolfn::TruthTable;

use crate::ledr::{LedrSignal, Phase};

/// An n-input Muller C-element.
///
/// The output rises when **all** inputs are 1, falls when **all** inputs
/// are 0, and otherwise holds its state — the canonical asynchronous
/// rendezvous element (Muller/Bartky 1959, used throughout the paper).
///
/// # Example
///
/// ```
/// use pl_core::cell::MullerC;
///
/// let mut c = MullerC::new(2);
/// assert!(!c.update(&[true, false])); // holds at 0
/// assert!(c.update(&[true, true]));   // all 1 -> 1
/// assert!(c.update(&[true, false]));  // holds at 1
/// assert!(!c.update(&[false, false])); // all 0 -> 0
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MullerC {
    arity: usize,
    state: bool,
}

impl MullerC {
    /// Creates a C-element with the given input count, output initially 0.
    ///
    /// # Panics
    ///
    /// Panics if `arity == 0`.
    #[must_use]
    pub fn new(arity: usize) -> Self {
        assert!(arity > 0, "C-element needs at least one input");
        Self {
            arity,
            state: false,
        }
    }

    /// Creates a C-element with a chosen initial state.
    #[must_use]
    pub fn with_state(arity: usize, state: bool) -> Self {
        let mut c = Self::new(arity);
        c.state = state;
        c
    }

    /// Current output.
    #[must_use]
    pub fn output(&self) -> bool {
        self.state
    }

    /// Applies one input evaluation and returns the (possibly held) output.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the element's arity.
    pub fn update(&mut self, inputs: &[bool]) -> bool {
        assert_eq!(inputs.len(), self.arity, "C-element arity mismatch");
        if inputs.iter().all(|&b| b) {
            self.state = true;
        } else if inputs.iter().all(|&b| !b) {
            self.state = false;
        }
        self.state
    }
}

/// A transparent D-latch (level-sensitive, as in Figure 1's output stage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DLatch {
    q: bool,
}

impl DLatch {
    /// Creates a latch holding `init`.
    #[must_use]
    pub fn new(init: bool) -> Self {
        Self { q: init }
    }

    /// Evaluates the latch: transparent while `enable` is high.
    pub fn update(&mut self, d: bool, enable: bool) -> bool {
        if enable {
            self.q = d;
        }
        self.q
    }

    /// Current stored value.
    #[must_use]
    pub fn q(&self) -> bool {
        self.q
    }
}

/// The assembled PL cell of Figure 1: phase completion detection (XNOR
/// comparators + Muller C-element), LUT4 function block, and LEDR output
/// latches.
///
/// [`PlCell::try_fire`] is a *behavioural* step: it checks the firing
/// condition exactly as the comparator/C-element network would and, when
/// met, latches the next LEDR output token and toggles the gate phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlCell {
    lut: TruthTable,
    gate_phase: Phase,
    v_latch: DLatch,
    t_latch: DLatch,
}

impl PlCell {
    /// Creates a cell computing `lut`, starting at even phase with the
    /// given initial output value (registers map with their reset token).
    #[must_use]
    pub fn new(lut: TruthTable, initial_output: bool) -> Self {
        let out = LedrSignal::with_phase(initial_output, Phase::Even);
        Self {
            lut,
            gate_phase: Phase::Even,
            v_latch: DLatch::new(out.v()),
            t_latch: DLatch::new(out.t()),
        }
    }

    /// The cell's current gate phase (the Muller C-element's state).
    #[must_use]
    pub fn gate_phase(&self) -> Phase {
        self.gate_phase
    }

    /// The cell's current LEDR output.
    #[must_use]
    pub fn output(&self) -> LedrSignal {
        LedrSignal::new(self.v_latch.q(), self.t_latch.q())
    }

    /// Whether the phase-completion network detects fresh tokens on every
    /// input: "a phased logic gate fires whenever all of the phases of the
    /// inputs matches the internal gate phase" (§2) — with the internal
    /// phase interpreted as the phase the gate is *waiting for*, i.e. the
    /// opposite of the phase it last consumed.
    #[must_use]
    pub fn inputs_ready(&self, inputs: &[LedrSignal]) -> bool {
        assert_eq!(inputs.len(), self.lut.num_vars(), "pin count mismatch");
        inputs.iter().all(|s| s.phase() != self.gate_phase)
    }

    /// Fires the cell if every input carries a fresh-phase token: the LUT4
    /// output is computed from the `v` rails, latched into the LEDR output
    /// (toggling its phase), and the gate phase flips. Returns the new
    /// output token, or `None` if the cell is not ready.
    pub fn try_fire(&mut self, inputs: &[LedrSignal]) -> Option<LedrSignal> {
        if !self.inputs_ready(inputs) {
            return None;
        }
        let mut minterm = 0u32;
        for (i, s) in inputs.iter().enumerate() {
            if s.value() {
                minterm |= 1 << i;
            }
        }
        let value = self.lut.eval(minterm);
        let next = self.output().next_token(value);
        // The firing pulse makes both output latches transparent.
        self.v_latch.update(next.v(), true);
        self.t_latch.update(next.t(), true);
        self.gate_phase = self.gate_phase.toggled();
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c_element_truth() {
        let mut c = MullerC::new(3);
        assert!(!c.update(&[true, true, false]));
        assert!(c.update(&[true, true, true]));
        assert!(c.update(&[false, true, false])); // holds
        assert!(!c.update(&[false, false, false]));
        assert!(MullerC::with_state(2, true).output());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn c_element_checks_arity() {
        let mut c = MullerC::new(2);
        let _ = c.update(&[true]);
    }

    #[test]
    fn latch_transparency() {
        let mut l = DLatch::new(false);
        assert!(!l.update(true, false)); // opaque
        assert!(l.update(true, true)); // transparent
        assert!(l.update(false, false)); // holds
        assert!(l.q());
    }

    #[test]
    fn cell_fires_only_on_fresh_phases() {
        let and2 = TruthTable::from_bits(2, 0b1000);
        let mut cell = PlCell::new(and2, false);
        // Even-phase inputs = stale (cell waits for odd).
        let stale = [
            LedrSignal::with_phase(true, Phase::Even),
            LedrSignal::with_phase(true, Phase::Even),
        ];
        assert!(!cell.inputs_ready(&stale));
        assert_eq!(cell.try_fire(&stale), None);
        // One fresh, one stale: still waits (completion detection).
        let mixed = [
            LedrSignal::with_phase(true, Phase::Odd),
            LedrSignal::with_phase(true, Phase::Even),
        ];
        assert_eq!(cell.try_fire(&mixed), None);
        // Both fresh: fires, output carries AND and the odd phase.
        let fresh = [
            LedrSignal::with_phase(true, Phase::Odd),
            LedrSignal::with_phase(true, Phase::Odd),
        ];
        let out = cell.try_fire(&fresh).expect("fires");
        assert!(out.value());
        assert_eq!(out.phase(), Phase::Odd);
        assert_eq!(cell.gate_phase(), Phase::Odd);
        // Same tokens again: consumed, no double fire.
        assert_eq!(cell.try_fire(&fresh), None);
    }

    #[test]
    fn cell_output_moves_one_rail_per_token() {
        let xor2 = TruthTable::from_bits(2, 0b0110);
        let mut cell = PlCell::new(xor2, false);
        let mut a = LedrSignal::with_phase(false, Phase::Even);
        let mut b = LedrSignal::with_phase(false, Phase::Even);
        let mut prev = cell.output();
        let stream = [(true, false), (true, true), (false, true), (false, false)];
        for (va, vb) in stream {
            a = a.next_token(va);
            b = b.next_token(vb);
            let out = cell.try_fire(&[a, b]).expect("tokens are fresh");
            assert_eq!(out.value(), va ^ vb);
            let flips = u8::from(prev.v() != out.v()) + u8::from(prev.t() != out.t());
            assert_eq!(flips, 1, "LEDR: exactly one rail per token");
            prev = out;
        }
    }

    #[test]
    fn two_cell_pipeline_propagates_tokens() {
        // inverter -> buffer chain, token-by-token.
        let inv = TruthTable::from_bits(1, 0b01);
        let buf = TruthTable::from_bits(1, 0b10);
        let mut c1 = PlCell::new(inv, true);
        let mut c2 = PlCell::new(buf, true);
        let mut input = LedrSignal::with_phase(false, Phase::Even);
        for k in 0..6 {
            let v = k % 2 == 0;
            input = input.next_token(v);
            let mid = c1.try_fire(&[input]).expect("stage 1 fires");
            assert_eq!(mid.value(), !v);
            let out = c2.try_fire(&[mid]).expect("stage 2 fires");
            assert_eq!(out.value(), !v);
            // stage 2 cannot fire again until stage 1 produces a new phase
            assert_eq!(c2.try_fire(&[mid]), None);
        }
    }

    #[test]
    fn structural_cell_agrees_with_abstract_rule() {
        // Drive a LUT4 cell with random token streams and cross-check the
        // structural firing rule against direct evaluation.
        let lut = TruthTable::from_bits(4, 0xCA35);
        let mut cell = PlCell::new(lut, false);
        let mut sigs = [LedrSignal::with_phase(false, Phase::Even); 4];
        let mut x: u64 = 0xFEED;
        for _ in 0..50 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let mut minterm = 0u32;
            for (i, s) in sigs.iter_mut().enumerate() {
                let v = (x >> (i * 7)) & 1 == 1;
                *s = s.next_token(v);
                if v {
                    minterm |= 1 << i;
                }
            }
            let out = cell.try_fire(&sigs).expect("all tokens fresh");
            assert_eq!(out.value(), lut.eval(minterm), "minterm {minterm:04b}");
        }
    }
}
