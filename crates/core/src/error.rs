//! Error type for phased-logic construction and analysis.

use std::error::Error;
use std::fmt;

use pl_netlist::NetlistError;

use crate::gate::{PlArcId, PlGateId};

/// Errors produced while mapping to or analyzing phased logic.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlError {
    /// The synchronous netlist contains a LUT wider than the PL gate's LUT4.
    LutTooWideForPl {
        /// The offending arity.
        arity: usize,
    },
    /// A signal (arc) is not part of any directed circuit — the marked
    /// graph cannot be live (paper §2).
    ArcNotOnCircuit(PlArcId),
    /// A token-free directed cycle exists through this gate: the marked
    /// graph deadlocks immediately (liveness violation).
    ZeroTokenCycle(PlGateId),
    /// No directed circuit through this arc carries exactly one token, so
    /// safety cannot be guaranteed.
    UnsafeArc(PlArcId),
    /// A gate pin has neither a driving data arc nor a constant tie-off.
    MissingPinDriver {
        /// The gate with the floating pin.
        gate: PlGateId,
        /// The pin index.
        pin: u8,
    },
    /// The underlying synchronous netlist failed validation.
    Netlist(NetlistError),
}

impl fmt::Display for PlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlError::LutTooWideForPl { arity } => {
                write!(
                    f,
                    "lut arity {arity} exceeds the PL gate's 4 inputs (run techmap first)"
                )
            }
            PlError::ArcNotOnCircuit(a) => {
                write!(f, "arc {a} is not part of any directed circuit (liveness)")
            }
            PlError::ZeroTokenCycle(g) => {
                write!(f, "token-free directed cycle through gate {g} (liveness)")
            }
            PlError::UnsafeArc(a) => {
                write!(f, "no one-token circuit through arc {a} (safety)")
            }
            PlError::MissingPinDriver { gate, pin } => {
                write!(
                    f,
                    "gate {gate} pin {pin} has no driver and no constant tie-off"
                )
            }
            PlError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl Error for PlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<NetlistError> for PlError {
    fn from(e: NetlistError) -> Self {
        PlError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_subject() {
        let e = PlError::LutTooWideForPl { arity: 5 };
        assert!(e.to_string().contains('5'));
        let e = PlError::ZeroTokenCycle(PlGateId::from_index(2));
        assert!(e.to_string().contains("g2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<PlError>();
    }
}
