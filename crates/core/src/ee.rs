//! The early-evaluation synthesis transformation (paper §3, Figure 2).
//!
//! [`PlNetlist::with_early_evaluation`] post-processes a phased-logic
//! netlist: every compute gate is examined as a potential *master*; the
//! best [`TriggerCandidate`] (Equation 1) above the configured threshold is
//! implemented as a paired *trigger gate* wired to the same fast-arriving
//! sources, plus an *efire* arc into the master and the acknowledge arcs
//! that keep the marked graph live and safe. The master records its pairing
//! in [`EeControl`] so the simulator can apply the
//! early-firing rule.
//!
//! Thresholding reproduces the paper's area/delay trade-off: "it is also
//! possible to reduce the increase in area by requiring a candidate trigger
//! function to have a cost value that exceeds some threshold" (§4).

use pl_boolfn::VarSet;

use crate::gate::{EeControl, PlArcKind, PlGateId, PlGateKind};
use crate::netlist::PlNetlist;
use crate::trigger::{TriggerCache, TriggerCandidate};

/// Options for the early-evaluation transformation.
#[derive(Debug, Clone)]
pub struct EeOptions {
    /// Minimum Equation-1 cost a candidate must reach to be implemented.
    /// `0.0` accepts every speedup-capable candidate (the paper's Table 3
    /// configuration: "EE circuitry was added to all PL gates where a
    /// speedup was possible").
    pub cost_threshold: f64,
    /// Require the trigger's inputs to arrive strictly earlier than the
    /// master's slowest input (`Tmax < Mmax`).
    pub require_speedup: bool,
}

impl Default for EeOptions {
    fn default() -> Self {
        Self {
            cost_threshold: 0.0,
            require_speedup: true,
        }
    }
}

/// One implemented master/trigger pair.
#[derive(Debug, Clone, PartialEq)]
pub struct EePair {
    /// The master compute gate.
    pub master: PlGateId,
    /// The added trigger gate.
    pub trigger: PlGateId,
    /// The winning candidate (support, function, coverage, arrivals).
    pub candidate: TriggerCandidate,
}

impl EePair {
    /// The Equation-1 cost of the implemented candidate.
    #[must_use]
    pub fn cost(&self) -> f64 {
        self.candidate.cost()
    }
}

/// Result of [`PlNetlist::with_early_evaluation`].
#[derive(Debug, Clone)]
pub struct EeReport {
    netlist: PlNetlist,
    pairs: Vec<EePair>,
    examined: usize,
    logic_gates_before: usize,
    cache_hits: u64,
    cache_misses: u64,
}

impl EeReport {
    /// The transformed netlist (masters annotated, triggers added).
    #[must_use]
    pub fn netlist(&self) -> &PlNetlist {
        &self.netlist
    }

    /// Consumes the report, returning the transformed netlist.
    #[must_use]
    pub fn into_netlist(self) -> PlNetlist {
        self.netlist
    }

    /// The implemented master/trigger pairs — the paper's "EE Gates" count.
    #[must_use]
    pub fn pairs(&self) -> &[EePair] {
        &self.pairs
    }

    /// Compute gates examined as potential masters.
    #[must_use]
    pub fn examined(&self) -> usize {
        self.examined
    }

    /// Trigger searches answered by the per-netlist LUT-class memo cache
    /// (see [`TriggerCache`]) — gates whose (function, arrival-signature)
    /// class was already analyzed.
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Trigger searches computed fresh (distinct LUT classes).
    #[must_use]
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses
    }

    /// Logic gate count before the transformation.
    #[must_use]
    pub fn logic_gates_before(&self) -> usize {
        self.logic_gates_before
    }

    /// Fractional area increase: trigger gates over original PL gates
    /// (Table 3's "% Area Increase").
    #[must_use]
    pub fn area_increase(&self) -> f64 {
        if self.logic_gates_before == 0 {
            0.0
        } else {
            self.pairs.len() as f64 / self.logic_gates_before as f64
        }
    }
}

impl PlNetlist {
    /// Applies generalized early evaluation to every eligible compute gate.
    ///
    /// Because an EE master *produces early and consumes late*, a directed
    /// circuit passing through it no longer bounds token counts; all
    /// feedback arcs are therefore re-planned: master-adjacent data arcs
    /// receive explicit acknowledges (the paper's Figure 2 "feedback from
    /// master destinations" / "feedback to all master sources"), and
    /// loop-coverage paths avoid masters entirely.
    ///
    /// See the [module documentation](crate::ee) for the algorithm and
    /// [`EeOptions`] for the selection policy.
    ///
    /// # Panics
    ///
    /// Panics if early evaluation was already applied to this netlist.
    #[must_use]
    pub fn with_early_evaluation(self, opts: &EeOptions) -> EeReport {
        let mut cache = TriggerCache::new();
        self.with_early_evaluation_cached(opts, &mut cache)
    }

    /// Like [`PlNetlist::with_early_evaluation`], but sharing a caller-owned
    /// [`TriggerCache`] so repeated compiles (threshold sweeps, incremental
    /// recompilation) reuse trigger searches across runs: a LUT class whose
    /// (function, arrival-signature) key was analyzed by *any* earlier run
    /// re-verifies from the memo. The cache is pure — `search` results are
    /// pinned identical to a direct search — so sharing it never changes
    /// which pairs are selected. The report's hit/miss counts are the
    /// *deltas* contributed by this run.
    ///
    /// # Panics
    ///
    /// Panics if early evaluation was already applied to this netlist.
    #[must_use]
    pub fn with_early_evaluation_cached(
        mut self,
        opts: &EeOptions,
        cache: &mut TriggerCache,
    ) -> EeReport {
        assert!(
            self.gates().iter().all(|g| g.ee().is_none()),
            "early evaluation was already applied to this netlist"
        );
        let hits_before = cache.hits();
        let misses_before = cache.misses();
        let levels = self.arrival_levels();
        let logic_gates_before = self.num_logic_gates();
        let mut examined = 0usize;

        // Phase 1: candidate selection (independent of feedback arcs).
        // Structurally identical gates (same LUT class, same arrival
        // profile) share one memoized search.
        let mut selections: Vec<(PlGateId, TriggerCandidate)> = Vec::new();
        let gate_count = self.gates.len();
        for idx in 0..gate_count {
            let master = PlGateId::from_index(idx);
            let table = match self.gates[idx].kind {
                PlGateKind::Compute { table } => table,
                _ => continue,
            };
            examined += 1;
            // Fold constant pins into the effective master function.
            let mut const_vars: VarSet = 0;
            let mut const_asg: u32 = 0;
            for (pin, cv) in self.gates[idx].const_pins.iter().enumerate() {
                if let Some(v) = cv {
                    const_vars |= 1 << pin;
                    if *v {
                        const_asg |= 1 << count_below(const_vars, pin);
                    }
                }
            }
            let effective = if const_vars == 0 {
                table
            } else {
                table.restrict(const_vars, const_asg)
            };
            let arrivals = self.pin_arrivals(master, &levels);
            let Some(cand) = cache
                .search(&effective, &arrivals)
                .iter()
                .find(|c| {
                    (!opts.require_speedup || c.offers_speedup()) && c.cost() >= opts.cost_threshold
                })
                .cloned()
            else {
                continue;
            };
            selections.push((master, cand));
        }

        // Phase 2: re-plan all control arcs around the chosen masters.
        self.strip_control_arcs();
        let mut acks: std::collections::HashSet<(PlGateId, PlGateId, u8)> =
            std::collections::HashSet::new();
        let mut pairs = Vec::with_capacity(selections.len());
        for (master, cand) in selections {
            let trigger = self.implement_pair(master, &cand, &mut acks);
            pairs.push(EePair {
                master,
                trigger,
                candidate: cand,
            });
        }
        let mut forbidden = vec![false; self.gates.len()];
        for pair in &pairs {
            forbidden[pair.master.index()] = true;
        }
        self.add_master_adjacent_acks(&forbidden, &mut acks);
        self.insert_feedback_arcs(&forbidden);
        EeReport {
            netlist: self,
            pairs,
            examined,
            logic_gates_before,
            cache_hits: cache.hits() - hits_before,
            cache_misses: cache.misses() - misses_before,
        }
    }

    /// Wires one master/trigger pair (Figure 2) and returns the trigger id.
    fn implement_pair(
        &mut self,
        master: PlGateId,
        cand: &TriggerCandidate,
        acks: &mut std::collections::HashSet<(PlGateId, PlGateId, u8)>,
    ) -> PlGateId {
        let subset_pins: Vec<u8> = (0..8u8).filter(|p| cand.support & (1 << p) != 0).collect();
        // Locate the master's source arc for each subset pin.
        let sources: Vec<(PlGateId, u8, bool)> = subset_pins
            .iter()
            .map(|&pin| {
                let arc_id = self.gates[master.index()]
                    .data_in
                    .iter()
                    .copied()
                    .find(|&a| self.arcs[a.index()].dst_pin == Some(pin))
                    .expect("trigger subset pins are live master pins");
                let arc = &self.arcs[arc_id.index()];
                (arc.src, arc.init_tokens, arc.init_value)
            })
            .collect();

        let trigger = self.push_gate(
            PlGateKind::Compute { table: cand.table },
            Some(format!("ee_trigger_{}", master.index())),
        );
        self.gates[trigger.index()].const_pins = vec![None; subset_pins.len()];
        for (k, &(src, toks, val)) in sources.iter().enumerate() {
            self.add_data_arc(src, trigger, k as u8, toks, val);
            // The trigger is a fresh consumer with no data fanout, so its
            // sources always need an explicit feedback signal.
            self.add_ack_unique(trigger, src, 1 - toks, acks);
        }
        // efire: trigger → master (no initial token; the trigger fires first)
        let efire_arc = self.add_control_arc(trigger, master, PlArcKind::Efire, 0);
        // and its acknowledge: master → trigger (initially ready).
        self.add_ack_unique(master, trigger, 1, acks);

        self.gates[master.index()].ee = Some(EeControl {
            trigger,
            efire_arc,
            subset_pins,
            trigger_table: cand.table,
        });
        trigger
    }

    /// Figure 2's explicit pair feedbacks: every data arc into a master
    /// gets an ack back to its source ("feedback to all master sources"),
    /// and every data arc out of a master gets an ack from its consumer
    /// ("feedback from master destinations"). These must be explicit
    /// because loop coverage through a non-atomic master is unsound.
    fn add_master_adjacent_acks(
        &mut self,
        forbidden: &[bool],
        acks: &mut std::collections::HashSet<(PlGateId, PlGateId, u8)>,
    ) {
        let adjacent: Vec<(PlGateId, PlGateId, u8)> = self
            .arcs
            .iter()
            .filter(|a| {
                a.kind == PlArcKind::Data && (forbidden[a.src.index()] || forbidden[a.dst.index()])
            })
            .map(|a| (a.src, a.dst, a.init_tokens))
            .collect();
        for (src, dst, m) in adjacent {
            self.add_ack_unique(dst, src, 1 - m, acks);
        }
    }

    fn add_ack_unique(
        &mut self,
        src: PlGateId,
        dst: PlGateId,
        tokens: u8,
        acks: &mut std::collections::HashSet<(PlGateId, PlGateId, u8)>,
    ) {
        if acks.insert((src, dst, tokens)) {
            self.add_control_arc(src, dst, PlArcKind::Ack, tokens);
        }
    }
}

/// Number of set bits of `mask` strictly below position `pos`.
fn count_below(mask: VarSet, pos: usize) -> u32 {
    (mask & (((1u16 << pos) - 1) as u8)).count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marked::{check_liveness, check_safety};
    use pl_boolfn::TruthTable;
    use pl_netlist::Netlist;

    /// A 4-bit ripple-carry adder at LUT level: sum/carry cells chained so
    /// carry arrives late — the paper's canonical EE beneficiary.
    fn ripple_adder(bits: usize) -> Netlist {
        let mut n = Netlist::new("rca");
        let a: Vec<_> = (0..bits).map(|i| n.add_input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..bits).map(|i| n.add_input(format!("b{i}"))).collect();
        let mut carry = n.add_const(false);
        for i in 0..bits {
            let sum_t = TruthTable::from_fn(3, |m| m.count_ones() % 2 == 1);
            let cry_t = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
            let s = n.add_lut(sum_t, vec![a[i], b[i], carry]).unwrap();
            let c = n.add_lut(cry_t, vec![a[i], b[i], carry]).unwrap();
            n.set_output(format!("s{i}"), s);
            carry = c;
        }
        n.set_output("cout", carry);
        n
    }

    #[test]
    fn adder_gets_ee_pairs_on_carry_chain() {
        let pl = PlNetlist::from_sync(&ripple_adder(4)).unwrap();
        let before = pl.num_logic_gates();
        let report = pl.with_early_evaluation(&EeOptions::default());
        // Carry cells past the first depend on a late carry — they all pair.
        assert!(!report.pairs().is_empty(), "ripple carries must trigger EE");
        assert!(report.examined() >= report.pairs().len());
        assert_eq!(report.logic_gates_before(), before);
        // Trigger gates added on top of the original gates.
        assert_eq!(
            report.netlist().num_logic_gates(),
            before + report.pairs().len()
        );
        assert_eq!(report.netlist().num_ee_pairs(), report.pairs().len());
    }

    #[test]
    fn transformed_graph_stays_live_and_safe() {
        let pl = PlNetlist::from_sync(&ripple_adder(3)).unwrap();
        let report = pl.with_early_evaluation(&EeOptions::default());
        check_liveness(report.netlist()).unwrap();
        check_safety(report.netlist()).unwrap();
    }

    #[test]
    fn threshold_trades_area() {
        let pl = PlNetlist::from_sync(&ripple_adder(6)).unwrap();
        let all = pl.clone().with_early_evaluation(&EeOptions::default());
        let picky = pl.clone().with_early_evaluation(&EeOptions {
            cost_threshold: 1.75,
            ..EeOptions::default()
        });
        let none = pl.with_early_evaluation(&EeOptions {
            cost_threshold: f64::INFINITY,
            ..EeOptions::default()
        });
        assert!(picky.pairs().len() <= all.pairs().len());
        assert_eq!(none.pairs().len(), 0);
        assert!(none.area_increase() == 0.0);
        assert!(all.area_increase() > 0.0);
    }

    #[test]
    fn triggers_read_the_masters_fast_sources() {
        let pl = PlNetlist::from_sync(&ripple_adder(2)).unwrap();
        let report = pl.with_early_evaluation(&EeOptions::default());
        for pair in report.pairs() {
            let nl = report.netlist();
            let trig = nl.gate(pair.trigger);
            let master = nl.gate(pair.master);
            // Each trigger pin reads the same source as the master's pin.
            for (k, &pin) in master.ee().unwrap().subset_pins.iter().enumerate() {
                let m_src = master
                    .data_in()
                    .iter()
                    .map(|&a| nl.arc(a))
                    .find(|a| a.dst_pin() == Some(pin))
                    .unwrap()
                    .src();
                let t_src = trig
                    .data_in()
                    .iter()
                    .map(|&a| nl.arc(a))
                    .find(|a| a.dst_pin() == Some(k as u8))
                    .unwrap()
                    .src();
                assert_eq!(m_src, t_src);
            }
            // efire arc present and typed.
            let ee = master.ee().unwrap();
            assert_eq!(nl.arc(ee.efire_arc).kind(), PlArcKind::Efire);
            assert_eq!(nl.arc(ee.efire_arc).src(), pair.trigger);
            assert_eq!(nl.arc(ee.efire_arc).dst(), pair.master);
        }
    }

    #[test]
    fn no_speedup_no_pairs_for_balanced_gates() {
        // Single layer of AND gates fed directly by PIs: all arrivals equal,
        // so require_speedup suppresses every pair.
        let mut n = Netlist::new("flat");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let t = TruthTable::from_fn(3, |m| m == 7);
        let g = n.add_lut(t, vec![a, b, c]).unwrap();
        n.set_output("y", g);
        let pl = PlNetlist::from_sync(&n).unwrap();
        let report = pl.with_early_evaluation(&EeOptions::default());
        assert!(report.pairs().is_empty());
        // Disabling the speedup requirement lets coverage-only pairs form.
        let pl2 = PlNetlist::from_sync(&n).unwrap();
        let relaxed = pl2.with_early_evaluation(&EeOptions {
            require_speedup: false,
            ..EeOptions::default()
        });
        assert!(!relaxed.pairs().is_empty());
    }

    #[test]
    fn registers_are_not_masters() {
        let mut n = Netlist::new("reg");
        let d = n.add_dff(false);
        let inv = n.add_not(d).unwrap();
        n.set_dff_input(d, inv).unwrap();
        n.set_output("q", d);
        let pl = PlNetlist::from_sync(&n).unwrap();
        let report = pl.with_early_evaluation(&EeOptions::default());
        assert_eq!(report.pairs().len(), 0);
        // Only the inverter was examined.
        assert_eq!(report.examined(), 1);
    }

    #[test]
    fn count_below_examples() {
        assert_eq!(count_below(0b1011, 0), 0);
        assert_eq!(count_below(0b1011, 1), 1);
        assert_eq!(count_below(0b1011, 3), 2);
    }
}
