//! Whole-session linting: both passes over one source, rendered for
//! humans or CI.
//!
//! [`Pipeline::lint`] and [`Pipeline::lint_phased`] are *gate* stages —
//! they abort on the first deny so `run()` never simulates a broken
//! design. [`Pipeline::lint_session`] is the *reporting* entry point
//! behind `plc lint`: it never aborts on findings, collects both passes
//! (skipping the phased pass when the netlist pass already denied — a
//! structurally broken netlist cannot be mapped meaningfully) and renders
//! one deterministic, golden-pinnable document.

use crate::error::FlowError;
use crate::pipeline::Pipeline;
use crate::source::CircuitSource;
use pl_lint::LintReport;

/// Both lint passes over one source, plus enough context to render.
#[derive(Debug, Clone)]
pub struct LintSession {
    /// Design label (catalog id, file path, ...).
    pub name: String,
    /// Source kind (`rtl-catalog`, `blif-file`, ...).
    pub source_kind: &'static str,
    /// The netlist pass.
    pub netlist: LintReport,
    /// The phased-logic pass; `None` when the netlist pass denied (the
    /// design cannot be mapped) — rendered as an explicit "skipped" line.
    pub pl: Option<LintReport>,
}

impl LintSession {
    /// Whether any pass produced a deny-level finding.
    #[must_use]
    pub fn has_deny(&self) -> bool {
        self.netlist.has_deny() || self.pl.as_ref().is_some_and(LintReport::has_deny)
    }

    /// `(warnings, denials)` across both passes.
    #[must_use]
    pub fn counts(&self) -> (usize, usize) {
        let (mut w, mut d) = self.netlist.counts();
        if let Some(pl) = &self.pl {
            let (pw, pd) = pl.counts();
            w += pw;
            d += pd;
        }
        (w, d)
    }

    /// Deterministic text rendering: a header line, one `[pass]`-prefixed
    /// line per finding (or `clean` / `skipped`), and a summary line.
    #[must_use]
    pub fn render_text(&self) -> String {
        fn pass_lines(out: &mut String, report: &LintReport) {
            if report.is_empty() {
                out.push_str(&format!("[{}] clean\n", report.pass()));
                return;
            }
            for line in report.to_text().lines() {
                out.push_str(&format!("[{}] {line}\n", report.pass()));
            }
        }
        let mut out = format!("lint {} ({})\n", self.name, self.source_kind);
        pass_lines(&mut out, &self.netlist);
        match &self.pl {
            Some(pl) => pass_lines(&mut out, pl),
            None => out.push_str("[pl] skipped (netlist pass denied)\n"),
        }
        let (warns, denies) = self.counts();
        out.push_str(&format!(
            "summary: {warns} warning(s), {denies} denial(s)\n"
        ));
        out
    }

    /// Deterministic JSON-lines rendering: both passes' findings
    /// concatenated (each line carries its `pass` field); empty string for
    /// a fully clean session.
    #[must_use]
    pub fn render_json_lines(&self) -> String {
        let mut out = self.netlist.to_json_lines();
        if let Some(pl) = &self.pl {
            out.push_str(&pl.to_json_lines());
        }
        out
    }
}

impl Pipeline {
    /// Lints one source end to end without aborting on findings: ingests,
    /// runs the netlist pass, and — unless that pass denied — maps the
    /// design through techmap and the phased stage to run the phased pass
    /// too. Honors [`crate::FlowOptions::optimize`] before mapping, like
    /// `run()` does.
    ///
    /// # Errors
    ///
    /// Only infrastructure failures (I/O, parse, elaboration, mapping);
    /// findings — deny-level included — are data in the returned session,
    /// never errors.
    pub fn lint_session(&self, source: &CircuitSource) -> Result<LintSession, FlowError> {
        let ingested = self.ingest(source)?;
        let name = ingested.name.clone();
        let netlist = pl_lint::lint_netlist(
            &ingested.netlist,
            &ingested.notes,
            &self.opts().delays,
            &self.opts().lint,
        );
        let pl = if netlist.has_deny() {
            None
        } else {
            let optimized = self.optimize(ingested)?;
            let mapped = self.techmap(optimized)?;
            let phased = self.phased(&mapped)?;
            Some(pl_lint::lint_pl(&phased.netlist, &self.opts().lint))
        };
        Ok(LintSession {
            name,
            source_kind: source.kind(),
            netlist,
            pl,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::FlowOptions;

    #[test]
    fn clean_catalog_design_renders_clean() {
        let pipeline = Pipeline::new(FlowOptions::default());
        let source = CircuitSource::catalog("b01").unwrap();
        let session = pipeline.lint_session(&source).unwrap();
        assert!(!session.has_deny());
        let text = session.render_text();
        assert!(text.starts_with("lint b01 (rtl-catalog)\n"));
        assert!(text.ends_with("denial(s)\n"));
        assert!(session.pl.is_some());
    }

    #[test]
    fn denied_netlist_skips_the_pl_pass() {
        let mut nl = pl_netlist::Netlist::new("cyc");
        let a = nl.add_input("a");
        let x = nl.add_and2(a, a).unwrap();
        nl.set_output("y", x);
        nl.rewire_lut_input(x, 0, x).unwrap();
        let pipeline = Pipeline::new(FlowOptions::default());
        let source = CircuitSource::Netlist {
            name: "cyc".into(),
            netlist: nl,
        };
        let session = pipeline.lint_session(&source).unwrap();
        assert!(session.has_deny());
        assert!(session.pl.is_none());
        assert!(session
            .render_text()
            .contains("[pl] skipped (netlist pass denied)"));
    }

    #[test]
    fn session_rendering_is_deterministic() {
        let pipeline = Pipeline::new(FlowOptions::default());
        let source = CircuitSource::catalog("b06").unwrap();
        let first = pipeline.lint_session(&source).unwrap();
        for _ in 0..3 {
            let again = pipeline.lint_session(&source).unwrap();
            assert_eq!(again.render_text(), first.render_text());
            assert_eq!(again.render_json_lines(), first.render_json_lines());
        }
    }
}
