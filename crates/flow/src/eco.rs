//! Incremental recompilation: ECO edit sessions over the pipeline.
//!
//! An [`EcoSession`] is a compiled design plus everything needed to
//! recompile it *incrementally* after a small engineering change order
//! (ECO): the retained [`FlowArtifacts`], the techmap [`MapMemo`], and a
//! persistent [`TriggerCache`] for early-evaluation searches. Feeding it a
//! batch of [`EcoEdit`]s re-runs the pipeline with three levers pulled
//! (see the invalidation model in [`crate::pipeline`]):
//!
//! 1. cut enumeration translates clean-cone cut lists from the memo,
//! 2. the whole downstream (phased/EE/simulate/verify) is reused verbatim
//!    when the re-mapped netlist is unchanged,
//! 3. trigger searches for already-seen LUT classes answer from the memo.
//!
//! The contract is absolute, not best-effort: for any edit sequence the
//! session's artifacts are **bit-identical** to a from-scratch
//! [`Pipeline::run`] on the edited netlist — only wall-clock and the
//! trigger-cache hit/miss counters may differ. A failing edit batch
//! (unknown node, arity mismatch, lint deny, combinational loop found
//! downstream) rolls the session back: the retained netlist and artifacts
//! are untouched and the session stays usable.

use std::time::Instant;

use pl_boolfn::TruthTable;
use pl_core::trigger::TriggerCache;
use pl_netlist::blif::BlifNote;
use pl_netlist::eco::comb_fanout_closure;
use pl_netlist::{DirtySet, Netlist, NodeId, NodeKind};
use pl_techmap::{MapMemo, ReusePlan};

use crate::error::FlowError;
use crate::pipeline::{
    FlowArtifacts, FlowReport, IngestReport, Ingested, LintStageReport, Mapped, OptimizeReport,
    Pipeline,
};
use crate::source::CircuitSource;

/// A node reference in an edit spec: a raw id (`n17` or `17`) or a debug /
/// port name. Pure-digit and `n`-digit strings always resolve as ids;
/// anything else resolves by name — node debug names and primary-input
/// names first, then primary-output port names (giving the driver node).
/// A name matching several nodes is a typed error, never a silent pick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeRef {
    /// A raw node id (the `NN` of `nNN` in diagnostics and BLIF emission).
    Id(usize),
    /// A debug name, primary-input name, or primary-output port name.
    Name(String),
}

impl NodeRef {
    /// Parses one node reference from an edit spec.
    #[must_use]
    pub fn parse(s: &str) -> NodeRef {
        let digits = s.strip_prefix('n').unwrap_or(s);
        if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(i) = digits.parse::<usize>() {
                return NodeRef::Id(i);
            }
        }
        NodeRef::Name(s.to_string())
    }

    /// Resolves the reference against a netlist.
    ///
    /// # Errors
    ///
    /// [`FlowError::Config`] for an out-of-range id, an unknown name, or
    /// an ambiguous name.
    pub fn resolve(&self, n: &Netlist) -> Result<NodeId, FlowError> {
        match self {
            NodeRef::Id(i) => {
                let id = NodeId::from_index(*i);
                if n.get(id).is_some() {
                    Ok(id)
                } else {
                    Err(FlowError::Config {
                        message: format!("no node n{i} in '{}' ({} nodes)", n.name(), n.len()),
                    })
                }
            }
            NodeRef::Name(name) => {
                let mut matches: Vec<NodeId> = Vec::new();
                for (id, node) in n.iter() {
                    let named = node.name() == Some(name.as_str())
                        || matches!(node.kind(), NodeKind::Input { name: k } if k == name);
                    if named {
                        matches.push(id);
                    }
                }
                if matches.is_empty() {
                    for (port, id) in n.outputs() {
                        if port == name && !matches.contains(id) {
                            matches.push(*id);
                        }
                    }
                }
                match matches[..] {
                    [id] => Ok(id),
                    [] => Err(FlowError::Config {
                        message: format!("no node named '{name}' in '{}'", n.name()),
                    }),
                    _ => Err(FlowError::Config {
                        message: format!(
                            "name '{name}' is ambiguous in '{}' ({} matches)",
                            n.name(),
                            matches.len()
                        ),
                    }),
                }
            }
        }
    }
}

/// One ECO edit, in the current netlist's id/name space. Edits in a batch
/// apply in order, each seeing the effects (including id shifts from
/// removals) of the ones before it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EcoEdit {
    /// Replace a LUT's truth table with one of the same arity
    /// (spec: `table:<node>:<hexbits>`).
    ReplaceTable {
        /// The LUT to retable.
        node: NodeRef,
        /// New truth-table bits (row-major, LSB = all-zero input row).
        bits: u64,
    },
    /// Rewire one LUT input pin to a different source node
    /// (spec: `rewire:<node>:<pin>:<src>`).
    Rewire {
        /// The LUT whose pin moves.
        node: NodeRef,
        /// Zero-based input pin.
        pin: usize,
        /// The new source node.
        src: NodeRef,
    },
    /// Insert a fresh LUT, unreferenced until a later `rewire` (or left
    /// dangling — the mapper simply never covers it)
    /// (spec: `insert:<name>:<hexbits>:<src>[,<src>...]`, name `-` for
    /// anonymous).
    Insert {
        /// Debug name to attach (`None` stays anonymous).
        name: Option<String>,
        /// Truth-table bits; arity is the fanin count.
        bits: u64,
        /// Fanin nodes, pin order.
        inputs: Vec<NodeRef>,
    },
    /// Remove an unreferenced gate (spec: `remove:<node>`). Node ids above
    /// the removed one shift down by one; later edits in the batch must
    /// use post-shift ids (names are immune).
    Remove {
        /// The gate to remove.
        node: NodeRef,
    },
}

impl EcoEdit {
    /// Parses one `plc eco --edit` spec:
    ///
    /// ```text
    /// table:<node>:<hexbits>
    /// rewire:<node>:<pin>:<src>
    /// insert:<name>:<hexbits>:<src>[,<src>...]
    /// remove:<node>
    /// ```
    ///
    /// `<hexbits>` is hexadecimal with an optional `0x` prefix; node
    /// references are ids (`n4`, `4`) or names (see [`NodeRef`]).
    ///
    /// # Errors
    ///
    /// [`FlowError::Config`] describing the malformed spec.
    pub fn parse(spec: &str) -> Result<EcoEdit, FlowError> {
        let usage = |u: &str| FlowError::Config {
            message: format!("bad edit spec '{spec}' (usage: {u})"),
        };
        let bits = |s: &str| {
            u64::from_str_radix(s.trim_start_matches("0x"), 16).map_err(|_| FlowError::Config {
                message: format!("bad table bits '{s}' in edit spec '{spec}' (hexadecimal)"),
            })
        };
        let parts: Vec<&str> = spec.split(':').collect();
        match parts.as_slice() {
            ["table", node, hex] => Ok(EcoEdit::ReplaceTable {
                node: NodeRef::parse(node),
                bits: bits(hex)?,
            }),
            ["table", ..] => Err(usage("table:<node>:<hexbits>")),
            ["rewire", node, pin, src] => Ok(EcoEdit::Rewire {
                node: NodeRef::parse(node),
                pin: pin
                    .parse()
                    .map_err(|_| usage("rewire:<node>:<pin>:<src>"))?,
                src: NodeRef::parse(src),
            }),
            ["rewire", ..] => Err(usage("rewire:<node>:<pin>:<src>")),
            ["insert", name, hex, srcs] => Ok(EcoEdit::Insert {
                name: (*name != "-").then(|| (*name).to_string()),
                bits: bits(hex)?,
                inputs: srcs.split(',').map(NodeRef::parse).collect(),
            }),
            ["insert", ..] => Err(usage("insert:<name>:<hexbits>:<src>[,<src>...]")),
            ["remove", node] => Ok(EcoEdit::Remove {
                node: NodeRef::parse(node),
            }),
            ["remove", ..] => Err(usage("remove:<node>")),
            _ => Err(FlowError::Config {
                message: format!(
                    "unknown edit kind in '{spec}' (expected table|rewire|insert|remove)"
                ),
            }),
        }
    }

    /// Applies the edit to a netlist, returning its [`DirtySet`], the
    /// removed id for a removal (so the caller can shift retained ids),
    /// and the *structurally touched* node — the LUT whose table or fanin
    /// set changed, or the freshly inserted node. The touched node seeds
    /// techmap invalidation (cut lists depend on comb fanin structure
    /// only); the value cone, which also crosses registers, does not.
    ///
    /// # Errors
    ///
    /// Reference-resolution failures as [`FlowError::Config`]; edit-level
    /// failures (not a LUT, arity mismatch, node in use, ...) as the
    /// underlying typed [`pl_netlist::NetlistError`].
    #[allow(clippy::type_complexity)]
    pub fn apply(
        &self,
        n: &mut Netlist,
    ) -> Result<(DirtySet, Option<NodeId>, Option<NodeId>), FlowError> {
        let table = |arity: usize, bits: u64| {
            TruthTable::try_from_bits(arity, bits).map_err(|e| FlowError::Config {
                message: format!("edit truth table: {e}"),
            })
        };
        match self {
            EcoEdit::ReplaceTable { node, bits } => {
                let id = node.resolve(n)?;
                // Arity comes from the LUT itself; a non-LUT target gets
                // the typed NotALut from replace_lut_table below.
                let arity = if n.node(id).is_lut() {
                    n.node(id).fanins().len()
                } else {
                    1
                };
                Ok((
                    n.replace_lut_table(id, table(arity, *bits)?)?,
                    None,
                    Some(id),
                ))
            }
            EcoEdit::Rewire { node, pin, src } => {
                let lut = node.resolve(n)?;
                let s = src.resolve(n)?;
                Ok((n.rewire_lut_input(lut, *pin, s)?, None, Some(lut)))
            }
            EcoEdit::Insert { name, bits, inputs } => {
                let ids = inputs
                    .iter()
                    .map(|r| r.resolve(n))
                    .collect::<Result<Vec<_>, _>>()?;
                let (id, dirty) = n.insert_lut(table(ids.len(), *bits)?, ids)?;
                if let Some(name) = name {
                    n.set_name(id, name.clone())?;
                }
                Ok((dirty, None, Some(id)))
            }
            EcoEdit::Remove { node } => {
                let id = node.resolve(n)?;
                Ok((n.remove_gate(id)?, Some(id), None))
            }
        }
    }
}

/// What one [`EcoSession::apply_eco`] recompile did and reused.
#[derive(Debug, Clone)]
pub struct EcoReport {
    /// Edits in the batch.
    pub edits: usize,
    /// Size of the batch's value cone (nodes whose value may change).
    pub dirty_nodes: usize,
    /// Flip-flops on the cone's phase boundary.
    pub boundary_dffs: usize,
    /// Primary outputs driven from inside the cone.
    pub dirty_outputs: Vec<String>,
    /// Two-input-space nodes the mapper processed.
    pub two_nodes: usize,
    /// LUT nodes whose cut lists were translated from the retained memo
    /// instead of re-enumerated.
    pub cuts_reused: usize,
    /// Whether the techmap ran with a reuse plan at all (`false` when
    /// [`crate::FlowOptions::optimize`] forces a from-scratch map).
    pub techmap_incremental: bool,
    /// Whether the re-mapped netlist was unchanged, so the phased graph,
    /// early evaluation, simulation and verification were all reused
    /// verbatim from the retained artifacts.
    pub downstream_skipped: bool,
    /// Trigger searches this recompile answered from the session cache.
    pub trigger_hits: u64,
    /// Trigger searches this recompile computed fresh.
    pub trigger_misses: u64,
    /// Fingerprint of the edited source netlist.
    pub source_fingerprint: u64,
    /// Fingerprint of the re-mapped netlist.
    pub mapped_fingerprint: u64,
    /// Fingerprint of the (possibly reused) phased netlist.
    pub phased_fingerprint: u64,
    /// Recompile wall-clock seconds (edit application included).
    pub secs: f64,
}

/// The result of one incremental recompile: the per-stage flow report
/// (stage reports of skipped stages are carried over from the compile
/// that produced them) plus the ECO-specific reuse accounting.
#[derive(Debug, Clone)]
pub struct EcoOutcome {
    /// Per-stage pipeline report.
    pub flow: FlowReport,
    /// Reuse accounting for this recompile.
    pub eco: EcoReport,
}

/// An incremental-recompilation session: a compiled design plus the
/// retained state that makes the next compile cheap. See the module docs
/// for the reuse levers and the bit-identity contract.
#[derive(Debug, Clone)]
pub struct EcoSession {
    pipeline: Pipeline,
    name: String,
    /// The current (post-edit) source netlist, pre-optimize id space —
    /// the space [`EcoEdit`] node references resolve in.
    netlist: Netlist,
    /// Raw ingest-time notes; re-filtered against the *current* netlist
    /// on every recompile so resolved notes drop out and un-resolved ones
    /// come back (`PL0009` stays truthful under edits).
    notes: Vec<BlifNote>,
    artifacts: FlowArtifacts,
    memo: MapMemo,
    cache: TriggerCache,
    mapped_fp: u64,
    phased_fp: u64,
}

impl Pipeline {
    /// Compiles a source from scratch and opens an [`EcoSession`] around
    /// the result, ready for [`EcoSession::apply_eco`] batches.
    ///
    /// # Errors
    ///
    /// Propagates the first failing stage's error, like [`Pipeline::run`].
    pub fn eco_session(&self, source: &CircuitSource) -> Result<EcoSession, FlowError> {
        EcoSession::new(self.clone(), source)
    }
}

impl EcoSession {
    /// Compiles `source` from scratch and retains everything reusable.
    ///
    /// # Errors
    ///
    /// Propagates the first failing stage's error.
    pub fn new(pipeline: Pipeline, source: &CircuitSource) -> Result<Self, FlowError> {
        pipeline.opts().validate()?;
        let ingested = pipeline.ingest(source)?;
        let name = ingested.name.clone();
        let netlist = ingested.netlist.clone();
        let notes = ingested.notes.clone();
        let ingest_report = ingested.report.clone();
        let lint = if pipeline.opts().lint.enabled {
            Some(pipeline.lint(&ingested)?)
        } else {
            None
        };
        let optimized = pipeline.optimize(ingested)?;
        let optimize_report = optimized.report.clone();
        let (mapped, memo, _) = pipeline.techmap_memoized(optimized, None)?;
        let mapped_fp = mapped.fingerprint;
        let mut cache = TriggerCache::new();
        let (artifacts, phased_fp) = downstream(
            &pipeline,
            mapped,
            ingest_report,
            lint,
            optimize_report,
            &mut cache,
        )?;
        Ok(Self {
            pipeline,
            name,
            netlist,
            notes,
            artifacts,
            memo,
            cache,
            mapped_fp,
            phased_fp,
        })
    }

    /// The retained artifacts of the latest successful compile.
    #[must_use]
    pub fn artifacts(&self) -> &FlowArtifacts {
        &self.artifacts
    }

    /// The pipeline the session compiles with (fixed for the session).
    #[must_use]
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// The current (post-edit) source netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The design label.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The session's persistent trigger-search cache.
    #[must_use]
    pub fn cache(&self) -> &TriggerCache {
        &self.cache
    }

    /// Applies a batch of edits and incrementally recompiles. On **any**
    /// error — a bad edit spec, an edit-level failure, a lint deny, a
    /// combinational loop the edit created — the session rolls back: the
    /// retained netlist and artifacts are exactly what they were and the
    /// session stays usable. (The trigger cache may have gained entries;
    /// it is pure, so that is unobservable in results.)
    ///
    /// An empty batch is legal and recompiles nothing: the unchanged
    /// mapped fingerprint short-circuits straight to the retained
    /// artifacts.
    ///
    /// # Errors
    ///
    /// Edit-application failures, then the first failing stage's error.
    pub fn apply_eco(&mut self, edits: &[EcoEdit]) -> Result<EcoOutcome, FlowError> {
        let t0 = Instant::now();
        let mut work = self.netlist.clone();
        // Pre-batch → post-batch id correspondence, kept monotone under
        // removal shifts; the techmap reuse plan is its inverse restricted
        // to clean nodes.
        let mut remap: Vec<Option<NodeId>> = (0..work.len())
            .map(|i| Some(NodeId::from_index(i)))
            .collect();
        let mut value_seeds: Vec<NodeId> = Vec::new();
        let mut frontier: Vec<NodeId> = Vec::new();
        let mut touched_nodes: Vec<NodeId> = Vec::new();
        for edit in edits {
            let (dirty, removed, touched) = edit.apply(&mut work)?;
            if let Some(v) = removed {
                let shift = |id: NodeId| {
                    if id > v {
                        NodeId::from_index(id.index() - 1)
                    } else {
                        id
                    }
                };
                for slot in &mut remap {
                    *slot = match *slot {
                        Some(cur) if cur == v => None,
                        Some(cur) => Some(shift(cur)),
                        None => None,
                    };
                }
                let translate =
                    |ids: Vec<NodeId>| ids.into_iter().filter(|&s| s != v).map(shift).collect();
                value_seeds = translate(value_seeds);
                frontier = translate(frontier);
                touched_nodes = translate(touched_nodes);
            }
            value_seeds.extend(dirty.nodes().iter().copied());
            frontier.extend(dirty.frontier().iter().copied());
            touched_nodes.extend(touched);
        }
        work.validate()?;
        // The batch's net effect, in the final id space. Per-edit cones
        // were computed on intermediate netlists; re-closing their union
        // over the final graph only over-approximates (sound, and exact
        // for single edits).
        let dirty = DirtySet::compute(&work, &value_seeds, &frontier);

        let plan: Option<ReusePlan> = if self.pipeline.opts().optimize {
            // Structural hashing renumbers globally; correspondence to the
            // retained memo is lost. Fall back to a from-scratch map.
            None
        } else {
            // Techmap invalidation seeds are the *structurally* touched
            // nodes plus the fanout-count frontier — not the value cone.
            // Cut lists depend only on a node's combinational fanin
            // structure, and cut ranking additionally on fanout counts
            // (area flow), so the register-clipped fanout closure of
            // {touched ∪ frontier} covers every node whose enumeration
            // could differ. The value cone also crosses registers: on
            // sequential designs it reaches most of the netlist while
            // leaving all those cut lists bit-identical.
            let mut seeds = touched_nodes.clone();
            seeds.extend(frontier.iter().copied());
            let dirty_two = comb_fanout_closure(&work, &seeds);
            let mut old_source: Vec<Option<NodeId>> = vec![None; work.len()];
            for (pre, cur) in remap.iter().enumerate() {
                if let Some(cur) = *cur {
                    if !dirty_two.contains(&cur) {
                        old_source[cur.index()] = Some(NodeId::from_index(pre));
                    }
                }
            }
            Some(ReusePlan { old_source })
        };

        // Head of the pipeline: an ingest-equivalent artifact from the
        // edited netlist, with the BLIF notes re-derived (satellite: an
        // edit that names an undriven net silences its PL0009; removing
        // that name brings it back).
        let ti = Instant::now();
        let active: Vec<BlifNote> = pl_lint::active_blif_notes(&work, &self.notes)
            .into_iter()
            .cloned()
            .collect();
        let ingested = Ingested {
            name: self.name.clone(),
            fingerprint: work.fingerprint(),
            report: IngestReport {
                source: "eco-edit",
                inputs: work.inputs().len(),
                outputs: work.outputs().len(),
                luts: work.num_luts(),
                dffs: work.dffs().len(),
                secs: ti.elapsed().as_secs_f64(),
            },
            netlist: work.clone(),
            notes: active,
        };
        let source_fp = ingested.fingerprint;
        let ingest_report = ingested.report.clone();
        let lint = if self.pipeline.opts().lint.enabled {
            Some(self.pipeline.lint(&ingested)?)
        } else {
            None
        };
        let optimized = self.pipeline.optimize(ingested)?;
        let optimize_report = optimized.report.clone();
        let (mapped, memo, reuse) = self
            .pipeline
            .techmap_memoized(optimized, plan.as_ref().map(|p| (&self.memo, p)))?;
        let techmap_incremental = plan.is_some();

        let mut eco = EcoReport {
            edits: edits.len(),
            dirty_nodes: dirty.nodes().len(),
            boundary_dffs: dirty.boundary_dffs().len(),
            dirty_outputs: dirty.outputs().iter().cloned().collect(),
            two_nodes: reuse.two_nodes,
            cuts_reused: reuse.cuts_reused,
            techmap_incremental,
            downstream_skipped: false,
            trigger_hits: 0,
            trigger_misses: 0,
            source_fingerprint: source_fp,
            mapped_fingerprint: mapped.fingerprint,
            phased_fingerprint: self.phased_fp,
            secs: 0.0,
        };

        // Downstream skip: the mapped netlist is the sole input of every
        // later stage (options are fixed for the session), so an unchanged
        // map means every retained artifact is reusable verbatim. The
        // fingerprint is the fast reject; a full equality compare confirms
        // (the contract tolerates no 64-bit collisions).
        if mapped.fingerprint == self.mapped_fp && mapped.netlist == self.artifacts.mapped {
            let flow = FlowReport {
                ingest: ingest_report,
                lint,
                optimize: optimize_report,
                techmap: mapped.report,
                phased: self.artifacts.report.phased.clone(),
                lint_pl: self.artifacts.report.lint_pl.clone(),
                early_eval: self.artifacts.report.early_eval.clone(),
                simulate: self.artifacts.report.simulate.clone(),
                verify: self.artifacts.report.verify.clone(),
            };
            self.netlist = work;
            self.memo = memo;
            self.artifacts.report = flow.clone();
            eco.downstream_skipped = true;
            eco.secs = t0.elapsed().as_secs_f64();
            return Ok(EcoOutcome { flow, eco });
        }

        let mapped_fp = mapped.fingerprint;
        let (hits0, misses0) = (self.cache.hits(), self.cache.misses());
        let (artifacts, phased_fp) = downstream(
            &self.pipeline,
            mapped,
            ingest_report,
            lint,
            optimize_report,
            &mut self.cache,
        )?;
        eco.trigger_hits = self.cache.hits() - hits0;
        eco.trigger_misses = self.cache.misses() - misses0;
        eco.phased_fingerprint = phased_fp;
        eco.secs = t0.elapsed().as_secs_f64();
        let flow = artifacts.report.clone();
        self.netlist = work;
        self.memo = memo;
        self.mapped_fp = mapped_fp;
        self.phased_fp = phased_fp;
        self.artifacts = artifacts;
        Ok(EcoOutcome { flow, eco })
    }
}

/// The back half of a compile, shared by the initial build and the
/// non-skip incremental path: phased → lint → EE (cached) → simulate →
/// verify, assembled into [`FlowArtifacts`] exactly like
/// [`Pipeline::run`]. Returns the artifacts plus the phased fingerprint.
fn downstream(
    p: &Pipeline,
    mapped: Mapped,
    ingest: IngestReport,
    lint: Option<LintStageReport>,
    optimize: OptimizeReport,
    cache: &mut TriggerCache,
) -> Result<(FlowArtifacts, u64), FlowError> {
    let phased = p.phased(&mapped)?;
    let phased_fp = phased.fingerprint;
    let phased_report = phased.report.clone();
    let lint_pl = if p.opts().lint.enabled {
        Some(p.lint_phased(&phased)?)
    } else {
        None
    };
    let early = p.early_eval_cached(phased, cache);
    let sim = p.simulate(&early)?;
    let verify = if p.opts().verify {
        Some(p.verify(&mapped.netlist, &sim)?)
    } else {
        None
    };
    Ok((
        FlowArtifacts {
            name: early.name.clone(),
            report: FlowReport {
                ingest,
                lint,
                optimize,
                techmap: mapped.report,
                phased: phased_report,
                lint_pl,
                early_eval: early.report,
                simulate: sim.report,
                verify,
            },
            mapped: mapped.netlist,
            plain: early.plain,
            ee: early.ee,
            pairs: early.pairs,
            inputs: sim.inputs,
            outputs: sim.outputs,
            stats_plain: sim.stats_plain,
            stats_ee: sim.stats_ee,
            stream_plain: sim.stream_plain,
            stream_ee: sim.stream_ee,
        },
        phased_fp,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::FlowOptions;

    fn session(name: &str) -> EcoSession {
        let pipeline = Pipeline::new(FlowOptions {
            vectors: 8,
            ..FlowOptions::default()
        });
        pipeline
            .eco_session(&CircuitSource::catalog(name).unwrap())
            .unwrap()
    }

    #[test]
    fn edit_spec_grammar_round_trips() {
        assert_eq!(
            EcoEdit::parse("table:n4:0x6").unwrap(),
            EcoEdit::ReplaceTable {
                node: NodeRef::Id(4),
                bits: 0x6
            }
        );
        assert_eq!(
            EcoEdit::parse("rewire:my_lut:1:n2").unwrap(),
            EcoEdit::Rewire {
                node: NodeRef::Name("my_lut".into()),
                pin: 1,
                src: NodeRef::Id(2)
            }
        );
        assert_eq!(
            EcoEdit::parse("insert:-:0x8:a,b").unwrap(),
            EcoEdit::Insert {
                name: None,
                bits: 0x8,
                inputs: vec![NodeRef::Name("a".into()), NodeRef::Name("b".into())]
            }
        );
        assert_eq!(
            EcoEdit::parse("remove:17").unwrap(),
            EcoEdit::Remove {
                node: NodeRef::Id(17)
            }
        );
        for bad in [
            "table:n4",
            "rewire:n4:x:n2",
            "insert:x:zz:a",
            "remove",
            "frobnicate:n1",
            "",
        ] {
            assert!(
                matches!(EcoEdit::parse(bad), Err(FlowError::Config { .. })),
                "'{bad}' must not parse"
            );
        }
    }

    #[test]
    fn node_names_resolve_and_ambiguity_is_typed() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_and2(a, b).unwrap();
        n.set_output("y", g);
        assert_eq!(NodeRef::parse("a").resolve(&n).unwrap(), a);
        assert_eq!(NodeRef::parse("y").resolve(&n).unwrap(), g, "output port");
        assert_eq!(NodeRef::parse("n2").resolve(&n).unwrap(), g);
        assert_eq!(NodeRef::parse("2").resolve(&n).unwrap(), g);
        assert!(NodeRef::parse("nope").resolve(&n).is_err());
        assert!(NodeRef::parse("n99").resolve(&n).is_err());
        n.set_name(g, "a").unwrap();
        assert!(
            NodeRef::parse("a").resolve(&n).is_err(),
            "two nodes named 'a' is ambiguous"
        );
    }

    #[test]
    fn failed_batch_rolls_back_and_session_stays_usable() {
        let mut s = session("b01");
        let before = s.netlist().fingerprint();
        let before_outputs = s.artifacts().outputs.clone();
        // Second edit of the batch fails: the whole batch must unwind.
        let err = s.apply_eco(&[
            EcoEdit::parse("table:n5:0x6").unwrap(),
            EcoEdit::parse("remove:n0").unwrap(),
        ]);
        assert!(err.is_err());
        assert_eq!(s.netlist().fingerprint(), before, "netlist rolled back");
        assert_eq!(s.artifacts().outputs, before_outputs, "artifacts retained");
        // And the session still compiles a good batch afterwards.
        let out = s.apply_eco(&[]).unwrap();
        assert!(out.eco.downstream_skipped, "no-op batch reuses everything");
    }

    #[test]
    fn empty_batch_skips_downstream_and_matches_retained() {
        let mut s = session("b02");
        let before = s.artifacts().outputs.clone();
        let out = s.apply_eco(&[]).unwrap();
        assert!(out.eco.downstream_skipped);
        assert!(out.eco.techmap_incremental);
        assert_eq!(out.eco.dirty_nodes, 0);
        assert_eq!(s.artifacts().outputs, before);
    }
}
