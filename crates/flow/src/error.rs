//! The pipeline's error type, spanning every stage.

use pl_sim::SimError;

/// Errors from any pipeline stage.
#[derive(Debug)]
pub enum FlowError {
    /// RTL elaboration failed.
    Rtl(pl_rtl::RtlError),
    /// Technology mapping or netlist handling failed (including BLIF
    /// parse errors).
    Netlist(pl_netlist::NetlistError),
    /// Phased-logic mapping failed.
    Pl(pl_core::PlError),
    /// Simulation failed.
    Sim(SimError),
    /// Reading a circuit source from disk failed.
    Io {
        /// The path that could not be read.
        path: String,
        /// The underlying I/O error.
        message: String,
    },
    /// PL and synchronous outputs diverged (must never happen).
    Mismatch {
        /// Which design and variant diverged.
        context: String,
    },
    /// The [`crate::FlowOptions`] are inconsistent (e.g. a zero
    /// streaming window).
    Config {
        /// What is wrong with the options.
        message: String,
    },
    /// An invalid [`crate::FlowOptions`] combination, rejected by
    /// [`crate::FlowOptions::validate`] before any stage runs. The
    /// message is phrased with the `plc` flag names (the CLI prints it
    /// verbatim), but the check itself is option-level: programmatic
    /// callers — the `pld` daemon building options from network
    /// requests, library embedders — hit exactly the same rejections as
    /// the command line.
    Options {
        /// What is wrong, phrased with the `plc` flag names.
        message: String,
    },
    /// The lint stage found deny-level diagnostics.
    Lint {
        /// Which pass denied: `"netlist"` or `"pl"`.
        pass: &'static str,
        /// The full report (warnings included, deny findings listed by
        /// the `Display` impl).
        report: pl_lint::LintReport,
    },
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Rtl(e) => write!(f, "rtl: {e}"),
            FlowError::Netlist(e) => write!(f, "netlist: {e}"),
            FlowError::Pl(e) => write!(f, "phased logic: {e}"),
            FlowError::Sim(e) => write!(f, "simulation: {e}"),
            FlowError::Io { path, message } => write!(f, "cannot read '{path}': {message}"),
            FlowError::Mismatch { context } => write!(f, "output mismatch in {context}"),
            FlowError::Config { message } => write!(f, "invalid options: {message}"),
            FlowError::Options { message } => write!(f, "invalid options: {message}"),
            FlowError::Lint { pass, report } => {
                write!(
                    f,
                    "lint ({pass}): {} deny-level finding(s)",
                    report.counts().1
                )?;
                for d in report.diagnostics() {
                    if d.severity == pl_lint::Severity::Deny {
                        write!(f, "\n  {} {}", d.code, d.message)?;
                    }
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for FlowError {}

impl From<pl_rtl::RtlError> for FlowError {
    fn from(e: pl_rtl::RtlError) -> Self {
        FlowError::Rtl(e)
    }
}
impl From<pl_netlist::NetlistError> for FlowError {
    fn from(e: pl_netlist::NetlistError) -> Self {
        FlowError::Netlist(e)
    }
}
impl From<pl_core::PlError> for FlowError {
    fn from(e: pl_core::PlError) -> Self {
        FlowError::Pl(e)
    }
}
impl From<SimError> for FlowError {
    fn from(e: SimError) -> Self {
        FlowError::Sim(e)
    }
}
