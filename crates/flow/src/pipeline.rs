//! The compile pipeline: explicit, separately-callable stages.
//!
//! ```text
//! ingest → lint → optimize → techmap → phased → lint → early_eval → simulate → verify
//! ```
//!
//! Each stage consumes the previous stage's typed artifact and returns a
//! new one carrying the transformed design plus a per-stage report with
//! wall-clock timing, so callers can stop at any layer: a linter stops
//! after [`Pipeline::ingest`], a mapper benchmark after
//! [`Pipeline::techmap`], the Table 3 harness runs the whole chain via
//! [`Pipeline::run`].
//!
//! Determinism contract: for a fixed [`FlowOptions`] and source, every
//! artifact is bit-identical across runs and across `jobs` values — the
//! only parallel step (the plain-vs-EE latency sweep in
//! [`Pipeline::simulate`]) scatters whole deterministic measurements via
//! [`pl_sim::parallel::scatter_gather`] and reorders them by index.
//!
//! # Artifact fingerprints and incremental invalidation
//!
//! Every compile-side artifact ([`Ingested`], [`Optimized`], [`Mapped`],
//! [`Phased`]) carries a 64-bit content `fingerprint` of the design it
//! holds. Fingerprints are pure functions of artifact *content* (never of
//! timings), so equal fingerprints across two runs mean the downstream
//! stages would recompute byte-identical results — which is what the
//! incremental recompilation session ([`crate::EcoSession`]) exploits:
//!
//! * **Netlist edits** return a [`pl_netlist::DirtySet`] — the value cone
//!   of the edit (fanout closure through registers) plus the edit frontier
//!   (old/new fanins whose fanout counts changed, which matter to the
//!   mapper's area-flow cost).
//! * **Techmap is cone-recomputed**: nodes outside the *combinational
//!   fanout closure* of the structurally touched nodes and the frontier
//!   (cut lists depend only on comb fanin structure and fanout counts —
//!   the register-crossing value cone is irrelevant to the mapper) keep
//!   byte-identical decomposition segments, and their priority-cut lists
//!   are translated from the
//!   retained [`pl_techmap::MapMemo`] instead of re-enumerated
//!   (bit-identical by construction — see
//!   [`pl_techmap::cuts::enumerate_incremental`]). Cover extraction and
//!   cleanup always run whole-netlist; they are cheap and demand-driven.
//!   With [`FlowOptions::optimize`] on, structural hashing renumbers
//!   globally, so the session falls back to a full re-map (still correct,
//!   just no reuse).
//! * **A stage is skipped outright** when its *input* artifact fingerprint
//!   is unchanged: if the re-mapped netlist fingerprints (and compares)
//!   equal to the retained one, the phased graph, early evaluation,
//!   simulation and verification are all reused verbatim from the retained
//!   artifacts. Feedback-arc planning and EE arrival levels are
//!   graph-global, so the phased stage is never cone-spliced — it either
//!   reuses wholesale or rebuilds completely.
//! * **Trigger searches memoize across compiles**: the session threads one
//!   [`pl_core::trigger::TriggerCache`] through every
//!   [`Pipeline::early_eval_cached`] call, so untouched LUT classes
//!   re-verify from the memo (`EeStageReport::cache_hits` counts this
//!   run's hits; the cache is pure, so selection never changes).
//!
//! The incremental determinism contract: for any edit sequence, the
//! incrementally recompiled pipeline is bit-identical — mapped netlist,
//! phased graph, simulation outputs, EE pair statistics — to a
//! from-scratch compile of the edited netlist (pinned over b01–b15 and
//! random netlists in `tests/eco_equivalence.rs`).

use std::path::PathBuf;
use std::time::Instant;

use pl_core::ee::{EeOptions, EePair};
use pl_core::trigger::TriggerCache;
use pl_core::PlNetlist;
use pl_lint::{LintOptions, LintReport};
use pl_netlist::blif::BlifNote;
use pl_netlist::Netlist;
use pl_sim::{DelayModel, LatencyStats, QueueKind, ResumableOptions, SweepRecovery};
use pl_techmap::{map_with_memo, MapMemo, MapOptions, MapReuseStats, ReusePlan};

use crate::error::FlowError;
use crate::source::CircuitSource;

/// Parameters of a pipeline run.
#[derive(Debug, Clone)]
pub struct FlowOptions {
    /// Random input vectors per simulated variant (the paper used 100).
    pub vectors: usize,
    /// RNG seed for vector generation.
    pub seed: u64,
    /// Early-evaluation selection policy.
    pub ee: EeOptions,
    /// Run the early-evaluation transformation at all. When `false`, the
    /// EE stage passes through and only the plain variant simulates.
    pub ee_enabled: bool,
    /// Component delays.
    pub delays: DelayModel,
    /// Cross-check PL outputs against the synchronous reference.
    pub verify: bool,
    /// Worker threads for the simulate stage's variant sweep (`0` = one
    /// per core). Results are bit-identical at any value.
    pub jobs: usize,
    /// Event-queue backend for every simulator the simulate stage builds
    /// (binary heap or calendar/ladder queue). A pure implementation
    /// choice: outputs, latencies and stream outcomes are bit-identical
    /// across kinds; only the queue-operation cost profile changes.
    pub queue: QueueKind,
    /// When set, the simulate stage runs the *streamed* protocol instead
    /// of the per-vector latency protocol: each variant's vector stream
    /// goes through [`pl_sim::parallel::sweep_pipelined`] in windows of
    /// this many vectors (checkpoint handoff, `jobs` workers), producing a
    /// [`pl_sim::StreamOutcome`] bit-identical to a sequential
    /// [`pl_sim::PlSimulator::run_stream`] call at any `(jobs, window)`.
    /// Latency statistics are empty in this mode (a pipelined stream has
    /// no per-vector stable-input→stable-output latency); makespan and
    /// throughput are reported instead.
    pub window: Option<usize>,
    /// When set, the simulate stage runs the *lane* protocol: the vector
    /// stream is striped 64 ways (vector `i` → substream `i % 64`, round
    /// `i / 64`; each substream is an independent run from the initial
    /// marking) and the substreams are swept together — on 64 scalar
    /// simulators with `Some(1)`, or on the word-parallel
    /// [`pl_sim::BatchSimulator`] with `Some(64)`, which marches all 64
    /// substreams through a *single* event flow with `u64` lane words.
    /// The striping is identical for both widths, so their reassembled
    /// outputs are bit-identical — `--lanes 1` vs `--lanes 64` diffs
    /// cleanly even on stateful designs. Only `1` and `64` are accepted;
    /// mutually exclusive with [`FlowOptions::window`] and
    /// [`FlowOptions::checkpoint_dir`]. Latency statistics are empty in
    /// this mode (substreams measure values, not per-vector latency).
    pub lanes: Option<usize>,
    /// When set (streamed protocol only), the simulate stage runs each
    /// variant through the crash-resumable sweep
    /// ([`pl_sim::sweep_resumable`]) instead of the in-memory pipelined
    /// sweep: window-boundary checkpoints and a completed-window journal
    /// are written under this directory (`plain/` and `ee/` subtrees, one
    /// per variant), so a killed run can be resumed bit-identically with
    /// [`FlowOptions::resume`]. Requires [`FlowOptions::window`].
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume an interrupted sweep already present in
    /// [`FlowOptions::checkpoint_dir`] instead of starting fresh (a fresh
    /// run refuses a directory that already holds a sweep). A variant
    /// whose sweep never durably started — no `sweep.meta` under its
    /// subtree, e.g. the run was killed before reaching the EE variant —
    /// is started fresh rather than failing.
    pub resume: bool,
    /// Re-attempts granted to a failed or panicked sweep window before it
    /// degrades to in-process execution (resumable protocol only).
    /// `None` takes the resumable sweep's default
    /// ([`ResumableOptions::default`]); `Some` requires
    /// [`FlowOptions::checkpoint_dir`] — there is no resumable sweep to
    /// tune otherwise, and [`FlowOptions::validate`] rejects the combo.
    pub max_retries: Option<u32>,
    /// Technology-mapping options (LUT arity, cut budget, cleanup).
    pub map: MapOptions,
    /// Run the standalone netlist cleanup passes (constant propagation,
    /// structural hashing, dead-node elimination) before mapping. Catalog
    /// sources are already cleaned by elaboration, so this is off by
    /// default; it pays off on raw third-party BLIF files.
    pub optimize: bool,
    /// Static-diagnostics options for the lint stage ([`Pipeline::lint`]
    /// after ingest, [`Pipeline::lint_phased`] after the phased stage).
    /// Enabled by default; a deny-level finding aborts [`Pipeline::run`]
    /// with [`FlowError::Lint`]. Set `lint.enabled = false` to skip the
    /// stage entirely, or override individual codes via `lint.overrides`.
    pub lint: LintOptions,
}

impl Default for FlowOptions {
    fn default() -> Self {
        Self {
            vectors: 100,
            seed: 0xDA7E_2002,
            ee: EeOptions::default(),
            ee_enabled: true,
            delays: DelayModel::default(),
            verify: true,
            jobs: 1,
            queue: QueueKind::default(),
            window: None,
            lanes: None,
            checkpoint_dir: None,
            resume: false,
            max_retries: None,
            map: MapOptions::default(),
            optimize: false,
            lint: LintOptions::default(),
        }
    }
}

impl FlowOptions {
    /// Rejects inconsistent option combinations with a typed
    /// [`FlowError::Options`] — the same combinations `plc` rejects at
    /// the command line, phrased with the same flag names, so
    /// programmatic callers (the `pld` daemon building options from
    /// network requests, library embedders) cannot silently bypass them:
    ///
    /// * a LUT arity outside `2..=6`,
    /// * a zero streaming window,
    /// * a lane width other than 1 or 64,
    /// * [`FlowOptions::lanes`] with [`FlowOptions::window`] (the lane
    ///   and streamed protocols differ),
    /// * [`FlowOptions::lanes`] with [`FlowOptions::checkpoint_dir`]
    ///   (the lane sweep is not resumable),
    /// * [`FlowOptions::checkpoint_dir`] without a window (only the
    ///   streamed sweep is resumable),
    /// * [`FlowOptions::resume`] without a checkpoint directory,
    /// * [`FlowOptions::max_retries`] without a checkpoint directory.
    ///
    /// Called at the top of [`Pipeline::run`], [`Pipeline::simulate`]
    /// and [`Pipeline::eco_session`], so an invalid combination fails
    /// fast and typed instead of panicking deep inside a sweep or being
    /// silently ignored.
    ///
    /// # Errors
    ///
    /// [`FlowError::Options`] naming the first offending combination.
    pub fn validate(&self) -> Result<(), FlowError> {
        let reject = |message: String| Err(FlowError::Options { message });
        if !(2..=6).contains(&self.map.lut_size) {
            return reject(format!(
                "--lut-size {} is outside the supported range 2..=6",
                self.map.lut_size
            ));
        }
        if self.window == Some(0) {
            return reject("--window must be at least 1".to_string());
        }
        if let Some(lanes) = self.lanes {
            if lanes != 1 && lanes != 64 {
                return reject(format!(
                    "--lanes {lanes} is not a supported width (1 = scalar engines, 64 = batch engine)"
                ));
            }
            if self.window.is_some() {
                return reject(
                    "--lanes is mutually exclusive with --window (lane and streamed protocols differ)"
                        .to_string(),
                );
            }
            if self.checkpoint_dir.is_some() {
                return reject(
                    "--lanes is mutually exclusive with --checkpoint-dir (the lane sweep is not resumable)"
                        .to_string(),
                );
            }
        }
        if self.checkpoint_dir.is_some() && self.window.is_none() {
            return reject(
                "--checkpoint-dir requires --window (only the streamed sweep is resumable)"
                    .to_string(),
            );
        }
        if self.resume && self.checkpoint_dir.is_none() {
            return reject(
                "--resume requires --checkpoint-dir (nowhere to resume from)".to_string(),
            );
        }
        if self.max_retries.is_some() && self.checkpoint_dir.is_none() {
            return reject(
                "--max-retries requires --checkpoint-dir (it tunes the resumable sweep)"
                    .to_string(),
            );
        }
        Ok(())
    }
}

/// Ingest-stage report.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// Source kind (`rtl-catalog`, `blif-file`, ...).
    pub source: &'static str,
    /// Primary inputs of the ingested netlist.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// LUT nodes.
    pub luts: usize,
    /// Flip-flops.
    pub dffs: usize,
    /// Stage wall-clock seconds.
    pub secs: f64,
}

/// Ingest-stage artifact: a named gate-level netlist.
#[derive(Debug, Clone)]
pub struct Ingested {
    /// Design label (catalog id, file path, ...).
    pub name: String,
    /// The gate-level netlist.
    pub netlist: Netlist,
    /// Ingest-time observations (e.g. undriven nets the BLIF source
    /// referenced), surfaced by the lint stage as `PL0009`.
    pub notes: Vec<BlifNote>,
    /// Content fingerprint of `netlist` ([`Netlist::fingerprint`]).
    pub fingerprint: u64,
    /// Stage report.
    pub report: IngestReport,
}

/// Lint-stage report: the findings plus stage timing.
#[derive(Debug, Clone)]
pub struct LintStageReport {
    /// The (deterministically ordered) findings.
    pub report: LintReport,
    /// Stage wall-clock seconds.
    pub secs: f64,
}

/// Optimize-stage report.
#[derive(Debug, Clone)]
pub struct OptimizeReport {
    /// Whether the cleanup passes ran (see [`FlowOptions::optimize`]).
    pub ran: bool,
    /// Node count before.
    pub nodes_before: usize,
    /// Node count after.
    pub nodes_after: usize,
    /// Stage wall-clock seconds.
    pub secs: f64,
}

/// Optimize-stage artifact.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// Design label.
    pub name: String,
    /// The (possibly cleaned) netlist.
    pub netlist: Netlist,
    /// Content fingerprint of `netlist` ([`Netlist::fingerprint`]).
    pub fingerprint: u64,
    /// Stage report.
    pub report: OptimizeReport,
}

/// Techmap-stage report.
#[derive(Debug, Clone)]
pub struct TechmapReport {
    /// Target LUT arity.
    pub lut_size: usize,
    /// LUT count before mapping (after 2-input decomposition).
    pub luts_before: usize,
    /// LUT count after mapping.
    pub luts_after: usize,
    /// Combinational depth after mapping.
    pub depth: u32,
    /// Stage wall-clock seconds.
    pub secs: f64,
}

/// Techmap-stage artifact: a LUT-k netlist ready for phased-logic mapping.
#[derive(Debug, Clone)]
pub struct Mapped {
    /// Design label.
    pub name: String,
    /// The mapped netlist (every LUT ≤ the configured arity).
    pub netlist: Netlist,
    /// Content fingerprint of `netlist` ([`Netlist::fingerprint`]). Equal
    /// fingerprints (confirmed by an equality compare) let the ECO session
    /// reuse every downstream artifact verbatim.
    pub fingerprint: u64,
    /// Stage report.
    pub report: TechmapReport,
}

/// Phased-stage report.
#[derive(Debug, Clone)]
pub struct PhasedReport {
    /// PL logic gates (LUTs + registers) — Table 3's "PL Gates".
    pub logic_gates: usize,
    /// Total arcs in the marked graph.
    pub arcs: usize,
    /// Feedback (acknowledge) arcs.
    pub ack_arcs: usize,
    /// Stage wall-clock seconds (includes the liveness check).
    pub secs: f64,
}

/// Phased-stage artifact: a live phased-logic marked graph.
#[derive(Debug, Clone)]
pub struct Phased {
    /// Design label.
    pub name: String,
    /// The phased-logic netlist (no EE yet).
    pub netlist: PlNetlist,
    /// Content fingerprint of `netlist` ([`PlNetlist::fingerprint`]).
    pub fingerprint: u64,
    /// Stage report.
    pub report: PhasedReport,
}

/// Early-evaluation-stage report.
#[derive(Debug, Clone)]
pub struct EeStageReport {
    /// Whether the transformation ran (see [`FlowOptions::ee_enabled`]).
    pub enabled: bool,
    /// Implemented master/trigger pairs — Table 3's "EE Gates".
    pub pairs: usize,
    /// Compute gates examined as potential masters.
    pub examined: usize,
    /// Trigger searches answered by the LUT-class memo cache.
    pub cache_hits: u64,
    /// Trigger searches computed fresh.
    pub cache_misses: u64,
    /// Fractional area increase (pairs over PL gates).
    pub area_increase: f64,
    /// Stage wall-clock seconds.
    pub secs: f64,
}

/// Early-evaluation-stage artifact: the plain netlist plus (when enabled)
/// its EE-transformed twin.
#[derive(Debug, Clone)]
pub struct EarlyEvaled {
    /// Design label.
    pub name: String,
    /// The plain phased-logic netlist.
    pub plain: PlNetlist,
    /// The EE-transformed netlist (`None` when EE is disabled).
    pub ee: Option<PlNetlist>,
    /// The implemented master/trigger pairs.
    pub pairs: Vec<EePair>,
    /// Stage report.
    pub report: EeStageReport,
}

/// Simulate-stage report.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Vectors simulated per variant.
    pub vectors: usize,
    /// Worker threads used for the variant sweep.
    pub jobs: usize,
    /// Event-queue backend the stage's simulators scheduled through.
    pub queue: QueueKind,
    /// Pipelined-window size when the streamed protocol ran
    /// (see [`FlowOptions::window`]); `None` for the per-vector protocol.
    pub window: Option<usize>,
    /// Lane width when the lane protocol ran (see
    /// [`FlowOptions::lanes`]): `Some(1)` for 64 scalar substreams,
    /// `Some(64)` for the word-parallel batch engine; `None` otherwise.
    pub lanes: Option<usize>,
    /// Recovery audit trail of the plain variant when the crash-resumable
    /// sweep ran (see [`FlowOptions::checkpoint_dir`]); `None` otherwise.
    pub recovery_plain: Option<SweepRecovery>,
    /// Recovery audit trail of the EE variant (resumable sweep with EE
    /// enabled only).
    pub recovery_ee: Option<SweepRecovery>,
    /// Stage wall-clock seconds (all variants).
    pub secs: f64,
}

/// Simulate-stage artifact: per-vector outputs and latency statistics.
///
/// `outputs` are the plain variant's outputs; the stage has already
/// asserted that the EE variant's outputs are bit-identical (the paper's
/// central invariant: EE changes timing only, never values).
#[derive(Debug, Clone)]
pub struct Simulated {
    /// Design label.
    pub name: String,
    /// The input vectors that were simulated (the verify stage replays
    /// exactly these against the synchronous reference).
    pub inputs: Vec<Vec<bool>>,
    /// Per-vector primary-output values.
    pub outputs: Vec<Vec<bool>>,
    /// Latency statistics without EE (empty in streamed mode).
    pub stats_plain: LatencyStats,
    /// Latency statistics with EE (`None` when EE is disabled; empty in
    /// streamed mode).
    pub stats_ee: Option<LatencyStats>,
    /// Streamed outcome of the plain variant when the pipelined protocol
    /// ran (see [`FlowOptions::window`]) — **metrics only**
    /// (makespan/throughput); its `outputs` vector is empty because the
    /// output words live once, in [`Simulated::outputs`].
    pub stream_plain: Option<pl_sim::StreamOutcome>,
    /// Streamed outcome of the EE variant (metrics only, same contract as
    /// `stream_plain`; the EE words were asserted identical to the plain
    /// ones), when EE and the pipelined protocol are both enabled.
    pub stream_ee: Option<pl_sim::StreamOutcome>,
    /// Stage report.
    pub report: SimReport,
}

/// Verify-stage report.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Vectors cross-checked against the synchronous reference.
    pub vectors: usize,
    /// Stage wall-clock seconds.
    pub secs: f64,
}

/// Everything a full [`Pipeline::run`] produces.
#[derive(Debug, Clone)]
pub struct FlowArtifacts {
    /// Design label.
    pub name: String,
    /// The LUT-mapped synchronous netlist (verify-stage reference).
    pub mapped: Netlist,
    /// The plain phased-logic netlist.
    pub plain: PlNetlist,
    /// The EE-transformed netlist (`None` when EE is disabled).
    pub ee: Option<PlNetlist>,
    /// The implemented master/trigger pairs.
    pub pairs: Vec<EePair>,
    /// The simulated input vectors.
    pub inputs: Vec<Vec<bool>>,
    /// Per-vector primary-output values.
    pub outputs: Vec<Vec<bool>>,
    /// Latency statistics without EE (empty in streamed mode).
    pub stats_plain: LatencyStats,
    /// Latency statistics with EE (`None` when EE is disabled; empty in
    /// streamed mode).
    pub stats_ee: Option<LatencyStats>,
    /// Streamed outcome of the plain variant when the pipelined protocol
    /// ran — metrics only; the words live in [`FlowArtifacts::outputs`].
    pub stream_plain: Option<pl_sim::StreamOutcome>,
    /// Streamed outcome of the EE variant (metrics only).
    pub stream_ee: Option<pl_sim::StreamOutcome>,
    /// All stage reports.
    pub report: FlowReport,
}

/// The per-stage reports of one full run.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// Ingest stage.
    pub ingest: IngestReport,
    /// Netlist lint pass, run right after ingest (`None` when the lint
    /// stage is disabled).
    pub lint: Option<LintStageReport>,
    /// Optimize stage.
    pub optimize: OptimizeReport,
    /// Techmap stage.
    pub techmap: TechmapReport,
    /// Phased stage.
    pub phased: PhasedReport,
    /// Phased-logic lint pass, run right after the phased stage (`None`
    /// when the lint stage is disabled).
    pub lint_pl: Option<LintStageReport>,
    /// Early-evaluation stage.
    pub early_eval: EeStageReport,
    /// Simulate stage.
    pub simulate: SimReport,
    /// Verify stage (`None` when verification is off).
    pub verify: Option<VerifyReport>,
}

impl FlowReport {
    /// Total wall-clock seconds across all stages.
    #[must_use]
    pub fn total_secs(&self) -> f64 {
        self.ingest.secs
            + self.lint.as_ref().map_or(0.0, |l| l.secs)
            + self.optimize.secs
            + self.techmap.secs
            + self.phased.secs
            + self.lint_pl.as_ref().map_or(0.0, |l| l.secs)
            + self.early_eval.secs
            + self.simulate.secs
            + self.verify.as_ref().map_or(0.0, |v| v.secs)
    }
}

/// The compile pipeline, configured once and callable stage by stage.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    opts: FlowOptions,
}

impl Pipeline {
    /// A pipeline with the given options.
    #[must_use]
    pub fn new(opts: FlowOptions) -> Self {
        Self { opts }
    }

    /// The configured options.
    #[must_use]
    pub fn opts(&self) -> &FlowOptions {
        &self.opts
    }

    /// **Stage 1 — ingest**: resolves a [`CircuitSource`] to a named
    /// gate-level netlist.
    ///
    /// # Errors
    ///
    /// Source resolution failures (I/O, BLIF parse, RTL elaboration).
    pub fn ingest(&self, source: &CircuitSource) -> Result<Ingested, FlowError> {
        let t0 = Instant::now();
        let (netlist, notes) = source.ingest_netlist_with_notes()?;
        let report = IngestReport {
            source: source.kind(),
            inputs: netlist.inputs().len(),
            outputs: netlist.outputs().len(),
            luts: netlist.num_luts(),
            dffs: netlist.dffs().len(),
            secs: t0.elapsed().as_secs_f64(),
        };
        Ok(Ingested {
            name: source.name(),
            fingerprint: netlist.fingerprint(),
            netlist,
            notes,
            report,
        })
    }

    /// **Stage 1b — lint**: whole-netlist static diagnostics on the
    /// ingested design (see [`pl_lint::lint_netlist`] and the lint catalog
    /// in the `pl-lint` crate docs). Non-consuming, like
    /// [`Pipeline::verify`], so callers can lint and still continue with
    /// the artifact.
    ///
    /// # Errors
    ///
    /// [`FlowError::Lint`] when any finding is deny-level under the
    /// configured severities ([`LintOptions::overrides`]).
    pub fn lint(&self, ingested: &Ingested) -> Result<LintStageReport, FlowError> {
        let t0 = Instant::now();
        let report = pl_lint::lint_netlist(
            &ingested.netlist,
            &ingested.notes,
            &self.opts.delays,
            &self.opts.lint,
        );
        if report.has_deny() {
            return Err(FlowError::Lint {
                pass: "netlist",
                report,
            });
        }
        Ok(LintStageReport {
            report,
            secs: t0.elapsed().as_secs_f64(),
        })
    }

    /// **Stage 4b — lint (phased)**: re-checks the mapped phased-logic
    /// netlist (pin wiring, dead gates, data-fanout envelope) with
    /// [`pl_lint::lint_pl`].
    ///
    /// # Errors
    ///
    /// [`FlowError::Lint`] when any finding is deny-level.
    pub fn lint_phased(&self, phased: &Phased) -> Result<LintStageReport, FlowError> {
        let t0 = Instant::now();
        let report = pl_lint::lint_pl(&phased.netlist, &self.opts.lint);
        if report.has_deny() {
            return Err(FlowError::Lint { pass: "pl", report });
        }
        Ok(LintStageReport {
            report,
            secs: t0.elapsed().as_secs_f64(),
        })
    }

    /// **Stage 2 — optimize**: optional standalone cleanup passes
    /// (constant propagation, structural hashing, dead-node elimination).
    /// Passes through untouched unless [`FlowOptions::optimize`] is set.
    ///
    /// # Errors
    ///
    /// Netlist validation failures from the cleanup passes.
    pub fn optimize(&self, ingested: Ingested) -> Result<Optimized, FlowError> {
        let t0 = Instant::now();
        let nodes_before = ingested.netlist.len();
        let netlist = if self.opts.optimize {
            pl_netlist::opt::cleanup(&ingested.netlist)?
        } else {
            ingested.netlist
        };
        Ok(Optimized {
            name: ingested.name,
            report: OptimizeReport {
                ran: self.opts.optimize,
                nodes_before,
                nodes_after: netlist.len(),
                secs: t0.elapsed().as_secs_f64(),
            },
            // Pass-through keeps the ingest fingerprint without rehashing.
            fingerprint: if self.opts.optimize {
                netlist.fingerprint()
            } else {
                ingested.fingerprint
            },
            netlist,
        })
    }

    /// **Stage 3 — techmap**: covers the netlist with LUTs of the
    /// configured arity (cut-based, depth-oriented).
    ///
    /// # Errors
    ///
    /// Mapping and validation failures.
    pub fn techmap(&self, optimized: Optimized) -> Result<Mapped, FlowError> {
        Ok(self.techmap_memoized(optimized, None)?.0)
    }

    /// Techmap with cross-compile memoization: returns the mapped artifact
    /// plus the [`MapMemo`] to retain for the next incremental compile and
    /// the reuse statistics of this one. `prev` is a retained memo plus a
    /// clean-source correspondence plan (see
    /// [`pl_techmap::map_with_memo`]); `None` maps from scratch.
    /// [`Pipeline::techmap`] is the plain `None` wrapper.
    ///
    /// # Errors
    ///
    /// Mapping and validation failures.
    pub fn techmap_memoized(
        &self,
        optimized: Optimized,
        prev: Option<(&MapMemo, &ReusePlan)>,
    ) -> Result<(Mapped, MapMemo, MapReuseStats), FlowError> {
        let t0 = Instant::now();
        let (mr, memo, stats) = map_with_memo(&optimized.netlist, &self.opts.map, prev)?;
        let mapped = Mapped {
            name: optimized.name,
            fingerprint: mr.netlist.fingerprint(),
            netlist: mr.netlist,
            report: TechmapReport {
                lut_size: self.opts.map.lut_size,
                luts_before: mr.luts_before,
                luts_after: mr.luts_after,
                depth: mr.depth,
                secs: t0.elapsed().as_secs_f64(),
            },
        };
        Ok((mapped, memo, stats))
    }

    /// **Stage 4 — phased**: maps the synchronous LUT netlist one-to-one
    /// onto a phased-logic marked graph and proves it live.
    ///
    /// # Errors
    ///
    /// PL mapping failures; liveness violations (which would indicate a
    /// mapping bug or a degenerate input).
    pub fn phased(&self, mapped: &Mapped) -> Result<Phased, FlowError> {
        let t0 = Instant::now();
        let netlist = PlNetlist::from_sync(&mapped.netlist)?;
        pl_core::marked::check_liveness(&netlist)?;
        let report = PhasedReport {
            logic_gates: netlist.num_logic_gates(),
            arcs: netlist.arcs().len(),
            ack_arcs: netlist.num_ack_arcs(),
            secs: t0.elapsed().as_secs_f64(),
        };
        Ok(Phased {
            name: mapped.name.clone(),
            fingerprint: netlist.fingerprint(),
            netlist,
            report,
        })
    }

    /// **Stage 5 — early evaluation**: pairs eligible masters with
    /// trigger gates (paper §3). The plain netlist is built **once** in
    /// the phased stage; the EE twin derives from a clone, so the two
    /// variants share an identical baseline by construction.
    ///
    /// When [`FlowOptions::ee_enabled`] is off, the stage passes the
    /// plain netlist through and reports zero pairs.
    #[must_use]
    pub fn early_eval(&self, phased: Phased) -> EarlyEvaled {
        let mut cache = TriggerCache::new();
        self.early_eval_cached(phased, &mut cache)
    }

    /// [`Pipeline::early_eval`] with a caller-owned trigger memo: the
    /// search cache lives across calls, so an incremental recompile
    /// answers trigger searches for untouched LUT classes from the memo
    /// of the previous compile. The cache is pure — selection is
    /// bit-identical to a fresh-cache run — and the stage report counts
    /// only *this run's* hits and misses.
    #[must_use]
    pub fn early_eval_cached(&self, phased: Phased, cache: &mut TriggerCache) -> EarlyEvaled {
        let t0 = Instant::now();
        if !self.opts.ee_enabled {
            return EarlyEvaled {
                name: phased.name,
                plain: phased.netlist,
                ee: None,
                pairs: Vec::new(),
                report: EeStageReport {
                    enabled: false,
                    pairs: 0,
                    examined: 0,
                    cache_hits: 0,
                    cache_misses: 0,
                    area_increase: 0.0,
                    secs: t0.elapsed().as_secs_f64(),
                },
            };
        }
        let report = phased
            .netlist
            .clone()
            .with_early_evaluation_cached(&self.opts.ee, cache);
        let stage_report = EeStageReport {
            enabled: true,
            pairs: report.pairs().len(),
            examined: report.examined(),
            cache_hits: report.cache_hits(),
            cache_misses: report.cache_misses(),
            area_increase: report.area_increase(),
            secs: t0.elapsed().as_secs_f64(),
        };
        let pairs = report.pairs().to_vec();
        EarlyEvaled {
            name: phased.name,
            plain: phased.netlist,
            ee: Some(report.into_netlist()),
            pairs,
            report: stage_report,
        }
    }

    /// **Stage 6 — simulate**: runs seeded random vectors through every
    /// variant and asserts the EE variant's outputs equal the plain
    /// variant's. Two protocols, selected by [`FlowOptions::window`]:
    ///
    /// * **Per-vector** (`window: None`, the paper's Table 3 protocol) —
    ///   measures stable-input→stable-output latency vector by vector,
    ///   scattering the plain/EE variants across [`FlowOptions::jobs`]
    ///   workers.
    /// * **Streamed** (`window: Some(n)`) — pipelines the whole vector
    ///   stream through each variant via
    ///   [`pl_sim::parallel::sweep_pipelined`] (`n`-vector checkpointed
    ///   windows, `jobs` workers inside one stream), reporting makespan
    ///   and throughput instead of per-vector latencies. With
    ///   [`FlowOptions::checkpoint_dir`] set, the stream runs through the
    ///   crash-resumable sweep instead ([`pl_sim::sweep_resumable`]:
    ///   on-disk checkpoints + journal, kill/resume recovery, bounded
    ///   worker retry) and the report carries each variant's
    ///   [`SweepRecovery`] audit trail.
    ///
    /// Either way the results are bit-identical at any worker count.
    ///
    /// # Errors
    ///
    /// Simulator failures; [`FlowError::Mismatch`] if EE ever changed a
    /// value (must never happen); [`FlowError::Options`] for an
    /// inconsistent option combination (see
    /// [`FlowOptions::validate`]).
    pub fn simulate(&self, ee: &EarlyEvaled) -> Result<Simulated, FlowError> {
        let t0 = Instant::now();
        // Caught here so library callers get a typed error instead of
        // the sweep's panic (plc delegates to the same check).
        self.opts.validate()?;
        let inputs = pl_sim::random_vectors(
            ee.plain.input_gates().len(),
            self.opts.vectors,
            self.opts.seed,
        );
        let report = SimReport {
            vectors: self.opts.vectors,
            jobs: self.opts.jobs,
            queue: self.opts.queue,
            window: self.opts.window,
            lanes: self.opts.lanes,
            recovery_plain: None,
            recovery_ee: None,
            secs: 0.0,
        };
        if let Some(lanes) = self.opts.lanes {
            // Lane protocol: stripe the stream 64 ways (vector i →
            // substream i % 64), sweep the substreams on scalar engines
            // (lanes = 1) or one batch engine per 64-block (lanes = 64),
            // and reassemble in vector order. The striping is width-
            // invariant, so both widths produce identical outputs.
            let mut subs: Vec<Vec<Vec<bool>>> = vec![Vec::new(); 64];
            for (i, v) in inputs.iter().enumerate() {
                subs[i % 64].push(v.clone());
            }
            let sweep = |pl: &PlNetlist| {
                if lanes == 64 {
                    pl_sim::sweep_streams_batch_with_queue(
                        pl,
                        &self.opts.delays,
                        &subs,
                        self.opts.jobs,
                        self.opts.queue,
                    )
                } else {
                    pl_sim::sweep_streams_with_queue(
                        pl,
                        &self.opts.delays,
                        &subs,
                        self.opts.jobs,
                        self.opts.queue,
                    )
                }
            };
            let reassemble = |outs: &[pl_sim::StreamOutcome]| -> Vec<Vec<bool>> {
                (0..inputs.len())
                    .map(|i| outs[i % 64].outputs[i / 64].clone())
                    .collect()
            };
            let outputs = reassemble(&sweep(&ee.plain)?);
            if let Some(pl) = &ee.ee {
                if reassemble(&sweep(pl)?) != outputs {
                    return Err(FlowError::Mismatch {
                        context: format!("{} (EE vs plain, {lanes}-lane)", ee.name),
                    });
                }
            }
            return Ok(Simulated {
                name: ee.name.clone(),
                inputs,
                outputs,
                stats_plain: LatencyStats::new(Vec::new()),
                stats_ee: ee.ee.as_ref().map(|_| LatencyStats::new(Vec::new())),
                stream_plain: None,
                stream_ee: None,
                report: SimReport {
                    secs: t0.elapsed().as_secs_f64(),
                    ..report
                },
            });
        }
        if let Some(window) = self.opts.window {
            // Streamed protocol: parallelism lives INSIDE each stream, so
            // the variants run back to back, each pipelined over `jobs`.
            let (mut stream_plain, recovery_plain) =
                self.sweep_stream(&ee.plain, &inputs, window, "plain")?;
            let (stream_ee, recovery_ee) = match &ee.ee {
                Some(pl) => {
                    let (mut s, rec) = self.sweep_stream(pl, &inputs, window, "ee")?;
                    if stream_plain.outputs != s.outputs {
                        return Err(FlowError::Mismatch {
                            context: format!("{} (EE vs plain, streamed)", ee.name),
                        });
                    }
                    s.outputs = Vec::new();
                    (Some(s), rec)
                }
                None => (None, None),
            };
            // The output words live once, in `Simulated::outputs`; the
            // stream outcomes carry metrics (makespan/throughput) only —
            // the EE variant's words were just asserted identical anyway.
            let outputs = std::mem::take(&mut stream_plain.outputs);
            return Ok(Simulated {
                name: ee.name.clone(),
                inputs,
                outputs,
                stats_plain: LatencyStats::new(Vec::new()),
                stats_ee: stream_ee.as_ref().map(|_| LatencyStats::new(Vec::new())),
                stream_ee,
                stream_plain: Some(stream_plain),
                report: SimReport {
                    recovery_plain,
                    recovery_ee,
                    secs: t0.elapsed().as_secs_f64(),
                    ..report
                },
            });
        }
        let variants: Vec<&PlNetlist> = std::iter::once(&ee.plain).chain(ee.ee.as_ref()).collect();
        let results = pl_sim::parallel::scatter_gather(self.opts.jobs, &variants, |_, pl| {
            pl_sim::measure_latency_on_with_queue(pl, &self.opts.delays, &inputs, self.opts.queue)
        });
        let mut measured = Vec::with_capacity(results.len());
        for r in results {
            measured.push(r?);
        }
        let (out_plain, stats_plain) = measured.swap_remove(0);
        let stats_ee = match measured.pop() {
            Some((out_ee, stats)) => {
                if out_plain != out_ee {
                    return Err(FlowError::Mismatch {
                        context: format!("{} (EE vs plain)", ee.name),
                    });
                }
                Some(stats)
            }
            None => None,
        };
        Ok(Simulated {
            name: ee.name.clone(),
            inputs,
            outputs: out_plain,
            stats_plain,
            stats_ee,
            stream_plain: None,
            stream_ee: None,
            report: SimReport {
                secs: t0.elapsed().as_secs_f64(),
                ..report
            },
        })
    }

    /// Runs one variant's vector stream through the streamed protocol:
    /// the crash-resumable sweep (under `checkpoint_dir/<variant>`) when
    /// a checkpoint directory is configured, the in-memory pipelined
    /// sweep otherwise. Both are bit-identical to a sequential
    /// `run_stream`; only the resumable path yields a recovery trail.
    fn sweep_stream(
        &self,
        pl: &PlNetlist,
        inputs: &[Vec<bool>],
        window: usize,
        variant: &str,
    ) -> Result<(pl_sim::StreamOutcome, Option<SweepRecovery>), FlowError> {
        match &self.opts.checkpoint_dir {
            Some(dir) => {
                let vdir = dir.join(variant);
                // A kill can land before this variant's sweep durably
                // started (its `sweep.meta` is written atomically, so it
                // is absent-or-valid): resume what is there, start fresh
                // what never began. A present-but-corrupt meta still
                // fails typed inside the sweep.
                let resume = self.opts.resume && vdir.join("sweep.meta").exists();
                let out = pl_sim::sweep_resumable(
                    pl,
                    &self.opts.delays,
                    inputs,
                    &vdir,
                    &ResumableOptions {
                        window,
                        jobs: self.opts.jobs,
                        queue: self.opts.queue,
                        resume,
                        max_retries: self
                            .opts
                            .max_retries
                            .unwrap_or(ResumableOptions::default().max_retries),
                    },
                )?;
                Ok((out.outcome, Some(out.recovery)))
            }
            None => {
                let s = pl_sim::parallel::sweep_pipelined_with_queue(
                    pl,
                    &self.opts.delays,
                    inputs,
                    window,
                    self.opts.jobs,
                    self.opts.queue,
                )?;
                Ok((s, None))
            }
        }
    }

    /// **Stage 7 — verify**: replays the simulate stage's exact input
    /// vectors (carried in the [`Simulated`] artifact) through the
    /// cycle-accurate synchronous reference and checks every output word
    /// against the phased-logic run.
    ///
    /// # Errors
    ///
    /// [`FlowError::Mismatch`] naming the first diverging vector.
    pub fn verify(&self, mapped: &Netlist, sim: &Simulated) -> Result<VerifyReport, FlowError> {
        let t0 = Instant::now();
        // Under the lane protocol the stream was striped 64 ways, each
        // substream an independent run from the initial state, so the
        // reference must be striped identically: vector i replays on
        // reference simulator i % 64.
        let n_refs = if sim.report.lanes.is_some() { 64 } else { 1 };
        let mut syncs = Vec::with_capacity(n_refs);
        for _ in 0..n_refs {
            syncs.push(pl_sim::SyncSimulator::new(mapped).map_err(FlowError::Netlist)?);
        }
        for (i, (v, pl_out)) in sim.inputs.iter().zip(&sim.outputs).enumerate() {
            let sync_out = syncs[i % n_refs].step(v).map_err(FlowError::Netlist)?;
            if &sync_out != pl_out {
                return Err(FlowError::Mismatch {
                    context: format!("{} vector {i} (sync vs PL)", sim.name),
                });
            }
        }
        Ok(VerifyReport {
            vectors: sim.outputs.len(),
            secs: t0.elapsed().as_secs_f64(),
        })
    }

    /// Runs the whole chain on one source.
    ///
    /// # Errors
    ///
    /// Propagates the first failing stage's error.
    pub fn run(&self, source: &CircuitSource) -> Result<FlowArtifacts, FlowError> {
        self.opts.validate()?;
        let ingested = self.ingest(source)?;
        let ingest_report = ingested.report.clone();
        let lint_report = if self.opts.lint.enabled {
            Some(self.lint(&ingested)?)
        } else {
            None
        };
        let optimized = self.optimize(ingested)?;
        let optimize_report = optimized.report.clone();
        let mapped = self.techmap(optimized)?;
        let phased = self.phased(&mapped)?;
        let phased_report = phased.report.clone();
        let lint_pl_report = if self.opts.lint.enabled {
            Some(self.lint_phased(&phased)?)
        } else {
            None
        };
        let early = self.early_eval(phased);
        let sim = self.simulate(&early)?;
        let verify = if self.opts.verify {
            Some(self.verify(&mapped.netlist, &sim)?)
        } else {
            None
        };
        Ok(FlowArtifacts {
            name: early.name.clone(),
            report: FlowReport {
                ingest: ingest_report,
                lint: lint_report,
                optimize: optimize_report,
                techmap: mapped.report,
                phased: phased_report,
                lint_pl: lint_pl_report,
                early_eval: early.report,
                simulate: sim.report,
                verify,
            },
            mapped: mapped.netlist,
            plain: early.plain,
            ee: early.ee,
            pairs: early.pairs,
            inputs: sim.inputs,
            outputs: sim.outputs,
            stats_plain: sim.stats_plain,
            stats_ee: sim.stats_ee,
            stream_plain: sim.stream_plain,
            stream_ee: sim.stream_ee,
        })
    }
}
